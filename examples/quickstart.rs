//! Quickstart: train a monotonic cardinality estimator on a Hamming-code
//! dataset and query it.
//!
//! ```text
//! cargo run --release -p cardest-core --example quickstart
//! ```

use cardest_core::estimator::CardinalityEstimator;
use cardest_core::model::CardNetConfig;
use cardest_core::train::{train_cardnet, TrainerOptions};
use cardest_core::CardNetEstimator;
use cardest_data::synth::{hm_imagenet, SynthConfig};
use cardest_data::Workload;
use cardest_fx::build_extractor;

fn main() {
    // 1. A dataset: 64-bit binary codes under Hamming distance, θ_max = 20.
    //    (Replace with your own `Dataset` of Bits/Str/Set/Vec records.)
    let dataset = hm_imagenet(SynthConfig::new(2000, 42));
    println!(
        "dataset: {} ({} records, θ_max = {})",
        dataset.name,
        dataset.len(),
        dataset.theta_max
    );

    // 2. A labelled workload: sample 10% of the records as queries, label
    //    them with the exact oracle over a uniform threshold grid (§6.1).
    let workload = Workload::sample_from(&dataset, 0.10, 12, 7);
    let split = workload.split(13);
    println!(
        "workload: {} train / {} valid / {} test queries × {} thresholds",
        split.train.len(),
        split.valid.len(),
        split.test.len(),
        split.train.thresholds.len()
    );

    // 3. Feature extraction (§4) + the accelerated CardNet-A model (§7).
    let fx = build_extractor(&dataset, 20, 1);
    let config = CardNetConfig::new(fx.dim(), fx.tau_max() + 1).accelerated();
    let options = TrainerOptions::quick();
    let (trainer, report) = train_cardnet(fx.as_ref(), &split.train, &split.valid, config, options);
    println!(
        "trained in {:.1}s ({} epochs, best val MSLE {:.3})",
        report.train_seconds, report.epochs_run, report.best_val_msle
    );
    let estimator = CardNetEstimator::from_trainer(fx, trainer);

    // 4. Estimate — monotone in θ by construction (Lemmas 1–2).
    let query = &dataset.records[0];
    println!("\n{:>10} {:>12} {:>10}", "θ", "estimated", "actual");
    for theta in (0..=20).step_by(4) {
        let est = estimator.estimate(query, f64::from(theta));
        let actual = dataset.cardinality_scan(query, f64::from(theta));
        println!("{theta:>10} {est:>12.1} {actual:>10}");
    }
    println!(
        "\nmodel: {} ({} KiB, monotonic = {})",
        estimator.name(),
        estimator.size_bytes() / 1024,
        estimator.is_monotonic()
    );
}
