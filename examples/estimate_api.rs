//! The v2 Estimator API: a τ-sweep with **one** `prepare()` call.
//!
//! A query optimizer costing a plan (or an accuracy experiment, or the
//! serving cache) needs `ĉ(x, θ)` at many thresholds for the *same* query.
//! The naive loop re-extracts features and re-runs the encoder once per
//! threshold; the prepared-query flow does both exactly once:
//!
//! ```text
//! let prepared = estimator.prepare(&query);      // h_rec + (lazily) encoder
//! let curve    = estimator.curve(&prepared, θ);  // ĉ_0 … ĉ_τ in one call
//! ```
//!
//! ```text
//! cargo run --release -p cardest-integration --example estimate_api
//! ```

use cardest_core::estimator::CardinalityEstimator;
use cardest_core::metrics::ApiCounters;
use cardest_core::model::CardNetConfig;
use cardest_core::train::{train_cardnet, TrainerOptions};
use cardest_core::CardNetEstimator;
use cardest_data::synth::{hm_imagenet, SynthConfig};
use cardest_data::Workload;
use cardest_fx::build_extractor;

fn main() {
    // Train a small CardNet-A on a Hamming dataset (see `quickstart` for a
    // walk-through of these steps).
    let dataset = hm_imagenet(SynthConfig::new(1500, 42));
    let workload = Workload::sample_from(&dataset, 0.10, 12, 7);
    let split = workload.split(13);
    let fx = build_extractor(&dataset, 20, 1);
    let config = CardNetConfig::new(fx.dim(), fx.tau_max() + 1).accelerated();
    let (trainer, _) = train_cardnet(
        fx.as_ref(),
        &split.train,
        &split.valid,
        config,
        TrainerOptions::quick(),
    );
    let estimator = CardNetEstimator::from_trainer(fx, trainer);
    let query = &dataset.records[0];

    // The naive sweep: k estimates, k feature extractions, k encoder runs.
    let before = ApiCounters::snapshot();
    let naive: Vec<f64> = (0..=20)
        .map(|t| estimator.estimate(query, f64::from(t)))
        .collect();
    let naive_counts = ApiCounters::snapshot().delta_since(&before);

    // The prepared sweep: one prepare(), one curve() — the whole threshold
    // curve comes back at once, and the per-θ values are bit-identical.
    let before = ApiCounters::snapshot();
    let prepared = estimator.prepare(query);
    let curve = estimator.curve(&prepared, dataset.theta_max);
    let prepared_counts = ApiCounters::snapshot().delta_since(&before);

    println!("{:>10} {:>14} {:>14}", "θ", "naive", "curve");
    for theta in (0..=20usize).step_by(4) {
        let step = estimator.threshold_step(theta as f64);
        let from_curve = curve.value_at(step);
        println!("{theta:>10} {:>14.2} {from_curve:>14.2}", naive[theta]);
        assert_eq!(
            naive[theta].to_bits(),
            from_curve.to_bits(),
            "the curve is the scalar path, bit for bit"
        );
    }
    assert!(curve.is_non_decreasing(), "Lemmas 1–2, observable");

    println!(
        "\nnaive sweep:    {} extractions, {} encoder passes",
        naive_counts.extractions, naive_counts.encoder_passes
    );
    println!(
        "prepared sweep: {} extraction, {} encoder pass",
        prepared_counts.extractions, prepared_counts.encoder_passes
    );

    // Batch-first estimation: one kernel run for many (query, θ) pairs —
    // this is the interface the serving worker pool feeds micro-batches
    // through.
    let queries: Vec<_> = (0..8).map(|i| dataset.records[i * 100].clone()).collect();
    let prepared: Vec<_> = queries.iter().map(|q| estimator.prepare(q)).collect();
    let refs: Vec<_> = prepared.iter().collect();
    let thetas = vec![10.0; refs.len()];
    let batch = estimator.estimate_batch(&refs, &thetas);
    println!("\nbatched θ=10 estimates for {} queries:", batch.len());
    for (i, est) in batch.iter().enumerate() {
        println!(
            "  query {i}: {:.1} (source: {})",
            est.value,
            est.source.as_deref().unwrap_or("?")
        );
    }
}
