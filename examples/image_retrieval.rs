//! Image-retrieval SLA budgeting — the paper's first motivating scenario
//! (§1): images are hashed to binary codes; candidates within a Hamming
//! threshold go through costly image-level verification. Estimating the
//! candidate cardinality *before* running the selection lets a service
//! predict end-to-end latency and pick the largest threshold that still
//! meets its budget.

use cardest_core::estimator::CardinalityEstimator;
use cardest_core::model::CardNetConfig;
use cardest_core::train::{train_cardnet, TrainerOptions};
use cardest_core::CardNetEstimator;
use cardest_data::synth::{hm_imagenet, SynthConfig};
use cardest_data::Workload;
use cardest_fx::build_extractor;
use cardest_select::build_selector;
use std::time::Instant;

/// Pretend image-level verification cost per candidate.
const VERIFY_MS_PER_CANDIDATE: f64 = 0.4;
/// The service-level budget for the verification stage.
const BUDGET_MS: f64 = 120.0;

fn main() {
    let dataset = hm_imagenet(SynthConfig::new(3000, 99));
    let split = Workload::sample_from(&dataset, 0.10, 12, 5).split(6);

    let fx = build_extractor(&dataset, 20, 2);
    let config = CardNetConfig::new(fx.dim(), fx.tau_max() + 1).accelerated();
    let (trainer, _) = train_cardnet(
        fx.as_ref(),
        &split.train,
        &split.valid,
        config,
        TrainerOptions::quick(),
    );
    let estimator = CardNetEstimator::from_trainer(fx, trainer);
    let selector = build_selector(&dataset);

    println!(
        "per-candidate verification cost: {VERIFY_MS_PER_CANDIDATE} ms, budget: {BUDGET_MS} ms\n"
    );
    println!(
        "{:<8} {:>10} {:>12} {:>12} {:>14} {:>10}",
        "query", "θ chosen", "est. cands", "real cands", "est. cost(ms)", "in budget"
    );

    let mut met = 0usize;
    let queries: Vec<_> = split
        .test
        .queries
        .iter()
        .take(10)
        .map(|q| q.query.clone())
        .collect();
    for (qi, query) in queries.iter().enumerate() {
        // Walk θ upward while the *estimated* verification cost fits the
        // budget — monotonicity makes this walk well-defined: the estimate
        // can only grow with θ, so the first overshoot is final.
        let mut chosen = 0u32;
        let mut est_cands = 0.0;
        for theta in 0..=20u32 {
            let est = estimator.estimate(query, f64::from(theta));
            if est * VERIFY_MS_PER_CANDIDATE > BUDGET_MS {
                break;
            }
            chosen = theta;
            est_cands = est;
        }
        // Run the real selection at the chosen threshold and check the SLA.
        let t0 = Instant::now();
        let real = selector.count(query, f64::from(chosen));
        let _select_ms = t0.elapsed().as_secs_f64() * 1e3;
        let real_cost = real as f64 * VERIFY_MS_PER_CANDIDATE;
        let ok = real_cost <= BUDGET_MS * 1.25; // 25% estimation slack
        met += usize::from(ok);
        println!(
            "{qi:<8} {chosen:>10} {est_cands:>12.1} {real:>12} {:>14.1} {:>10}",
            real_cost,
            if ok { "yes" } else { "NO" }
        );
    }
    println!(
        "\nSLA met (within 25% slack) on {met}/{} queries",
        queries.len()
    );
}
