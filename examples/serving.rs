//! Serving: publish a trained estimator into the concurrent estimation
//! service, query it from several client threads, hot-swap a retrained model
//! mid-traffic, and read the service counters.
//!
//! ```text
//! cargo run --release -p cardest-integration --example serving
//! ```

use cardest_core::model::CardNetConfig;
use cardest_core::train::{train_cardnet, TrainerOptions};
use cardest_core::CardNetEstimator;
use cardest_data::synth::{hm_imagenet, SynthConfig};
use cardest_data::{Dataset, Workload};
use cardest_fx::build_extractor;
use cardest_serve::{ModelRegistry, ServeConfig, Service};
use std::sync::Arc;

fn train(dataset: &Dataset, epochs: usize) -> CardNetEstimator {
    let fx = build_extractor(dataset, 16, 1);
    let split = Workload::sample_from(dataset, 0.10, 10, 7).split(13);
    let cfg = CardNetConfig::new(fx.dim(), fx.tau_max() + 1);
    let opts = TrainerOptions {
        epochs,
        vae_epochs: 2,
        ..TrainerOptions::quick()
    };
    let (trainer, _) = train_cardnet(fx.as_ref(), &split.train, &split.valid, cfg, opts);
    CardNetEstimator::from_trainer(fx, trainer)
}

fn main() {
    // 1. Train and publish the first model generation.
    let dataset = Arc::new(hm_imagenet(SynthConfig::new(1200, 42)));
    let registry = Arc::new(ModelRegistry::new());
    let epoch = registry.publish("default", train(&dataset, 4));
    println!("published `default` at epoch {epoch}");

    // 2. Start the service: micro-batching workers + the monotone cache.
    let service = Service::start(Arc::clone(&registry), ServeConfig::default());

    // 3. Query it from four concurrent clients (each a pretend optimizer
    //    session estimating selection sizes before choosing a plan).
    std::thread::scope(|scope| {
        for c in 0..4u64 {
            let client = service.client();
            let dataset = Arc::clone(&dataset);
            scope.spawn(move || {
                for i in 0..200usize {
                    // Overlapping strides: different clients revisit the
                    // same (record, θ) pairs, as optimizer sessions do.
                    let idx = (c as usize * 50 + i * 13) % 300;
                    let theta = dataset.theta_max * ((i % 10) as f64 + 1.0) / 10.0;
                    let q = Arc::new(dataset.records[idx].clone());
                    let resp = client.estimate("default", q, theta).expect("served");
                    if i == 0 {
                        println!(
                            "client {c}: ĉ(record {idx}, θ={theta:.1}) = {:.1} (epoch {})",
                            resp.estimate, resp.epoch
                        );
                    }
                }
            });
        }
    });

    // 4. Hot-swap a better-trained generation; in-flight queries finish on
    //    the model they resolved, new queries see the replacement.
    let epoch = registry.publish("default", train(&dataset, 10));
    let q = Arc::new(dataset.records[0].clone());
    let resp = service
        .estimate("default", Arc::clone(&q), 8.0)
        .expect("served");
    println!(
        "after hot-swap: ĉ = {:.1} (epoch {})",
        resp.estimate, resp.epoch
    );
    assert_eq!(resp.epoch, epoch);

    // 5. What did the service do all along?
    let stats = service.stats();
    println!(
        "served {} requests: {:.1}% cache hits, {} micro-batches (mean size {:.1}), \
         p50 {:?}, p99 {:?}",
        stats.requests,
        stats.hit_rate() * 100.0,
        stats.batches,
        stats.mean_batch_size(),
        stats.latency_quantile(0.50),
        stats.latency_quantile(0.99),
    );
    service.shutdown();
}
