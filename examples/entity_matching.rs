//! Entity-matching blocking — the paper's second motivating scenario (§1):
//! hands-off entity-matching systems turn random-forest paths into blocking
//! rules, i.e. conjunctions of similarity predicates. Cardinality estimates
//! decide which predicate of a rule to evaluate first.
//!
//! This example works on the edit-distance domain: author names with typos.

use cardest_core::estimator::CardinalityEstimator;
use cardest_core::model::CardNetConfig;
use cardest_core::train::{train_cardnet, TrainerOptions};
use cardest_core::CardNetEstimator;
use cardest_data::synth::{ed_aminer, SynthConfig};
use cardest_data::{Record, Workload};
use cardest_fx::build_extractor;
use cardest_select::build_selector;

fn main() {
    let dataset = ed_aminer(SynthConfig::new(2000, 77));
    let split = Workload::sample_from(&dataset, 0.10, 8, 5).split(6);

    let fx = build_extractor(&dataset, 8, 2);
    let config = CardNetConfig::new(fx.dim(), fx.tau_max() + 1).accelerated();
    let (trainer, _) = train_cardnet(
        fx.as_ref(),
        &split.train,
        &split.valid,
        config,
        TrainerOptions::quick(),
    );
    let estimator = CardNetEstimator::from_trainer(fx, trainer);
    let selector = build_selector(&dataset);

    // A blocking rule: ed(name, q) ≤ 2 — find likely duplicates of a record.
    println!("blocking rule: edit_distance(name, query) ≤ 2\n");
    println!(
        "{:<28} {:>10} {:>8} {:>24}",
        "query name", "estimated", "actual", "sample matches"
    );
    for lq in split.test.queries.iter().take(8) {
        let name = lq.query.as_str().to_string();
        let est = estimator.estimate(&lq.query, 2.0);
        let matches = selector.select(&lq.query, 2.0);
        let sample: Vec<String> = matches
            .iter()
            .take(2)
            .map(|&id| dataset.records[id as usize].as_str().to_string())
            .collect();
        println!(
            "{:<28} {:>10.1} {:>8} {:>24}",
            truncate(&name, 27),
            est,
            matches.len(),
            truncate(&sample.join(", "), 23)
        );
    }

    // Block-size planning: skip queries whose estimated block is too large
    // (they would flood the pairwise matcher).
    let cap = 25.0;
    let skipped = split
        .test
        .queries
        .iter()
        .filter(|lq| estimator.estimate(&lq.query, 2.0) > cap)
        .count();
    println!(
        "\nwith a block-size cap of {cap}, {skipped}/{} queries would be deferred to manual review",
        split.test.len()
    );

    // Monotonicity in action: widening the rule never shrinks the estimate.
    let q = Record::Str("Anbel Zhou".into());
    print!("\nestimates for '{}' as the rule widens:", q.as_str());
    for theta in 0..=6 {
        print!(" θ={theta}:{:.1}", estimator.estimate(&q, f64::from(theta)));
    }
    println!();
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}…", &s[..n.saturating_sub(1)])
    }
}
