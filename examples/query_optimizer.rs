//! Conjunctive query planning with cardinality estimates (§9.11.1): a
//! three-attribute entity table, queries that AND one Euclidean predicate per
//! attribute, and a planner that index-scans the predicate CardNet-A deems
//! most selective.

use cardest_core::estimator::CardinalityEstimator;
use cardest_core::model::CardNetConfig;
use cardest_core::train::{train_cardnet, TrainerOptions};
use cardest_core::CardNetEstimator;
use cardest_data::synth::{entity_table, SynthConfig};
use cardest_data::Workload;
use cardest_fx::build_extractor;
use cardest_qopt::conjunctive::{ConjunctiveQuery, ConjunctiveTable, Planner};
use rand::{Rng, SeedableRng};

fn main() {
    let source = entity_table(SynthConfig::new(1500, 11), 3, 24);
    let table = ConjunctiveTable::build(&source, 0.8, 3);
    println!(
        "table: {} entities × {} attributes",
        table.n_entities(),
        table.n_attrs()
    );

    // One CardNet-A per attribute.
    let estimators: Vec<CardNetEstimator> = table
        .attrs
        .iter()
        .map(|ds| {
            let split = Workload::sample_from(ds, 0.10, 10, 5).split(6);
            let fx = build_extractor(ds, 16, 2);
            let config = CardNetConfig::new(fx.dim(), fx.tau_max() + 1).accelerated();
            let (trainer, _) = train_cardnet(
                fx.as_ref(),
                &split.train,
                &split.valid,
                config,
                TrainerOptions::quick(),
            );
            CardNetEstimator::from_trainer(fx, trainer)
        })
        .collect();
    let planner = Planner {
        estimators: estimators
            .iter()
            .map(|e| e as &dyn CardinalityEstimator)
            .collect(),
    };

    // Queries: existing entities with per-attribute thresholds in [0.2, 0.5].
    let mut rng = rand::rngs::StdRng::seed_from_u64(17);
    println!(
        "\n{:<6} {:>16} {:>12} {:>12} {:>10}",
        "query", "plan (attr)", "plan evals", "worst evals", "matches"
    );
    let mut total_chosen = 0usize;
    let mut total_worst = 0usize;
    for qi in 0..10 {
        let id = rng.gen_range(0..table.n_entities());
        let query = ConjunctiveQuery {
            preds: (0..table.n_attrs())
                .map(|a| {
                    (
                        table.attrs[a].records[id].as_vec().to_vec(),
                        rng.gen_range(0.2..0.5),
                    )
                })
                .collect(),
        };
        let lead = planner.choose(&query);
        let stats = table.execute(&query, lead);
        let worst = (0..table.n_attrs())
            .map(|a| table.execute(&query, a).total_evals())
            .max()
            .expect("attrs non-empty");
        total_chosen += stats.total_evals();
        total_worst += worst;
        println!(
            "{qi:<6} {:>16} {:>12} {:>12} {:>10}",
            format!("attr {lead}"),
            stats.total_evals(),
            worst,
            stats.matches
        );
    }
    println!(
        "\nplanned work = {total_chosen} distance evals vs {total_worst} for the worst plan \
         ({:.1}x saved)",
        total_worst as f64 / total_chosen.max(1) as f64
    );
}
