//! Vendored shim for the `serde_json` API subset this workspace uses:
//! [`to_string`], [`from_str`], and the [`Result`]/[`Error`] aliases.
//!
//! Floats are printed with Rust's shortest-round-trip formatting and parsed
//! with the standard library's correctly rounded parser, so every finite
//! `f32`/`f64` survives a round trip bit-exactly — the property the model
//! snapshot tests rely on.
//!
//! ```
//! let v: Vec<f64> = serde_json::from_str("[1.5, 2.25, -3.0]").unwrap();
//! assert_eq!(serde_json::to_string(&v).unwrap(), "[1.5,2.25,-3.0]");
//! ```

use serde::{Deserialize, Serialize, Value};

pub use serde::Error;

pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::from_value(&value)
}

// ------------------------------------------------------------------ printing

fn write_value(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            // `{}` on finite floats is shortest-round-trip; force a `.0`
            // suffix on integral values so the token re-parses as a float.
            let s = f.to_string();
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (key, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, key);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", byte as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    pairs.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(pairs));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<u64>("18446744073709551615").unwrap(), u64::MAX);
        assert_eq!(from_str::<i32>("-42").unwrap(), -42);
        assert_eq!(from_str::<String>(r#""a\nbA""#).unwrap(), "a\nbA");
    }

    #[test]
    fn float_round_trip_is_bit_exact() {
        let values: Vec<f32> = vec![0.1, -3.75, 1.0e-20, 16_777_217.0, f32::MIN_POSITIVE];
        let json = to_string(&values).unwrap();
        let back: Vec<f32> = from_str(&json).unwrap();
        for (a, b) in values.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} mangled to {b}");
        }
    }

    #[test]
    fn integral_float_keeps_float_token() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
    }

    #[test]
    fn nested_structures_parse() {
        let json = r#"{"a": [1, 2.5, null], "b": {"c": "x"}}"#;
        let v: serde::Value = {
            let mut p = Parser {
                bytes: json.as_bytes(),
                pos: 0,
            };
            p.parse_value().unwrap()
        };
        let obj = v.as_object().unwrap();
        assert_eq!(obj.len(), 2);
        assert_eq!(obj[0].0, "a");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<bool>("true false").is_err());
    }
}
