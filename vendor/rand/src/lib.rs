//! Vendored shim for the [`rand` 0.8](https://docs.rs/rand/0.8) API subset
//! this workspace uses: [`Rng`], [`SeedableRng`], [`rngs::StdRng`], and
//! [`seq::SliceRandom`].
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this minimal re-implementation. The generator behind [`rngs::StdRng`] is
//! xoshiro256++ seeded through SplitMix64 — fast, well distributed, and
//! deterministic from a single `u64` seed, which is all the reproduction
//! needs (every experiment is seeded; nothing here is security-sensitive).
//!
//! ```
//! use rand::{Rng, SeedableRng};
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let x: f32 = rng.gen();
//! assert!((0.0..1.0).contains(&x));
//! assert!(rng.gen_range(10..20) >= 10);
//! ```

/// Low-level source of randomness: 64 random bits per call.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// RNGs that can be constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Samples a value of type `T` from an `Rng` (the `Standard` distribution of
/// real `rand`, folded into one trait here).
pub trait StandardSample: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types `gen_range` can sample uniformly. The per-type arithmetic lives
/// here so that [`SampleRange`] can be one *generic* impl per range shape —
/// which is what lets integer literals in `gen_range(0..=3)` unify with the
/// use site's expected type, exactly like real rand.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample from `[low, high)` (`inclusive = false`) or
    /// `[low, high]` (`inclusive = true`).
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: $t,
                high: $t,
                inclusive: bool,
            ) -> $t {
                let span = (high as $wide).wrapping_sub(low as $wide) as u128
                    + u128::from(inclusive);
                assert!(span > 0, "gen_range: empty range");
                let off = (rng.next_u64() as u128) % span;
                (low as $wide).wrapping_add(off as $wide) as $t
            }
        }
    )*};
}
impl_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: $t,
                high: $t,
                _inclusive: bool,
            ) -> $t {
                let unit = <$t as StandardSample>::sample_standard(rng);
                low + (high - low) * unit
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Ranges that `Rng::gen_range` accepts for a value type `T`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "gen_range: empty range");
        T::sample_uniform(rng, start, end, true)
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`] (including `&mut R`, so generic `&mut impl Rng` call chains
/// work as they do with real `rand`).
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T: SampleUniform, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        <f64 as StandardSample>::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace-standard seedable RNG: xoshiro256++ under the `StdRng`
    /// name (real `rand` uses ChaCha12; any good 64-bit generator works for
    /// the reproduction's purposes).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            // SplitMix64 expansion, the canonical xoshiro seeding procedure.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice helpers: seeded Fisher–Yates shuffle and uniform choice.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    use super::RngCore;

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&w));
            let c = rng.gen_range(b'a'..=b'z');
            assert!(c.is_ascii_lowercase());
        }
    }

    #[test]
    fn uniform_f64_mean_is_half() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice untouched");
    }
}
