//! Vendored shim for the `serde` API subset this workspace uses.
//!
//! The build environment has no access to crates.io, so instead of real
//! serde's zero-copy serializer architecture, this shim routes everything
//! through one intermediate [`Value`] tree (the classical "to JSON value,
//! then print" design). That is entirely sufficient here: the only formats
//! the workspace touches are JSON strings (via the sibling `serde_json`
//! shim) for model snapshots and JSONL datasets.
//!
//! Supported surface:
//! * `#[derive(Serialize, Deserialize)]` on structs (named, newtype, unit)
//!   and enums (unit, newtype, and struct variants, externally tagged like
//!   real serde);
//! * the field attribute `#[serde(skip)]` with optional
//!   `default = "path::to::fn"`;
//! * impls for the primitives, `String`, `Option<T>`, `Vec<T>`, tuples up to
//!   arity 3, and fixed-size arrays.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree — the single intermediate representation every
/// `Serialize`/`Deserialize` impl goes through.
///
/// Integers keep their exact 64-bit value (separately from floats) so that
/// `usize`/`u64` fields round-trip without precision loss.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    UInt(u64),
    Int(i64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered object (a `Vec` keeps snapshots diff-stable).
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Human-readable kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization error (shared with `serde_json`).
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn custom(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Looks up a field in an object, with a precise error on absence.
/// (Used by the derive macro's generated code.)
pub fn get_field<'a>(obj: &'a [(String, Value)], name: &str) -> Result<&'a Value, Error> {
    obj.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{name}`")))
}

pub trait Serialize {
    fn to_value(&self) -> Value;
}

pub trait Deserialize: Sized {
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------- primitives

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<bool, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected bool, got {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<$t, Error> {
                let wide = match value {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u64,
                    other => {
                        return Err(Error::custom(format!(
                            "expected unsigned integer, got {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::custom(format!("integer {wide} overflows {}", stringify!($t))))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<$t, Error> {
                let wide: i64 = match value {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u)
                        .map_err(|_| Error::custom(format!("integer {u} overflows i64")))?,
                    other => {
                        return Err(Error::custom(format!(
                            "expected integer, got {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::custom(format!("integer {wide} overflows {}", stringify!($t))))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = f64::from(*self);
                // JSON has no NaN/infinity; mirror serde_json and emit null.
                if v.is_finite() { Value::Float(v) } else { Value::Null }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<$t, Error> {
                match value {
                    Value::Float(f) => Ok(*f as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(Error::custom(format!(
                        "expected number, got {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<String, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<char, Error> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::custom(format!(
                "expected single-char string, got {}",
                other.kind()
            ))),
        }
    }
}

// ----------------------------------------------------------------- containers

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Option<T>, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Vec<T>, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!(
                "expected array, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value
                    .as_array()
                    .ok_or_else(|| Error::custom(format!("expected array, got {}", value.kind())))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected array of {expected}, got {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_and_vec_round_trip() {
        let v: Vec<Option<u32>> = vec![Some(3), None, Some(7)];
        let val = v.to_value();
        let back = Vec::<Option<u32>>::from_value(&val).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn missing_field_error_names_the_field() {
        let obj = vec![("a".to_string(), Value::UInt(1))];
        let err = get_field(&obj, "b").unwrap_err();
        assert!(err.to_string().contains("`b`"));
    }

    #[test]
    fn floats_survive_nonfinite() {
        assert_eq!(f64::NAN.to_value(), Value::Null);
        assert!(f64::from_value(&Value::Null).unwrap().is_nan());
    }
}
