//! Vendored shim for the `criterion` API subset the workspace benches use:
//! [`Criterion`], benchmark groups, `Bencher::iter`, and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Instead of criterion's bootstrapped statistics it reports a plain
//! mean/min over an adaptively chosen iteration count — enough to compare
//! estimator latencies across PRs without any external dependencies. Passing
//! `--test` (as `cargo test --benches` does) runs every benchmark body
//! exactly once, keeping test runs fast.

use std::time::{Duration, Instant};

/// Target measuring time per benchmark; iteration count adapts to hit it.
const TARGET: Duration = Duration::from_millis(200);
const MAX_ITERS: u64 = 100_000;

pub struct Criterion {
    /// One-shot mode: run each body once, skip measurement (set by `--test`).
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            group: name.to_string(),
        }
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(self.test_mode, &id.to_string(), f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    group: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(
            self.criterion.test_mode,
            &format!("{}/{}", self.group, id),
            f,
        );
        self
    }

    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(test_mode: bool, label: &str, mut f: F) {
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    if test_mode {
        f(&mut bencher);
        println!("  {label}: ok (test mode)");
        return;
    }
    // Calibrate: grow the iteration count until one batch takes long enough
    // for the clock to resolve it meaningfully.
    let mut iters: u64 = 1;
    loop {
        bencher.iters = iters;
        bencher.elapsed = Duration::ZERO;
        f(&mut bencher);
        if bencher.elapsed >= TARGET || iters >= MAX_ITERS {
            break;
        }
        let grow = if bencher.elapsed.is_zero() {
            100
        } else {
            (TARGET.as_nanos() / bencher.elapsed.as_nanos().max(1) + 1) as u64
        };
        iters = (iters.saturating_mul(grow.clamp(2, 100))).min(MAX_ITERS);
    }
    let per_iter = bencher.elapsed.as_nanos() as f64 / bencher.iters as f64;
    println!(
        "  {label}: {} ({} iters)",
        format_ns(per_iter),
        bencher.iters
    );
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs/iter", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms/iter", ns / 1_000_000.0)
    } else {
        format!("{:.2} s/iter", ns / 1_000_000_000.0)
    }
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` runs of the routine; criterion's `iter` contract.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// `criterion_group!(name, bench_fn, ...)` — bundles bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// `criterion_main!(group, ...)` — the bench binary's entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_elapsed_time() {
        let mut b = Bencher {
            iters: 10,
            elapsed: Duration::ZERO,
        };
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert_eq!(count, 10);
    }

    #[test]
    fn format_ns_picks_sane_units() {
        assert!(format_ns(12.0).contains("ns"));
        assert!(format_ns(12_500.0).contains("µs"));
        assert!(format_ns(12_500_000.0).contains("ms"));
    }
}
