//! Vendored shim for `serde_derive`: `#[derive(Serialize, Deserialize)]`
//! implemented directly over `proc_macro::TokenStream`, with no `syn`/`quote`
//! (the build environment has no access to crates.io).
//!
//! Supported shapes — everything the cardest workspace derives on:
//! * structs with named fields, newtype structs, tuple structs, unit structs;
//! * enums with unit, newtype, tuple, and struct variants (externally tagged,
//!   matching real serde's default representation);
//! * the field attribute `#[serde(skip)]`, optionally with
//!   `default = "path::to::fn"`.
//!
//! Generics are intentionally unsupported (no derived type in the workspace
//! is generic); the macro panics with a clear message if it meets one.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ------------------------------------------------------------------- model

struct Field {
    name: String,
    skip: bool,
    /// `#[serde(default = "path")]` — called as `path()` when skipped.
    default: Option<String>,
}

enum Shape {
    Unit,
    /// Tuple struct / tuple variant with this many fields.
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Item {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// ------------------------------------------------------------------ parsing

type Tokens = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

/// Consumes attributes (`#[...]`), returning any `#[serde(...)]` flags found.
fn eat_attrs(toks: &mut Tokens) -> (bool, Option<String>) {
    let mut skip = false;
    let mut default = None;
    while matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        toks.next();
        let Some(TokenTree::Group(attr)) = toks.next() else {
            panic!("serde_derive: `#` not followed by an attribute group");
        };
        let mut inner = attr.stream().into_iter();
        let is_serde =
            matches!(inner.next(), Some(TokenTree::Ident(id)) if id.to_string() == "serde");
        if !is_serde {
            continue;
        }
        let Some(TokenTree::Group(args)) = inner.next() else {
            continue;
        };
        let mut args = args.stream().into_iter().peekable();
        while let Some(tok) = args.next() {
            let TokenTree::Ident(id) = tok else { continue };
            match id.to_string().as_str() {
                "skip" => skip = true,
                "default" => {
                    // `default = "path"`
                    match (args.next(), args.next()) {
                        (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit)))
                            if eq.as_char() == '=' =>
                        {
                            let raw = lit.to_string();
                            default = Some(raw.trim_matches('"').to_string());
                        }
                        _ => panic!("serde_derive: malformed `default` attribute"),
                    }
                }
                other => panic!("serde_derive: unsupported serde attribute `{other}`"),
            }
        }
    }
    (skip, default)
}

/// Consumes `pub`, `pub(crate)`, `pub(in ...)` if present.
fn eat_visibility(toks: &mut Tokens) {
    if matches!(toks.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        toks.next();
        if matches!(toks.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            toks.next();
        }
    }
}

/// Consumes one field type: everything up to a top-level `,` (tracking
/// `<...>` nesting so `Vec<(A, B)>`-style types don't split early).
fn eat_type(toks: &mut Tokens) {
    let mut angle_depth = 0i32;
    while let Some(tok) = toks.peek() {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return,
            _ => {}
        }
        toks.next();
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut toks = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let (skip, default) = eat_attrs(&mut toks);
        eat_visibility(&mut toks);
        let Some(TokenTree::Ident(name)) = toks.next() else {
            break;
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => panic!("serde_derive: expected `:` after field `{name}`"),
        }
        eat_type(&mut toks);
        toks.next(); // the `,`, if any
        fields.push(Field {
            name: name.to_string(),
            skip,
            default,
        });
    }
    fields
}

/// Counts top-level comma-separated types in a tuple struct/variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut toks = stream.into_iter().peekable();
    let mut count = 0;
    loop {
        eat_attrs(&mut toks);
        eat_visibility(&mut toks);
        if toks.peek().is_none() {
            break;
        }
        eat_type(&mut toks);
        toks.next();
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut toks = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        eat_attrs(&mut toks);
        let Some(TokenTree::Ident(name)) = toks.next() else {
            break;
        };
        let shape = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                toks.next();
                Shape::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                toks.next();
                Shape::Named(fields)
            }
            _ => Shape::Unit,
        };
        toks.next(); // the `,`, if any
        variants.push(Variant {
            name: name.to_string(),
            shape,
        });
    }
    variants
}

// Not a real loop: every arm returns or panics; the `loop` only exists to
// re-run the attribute/visibility eaters before the item keyword.
#[allow(clippy::never_loop)]
fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();
    loop {
        eat_attrs(&mut toks);
        eat_visibility(&mut toks);
        match toks.next() {
            Some(TokenTree::Ident(kw)) if kw.to_string() == "struct" => {
                let Some(TokenTree::Ident(name)) = toks.next() else {
                    panic!("serde_derive: expected struct name");
                };
                let shape = match toks.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                        panic!("serde_derive: generic type `{name}` is unsupported")
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        Shape::Named(parse_named_fields(g.stream()))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        Shape::Tuple(count_tuple_fields(g.stream()))
                    }
                    _ => Shape::Unit,
                };
                return Item::Struct {
                    name: name.to_string(),
                    shape,
                };
            }
            Some(TokenTree::Ident(kw)) if kw.to_string() == "enum" => {
                let Some(TokenTree::Ident(name)) = toks.next() else {
                    panic!("serde_derive: expected enum name");
                };
                match toks.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                        panic!("serde_derive: generic type `{name}` is unsupported")
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        return Item::Enum {
                            name: name.to_string(),
                            variants: parse_variants(g.stream()),
                        };
                    }
                    _ => panic!("serde_derive: expected enum body"),
                }
            }
            Some(other) => panic!("serde_derive: unexpected token `{other}`"),
            None => panic!("serde_derive: ran out of tokens before `struct`/`enum`"),
        }
    }
}

// ------------------------------------------------------------------ codegen

fn gen_serialize(item: &Item) -> String {
    let mut out = String::new();
    match item {
        Item::Struct { name, shape } => {
            out.push_str(&format!(
                "impl serde::Serialize for {name} {{\n    fn to_value(&self) -> serde::Value {{\n"
            ));
            match shape {
                Shape::Unit => out.push_str("        serde::Value::Null\n"),
                Shape::Tuple(1) => {
                    out.push_str("        serde::Serialize::to_value(&self.0)\n");
                }
                Shape::Tuple(n) => {
                    out.push_str("        serde::Value::Array(::std::vec![\n");
                    for i in 0..*n {
                        out.push_str(&format!(
                            "            serde::Serialize::to_value(&self.{i}),\n"
                        ));
                    }
                    out.push_str("        ])\n");
                }
                Shape::Named(fields) => {
                    out.push_str(
                        "        let mut __fields: ::std::vec::Vec<(::std::string::String, serde::Value)> = ::std::vec::Vec::new();\n",
                    );
                    for f in fields.iter().filter(|f| !f.skip) {
                        out.push_str(&format!(
                            "        __fields.push((::std::string::String::from(\"{0}\"), serde::Serialize::to_value(&self.{0})));\n",
                            f.name
                        ));
                    }
                    out.push_str("        serde::Value::Object(__fields)\n");
                }
            }
            out.push_str("    }\n}\n");
        }
        Item::Enum { name, variants } => {
            out.push_str(&format!(
                "impl serde::Serialize for {name} {{\n    fn to_value(&self) -> serde::Value {{\n        match self {{\n"
            ));
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    Shape::Unit => out.push_str(&format!(
                        "            {name}::{vname} => serde::Value::Str(::std::string::String::from(\"{vname}\")),\n"
                    )),
                    Shape::Tuple(1) => out.push_str(&format!(
                        "            {name}::{vname}(__f0) => serde::Value::Object(::std::vec![(::std::string::String::from(\"{vname}\"), serde::Serialize::to_value(__f0))]),\n"
                    )),
                    Shape::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binders
                            .iter()
                            .map(|b| format!("serde::Serialize::to_value({b})"))
                            .collect();
                        out.push_str(&format!(
                            "            {name}::{vname}({}) => serde::Value::Object(::std::vec![(::std::string::String::from(\"{vname}\"), serde::Value::Array(::std::vec![{}]))]),\n",
                            binders.join(", "),
                            items.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let binders: Vec<&str> =
                            fields.iter().map(|f| f.name.as_str()).collect();
                        let items: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{0}\"), serde::Serialize::to_value({0}))",
                                    f.name
                                )
                            })
                            .collect();
                        out.push_str(&format!(
                            "            {name}::{vname} {{ {} }} => serde::Value::Object(::std::vec![(::std::string::String::from(\"{vname}\"), serde::Value::Object(::std::vec![{}]))]),\n",
                            binders.join(", "),
                            items.join(", ")
                        ));
                    }
                }
            }
            out.push_str("        }\n    }\n}\n");
        }
    }
    out
}

/// The expression deserializing one named field from `__obj`.
fn field_expr(f: &Field, owner: &str) -> String {
    if f.skip {
        match &f.default {
            Some(path) => format!("{path}()"),
            None => "::core::default::Default::default()".to_string(),
        }
    } else {
        format!(
            "serde::Deserialize::from_value(serde::get_field(__obj, \"{0}\")?).map_err(|e| serde::Error::custom(::std::format!(\"{owner}.{0}: {{e}}\")))?",
            f.name
        )
    }
}

fn gen_deserialize(item: &Item) -> String {
    let mut out = String::new();
    match item {
        Item::Struct { name, shape } => {
            out.push_str(&format!(
                "impl serde::Deserialize for {name} {{\n    fn from_value(__v: &serde::Value) -> ::core::result::Result<Self, serde::Error> {{\n"
            ));
            match shape {
                Shape::Unit => out.push_str(&format!("        ::core::result::Result::Ok({name})\n")),
                Shape::Tuple(1) => out.push_str(&format!(
                    "        ::core::result::Result::Ok({name}(serde::Deserialize::from_value(__v)?))\n"
                )),
                Shape::Tuple(n) => {
                    out.push_str(&format!(
                        "        let __items = __v.as_array().ok_or_else(|| serde::Error::custom(\"expected array for {name}\"))?;\n"
                    ));
                    out.push_str(&format!(
                        "        if __items.len() != {n} {{ return ::core::result::Result::Err(serde::Error::custom(\"wrong tuple arity for {name}\")); }}\n"
                    ));
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("serde::Deserialize::from_value(&__items[{i}])?"))
                        .collect();
                    out.push_str(&format!(
                        "        ::core::result::Result::Ok({name}({}))\n",
                        items.join(", ")
                    ));
                }
                Shape::Named(fields) => {
                    out.push_str(&format!(
                        "        let __obj = __v.as_object().ok_or_else(|| serde::Error::custom(\"expected object for {name}\"))?;\n"
                    ));
                    out.push_str(&format!("        ::core::result::Result::Ok({name} {{\n"));
                    for f in fields {
                        out.push_str(&format!("            {}: {},\n", f.name, field_expr(f, name)));
                    }
                    out.push_str("        })\n");
                }
            }
            out.push_str("    }\n}\n");
        }
        Item::Enum { name, variants } => {
            out.push_str(&format!(
                "impl serde::Deserialize for {name} {{\n    fn from_value(__v: &serde::Value) -> ::core::result::Result<Self, serde::Error> {{\n        match __v {{\n"
            ));
            // Unit variants arrive as bare strings.
            out.push_str("            serde::Value::Str(__s) => match __s.as_str() {\n");
            for v in variants.iter().filter(|v| matches!(v.shape, Shape::Unit)) {
                out.push_str(&format!(
                    "                \"{0}\" => ::core::result::Result::Ok({name}::{0}),\n",
                    v.name
                ));
            }
            out.push_str(&format!(
                "                __other => ::core::result::Result::Err(serde::Error::custom(::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n            }},\n"
            ));
            // Data-carrying variants arrive as single-key objects.
            out.push_str(
                "            serde::Value::Object(__pairs) if __pairs.len() == 1 => {\n                let (__tag, __inner) = &__pairs[0];\n                match __tag.as_str() {\n",
            );
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    Shape::Unit => {}
                    Shape::Tuple(1) => out.push_str(&format!(
                        "                    \"{vname}\" => ::core::result::Result::Ok({name}::{vname}(serde::Deserialize::from_value(__inner)?)),\n"
                    )),
                    Shape::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("serde::Deserialize::from_value(&__items[{i}])?"))
                            .collect();
                        out.push_str(&format!(
                            "                    \"{vname}\" => {{\n                        let __items = __inner.as_array().ok_or_else(|| serde::Error::custom(\"expected array for {name}::{vname}\"))?;\n                        if __items.len() != {n} {{ return ::core::result::Result::Err(serde::Error::custom(\"wrong tuple arity for {name}::{vname}\")); }}\n                        ::core::result::Result::Ok({name}::{vname}({}))\n                    }}\n",
                            items.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{}: {}", f.name, field_expr(f, name)))
                            .collect();
                        out.push_str(&format!(
                            "                    \"{vname}\" => {{\n                        let __obj = __inner.as_object().ok_or_else(|| serde::Error::custom(\"expected object for {name}::{vname}\"))?;\n                        ::core::result::Result::Ok({name}::{vname} {{ {} }})\n                    }}\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            out.push_str(&format!(
                "                    __other => ::core::result::Result::Err(serde::Error::custom(::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n                }}\n            }}\n"
            ));
            out.push_str(&format!(
                "            __other => ::core::result::Result::Err(serde::Error::custom(::std::format!(\"expected string or single-key object for {name}, got {{}}\", __other.kind()))),\n        }}\n    }}\n}}\n"
            ));
        }
    }
    out
}

// ------------------------------------------------------------- entry points

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Deserialize impl")
}
