//! Vendored shim for the tiny `bytes::Bytes` surface the workspace uses
//! (cheaply clonable, immutable byte buffers for snapshot transport).
//!
//! Real `bytes` does zero-copy slicing over a refcounted allocation; an
//! `Arc<[u8]>` gives the same clone-without-copy behavior for the subset of
//! operations used here.
//!
//! ```
//! let b = bytes::Bytes::from(vec![1u8, 2, 3]);
//! assert_eq!(b.len(), 3);
//! assert_eq!(&b[..], &[1, 2, 3]);
//! ```

use std::sync::Arc;

/// An immutable, cheaply clonable byte buffer.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    pub fn new() -> Bytes {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Copies the contents into an owned `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes {
            data: Arc::from(data),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Bytes {
        Bytes {
            data: Arc::from(data),
        }
    }
}

impl From<String> for Bytes {
    fn from(data: String) -> Bytes {
        Bytes::from(data.into_bytes())
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn clone_shares_the_allocation() {
        let a = Bytes::from(vec![0u8; 1024]);
        let b = a.clone();
        assert_eq!(a.as_slice().as_ptr(), b.as_slice().as_ptr());
        assert_eq!(b.len(), 1024);
    }
}
