//! Vendored shim for the `proptest` API subset the workspace tests use.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements the pieces the test suites rely on:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(...)]` and both
//!   `name in strategy` and `name: Type` parameter forms);
//! * [`Strategy`](strategy::Strategy) impls for integer/float ranges,
//!   regex-lite string patterns (`"[a-f]{1,12}"`), and
//!   [`collection::vec`];
//! * [`arbitrary::any`] for `bool`, integers, and
//!   [`sample::Index`];
//! * `prop_assert!` / `prop_assert_eq!`.
//!
//! What it deliberately does **not** do: input shrinking and failure-case
//! persistence. Every generated case is a pure function of the case number,
//! so a failing test replays identically on the next run — shrinking is a
//! convenience, not a prerequisite for reproduction.

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Subset of real proptest's config: the number of generated cases.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            // Real proptest defaults to 256; the suites here train models
            // inside properties, so the shim defaults lower. Tests that need
            // more (or fewer) cases say so via `proptest_config`.
            ProptestConfig { cases: 16 }
        }
    }

    /// Deterministic per-case RNG: case `i` always replays identically.
    pub fn rng_for_case(case: u32) -> StdRng {
        StdRng::seed_from_u64(
            0xC0FF_EE00_u64 ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        )
    }
}

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Generates one value per test case. (Real proptest builds a shrinkable
    /// value tree here; the shim generates final values directly.)
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    /// One `[charset]{lo,hi}` element of a regex-lite pattern.
    struct PatternPart {
        charset: Vec<char>,
        lo: usize,
        hi: usize,
    }

    /// `&str` patterns act as string strategies, supporting the regex subset
    /// the workspace tests use: literal characters, `[a-z0-9_]`-style classes
    /// (with ranges), and `{n}` / `{lo,hi}` repetition counts.
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut StdRng) -> String {
            let parts = parse_pattern(self);
            let mut out = String::new();
            for part in &parts {
                let count = rng.gen_range(part.lo..=part.hi);
                for _ in 0..count {
                    out.push(part.charset[rng.gen_range(0..part.charset.len())]);
                }
            }
            out
        }
    }

    fn parse_pattern(pattern: &str) -> Vec<PatternPart> {
        let mut chars = pattern.chars().peekable();
        let mut parts = Vec::new();
        while let Some(c) = chars.next() {
            let charset: Vec<char> = match c {
                '[' => {
                    let mut set = Vec::new();
                    loop {
                        match chars.next() {
                            Some(']') => break,
                            Some(lo) => {
                                if chars.peek() == Some(&'-') {
                                    chars.next();
                                    let hi = chars
                                        .next()
                                        .unwrap_or_else(|| panic!("bad range in `{pattern}`"));
                                    set.extend(lo..=hi);
                                } else {
                                    set.push(lo);
                                }
                            }
                            None => panic!("unterminated class in `{pattern}`"),
                        }
                    }
                    set
                }
                '\\' => vec![chars
                    .next()
                    .unwrap_or_else(|| panic!("bad escape in `{pattern}`"))],
                literal => vec![literal],
            };
            // Optional repetition: `{n}` or `{lo,hi}`.
            let (lo, hi) = if chars.peek() == Some(&'{') {
                chars.next();
                let spec: String = chars.by_ref().take_while(|&c| c != '}').collect();
                match spec.split_once(',') {
                    Some((a, b)) => (
                        a.trim()
                            .parse()
                            .unwrap_or_else(|_| panic!("bad repeat in `{pattern}`")),
                        b.trim()
                            .parse()
                            .unwrap_or_else(|_| panic!("bad repeat in `{pattern}`")),
                    ),
                    None => {
                        let n = spec
                            .trim()
                            .parse()
                            .unwrap_or_else(|_| panic!("bad repeat in `{pattern}`"));
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            parts.push(PatternPart { charset, lo, hi });
        }
        parts
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.gen()
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    rng.gen()
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for super::sample::Index {
        fn arbitrary(rng: &mut StdRng) -> super::sample::Index {
            super::sample::Index::new(rng.gen::<f64>())
        }
    }

    pub struct AnyStrategy<T> {
        _marker: core::marker::PhantomData<T>,
    }

    /// `any::<T>()` — the strategy of all values of `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy {
            _marker: core::marker::PhantomData,
        }
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// `prop::collection::vec(element, size_range)`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// `prop::collection::btree_set(element, size_range)`. Like real
    /// proptest, `size` bounds the number of *generation attempts*, so the
    /// set can come out smaller when elements collide.
    pub fn btree_set<S: Strategy>(element: S, size: core::ops::Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> std::collections::BTreeSet<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    /// A length-agnostic index: generated once, projected onto any slice
    /// length via [`Index::index`].
    #[derive(Clone, Copy, Debug)]
    pub struct Index(f64);

    impl Index {
        pub(crate) fn new(unit: f64) -> Index {
            Index(unit)
        }

        /// Maps the index onto `0..len`. Panics on `len == 0`, like real
        /// proptest.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            ((self.0 * len as f64) as usize).min(len - 1)
        }
    }
}

/// Namespace mirror of real proptest's `prelude::prop` re-export tree.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// The shim's `proptest!` macro: expands each contained function into a
/// `#[test]` that replays `cases` deterministic generated inputs.
///
/// Both real-proptest parameter forms work: `name in strategy-expr` and the
/// `name: Type` sugar for `any::<Type>()`.
#[macro_export]
macro_rules! proptest {
    // Entry: leading `#![proptest_config(expr)]`.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@fns ($cfg) $($rest)*);
    };
    // One function; recurse on the remainder.
    (@fns ($cfg:expr) $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::rng_for_case(__case);
                $crate::proptest!(@bind __rng, $($params)*);
                $body
            }
        }
        $crate::proptest!(@fns ($cfg) $($rest)*);
    };
    (@fns ($cfg:expr)) => {};
    // Parameter munchers: `name in strategy` ...
    (@bind $rng:ident, $var:ident in $strat:expr, $($rest:tt)*) => {
        let $var = $crate::strategy::Strategy::generate(&$strat, &mut $rng);
        $crate::proptest!(@bind $rng, $($rest)*);
    };
    (@bind $rng:ident, $var:ident in $strat:expr) => {
        let $var = $crate::strategy::Strategy::generate(&$strat, &mut $rng);
    };
    // ... and the `name: Type` sugar.
    (@bind $rng:ident, $var:ident: $ty:ty, $($rest:tt)*) => {
        let $var: $ty = $crate::arbitrary::Arbitrary::arbitrary(&mut $rng);
        $crate::proptest!(@bind $rng, $($rest)*);
    };
    (@bind $rng:ident, $var:ident: $ty:ty) => {
        let $var: $ty = $crate::arbitrary::Arbitrary::arbitrary(&mut $rng);
    };
    (@bind $rng:ident,) => {};
    (@bind $rng:ident) => {};
    // Entry: no config attribute.
    ($($rest:tt)*) => {
        $crate::proptest!(@fns ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_and_sugar_bind(x in 3u64..10, f in -1.0f64..1.0, flag: bool) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
            let _ = flag;
        }

        #[test]
        fn string_patterns_match_shape(s in "[a-c]{2,5}") {
            prop_assert!((2..=5).contains(&s.len()));
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn vec_and_index_compose(v in prop::collection::vec(any::<bool>(), 1..20),
                                 ix in prop::collection::vec(any::<prop::sample::Index>(), 0..4)) {
            for i in &ix {
                prop_assert!(i.index(v.len()) < v.len());
            }
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a = crate::strategy::Strategy::generate(
            &(0u64..1000),
            &mut crate::test_runner::rng_for_case(3),
        );
        let b = crate::strategy::Strategy::generate(
            &(0u64..1000),
            &mut crate::test_runner::rng_for_case(3),
        );
        assert_eq!(a, b);
    }
}
