//! Cross-crate exactness: every selection index agrees with the brute-force
//! scan on every domain, and workload labels equal oracle counts.

use cardest_data::synth::default_suite;
use cardest_data::Workload;
use cardest_select::{build_selector, ScanSelector};
use proptest::prelude::*;

#[test]
fn indexes_agree_with_scan_across_the_suite() {
    for ds in default_suite(250, 4_242) {
        let sel = build_selector(&ds);
        let scan = ScanSelector::new(&ds);
        for qi in [0usize, 97, 201] {
            let q = ds.records[qi % ds.len()].clone();
            for frac in [0.0, 0.3, 0.7, 1.0] {
                let theta = ds.theta_max * frac;
                assert_eq!(
                    sel.select(&q, theta),
                    scan.select(&q, theta),
                    "{} query {qi} θ={theta}",
                    ds.name
                );
            }
        }
    }
}

#[test]
fn workload_labels_match_oracle_counts() {
    for ds in default_suite(200, 5_151) {
        let wl = Workload::sample_from(&ds, 0.1, 6, 9);
        let sel = build_selector(&ds);
        for lq in wl.queries.iter().take(5) {
            for (&theta, &c) in wl.thresholds.iter().zip(&lq.cards) {
                assert_eq!(
                    c as usize,
                    sel.count(&lq.query, theta),
                    "{} label mismatch at θ={theta}",
                    ds.name
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn labels_are_cumulative_curves(seed in 0u64..500) {
        let ds = cardest_data::synth::jc_bms(cardest_data::synth::SynthConfig::new(150, seed));
        let wl = Workload::sample_from(&ds, 0.2, 8, seed);
        for lq in &wl.queries {
            // Monotone and bounded by the dataset size.
            prop_assert!(lq.cards.windows(2).all(|w| w[0] <= w[1]));
            prop_assert!(*lq.cards.last().expect("non-empty") as usize <= ds.len());
            // The query is sampled from the dataset, so it matches itself.
            prop_assert!(lq.cards[0] >= 1);
        }
    }
}
