//! Cross-crate persistence flow: dataset JSONL round-trip + model snapshot
//! round-trip must preserve estimates exactly — the CLI's train/estimate
//! contract.

use cardest_core::estimator::{CardNetEstimator, CardinalityEstimator};
use cardest_core::model::CardNetConfig;
use cardest_core::snapshot::Snapshot;
use cardest_core::train::{train_cardnet, TrainerOptions};
use cardest_data::io::{load_jsonl, save_jsonl};
use cardest_data::synth::{hm_imagenet, SynthConfig};
use cardest_data::Workload;
use cardest_fx::build_extractor;

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("cardest_persistence_tests");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir.join(name)
}

#[test]
fn dataset_and_model_roundtrip_preserves_estimates() {
    let ds = hm_imagenet(SynthConfig::new(300, 91));

    // Dataset through disk.
    let ds_path = tmp("flow_ds.jsonl");
    save_jsonl(&ds, &ds_path).expect("save dataset");
    let ds2 = load_jsonl(&ds_path).expect("load dataset");
    assert_eq!(ds.records, ds2.records);

    // Train on the loaded copy.
    let split = Workload::sample_from(&ds2, 0.2, 8, 3).split(4);
    let fx = build_extractor(&ds2, 10, 1);
    let mut cfg = CardNetConfig::new(fx.dim(), fx.tau_max() + 1).accelerated();
    cfg.phi_hidden = vec![24, 16];
    cfg.z_dim = 12;
    cfg.vae_hidden = vec![24];
    cfg.vae_latent = 6;
    let opts = TrainerOptions {
        epochs: 6,
        vae_epochs: 2,
        ..TrainerOptions::quick()
    };
    let (trainer, _) = train_cardnet(fx.as_ref(), &split.train, &split.valid, cfg, opts);

    // Model through disk.
    let model_path = tmp("flow_model.json");
    Snapshot::from_trainer(&trainer, fx.name(), fx.tau_max())
        .save(&model_path)
        .expect("save model");
    let snap = Snapshot::load(&model_path).expect("load model");
    assert_eq!(snap.extractor, fx.name());
    assert_eq!(snap.tau_max, fx.tau_max());

    // The restored estimator must agree bit-for-bit with the live one.
    let fx2 = build_extractor(&ds2, 10, 1);
    let live = CardNetEstimator::from_trainer(fx, trainer);
    let restored = snap.into_estimator(fx2).expect("validated snapshot");
    for qi in [0usize, 50, 150] {
        let q = &ds2.records[qi];
        for theta in [0.0, 5.0, 10.0, 20.0] {
            let a = live.estimate(q, theta);
            let b = restored.estimate(q, theta);
            assert!((a - b).abs() < 1e-9, "query {qi} θ={theta}: {a} vs {b}");
        }
    }

    std::fs::remove_file(&ds_path).ok();
    std::fs::remove_file(&model_path).ok();
}
