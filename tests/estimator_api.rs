//! Property tests for the v2 Estimator API (prepare → curve → estimate).
//!
//! Across Hamming / Jaccard / edit extractors and the estimator families,
//! these pin down the API's contracts:
//!
//! * `curve(q, θ).last()` equals `estimate(q, θ)` **bit for bit** — sweeping
//!   through a prepared query is the scalar path, just cheaper;
//! * every estimator advertising `is_monotonic()` returns a non-decreasing
//!   curve;
//! * curve-indexed estimators (`threshold_step > 0`) honor the indexing
//!   contract `curve(q, θ).value_at(threshold_step(θ')) == estimate(q, θ')`
//!   for θ' ≤ θ — the property the GPH allocator's single-curve DP relies
//!   on.

use cardest_baselines::{build_db_se, DbUs, MeanEstimator, TlKde};
use cardest_core::estimator::{CardNetEstimator, CardinalityEstimator};
use cardest_core::model::CardNetConfig;
use cardest_core::train::{train_cardnet, TrainerOptions};
use cardest_data::synth::{ed_aminer, hm_imagenet, jc_bms, SynthConfig};
use cardest_data::{Dataset, Workload};
use cardest_fx::build_extractor;
use proptest::prelude::*;
use std::sync::OnceLock;

struct Fixture {
    ds: Dataset,
    estimators: Vec<Box<dyn CardinalityEstimator>>,
}

/// One fixture per extractor domain (Hamming / Jaccard / edit), each with a
/// quickly trained CardNet plus the cheap-to-build baselines. Built once —
/// proptest cases only sample queries and thresholds.
fn fixtures() -> &'static Vec<Fixture> {
    static FIX: OnceLock<Vec<Fixture>> = OnceLock::new();
    FIX.get_or_init(|| {
        let datasets = vec![
            hm_imagenet(SynthConfig::new(160, 404)),
            jc_bms(SynthConfig::new(160, 405)),
            ed_aminer(SynthConfig::new(160, 406)),
        ];
        datasets
            .into_iter()
            .map(|ds| {
                let fx = build_extractor(&ds, 10, 1);
                let split = Workload::sample_from(&ds, 0.25, 6, 2).split(3);
                let mut cfg = CardNetConfig::new(fx.dim(), fx.tau_max() + 1);
                cfg.phi_hidden = vec![16];
                cfg.z_dim = 8;
                cfg = cfg.without_vae();
                let opts = TrainerOptions {
                    epochs: 2,
                    vae_epochs: 0,
                    ..TrainerOptions::quick()
                };
                let (trainer, _) =
                    train_cardnet(fx.as_ref(), &split.train, &split.valid, cfg, opts);
                let estimators: Vec<Box<dyn CardinalityEstimator>> = vec![
                    Box::new(CardNetEstimator::from_trainer(fx, trainer)),
                    Box::new(DbUs::build(&ds, 0.3, 7)),
                    build_db_se(&ds, 8),
                    Box::new(TlKde::build(&ds, 0.2, 9)),
                    Box::new(MeanEstimator::build(&split.train, ds.theta_max, 16)),
                ];
                Fixture { ds, estimators }
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn curves_are_monotone_and_bit_identical_to_estimates(
        kind in 0usize..3,
        qi in 0usize..160,
        frac in 0.0f64..=1.0,
        frac2 in 0.0f64..=1.0,
    ) {
        let fixture = &fixtures()[kind];
        let ds = &fixture.ds;
        let q = &ds.records[qi % ds.len()];
        let theta = ds.theta_max * frac;
        for est in &fixture.estimators {
            let prepared = est.prepare(q);
            let curve = est.curve(&prepared, theta);
            let scalar = est.estimate(q, theta);
            prop_assert_eq!(
                curve.last().to_bits(),
                scalar.to_bits(),
                "{} on {}: curve end {} != estimate {} at θ={}",
                est.name(), ds.name, curve.last(), scalar, theta
            );
            prop_assert_eq!(
                est.estimate_prepared(&prepared, theta).to_bits(),
                scalar.to_bits(),
                "{} on {}: estimate_prepared diverged at θ={}",
                est.name(), ds.name, theta
            );
            if est.is_monotonic() {
                prop_assert!(
                    curve.is_non_decreasing(),
                    "{} on {}: monotone estimator produced a dipping curve at θ={}: {:?}",
                    est.name(), ds.name, theta, curve.values()
                );
            }
            let steps = est.threshold_step(theta);
            if steps > 0 {
                prop_assert_eq!(
                    curve.len(), steps + 1,
                    "{} on {}: curve has {} points for step {}",
                    est.name(), ds.name, curve.len(), steps
                );
                // Indexing contract at an arbitrary smaller threshold.
                let theta2 = theta * frac2;
                prop_assert_eq!(
                    curve.value_at(est.threshold_step(theta2)).to_bits(),
                    est.estimate(q, theta2).to_bits(),
                    "{} on {}: curve index at θ'={} (θ={}) diverged",
                    est.name(), ds.name, theta2, theta
                );
            }
        }
    }
}

#[test]
fn estimate_batch_matches_scalars_for_every_estimator() {
    for fixture in fixtures() {
        let ds = &fixture.ds;
        let queries: Vec<_> = (0..6).map(|i| ds.records[i * 25].clone()).collect();
        let thetas: Vec<f64> = (0..6).map(|i| ds.theta_max * f64::from(i) / 5.0).collect();
        for est in &fixture.estimators {
            let prepared: Vec<_> = queries.iter().map(|q| est.prepare(q)).collect();
            let refs: Vec<_> = prepared.iter().collect();
            let batch = est.estimate_batch(&refs, &thetas);
            assert_eq!(batch.len(), queries.len());
            for ((q, &theta), got) in queries.iter().zip(&thetas).zip(&batch) {
                let want = est.estimate(q, theta);
                assert_eq!(
                    got.value.to_bits(),
                    want.to_bits(),
                    "{} on {} θ={theta}",
                    est.name(),
                    ds.name
                );
                assert!(got.lo <= got.value && got.value <= got.hi);
            }
        }
    }
}
