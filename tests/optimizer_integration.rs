//! Cross-crate optimizer integration: plans stay correct regardless of the
//! estimator quality, and better estimates never make GPH incomplete.

use cardest_core::CardinalityEstimator;
use cardest_data::synth::{entity_table, hm_imagenet, SynthConfig};
use cardest_data::{BitVec, Record, Workload};
use cardest_qopt::conjunctive::{ConjunctiveQuery, ConjunctiveTable, Planner};
use cardest_qopt::gph::{allocate_thresholds, EstimatorPartCost, ExactPartCost, GphProcessor};
use cardest_select::ScanSelector;
use rand::{Rng, SeedableRng};

#[test]
fn conjunctive_plans_agree_on_matches_for_any_estimator() {
    // An intentionally terrible estimator must still yield correct results —
    // only performance may differ.
    struct Awful;
    impl CardinalityEstimator for Awful {
        fn estimate(&self, _: &Record, theta: f64) -> f64 {
            1e6 - theta // anti-correlated with selectivity
        }
        fn name(&self) -> String {
            "Awful".into()
        }
        fn size_bytes(&self) -> usize {
            0
        }
    }

    let src = entity_table(SynthConfig::new(300, 3), 3, 12);
    let table = ConjunctiveTable::build(&src, 0.8, 1);
    let awful = [Awful, Awful, Awful];
    let planner = Planner {
        estimators: awful
            .iter()
            .map(|a| a as &dyn CardinalityEstimator)
            .collect(),
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    for _ in 0..10 {
        let id = rng.gen_range(0..table.n_entities());
        let q = ConjunctiveQuery {
            preds: (0..3)
                .map(|a| {
                    (
                        table.attrs[a].records[id].as_vec().to_vec(),
                        rng.gen_range(0.2..0.5),
                    )
                })
                .collect(),
        };
        let lead = planner.choose(&q);
        assert_eq!(table.execute(&q, lead).matches, table.exact_matches(&q));
    }
}

#[test]
fn gph_is_complete_under_learned_cost_models() {
    let ds = hm_imagenet(SynthConfig::new(400, 9));
    let proc = GphProcessor::build(&ds, 2);
    let scan = ScanSelector::new(&ds);

    // Cost model backed by the mean estimator per part (deliberately coarse).
    let parts = proc.part_datasets(&ds);
    let per_part: Vec<Box<dyn CardinalityEstimator>> = parts
        .iter()
        .map(|pds| -> Box<dyn CardinalityEstimator> {
            let wl = Workload::sample_from(pds, 0.05, 6, 3);
            Box::new(cardest_baselines::MeanEstimator::build(
                &wl,
                pds.theta_max,
                16,
            ))
        })
        .collect();
    let coarse = EstimatorPartCost {
        per_part,
        label: "Mean".into(),
    };
    let exact = ExactPartCost { index: &proc.index };

    for qi in [0usize, 123, 321] {
        let q = &ds.records[qi];
        for theta in [4u32, 10, 16] {
            let truth = scan.select(q, f64::from(theta));
            assert_eq!(proc.process(&ds, q, theta, &coarse).results, truth);
            assert_eq!(proc.process(&ds, q, theta, &exact).results, truth);
        }
    }
}

#[test]
fn gph_allocations_always_satisfy_the_pigeonhole_budget() {
    let ds = hm_imagenet(SynthConfig::new(200, 10));
    let proc = GphProcessor::build(&ds, 4);
    let exact = ExactPartCost { index: &proc.index };
    for qi in 0..8 {
        let parts = proc.query_parts(&ds.records[qi]);
        for theta in 0..=20u32 {
            let alloc = allocate_thresholds(&exact, &parts, theta);
            let total: u32 = alloc.iter().sum();
            let budget = (theta + 1).saturating_sub(parts.len() as u32);
            assert_eq!(total, budget, "query {qi} θ={theta}");
        }
    }
}

#[test]
fn gph_exact_cost_never_expands_more_candidates_than_even_split() {
    let ds = hm_imagenet(SynthConfig::new(300, 11));
    let proc = GphProcessor::build(&ds, 2);
    let exact = ExactPartCost { index: &proc.index };
    let mut dp_total = 0usize;
    let mut even_total = 0usize;
    for qi in (0..300).step_by(37) {
        let q = &ds.records[qi];
        let parts = proc.query_parts(q);
        let theta = 12u32;
        let dp = allocate_thresholds(&exact, &parts, theta);
        let even = proc.index.even_allocation(theta);
        for (p, qp) in parts.iter().enumerate() {
            let key = qp.extract_word(0, qp.len());
            dp_total += proc.index.part_candidates(p, key, dp[p]);
            even_total += proc.index.part_candidates(p, key, even[p]);
        }
    }
    assert!(
        dp_total <= even_total,
        "DP allocation did more work: {dp_total} > {even_total}"
    );
    // Sanity: the helper used above really splits the query.
    let parts = proc.query_parts(&ds.records[0]);
    assert_eq!(parts.iter().map(BitVec::len).sum::<usize>(), 64);
}
