//! End-to-end integration: train CardNet and CardNet-A on each of the four
//! distance domains and verify the trained estimator beats the naive mean
//! predictor on held-out queries.

use cardest_baselines::MeanEstimator;
use cardest_core::estimator::{CardNetEstimator, CardinalityEstimator};
use cardest_core::model::CardNetConfig;
use cardest_core::train::{train_cardnet, TrainerOptions};
use cardest_data::metrics;
use cardest_data::synth::default_four;
use cardest_data::Workload;
use cardest_fx::build_extractor;

fn small_config(fx_dim: usize, n_out: usize, accelerated: bool) -> CardNetConfig {
    let mut cfg = CardNetConfig::new(fx_dim, n_out);
    cfg.phi_hidden = vec![48, 32];
    cfg.z_dim = 20;
    cfg.vae_hidden = vec![48];
    cfg.vae_latent = 12;
    if accelerated {
        cfg.encoder = cardest_core::model::EncoderKind::Accelerated;
    }
    cfg
}

fn quick_options() -> TrainerOptions {
    TrainerOptions {
        epochs: 30,
        vae_epochs: 8,
        ..TrainerOptions::quick()
    }
}

fn eval_msle(est: &dyn CardinalityEstimator, test: &Workload) -> f64 {
    let mut actual = Vec::new();
    let mut pred = Vec::new();
    for lq in &test.queries {
        for (&theta, &c) in test.thresholds.iter().zip(&lq.cards) {
            actual.push(f64::from(c));
            pred.push(est.estimate(&lq.query, theta).max(0.0));
        }
    }
    metrics::msle(&actual, &pred)
}

#[test]
fn cardnet_beats_mean_on_all_four_domains() {
    // On tiny corpora some domains have almost no per-query variance (the
    // mean predictor is near-perfect there), so the robust claim is: never
    // substantially worse than the mean anywhere, strictly better on most
    // domains.
    let mut strict_wins = 0usize;
    let mut domains = 0usize;
    for ds in default_four(1000, 2024) {
        let wl = Workload::sample_from(&ds, 0.2, 10, 5);
        let split = wl.split(6);
        let fx = build_extractor(&ds, 12, 3);
        let cfg = small_config(fx.dim(), fx.tau_max() + 1, false);
        let (trainer, _) = train_cardnet(
            fx.as_ref(),
            &split.train,
            &split.valid,
            cfg,
            quick_options(),
        );
        let est = CardNetEstimator::from_trainer(fx, trainer);
        let mean = MeanEstimator::build(&split.train, ds.theta_max, 32);

        let card_msle = eval_msle(&est, &split.test);
        let mean_msle = eval_msle(&mean, &split.test);
        // Multiplicative bound plus absolute slack: on domains where the
        // mean predictor is already near-perfect (MSLE ≈ 0.05), a ratio test
        // would fail on differences that amount to a few percent of
        // multiplicative error.
        assert!(
            card_msle < mean_msle * 1.25 + 0.1,
            "{}: CardNet MSLE {card_msle:.3} much worse than Mean {mean_msle:.3}",
            ds.name
        );
        strict_wins += usize::from(card_msle < mean_msle);
        domains += 1;
    }
    assert!(
        strict_wins * 2 >= domains,
        "CardNet beat the mean on only {strict_wins}/{domains} domains"
    );
}

#[test]
fn accelerated_variant_matches_domains_too() {
    // CardNet-A on two representative domains (HM + JC). Same robustness
    // shape as `cardnet_beats_mean_on_all_four_domains`: on tiny corpora a
    // domain can have so little per-query variance that the mean predictor
    // is near-perfect, so the claim is "never substantially worse than the
    // mean, strictly better somewhere".
    let mut strict_wins = 0usize;
    for ds in [
        cardest_data::synth::hm_imagenet(cardest_data::synth::SynthConfig::new(600, 31)),
        cardest_data::synth::jc_bms(cardest_data::synth::SynthConfig::new(600, 32)),
    ] {
        let wl = Workload::sample_from(&ds, 0.2, 10, 5);
        let split = wl.split(6);
        let fx = build_extractor(&ds, 12, 3);
        let cfg = small_config(fx.dim(), fx.tau_max() + 1, true);
        let (trainer, report) = train_cardnet(
            fx.as_ref(),
            &split.train,
            &split.valid,
            cfg,
            quick_options(),
        );
        assert!(report.best_val_msle.is_finite());
        let est = CardNetEstimator::from_trainer(fx, trainer);
        let mean = MeanEstimator::build(&split.train, ds.theta_max, 32);
        let card_msle = eval_msle(&est, &split.test);
        let mean_msle = eval_msle(&mean, &split.test);
        assert!(
            card_msle < mean_msle * 1.25 + 0.1,
            "{}: CardNet-A MSLE {card_msle:.4} much worse than Mean {mean_msle:.4}",
            ds.name
        );
        strict_wins += usize::from(card_msle < mean_msle);
    }
    assert!(
        strict_wins >= 1,
        "CardNet-A beat the mean predictor on neither domain"
    );
}

#[test]
fn estimators_report_consistent_metadata() {
    let ds = cardest_data::synth::hm_imagenet(cardest_data::synth::SynthConfig::new(300, 33));
    let wl = Workload::sample_from(&ds, 0.3, 6, 5);
    let split = wl.split(6);
    let fx = build_extractor(&ds, 10, 3);
    let cfg = small_config(fx.dim(), fx.tau_max() + 1, true);
    let (trainer, _) = train_cardnet(
        fx.as_ref(),
        &split.train,
        &split.valid,
        cfg,
        quick_options(),
    );
    let est = CardNetEstimator::from_trainer(fx, trainer);
    assert_eq!(est.name(), "CardNet-A");
    assert!(est.is_monotonic());
    assert!(est.size_bytes() > 1000, "parameters should be non-trivial");
}
