//! Integration tests for the `cardest-serve` subsystem: concurrency
//! determinism (batched N-worker serving must be bit-identical to 1-worker
//! and to the plain estimator), and hot-swap atomicity (mid-stream model
//! replacement never yields an estimate from a half-written model).

use cardest_core::estimator::{CardNetEstimator, CardinalityEstimator};
use cardest_core::model::CardNetConfig;
use cardest_core::train::{train_cardnet, TrainerOptions};
use cardest_data::synth::{hm_imagenet, SynthConfig};
use cardest_data::zipf::Zipf;
use cardest_data::{Dataset, Record, Workload};
use cardest_fx::build_extractor;
use cardest_serve::{ModelRegistry, Request, ServeConfig, Service};
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

fn small_model(ds: &Dataset, seed_epochs: usize) -> CardNetEstimator {
    let fx = build_extractor(ds, 10, 1);
    let split = Workload::sample_from(ds, 0.25, 8, 2).split(3);
    let mut cfg = CardNetConfig::new(fx.dim(), fx.tau_max() + 1);
    cfg.phi_hidden = vec![24, 16];
    cfg.z_dim = 12;
    cfg = cfg.without_vae();
    let opts = TrainerOptions {
        epochs: seed_epochs,
        vae_epochs: 0,
        ..TrainerOptions::quick()
    };
    let (trainer, _) = train_cardnet(fx.as_ref(), &split.train, &split.valid, cfg, opts);
    CardNetEstimator::from_trainer(fx, trainer)
}

/// A Zipf-skewed request stream (record index, shared record, θ): repeats
/// exercise the cache, distinct queries exercise batching.
fn request_stream(ds: &Dataset, n: usize, seed: u64) -> Vec<(usize, Arc<Record>, f64)> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let hot = Zipf::new(60.min(ds.len()), 1.1);
    (0..n)
        .map(|_| {
            let idx = hot.sample(&mut rng);
            let theta = ds.theta_max * (rng.gen_range(0..16) as f64) / 15.0;
            (idx, Arc::new(ds.records[idx].clone()), theta)
        })
        .collect()
}

/// Plays the stream fully pipelined through a fresh service and returns the
/// served estimates (stream order) with their model-epoch tags.
fn play(
    registry: &Arc<ModelRegistry>,
    stream: &[(usize, Arc<Record>, f64)],
    workers: usize,
) -> Vec<(f64, u64)> {
    let service = Service::start(
        Arc::clone(registry),
        ServeConfig {
            workers,
            batch_max: 32,
            batch_window: Duration::from_micros(300),
            cache_capacity: 1024,
            bound_tolerance: 0.0,
            cache_curve_points: 0,
            kernel_threads: 1,
            kernel_backend: None,
            ..ServeConfig::default()
        },
    );
    let receivers: Vec<_> = stream
        .iter()
        .map(|(_, rec, theta)| {
            service.submit(Request {
                model: "m".into(),
                query: Arc::clone(rec),
                theta: *theta,
            })
        })
        .collect();
    let out = receivers
        .into_iter()
        .map(|rx| {
            let resp = rx.recv().expect("service alive").expect("served");
            (resp.estimate, resp.epoch)
        })
        .collect();
    service.shutdown();
    out
}

#[test]
fn one_worker_and_many_workers_serve_identical_estimates() {
    let ds = hm_imagenet(SynthConfig::new(300, 91));
    let est = small_model(&ds, 3);
    let stream = request_stream(&ds, 400, 17);
    // Ground truth from the single-thread, unbatched estimator call.
    let reference: Vec<f64> = stream
        .iter()
        .map(|(_, rec, theta)| est.estimate(rec, *theta))
        .collect();

    let registry = Arc::new(ModelRegistry::new());
    registry.publish("m", est);
    let solo = play(&registry, &stream, 1);
    let pooled = play(&registry, &stream, 4);

    for (i, ((s, p), want)) in solo.iter().zip(&pooled).zip(&reference).enumerate() {
        assert_eq!(
            s.0.to_bits(),
            want.to_bits(),
            "1-worker diverged from the direct path at request {i}"
        );
        assert_eq!(
            p.0.to_bits(),
            want.to_bits(),
            "4-worker diverged from the direct path at request {i}"
        );
    }
}

#[test]
fn hot_swap_mid_stream_is_atomic_and_epoch_tagged() {
    let ds = hm_imagenet(SynthConfig::new(300, 92));
    let model_a = small_model(&ds, 2);
    let model_b = small_model(&ds, 6); // different weights on purpose
    let stream = request_stream(&ds, 600, 23);

    // Reference answers for *both* generations, computed up front (before
    // the estimators move into the registry).
    let mut expect_a: HashMap<(usize, u64), f64> = HashMap::new();
    let mut expect_b: HashMap<(usize, u64), f64> = HashMap::new();
    for (idx, rec, theta) in &stream {
        expect_a
            .entry((*idx, theta.to_bits()))
            .or_insert_with(|| model_a.estimate(rec, *theta));
        expect_b
            .entry((*idx, theta.to_bits()))
            .or_insert_with(|| model_b.estimate(rec, *theta));
    }

    let registry = Arc::new(ModelRegistry::new());
    let epoch_a = registry.publish("m", model_a);
    let service = Service::start(
        Arc::clone(&registry),
        ServeConfig {
            workers: 3,
            batch_max: 16,
            batch_window: Duration::from_micros(200),
            // Cache on: entries are epoch-keyed, so pre-swap entries must
            // never answer post-swap requests.
            cache_capacity: 512,
            bound_tolerance: 0.0,
            cache_curve_points: 0,
            kernel_threads: 1,
            kernel_backend: None,
            ..ServeConfig::default()
        },
    );

    // Stream requests while the swap happens mid-flight.
    let submit = |(_, rec, theta): &(usize, Arc<Record>, f64)| {
        service.submit(Request {
            model: "m".into(),
            query: Arc::clone(rec),
            theta: *theta,
        })
    };
    let half = stream.len() / 2;
    let mut responses = Vec::with_capacity(stream.len());
    let first_half: Vec<_> = stream[..half].iter().map(submit).collect();
    // Force one pre-swap answer so generation A provably served traffic…
    responses.push(
        first_half[0]
            .recv()
            .expect("service alive")
            .expect("served"),
    );
    assert_eq!(
        responses[0].epoch, epoch_a,
        "pre-swap answer must be model A's"
    );
    // …then swap while the rest of the first half is still in flight.
    let epoch_b = registry.publish("m", model_b);
    assert!(epoch_b > epoch_a, "swap must bump the epoch");
    let second_half: Vec<_> = stream[half..].iter().map(submit).collect();
    responses.extend(
        first_half
            .into_iter()
            .skip(1)
            .chain(second_half)
            .map(|rx| rx.recv().expect("service alive").expect("served")),
    );

    let mut saw = [0usize, 0];
    for (resp, (idx, _, theta)) in responses.into_iter().zip(&stream) {
        // Every response must come from exactly one published generation —
        // by construction a torn model is unrepresentable, and the epoch
        // tag + bit-exact match against that generation's reference proves
        // the estimate is entirely model A's or entirely model B's.
        let expect = if resp.epoch == epoch_a {
            saw[0] += 1;
            &expect_a
        } else if resp.epoch == epoch_b {
            saw[1] += 1;
            &expect_b
        } else {
            panic!("estimate tagged with unpublished epoch {}", resp.epoch);
        };
        let want = expect[&(*idx, theta.to_bits())];
        assert_eq!(
            resp.estimate.to_bits(),
            want.to_bits(),
            "epoch {} estimate does not match that generation's model",
            resp.epoch
        );
    }
    // The swap happened mid-stream with requests still flowing on both
    // sides, so both generations must have answered at least once.
    assert!(saw[0] > 0, "model A never answered");
    assert!(saw[1] > 0, "model B never answered");
    service.shutdown();
}
