//! End-to-end socket-ingress tests: loopback client/server round trips over
//! the wire protocol must be **bit-identical** to in-process estimation,
//! under concurrency, hot-swap, quotas, and load shedding.
//!
//! The serving invariant being defended: batching, caching, framing, and
//! admission control may change *when* and *whether* the model runs, but
//! never the bits of a full-fidelity answer — and a degraded (shed) answer
//! must carry exactly the monotone cache bracket, never a made-up number.

use cardest_core::estimator::{CardNetEstimator, CardinalityEstimator};
use cardest_core::model::CardNetConfig;
use cardest_core::train::{train_cardnet, TrainerOptions};
use cardest_data::synth::{hm_imagenet, SynthConfig};
use cardest_data::zipf::Zipf;
use cardest_data::{Dataset, Record, Workload};
use cardest_fx::build_extractor;
use cardest_serve::{
    ErrorCode, Frame, ModelRegistry, NetClient, NetConfig, NetServer, RequestFrame, ResponseFrame,
    ServeConfig, Service, WireQuery, WireSource,
};
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn small_model(ds: &Dataset, epochs: usize) -> CardNetEstimator {
    let fx = build_extractor(ds, 10, 1);
    let split = Workload::sample_from(ds, 0.25, 8, 2).split(3);
    let mut cfg = CardNetConfig::new(fx.dim(), fx.tau_max() + 1);
    cfg.phi_hidden = vec![24, 16];
    cfg.z_dim = 12;
    cfg = cfg.without_vae();
    let opts = TrainerOptions {
        epochs,
        vae_epochs: 0,
        ..TrainerOptions::quick()
    };
    let (trainer, _) = train_cardnet(fx.as_ref(), &split.train, &split.valid, cfg, opts);
    CardNetEstimator::from_trainer(fx, trainer)
}

fn shared_records(ds: &Dataset) -> Vec<Arc<Record>> {
    ds.records.iter().cloned().map(Arc::new).collect()
}

fn start_server(
    ds: &Dataset,
    est: CardNetEstimator,
    serve_cfg: ServeConfig,
    net_cfg: NetConfig,
) -> (NetServer, u64) {
    let registry = Arc::new(ModelRegistry::new());
    let epoch = registry.publish("default", est);
    let service = Service::start(registry, serve_cfg);
    let server = NetServer::bind("127.0.0.1:0", service, shared_records(ds), net_cfg)
        .expect("bind loopback");
    (server, epoch)
}

fn index_request(id: u64, client_id: u64, idx: usize, theta: f64) -> RequestFrame {
    RequestFrame {
        request_id: id,
        client_id,
        theta,
        deadline_us: 0,
        model: String::new(), // empty selects the configured default
        query: WireQuery::Index(idx as u64),
    }
}

fn expect_response(frame: Frame) -> ResponseFrame {
    match frame {
        Frame::Response(r) => r,
        other => panic!("expected a response frame, got {other:?}"),
    }
}

fn wait_until(limit: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < limit {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

#[test]
fn socket_round_trips_are_bit_identical_to_in_process_estimation() {
    let ds = hm_imagenet(SynthConfig::new(300, 191));
    let est = small_model(&ds, 3);
    let queries: Vec<(usize, f64)> = (0..60)
        .map(|i| (i * 5 % ds.len(), ds.theta_max * (i % 16) as f64 / 15.0))
        .collect();
    // Ground truth from the plain single-thread estimator, computed before
    // the model moves into the registry.
    let reference: Vec<f64> = queries
        .iter()
        .map(|&(idx, theta)| est.estimate(&ds.records[idx], theta))
        .collect();

    let (server, epoch) = start_server(&ds, est, ServeConfig::default(), NetConfig::default());
    let mut client = NetClient::connect(server.addr()).expect("connect");

    // Fully pipelined: send the whole stream, then drain in order.
    for (i, &(idx, theta)) in queries.iter().enumerate() {
        client
            .send(&Frame::Request(index_request(i as u64, 0, idx, theta)))
            .expect("send");
    }
    for (i, want) in reference.iter().enumerate() {
        let resp = expect_response(client.recv().expect("answered"));
        assert_eq!(resp.request_id, i as u64, "responses arrive in order");
        assert_eq!(resp.epoch, epoch);
        assert!(!resp.degraded, "no shedding at this load");
        assert_eq!(
            resp.estimate.to_bits(),
            want.to_bits(),
            "socket answer diverged from the direct path at request {i}"
        );
        assert!(resp.lo <= resp.estimate && resp.estimate <= resp.hi);
    }

    // The same queries as inline bit vectors (a client that does not share
    // the dataset) must answer identically to the index form.
    for (i, (&(idx, theta), want)) in queries.iter().zip(&reference).enumerate() {
        let req = RequestFrame {
            request_id: 1000 + i as u64,
            client_id: 0,
            theta,
            deadline_us: 0,
            model: String::new(),
            query: WireQuery::Bits(ds.records[idx].as_bits().clone()),
        };
        let resp = expect_response(client.call(req).expect("answered"));
        assert_eq!(
            resp.estimate.to_bits(),
            want.to_bits(),
            "inline-bits answer diverged at request {i}"
        );
    }

    // And the in-process path sees the very same service.
    let (idx, theta) = queries[7];
    let inproc = server
        .service()
        .estimate("default", Arc::new(ds.records[idx].clone()), theta)
        .expect("served");
    assert_eq!(inproc.estimate.to_bits(), reference[7].to_bits());
    server.shutdown();
}

#[test]
fn concurrent_socket_clients_are_deterministic() {
    let ds = hm_imagenet(SynthConfig::new(300, 192));
    let est = small_model(&ds, 3);
    // Zipf-skewed per-client streams: repeats exercise the cache, distinct
    // queries exercise batching across connections.
    let streams: Vec<Vec<(usize, f64)>> = (0..4)
        .map(|c| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(400 + c);
            let hot = Zipf::new(60.min(ds.len()), 1.1);
            (0..100)
                .map(|_| {
                    let idx = hot.sample(&mut rng);
                    let theta = ds.theta_max * (rng.gen_range(0..16) as f64) / 15.0;
                    (idx, theta)
                })
                .collect()
        })
        .collect();
    let reference: Vec<Vec<f64>> = streams
        .iter()
        .map(|s| {
            s.iter()
                .map(|&(idx, theta)| est.estimate(&ds.records[idx], theta))
                .collect()
        })
        .collect();

    let (server, _) = start_server(&ds, est, ServeConfig::default(), NetConfig::default());
    let addr = server.addr();
    let handles: Vec<_> = streams
        .iter()
        .cloned()
        .map(|stream| {
            std::thread::spawn(move || {
                let mut client = NetClient::connect(addr).expect("connect");
                for (i, &(idx, theta)) in stream.iter().enumerate() {
                    client
                        .send(&Frame::Request(index_request(i as u64, 0, idx, theta)))
                        .expect("send");
                }
                (0..stream.len())
                    .map(|_| expect_response(client.recv().expect("answered")).estimate)
                    .collect::<Vec<f64>>()
            })
        })
        .collect();
    for (c, handle) in handles.into_iter().enumerate() {
        let got = handle.join().expect("client thread");
        for (i, (g, want)) in got.iter().zip(&reference[c]).enumerate() {
            assert_eq!(
                g.to_bits(),
                want.to_bits(),
                "client {c} request {i} diverged under concurrency"
            );
        }
    }
    server.shutdown();
}

#[test]
fn hot_swap_under_load_keeps_every_answer_epoch_consistent() {
    let ds = hm_imagenet(SynthConfig::new(300, 193));
    let model_a = small_model(&ds, 2);
    let model_b = small_model(&ds, 6); // different weights on purpose
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    let stream: Vec<(usize, f64)> = (0..300)
        .map(|_| {
            let idx = rng.gen_range(0..ds.len());
            let theta = ds.theta_max * (rng.gen_range(0..16) as f64) / 15.0;
            (idx, theta)
        })
        .collect();
    // Reference answers for both generations, before they move.
    let mut expect_a: HashMap<(usize, u64), f64> = HashMap::new();
    let mut expect_b: HashMap<(usize, u64), f64> = HashMap::new();
    for &(idx, theta) in &stream {
        expect_a
            .entry((idx, theta.to_bits()))
            .or_insert_with(|| model_a.estimate(&ds.records[idx], theta));
        expect_b
            .entry((idx, theta.to_bits()))
            .or_insert_with(|| model_b.estimate(&ds.records[idx], theta));
    }

    let (server, epoch_a) =
        start_server(&ds, model_a, ServeConfig::default(), NetConfig::default());
    let mut client = NetClient::connect(server.addr()).expect("connect");
    let half = stream.len() / 2;
    for (i, &(idx, theta)) in stream[..half].iter().enumerate() {
        client
            .send(&Frame::Request(index_request(i as u64, 0, idx, theta)))
            .expect("send");
    }
    // Force one pre-swap answer so generation A provably served traffic…
    let first = expect_response(client.recv().expect("answered"));
    assert_eq!(first.epoch, epoch_a, "pre-swap answer must be model A's");
    // …then hot-swap through the server's own service handle while the rest
    // of the first half is in flight.
    let epoch_b = server.service().registry().publish("default", model_b);
    assert!(epoch_b > epoch_a, "swap must bump the epoch");
    for (i, &(idx, theta)) in stream[half..].iter().enumerate() {
        client
            .send(&Frame::Request(index_request(
                (half + i) as u64,
                0,
                idx,
                theta,
            )))
            .expect("send");
    }

    let mut saw = [0usize, 0];
    for &(idx, theta) in &stream[1..] {
        let resp = expect_response(client.recv().expect("answered"));
        // Every answer belongs entirely to one published generation: the
        // epoch tag says which, and the bit-exact match against that
        // generation's reference proves no torn model ever served.
        let expect = if resp.epoch == epoch_a {
            saw[0] += 1;
            &expect_a
        } else {
            assert_eq!(resp.epoch, epoch_b, "unknown epoch {}", resp.epoch);
            saw[1] += 1;
            &expect_b
        };
        let want = expect[&(idx, theta.to_bits())];
        assert_eq!(
            resp.estimate.to_bits(),
            want.to_bits(),
            "epoch {} answer diverged from that generation's reference",
            resp.epoch
        );
    }
    // A post-swap request must answer from B (the swap is already visible:
    // all queued work above has drained through this connection).
    let resp = expect_response(
        client
            .call(index_request(9999, 0, stream[0].0, stream[0].1))
            .expect("answered"),
    );
    assert_eq!(resp.epoch, epoch_b, "post-drain answers come from model B");
    assert!(saw[1] > 0, "model B must have served part of the stream");
    server.shutdown();
}

/// Saturates a 1-worker server whose queue admits only 4 requests: the
/// overflow must be answered **degraded** from the exact monotone cache
/// bracket (or refused when nothing is cached), and every shed the clients
/// observed must reconcile with the server's counters.
#[test]
fn load_shedding_answers_from_brackets_and_counters_reconcile() {
    let ds = hm_imagenet(SynthConfig::new(200, 194));
    let est = small_model(&ds, 2);
    let tau_max = est.extractor().tau_max();
    let theta_of = |tau: usize| ds.theta_max * (tau as f64 + 0.5) / (tau_max as f64);
    let hot_idx = 9usize;
    // Direct-path references: the cache entries the pre-warm creates are
    // bit-identical to these (that is the serving invariant), so the shed
    // brackets must carry exactly these bits.
    let expected_lo = est.estimate(&ds.records[hot_idx], theta_of(1));
    let expected_hi = est.estimate(&ds.records[hot_idx], theta_of(7));
    let stalled_queries: Vec<(usize, f64)> = (0..4).map(|i| (40 + i, theta_of(3))).collect();
    let stalled_reference: Vec<f64> = stalled_queries
        .iter()
        .map(|&(idx, theta)| est.estimate(&ds.records[idx], theta))
        .collect();

    let window = Duration::from_millis(1500);
    let (server, epoch) = start_server(
        &ds,
        est,
        ServeConfig {
            workers: 1,
            batch_max: 64,
            batch_window: window, // one slow batch stalls all admitted work
            cache_capacity: 1024,
            bound_tolerance: 0.0,
            cache_curve_points: 0,
            kernel_threads: 1,
            kernel_backend: None,
            ..ServeConfig::default()
        },
        NetConfig {
            queue_limit: 4,
            ..NetConfig::default()
        },
    );

    // Pre-warm the cache at τ=1 and τ=7 for the hot query.
    let mut warm = NetClient::connect(server.addr()).expect("connect");
    warm.send(&Frame::Request(index_request(1, 0, hot_idx, theta_of(1))))
        .expect("send");
    warm.send(&Frame::Request(index_request(2, 0, hot_idx, theta_of(7))))
        .expect("send");
    let w1 = expect_response(warm.recv().expect("warm lo"));
    let w2 = expect_response(warm.recv().expect("warm hi"));
    assert_eq!(w1.estimate.to_bits(), expected_lo.to_bits());
    assert_eq!(w2.estimate.to_bits(), expected_hi.to_bits());

    // Fill the queue: 4 fresh queries stall in the worker's batch window.
    let mut stall = NetClient::connect(server.addr()).expect("connect");
    for (i, &(idx, theta)) in stalled_queries.iter().enumerate() {
        stall
            .send(&Frame::Request(index_request(10 + i as u64, 0, idx, theta)))
            .expect("send");
    }
    assert!(
        wait_until(Duration::from_secs(5), || {
            server.service().stats().requests >= 6
        }),
        "stalled requests must reach the service queue"
    );

    // Overflow client (id 42): 6 requests at a bracketed τ — degraded
    // bracket answers — and one for a never-seen query — a hard reject.
    let mut shed = NetClient::connect(server.addr()).expect("connect");
    for i in 0..6 {
        shed.send(&Frame::Request(index_request(
            20 + i,
            42,
            hot_idx,
            theta_of(4),
        )))
        .expect("send");
    }
    shed.send(&Frame::Request(index_request(30, 42, 150, theta_of(4))))
        .expect("send");

    for i in 0..6 {
        let resp = expect_response(shed.recv().expect("degraded answer"));
        assert_eq!(resp.request_id, 20 + i);
        assert!(resp.degraded, "shed answers carry the degraded flag");
        assert_eq!(resp.source, WireSource::ShedBracket);
        assert_eq!(resp.epoch, epoch);
        assert_eq!(
            resp.lo.to_bits(),
            expected_lo.to_bits(),
            "bracket lo must be the cached τ=1 value, bit-exactly"
        );
        assert_eq!(
            resp.hi.to_bits(),
            expected_hi.to_bits(),
            "bracket hi must be the cached τ=7 value, bit-exactly"
        );
        assert!(resp.lo <= resp.estimate && resp.estimate <= resp.hi);
    }
    match shed.recv().expect("reject frame") {
        Frame::Error(e) => {
            assert_eq!(e.request_id, 30);
            assert_eq!(e.code, ErrorCode::Overloaded, "cold query cannot degrade");
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }

    // The stalled work still completes at full fidelity.
    for (i, want) in stalled_reference.iter().enumerate() {
        let resp = expect_response(stall.recv().expect("computed answer"));
        assert_eq!(resp.request_id, 10 + i as u64);
        assert!(!resp.degraded);
        assert_eq!(
            resp.estimate.to_bits(),
            want.to_bits(),
            "admitted request {i} diverged despite the overload"
        );
    }

    // Counters reconcile with what the clients observed.
    let snap = server.service().stats();
    assert_eq!(snap.shed_bracket, 6, "six degraded answers were observed");
    assert_eq!(snap.shed_rejected, 1, "one hard reject was observed");
    assert_eq!(snap.quota_rejected, 0);
    assert_eq!(snap.requests, 2 + 4 + 7);
    let client42 = snap
        .clients
        .iter()
        .find(|(id, _)| *id == 42)
        .map(|&(_, c)| c)
        .expect("client 42 tracked");
    assert_eq!(client42.requests, 7);
    assert_eq!(client42.shed, 6);
    assert_eq!(client42.outstanding, 0, "every slot was released");
    server.shutdown();
}

/// The acceptance loop for the introspection surface: drive a mix of
/// served, degraded, and rejected traffic over the socket, then pull a
/// `Stats` frame and assert the server's request/shed/degraded counters
/// reconcile **exactly** with what the clients observed frame-by-frame —
/// and that a `Traces` pull returns real per-stage timings for that
/// traffic.
#[test]
fn stats_frame_counters_reconcile_exactly_with_client_observations() {
    let ds = hm_imagenet(SynthConfig::new(200, 196));
    let est = small_model(&ds, 2);
    let tau_max = est.extractor().tau_max();
    let theta_of = |tau: usize| ds.theta_max * (tau as f64 + 0.5) / (tau_max as f64);
    let hot_idx = 5usize;

    let window = Duration::from_millis(1500);
    let (server, epoch) = start_server(
        &ds,
        est,
        ServeConfig {
            workers: 1,
            batch_max: 64,
            batch_window: window,
            cache_capacity: 1024,
            bound_tolerance: 0.0,
            cache_curve_points: 0,
            kernel_threads: 1,
            kernel_backend: None,
            trace_sample: 1, // capture every trace so the pull below has data
            ..ServeConfig::default()
        },
        NetConfig {
            queue_limit: 4,
            ..NetConfig::default()
        },
    );

    // Client-side tallies: every frame each client receives is classified
    // here, and nothing else touches this server.
    let mut seen_responses = 0u64;
    let mut seen_degraded = 0u64;
    let mut seen_rejects = 0u64;
    let mut sent_requests = 0u64;

    // Pre-warm the bracket at τ=1 and τ=7 so overflow can degrade.
    let mut warm = NetClient::connect(server.addr()).expect("connect");
    for (id, tau) in [(1u64, 1usize), (2, 7)] {
        warm.send(&Frame::Request(index_request(
            id,
            0,
            hot_idx,
            theta_of(tau),
        )))
        .expect("send");
        sent_requests += 1;
    }
    for _ in 0..2 {
        expect_response(warm.recv().expect("warm answer"));
        seen_responses += 1;
    }

    // Stall the single worker, fill the 4-slot queue…
    let mut stall = NetClient::connect(server.addr()).expect("connect");
    for i in 0..4u64 {
        stall
            .send(&Frame::Request(index_request(
                10 + i,
                0,
                30 + i as usize,
                theta_of(3),
            )))
            .expect("send");
        sent_requests += 1;
    }
    assert!(
        wait_until(Duration::from_secs(5), || {
            server.service().stats().requests >= 6
        }),
        "stalled requests must reach the service queue"
    );

    // …then overflow: 5 bracketed requests answer degraded, one cold query
    // is refused outright.
    let mut shed = NetClient::connect(server.addr()).expect("connect");
    for i in 0..5u64 {
        shed.send(&Frame::Request(index_request(
            20 + i,
            42,
            hot_idx,
            theta_of(4),
        )))
        .expect("send");
        sent_requests += 1;
    }
    shed.send(&Frame::Request(index_request(30, 42, 150, theta_of(4))))
        .expect("send");
    sent_requests += 1;
    for _ in 0..6 {
        match shed.recv().expect("shed answer") {
            Frame::Response(r) => {
                assert!(r.degraded);
                seen_responses += 1;
                seen_degraded += 1;
            }
            Frame::Error(e) => {
                assert_eq!(e.code, ErrorCode::Overloaded);
                seen_rejects += 1;
            }
            other => panic!("unexpected frame {other:?}"),
        }
    }

    // Let the stalled work finish so served/answered totals are settled.
    for _ in 0..4 {
        let r = expect_response(stall.recv().expect("computed answer"));
        assert!(!r.degraded);
        seen_responses += 1;
    }

    // Pull the Stats frame over the wire — a fresh connection, exactly the
    // surface an external monitoring agent would use.
    let mut probe = NetClient::connect(server.addr()).expect("connect");
    let stats = probe.stats(99).expect("stats frame");
    assert_eq!(stats.token, 99);
    let counter = |name: &str| {
        stats
            .counter(name)
            .unwrap_or_else(|| panic!("stats frame missing {name}"))
    };
    assert_eq!(
        counter("cardest_requests_total"),
        sent_requests,
        "every request frame the clients sent must be counted, nothing more"
    );
    assert_eq!(
        counter("cardest_answered_total"),
        seen_responses,
        "answered must equal the response frames the clients received"
    );
    assert_eq!(
        counter("cardest_shed_bracket_total"),
        seen_degraded,
        "degraded answers must reconcile with client-observed degraded flags"
    );
    assert_eq!(
        counter("cardest_shed_rejected_total"),
        seen_rejects,
        "hard rejects must reconcile with client-observed Overloaded errors"
    );
    assert_eq!(counter("cardest_quota_rejected_total"), 0);
    // The traced request latencies flow into the same snapshot: every
    // answered request finished exactly one trace (sheds answered at
    // ingress never enter the pipeline, so they carry no trace).
    assert_eq!(
        counter("cardest_traces_finished_total"),
        seen_responses - seen_degraded,
        "one finished trace per pipeline-served answer"
    );
    assert_eq!(
        counter("cardest_request_latency_count"),
        seen_responses - seen_degraded
    );

    // And the trace pull returns those same requests with nonzero per-stage
    // attribution.
    let traces = probe.traces(7, 0).expect("traces frame");
    assert_eq!(traces.token, 7);
    assert_eq!(
        traces.traces.len() as u64,
        seen_responses - seen_degraded,
        "sample_every=1 captures every pipeline-served request"
    );
    for t in &traces.traces {
        assert_eq!(t.epoch, epoch);
        assert!(t.total_ns > 0, "trace {} has an empty total", t.id);
        // Top-level stages must attribute real, non-overlapping time; the
        // encoder/decoder substages overlap the model span and are excluded
        // from the coverage sum (the same rule as `Trace::attributed_ns`).
        let attributed: u64 = cardest_obs::STAGES
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.is_substage())
            .map(|(i, _)| t.stages_ns.get(i).copied().unwrap_or(0))
            .sum();
        assert!(attributed > 0, "trace {} attributes no stage time", t.id);
        assert!(
            attributed <= t.total_ns,
            "trace {} attributes more time than elapsed ({} > {})",
            t.id,
            attributed,
            t.total_ns
        );
    }
    server.shutdown();
}

/// Per-client quotas bound *outstanding* requests: with a quota of 2 and a
/// stalled worker, a burst of 4 yields two served answers and two typed
/// quota rejects, tracked per client id.
#[test]
fn per_client_quota_rejects_excess_outstanding_requests() {
    let ds = hm_imagenet(SynthConfig::new(200, 195));
    let est = small_model(&ds, 2);
    let reference: Vec<f64> = (0..2).map(|i| est.estimate(&ds.records[i], 4.0)).collect();
    let (server, _) = start_server(
        &ds,
        est,
        ServeConfig {
            workers: 1,
            batch_max: 64,
            batch_window: Duration::from_millis(800),
            cache_capacity: 0,
            bound_tolerance: 0.0,
            cache_curve_points: 0,
            kernel_threads: 1,
            kernel_backend: None,
            ..ServeConfig::default()
        },
        NetConfig {
            client_quota: 2,
            ..NetConfig::default()
        },
    );
    let mut client = NetClient::connect(server.addr()).expect("connect");
    for i in 0..4u64 {
        client
            .send(&Frame::Request(index_request(i, 7, i as usize % 2, 4.0)))
            .expect("send");
    }
    // In-order responses: two pending answers (after the batch window),
    // then the two rejects that were refused at ingress.
    let mut served = Vec::new();
    let mut rejects = 0;
    for _ in 0..4 {
        match client.recv().expect("answered") {
            Frame::Response(r) => served.push(r),
            Frame::Error(e) => {
                assert_eq!(e.code, ErrorCode::QuotaExceeded);
                rejects += 1;
            }
            other => panic!("unexpected frame {other:?}"),
        }
    }
    assert_eq!(served.len(), 2);
    assert_eq!(rejects, 2);
    for (r, want) in served.iter().zip(&reference) {
        assert_eq!(r.estimate.to_bits(), want.to_bits());
    }
    let snap = server.service().stats();
    assert_eq!(snap.quota_rejected, 2);
    let client7 = snap
        .clients
        .iter()
        .find(|(id, _)| *id == 7)
        .map(|&(_, c)| c)
        .expect("client 7 tracked");
    assert_eq!(client7.requests, 4);
    assert_eq!(client7.quota_rejected, 2);
    assert_eq!(client7.outstanding, 0);
    server.shutdown();
}
