//! Cross-crate monotonicity guarantees (Lemmas 1–2): the trained CardNet
//! estimators — and every baseline claiming monotonicity — must produce
//! non-decreasing estimates as the threshold grows, on every data domain.

use cardest_baselines::{build_db_se, DbUs, TlKde};
use cardest_core::estimator::{CardNetEstimator, CardinalityEstimator};
use cardest_core::model::{CardNetConfig, EncoderKind};
use cardest_core::train::{train_cardnet, TrainerOptions};
use cardest_data::synth::default_four;
use cardest_data::{Dataset, Workload};
use cardest_fx::build_extractor;
use proptest::prelude::*;

fn check_monotone(est: &dyn CardinalityEstimator, ds: &Dataset, queries: usize) {
    for qi in (0..ds.len()).step_by((ds.len() / queries).max(1)) {
        let q = &ds.records[qi];
        let mut prev = -1e-9;
        for step in 0..=24 {
            let theta = ds.theta_max * f64::from(step) / 24.0;
            let c = est.estimate(q, theta);
            assert!(
                c >= prev - 1e-6,
                "{} on {}: estimate dropped at θ={theta}: {c} < {prev} (query {qi})",
                est.name(),
                ds.name
            );
            prev = c;
        }
    }
}

#[test]
fn trained_cardnet_is_monotone_on_every_domain() {
    for ds in default_four(500, 7_777) {
        let wl = Workload::sample_from(&ds, 0.2, 8, 5);
        let split = wl.split(6);
        for encoder in [EncoderKind::Shared, EncoderKind::Accelerated] {
            let fx = build_extractor(&ds, 12, 3);
            let mut cfg = CardNetConfig::new(fx.dim(), fx.tau_max() + 1);
            cfg.encoder = encoder;
            cfg.phi_hidden = vec![32, 24];
            cfg.z_dim = 16;
            cfg.vae_hidden = vec![32];
            cfg.vae_latent = 8;
            let opts = TrainerOptions {
                epochs: 6,
                vae_epochs: 2,
                ..TrainerOptions::quick()
            };
            let (trainer, _) = train_cardnet(fx.as_ref(), &split.train, &split.valid, cfg, opts);
            let est = CardNetEstimator::from_trainer(fx, trainer);
            assert!(est.is_monotonic());
            check_monotone(&est, &ds, 12);
        }
    }
}

#[test]
fn monotonic_baselines_keep_their_promise() {
    for ds in default_four(400, 8_888) {
        let db_se = build_db_se(&ds, 1);
        let db_us = DbUs::build(&ds, 0.1, 2);
        let kde = TlKde::build(&ds, 0.1, 3);
        for est in [&*db_se, &db_us as &dyn CardinalityEstimator, &kde] {
            if est.is_monotonic() {
                check_monotone(est, &ds, 8);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    /// The untrained model is already monotone — the guarantee is structural,
    /// not learned.
    #[test]
    fn untrained_cardnet_is_monotone(seed in 0u64..1000, accelerated: bool) {
        let ds = cardest_data::synth::hm_imagenet(cardest_data::synth::SynthConfig::new(50, seed));
        let fx = build_extractor(&ds, 16, seed);
        let mut cfg = CardNetConfig::new(fx.dim(), fx.tau_max() + 1);
        if accelerated {
            cfg.encoder = EncoderKind::Accelerated;
        }
        cfg.phi_hidden = vec![16];
        cfg.z_dim = 8;
        cfg.vae_hidden = vec![16];
        cfg.vae_latent = 4;
        let mut store = cardest_nn::ParamStore::new();
        let mut rng = cardest_nn::rng::seeded(seed);
        let model = cardest_core::model::CardNetModel::new(&mut store, &mut rng, cfg);
        let bits = fx.extract(&ds.records[0]);
        let x = cardest_nn::Matrix::from_vec(1, bits.len(), bits.to_f32());
        let mut prev = 0.0;
        for tau in 0..=fx.tau_max() {
            let est = model.infer_sum(&store, &x, tau);
            prop_assert!(est >= prev - 1e-9, "τ={tau}: {est} < {prev}");
            prev = est;
        }
    }
}
