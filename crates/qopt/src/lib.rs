//! Query-optimizer case studies (§9.11): the two applications the paper uses
//! to show that better cardinality estimates buy faster query processing.
//!
//! * [`conjunctive`] — conjunctions of Euclidean-distance predicates over
//!   multi-attribute entities: the planner index-scans the predicate with the
//!   smallest estimated cardinality and verifies the rest on the fly
//!   (Figures 11–12).
//! * [`gph`] — GPH-style Hamming selection: the query vector is split into
//!   parts and per-part thresholds are allocated by dynamic programming over
//!   *estimated* per-part cardinalities, honoring the general pigeonhole
//!   principle (Figures 13–14).

pub mod conjunctive;
pub mod gph;

pub use conjunctive::{ConjunctiveQuery, ConjunctiveTable, ExecutionStats, Planner};
pub use gph::{allocate_thresholds, GphProcessor, PartCostModel};
