//! Conjunctive similarity queries over multi-attribute entities (§9.11.1).
//!
//! A query is a conjunction of Euclidean-distance predicates, one per
//! attribute (the paper's blocking-rule workloads over Sentence-BERT
//! embeddings). Execution: pick one predicate, fetch its matches by index
//! lookup (VP-tree range query), then check the remaining predicates on the
//! fly. The planner's job is to pick the predicate with the smallest
//! cardinality; its input is a cardinality estimator per attribute.

use cardest_core::CardinalityEstimator;
use cardest_data::synth::EntityTable;
use cardest_data::{Dataset, DistanceKind, Record};
use cardest_select::euclid::VpTree;

/// The indexed multi-attribute table.
pub struct ConjunctiveTable {
    /// One single-attribute dataset per attribute (aligned entity ids).
    pub attrs: Vec<Dataset>,
    indexes: Vec<VpTree>,
    n_entities: usize,
}

/// A conjunction of per-attribute `(query vector, θ)` predicates.
#[derive(Clone, Debug)]
pub struct ConjunctiveQuery {
    pub preds: Vec<(Vec<f32>, f64)>,
}

/// What executing one plan cost.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExecutionStats {
    /// Matching entity count.
    pub matches: usize,
    /// Distance evaluations spent in the index lookup.
    pub index_evals: usize,
    /// Distance evaluations spent verifying the other predicates.
    pub verify_evals: usize,
}

impl ExecutionStats {
    /// Total work — the plan-quality measure (machine-independent stand-in
    /// for wall time; Figures 11 use wall time, which we also report in the
    /// bench harness).
    pub fn total_evals(&self) -> usize {
        self.index_evals + self.verify_evals
    }
}

impl ConjunctiveTable {
    /// Builds per-attribute datasets + VP-trees from an [`EntityTable`].
    pub fn build(table: &EntityTable, theta_max: f64, seed: u64) -> Self {
        let attrs: Vec<Dataset> = table
            .attrs
            .iter()
            .enumerate()
            .map(|(a, vecs)| {
                Dataset::new(
                    format!("{}-attr{a}", table.name),
                    DistanceKind::Euclidean,
                    vecs.iter().map(|v| Record::Vec(v.clone())).collect(),
                    theta_max,
                )
            })
            .collect();
        let indexes = attrs
            .iter()
            .enumerate()
            .map(|(a, ds)| VpTree::build(ds, seed + a as u64))
            .collect();
        ConjunctiveTable {
            indexes,
            n_entities: table.n_entities,
            attrs,
        }
    }

    pub fn n_attrs(&self) -> usize {
        self.attrs.len()
    }

    pub fn n_entities(&self) -> usize {
        self.n_entities
    }

    /// Executes the plan that index-scans attribute `lead` and verifies the
    /// remaining predicates on the fly.
    pub fn execute(&self, query: &ConjunctiveQuery, lead: usize) -> ExecutionStats {
        assert_eq!(
            query.preds.len(),
            self.n_attrs(),
            "predicate arity mismatch"
        );
        let (qv, theta) = &query.preds[lead];
        let qrec = Record::Vec(qv.clone());
        let (candidates, index_evals) = {
            let mut out = Vec::new();
            let (_, evals) = self.indexes[lead].count_with_evals(&self.attrs[lead], &qrec, *theta);
            out.extend(self.indexes[lead].select(&self.attrs[lead], &qrec, *theta));
            (out, evals)
        };
        let mut verify_evals = 0usize;
        let mut matches = 0usize;
        'candidate: for &id in &candidates {
            for (a, (qv, theta)) in query.preds.iter().enumerate() {
                if a == lead {
                    continue;
                }
                verify_evals += 1;
                let y = self.attrs[a].records[id as usize].as_vec();
                if cardest_data::dist::euclidean_within(qv, y, *theta).is_none() {
                    continue 'candidate;
                }
            }
            matches += 1;
        }
        ExecutionStats {
            matches,
            index_evals,
            verify_evals,
        }
    }

    /// Exact matching entities, for correctness checks.
    pub fn exact_matches(&self, query: &ConjunctiveQuery) -> usize {
        let mut count = 0usize;
        'entity: for id in 0..self.n_entities {
            for (a, (qv, theta)) in query.preds.iter().enumerate() {
                let y = self.attrs[a].records[id].as_vec();
                if cardest_data::dist::euclidean_within(qv, y, *theta).is_none() {
                    continue 'entity;
                }
            }
            count += 1;
        }
        count
    }

    /// The attribute whose plan is actually cheapest (oracle used to score
    /// planning precision, Figure 12).
    pub fn best_plan(&self, query: &ConjunctiveQuery) -> usize {
        (0..self.n_attrs())
            .map(|a| (a, self.execute(query, a).total_evals()))
            .min_by_key(|&(_, cost)| cost)
            .map(|(a, _)| a)
            .expect("at least one attribute")
    }
}

/// Picks the lead predicate by per-attribute cardinality estimates.
pub struct Planner<'a> {
    /// One estimator per attribute.
    pub estimators: Vec<&'a dyn CardinalityEstimator>,
}

impl Planner<'_> {
    /// The chosen lead attribute: smallest estimated cardinality.
    pub fn choose(&self, query: &ConjunctiveQuery) -> usize {
        query
            .preds
            .iter()
            .enumerate()
            .map(|(a, (qv, theta))| {
                let est = self.estimators[a].estimate(&Record::Vec(qv.clone()), *theta);
                (a, est)
            })
            .min_by(|x, y| x.1.partial_cmp(&y.1).expect("finite estimates"))
            .map(|(a, _)| a)
            .expect("at least one predicate")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardest_data::synth::{entity_table, SynthConfig};
    use rand::{Rng, SeedableRng};

    fn table() -> ConjunctiveTable {
        let t = entity_table(SynthConfig::new(200, 31), 3, 12);
        ConjunctiveTable::build(&t, 0.8, 1)
    }

    fn queries(table: &ConjunctiveTable, n: usize, seed: u64) -> Vec<ConjunctiveQuery> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let id = rng.gen_range(0..table.n_entities());
                let preds = (0..table.n_attrs())
                    .map(|a| {
                        let v = table.attrs[a].records[id].as_vec().to_vec();
                        // Thresholds U[0.2, 0.5] as in Table 11.
                        (v, rng.gen_range(0.2..0.5))
                    })
                    .collect();
                ConjunctiveQuery { preds }
            })
            .collect()
    }

    #[test]
    fn every_plan_finds_the_same_matches() {
        let t = table();
        for q in queries(&t, 5, 2) {
            let exact = t.exact_matches(&q);
            for lead in 0..t.n_attrs() {
                let stats = t.execute(&q, lead);
                assert_eq!(stats.matches, exact, "plan {lead} wrong");
            }
        }
    }

    #[test]
    fn oracle_planner_matches_best_plan_often() {
        // A planner backed by exact per-attribute counts should pick the
        // cheapest plan most of the time (smallest cardinality ≈ cheapest,
        // §9.11.1 notes it is not always identical).
        struct Oracle<'a> {
            ds: &'a Dataset,
        }
        impl cardest_core::CardinalityEstimator for Oracle<'_> {
            fn estimate(&self, q: &Record, theta: f64) -> f64 {
                self.ds.cardinality_scan(q, theta) as f64
            }
            fn name(&self) -> String {
                "Exact".into()
            }
            fn size_bytes(&self) -> usize {
                0
            }
        }
        let t = table();
        let oracles: Vec<Oracle> = t.attrs.iter().map(|ds| Oracle { ds }).collect();
        let planner = Planner {
            estimators: oracles
                .iter()
                .map(|o| o as &dyn cardest_core::CardinalityEstimator)
                .collect(),
        };
        // Aggregate over several workload seeds so one unlucky draw cannot
        // flip the verdict: the chosen plan must be the true best, or cost
        // within 1.6× of it, for at least 70% of queries. (The slack covers
        // index-traversal cost, which the cardinality heuristic ignores.)
        let mut hits = 0usize;
        let mut total = 0usize;
        for seed in [3, 4, 5, 6] {
            let qs = queries(&t, 20, seed);
            total += qs.len();
            hits += qs
                .iter()
                .filter(|q| {
                    let chosen = planner.choose(q);
                    let best = t.best_plan(q);
                    chosen == best
                        || t.execute(q, chosen).total_evals()
                            <= (t.execute(q, best).total_evals() as f64 * 1.6) as usize
                })
                .count();
        }
        assert!(
            hits * 10 >= total * 7,
            "oracle planning too imprecise: {hits}/{total}"
        );
    }

    #[test]
    fn planner_picks_smallest_estimate() {
        struct Fixed(f64);
        impl cardest_core::CardinalityEstimator for Fixed {
            fn estimate(&self, _: &Record, _: f64) -> f64 {
                self.0
            }
            fn name(&self) -> String {
                "Fixed".into()
            }
            fn size_bytes(&self) -> usize {
                0
            }
        }
        let (a, b, c) = (Fixed(50.0), Fixed(3.0), Fixed(10.0));
        let planner = Planner {
            estimators: vec![&a, &b, &c],
        };
        let q = ConjunctiveQuery {
            preds: vec![
                (vec![0.0; 4], 0.3),
                (vec![0.0; 4], 0.3),
                (vec![0.0; 4], 0.3),
            ],
        };
        assert_eq!(planner.choose(&q), 1);
    }
}
