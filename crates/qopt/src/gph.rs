//! GPH-style Hamming query processing with a cardinality-driven threshold
//! allocator (§9.11.2).
//!
//! The query vector is split into `m` parts. By the general pigeonhole
//! principle, any allocation with `Σ τ_i ≥ θ − m + 1` is complete: every
//! record within Hamming distance θ matches at least one part within its
//! `τ_i`. The optimizer chooses the allocation that minimizes the *sum of
//! estimated per-part candidate counts* by dynamic programming; better
//! estimates → fewer candidates → faster verification (Figures 13–14).

use cardest_core::CardinalityEstimator;
use cardest_data::{BitVec, Dataset, DistanceKind, Record};
use cardest_select::hamming::HammingIndex;
use std::time::Instant;

/// Supplies `ĉ(part, query_part_bits, τ)` — the estimated number of records
/// whose part value lies within τ of the query's.
pub trait PartCostModel {
    fn estimate(&self, part: usize, query_part: &BitVec, tau: u32) -> f64;

    /// Structure size (Figure 14's x-axis).
    fn size_bytes(&self) -> usize;

    fn name(&self) -> String;
}

/// Exact per-part counts straight from the index — the `Exact` oracle.
pub struct ExactPartCost<'a> {
    pub index: &'a HammingIndex,
}

impl PartCostModel for ExactPartCost<'_> {
    fn estimate(&self, part: usize, query_part: &BitVec, tau: u32) -> f64 {
        let (_, width) = self.index.part_span(part);
        let key = query_part.extract_word(0, width);
        self.index.part_candidates(part, key, tau) as f64
    }

    fn size_bytes(&self) -> usize {
        0
    }

    fn name(&self) -> String {
        "Exact".into()
    }
}

/// Adapts any [`CardinalityEstimator`] trained on a part's value distribution
/// (records = part bit vectors, distance = Hamming) to the part-cost
/// interface. This is how CardNet-A / DL-RMI / histograms plug into GPH.
pub struct EstimatorPartCost {
    /// One estimator per part.
    pub per_part: Vec<Box<dyn CardinalityEstimator>>,
    pub label: String,
}

impl PartCostModel for EstimatorPartCost {
    fn estimate(&self, part: usize, query_part: &BitVec, tau: u32) -> f64 {
        self.per_part[part].estimate(&Record::Bits(query_part.clone()), f64::from(tau))
    }

    fn size_bytes(&self) -> usize {
        self.per_part.iter().map(|e| e.size_bytes()).sum()
    }

    fn name(&self) -> String {
        self.label.clone()
    }
}

/// DP threshold allocation: minimizes `Σ_i cost(i, τ_i)` subject to
/// `Σ τ_i = max(0, θ + 1 − m)` (adding slack only adds candidates, so the
/// optimum uses the minimum feasible budget).
pub fn allocate_thresholds(
    cost: &dyn PartCostModel,
    query_parts: &[BitVec],
    theta: u32,
) -> Vec<u32> {
    let m = query_parts.len();
    assert!(m > 0, "no parts to allocate over");
    let budget = (theta as usize + 1).saturating_sub(m);
    let widths: Vec<usize> = query_parts.iter().map(BitVec::len).collect();

    // dp[b] = (min cost, allocation) using parts processed so far, Σ τ = b.
    let mut dp: Vec<Option<(f64, Vec<u32>)>> = vec![None; budget + 1];
    dp[0] = Some((0.0, Vec::new()));
    for (p, qp) in query_parts.iter().enumerate() {
        let max_tau = widths[p].min(budget);
        // Per-part cost per τ, queried once.
        let costs: Vec<f64> = (0..=max_tau as u32)
            .map(|t| cost.estimate(p, qp, t))
            .collect();
        let mut next: Vec<Option<(f64, Vec<u32>)>> = vec![None; budget + 1];
        for (b, slot) in dp.iter().enumerate() {
            let Some((c, alloc)) = slot else { continue };
            for (tau, &tc) in costs.iter().enumerate() {
                let nb = b + tau;
                if nb > budget {
                    break;
                }
                let nc = c + tc;
                if next[nb].as_ref().map_or(true, |(best, _)| nc < *best) {
                    let mut na = alloc.clone();
                    na.push(tau as u32);
                    next[nb] = Some((nc, na));
                }
            }
        }
        dp = next;
    }
    // Feasible by construction: every part can absorb up to `budget`.
    let (_, alloc) = dp[budget].clone().expect("DP must reach the full budget");
    alloc
}

/// Timed outcome of processing one query.
#[derive(Clone, Debug)]
pub struct GphOutcome {
    pub results: Vec<u32>,
    pub allocation: Vec<u32>,
    /// Candidates the allocation admits before verification — the work the
    /// optimizer is minimizing (results are identical for every allocator;
    /// candidate counts are what separates good estimates from bad).
    pub candidates: usize,
    /// Seconds spent allocating thresholds (includes estimation).
    pub allocation_secs: f64,
    /// Seconds spent on lookup + verification.
    pub processing_secs: f64,
}

/// The GPH query processor: part index + pluggable cost model.
pub struct GphProcessor {
    pub index: HammingIndex,
    dim: usize,
}

impl GphProcessor {
    pub fn build(dataset: &Dataset, m: usize) -> Self {
        assert_eq!(dataset.kind, DistanceKind::Hamming);
        let dim = dataset.records.first().map_or(0, |r| r.as_bits().len());
        GphProcessor {
            index: HammingIndex::build(dataset, m),
            dim,
        }
    }

    /// Splits a query into the index's part bit vectors.
    pub fn query_parts(&self, query: &Record) -> Vec<BitVec> {
        let bits = query.as_bits();
        assert_eq!(bits.len(), self.dim, "query dimensionality mismatch");
        (0..self.index.num_parts())
            .map(|p| {
                let (start, width) = self.index.part_span(p);
                BitVec::from_u64(bits.extract_word(start, width), width)
            })
            .collect()
    }

    /// Builds the per-part datasets (each part value as a record) used to
    /// train learned part-cost models.
    pub fn part_datasets(&self, dataset: &Dataset) -> Vec<Dataset> {
        (0..self.index.num_parts())
            .map(|p| {
                let (start, width) = self.index.part_span(p);
                let records = dataset
                    .records
                    .iter()
                    .map(|r| {
                        Record::Bits(BitVec::from_u64(
                            r.as_bits().extract_word(start, width),
                            width,
                        ))
                    })
                    .collect();
                Dataset::new(
                    format!("{}-part{p}", dataset.name),
                    DistanceKind::Hamming,
                    records,
                    width as f64,
                )
            })
            .collect()
    }

    /// Processes one selection with the given cost model.
    pub fn process(
        &self,
        dataset: &Dataset,
        query: &Record,
        theta: u32,
        cost: &dyn PartCostModel,
    ) -> GphOutcome {
        let parts = self.query_parts(query);
        let t0 = Instant::now();
        let allocation = allocate_thresholds(cost, &parts, theta);
        let allocation_secs = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let results = self
            .index
            .select_with_allocation(dataset, query, theta, &allocation);
        let processing_secs = t1.elapsed().as_secs_f64();
        let candidates = parts
            .iter()
            .enumerate()
            .map(|(p, qp)| {
                let key = qp.extract_word(0, qp.len());
                self.index.part_candidates(p, key, allocation[p])
            })
            .sum();
        GphOutcome {
            results,
            allocation,
            candidates,
            allocation_secs,
            processing_secs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardest_data::synth::{hm_imagenet, SynthConfig};
    use cardest_select::scan::ScanSelector;

    fn setup() -> (Dataset, GphProcessor) {
        let ds = hm_imagenet(SynthConfig::new(300, 41));
        let p = GphProcessor::build(&ds, 2);
        (ds, p)
    }

    #[test]
    fn allocation_respects_pigeonhole_budget() {
        let (ds, proc) = setup();
        let cost = ExactPartCost { index: &proc.index };
        let parts = proc.query_parts(&ds.records[0]);
        for theta in [0u32, 4, 8, 16, 20] {
            let alloc = allocate_thresholds(&cost, &parts, theta);
            let total: u32 = alloc.iter().sum();
            let budget = (theta + 1).saturating_sub(parts.len() as u32);
            assert_eq!(total, budget, "θ={theta}: allocation {alloc:?}");
        }
    }

    #[test]
    fn gph_results_are_exact_for_any_cost_model() {
        let (ds, proc) = setup();
        let scan = ScanSelector::new(&ds);
        let exact = ExactPartCost { index: &proc.index };
        // A deliberately bad cost model: constant estimates.
        struct Flat;
        impl PartCostModel for Flat {
            fn estimate(&self, _: usize, _: &BitVec, tau: u32) -> f64 {
                f64::from(tau) // monotone but uninformed
            }
            fn size_bytes(&self) -> usize {
                0
            }
            fn name(&self) -> String {
                "Flat".into()
            }
        }
        for qi in [0usize, 33, 150] {
            let q = &ds.records[qi];
            for theta in [4u32, 10, 16] {
                let truth = scan.select(q, f64::from(theta));
                let a = proc.process(&ds, q, theta, &exact);
                let b = proc.process(&ds, q, theta, &Flat);
                assert_eq!(a.results, truth, "exact cost model broke completeness");
                assert_eq!(b.results, truth, "flat cost model broke completeness");
            }
        }
    }

    #[test]
    fn better_estimates_give_cheaper_allocations() {
        let (ds, proc) = setup();
        let exact = ExactPartCost { index: &proc.index };
        // Candidate work under the exact allocator must not exceed the naive
        // even allocation's (summed over a few queries — per query the DP is
        // optimal w.r.t. estimated, hence exact, costs).
        let mut exact_cost = 0f64;
        let mut even_cost = 0f64;
        for qi in (0..300).step_by(29) {
            let q = &ds.records[qi];
            let parts = proc.query_parts(q);
            let theta = 12u32;
            let opt = allocate_thresholds(&exact, &parts, theta);
            let even = proc.index.even_allocation(theta);
            for (p, qp) in parts.iter().enumerate() {
                exact_cost += exact.estimate(p, qp, opt[p]);
                even_cost += exact.estimate(p, qp, even[p]);
            }
        }
        assert!(
            exact_cost <= even_cost,
            "DP allocation worse than even split: {exact_cost} > {even_cost}"
        );
    }

    #[test]
    fn part_datasets_align_with_index_parts() {
        let (ds, proc) = setup();
        let parts = proc.part_datasets(&ds);
        assert_eq!(parts.len(), proc.index.num_parts());
        for (p, pds) in parts.iter().enumerate() {
            let (_, width) = proc.index.part_span(p);
            assert_eq!(pds.records[0].as_bits().len(), width);
            assert_eq!(pds.len(), ds.len());
        }
    }
}
