//! GPH-style Hamming query processing with a cardinality-driven threshold
//! allocator (§9.11.2).
//!
//! The query vector is split into `m` parts. By the general pigeonhole
//! principle, any allocation with `Σ τ_i ≥ θ − m + 1` is complete: every
//! record within Hamming distance θ matches at least one part within its
//! `τ_i`. The optimizer chooses the allocation that minimizes the *sum of
//! estimated per-part candidate counts* by dynamic programming; better
//! estimates → fewer candidates → faster verification (Figures 13–14).

use cardest_core::CardinalityEstimator;
use cardest_data::{BitVec, Dataset, DistanceKind, Record};
use cardest_select::hamming::HammingIndex;
use std::time::Instant;

/// Supplies `ĉ(part, query_part_bits, τ)` — the estimated number of records
/// whose part value lies within τ of the query's.
pub trait PartCostModel {
    fn estimate(&self, part: usize, query_part: &BitVec, tau: u32) -> f64;

    /// All per-τ costs `ĉ(part, q_p, 0) … ĉ(part, q_p, max_tau)` in one
    /// call — the DP's inner loop. The default evaluates `estimate` per τ;
    /// estimator-backed models override it to extract features and run the
    /// encoder **once** per `(part, query)` via the prepared-query API.
    /// Overrides must return exactly the per-τ `estimate` values (the DP's
    /// allocations are asserted identical in the tests).
    fn curve(&self, part: usize, query_part: &BitVec, max_tau: u32) -> Vec<f64> {
        (0..=max_tau)
            .map(|t| self.estimate(part, query_part, t))
            .collect()
    }

    /// Structure size (Figure 14's x-axis).
    fn size_bytes(&self) -> usize;

    fn name(&self) -> String;
}

/// Exact per-part counts straight from the index — the `Exact` oracle.
pub struct ExactPartCost<'a> {
    pub index: &'a HammingIndex,
}

impl PartCostModel for ExactPartCost<'_> {
    fn estimate(&self, part: usize, query_part: &BitVec, tau: u32) -> f64 {
        let (_, width) = self.index.part_span(part);
        let key = query_part.extract_word(0, width);
        self.index.part_candidates(part, key, tau) as f64
    }

    fn size_bytes(&self) -> usize {
        0
    }

    fn name(&self) -> String {
        "Exact".into()
    }
}

/// Adapts any [`CardinalityEstimator`] trained on a part's value distribution
/// (records = part bit vectors, distance = Hamming) to the part-cost
/// interface. This is how CardNet-A / DL-RMI / histograms plug into GPH.
pub struct EstimatorPartCost {
    /// One estimator per part.
    pub per_part: Vec<Box<dyn CardinalityEstimator>>,
    pub label: String,
}

impl PartCostModel for EstimatorPartCost {
    fn estimate(&self, part: usize, query_part: &BitVec, tau: u32) -> f64 {
        self.per_part[part].estimate(&Record::Bits(query_part.clone()), f64::from(tau))
    }

    /// One `prepare` + one `curve` per `(part, query)` instead of
    /// `max_tau + 1` scalar estimates. Sound only for curve-indexed
    /// estimators
    /// (`threshold_step > 0`), whose contract guarantees
    /// `curve(p, θ).value_at(threshold_step(t)) == estimate(q, t)` bit for
    /// bit; estimators without curve indexing fall back to the per-τ loop
    /// (identical to the default).
    fn curve(&self, part: usize, query_part: &BitVec, max_tau: u32) -> Vec<f64> {
        let est = &self.per_part[part];
        let record = Record::Bits(query_part.clone());
        // `threshold_step == 0` at max_tau means "no curve indexing" — a
        // ladder-curve estimator (e.g. a sampler) would misreport τ = 0
        // through `value_at(0)` — so fall back to per-τ estimates; this also
        // covers max_tau == 0 with a single scalar call.
        if est.threshold_step(f64::from(max_tau)) == 0 {
            return (0..=max_tau)
                .map(|t| est.estimate(&record, f64::from(t)))
                .collect();
        }
        let prepared = est.prepare(&record);
        let curve = est.curve(&prepared, f64::from(max_tau));
        (0..=max_tau)
            .map(|t| curve.value_at(est.threshold_step(f64::from(t))))
            .collect()
    }

    fn size_bytes(&self) -> usize {
        self.per_part.iter().map(|e| e.size_bytes()).sum()
    }

    fn name(&self) -> String {
        self.label.clone()
    }
}

/// DP threshold allocation: minimizes `Σ_i cost(i, τ_i)` subject to
/// `Σ τ_i = max(0, θ + 1 − m)` (adding slack only adds candidates, so the
/// optimum uses the minimum feasible budget).
pub fn allocate_thresholds(
    cost: &dyn PartCostModel,
    query_parts: &[BitVec],
    theta: u32,
) -> Vec<u32> {
    let m = query_parts.len();
    assert!(m > 0, "no parts to allocate over");
    let budget = (theta as usize + 1).saturating_sub(m);
    let widths: Vec<usize> = query_parts.iter().map(BitVec::len).collect();

    // dp[b] = (min cost, allocation) using parts processed so far, Σ τ = b.
    let mut dp: Vec<Option<(f64, Vec<u32>)>> = vec![None; budget + 1];
    dp[0] = Some((0.0, Vec::new()));
    for (p, qp) in query_parts.iter().enumerate() {
        let max_tau = widths[p].min(budget);
        // One curve() call per (part, query): features + encoder run once,
        // not once per τ.
        let costs: Vec<f64> = cost.curve(p, qp, max_tau as u32);
        let mut next: Vec<Option<(f64, Vec<u32>)>> = vec![None; budget + 1];
        for (b, slot) in dp.iter().enumerate() {
            let Some((c, alloc)) = slot else { continue };
            for (tau, &tc) in costs.iter().enumerate() {
                let nb = b + tau;
                if nb > budget {
                    break;
                }
                let nc = c + tc;
                if next[nb].as_ref().is_none_or(|(best, _)| nc < *best) {
                    let mut na = alloc.clone();
                    na.push(tau as u32);
                    next[nb] = Some((nc, na));
                }
            }
        }
        dp = next;
    }
    // Feasible by construction: every part can absorb up to `budget`.
    let (_, alloc) = dp[budget].clone().expect("DP must reach the full budget");
    alloc
}

/// Timed outcome of processing one query.
#[derive(Clone, Debug)]
pub struct GphOutcome {
    pub results: Vec<u32>,
    pub allocation: Vec<u32>,
    /// Candidates the allocation admits before verification — the work the
    /// optimizer is minimizing (results are identical for every allocator;
    /// candidate counts are what separates good estimates from bad).
    pub candidates: usize,
    /// Seconds spent allocating thresholds (includes estimation).
    pub allocation_secs: f64,
    /// Seconds spent on lookup + verification.
    pub processing_secs: f64,
}

/// The GPH query processor: part index + pluggable cost model.
pub struct GphProcessor {
    pub index: HammingIndex,
    dim: usize,
}

impl GphProcessor {
    pub fn build(dataset: &Dataset, m: usize) -> Self {
        assert_eq!(dataset.kind, DistanceKind::Hamming);
        let dim = dataset.records.first().map_or(0, |r| r.as_bits().len());
        GphProcessor {
            index: HammingIndex::build(dataset, m),
            dim,
        }
    }

    /// Splits a query into the index's part bit vectors.
    pub fn query_parts(&self, query: &Record) -> Vec<BitVec> {
        let bits = query.as_bits();
        assert_eq!(bits.len(), self.dim, "query dimensionality mismatch");
        (0..self.index.num_parts())
            .map(|p| {
                let (start, width) = self.index.part_span(p);
                BitVec::from_u64(bits.extract_word(start, width), width)
            })
            .collect()
    }

    /// Builds the per-part datasets (each part value as a record) used to
    /// train learned part-cost models.
    pub fn part_datasets(&self, dataset: &Dataset) -> Vec<Dataset> {
        (0..self.index.num_parts())
            .map(|p| {
                let (start, width) = self.index.part_span(p);
                let records = dataset
                    .records
                    .iter()
                    .map(|r| {
                        Record::Bits(BitVec::from_u64(
                            r.as_bits().extract_word(start, width),
                            width,
                        ))
                    })
                    .collect();
                Dataset::new(
                    format!("{}-part{p}", dataset.name),
                    DistanceKind::Hamming,
                    records,
                    width as f64,
                )
            })
            .collect()
    }

    /// Processes one selection with the given cost model.
    pub fn process(
        &self,
        dataset: &Dataset,
        query: &Record,
        theta: u32,
        cost: &dyn PartCostModel,
    ) -> GphOutcome {
        let parts = self.query_parts(query);
        let t0 = Instant::now();
        let allocation = allocate_thresholds(cost, &parts, theta);
        let allocation_secs = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let results = self
            .index
            .select_with_allocation(dataset, query, theta, &allocation);
        let processing_secs = t1.elapsed().as_secs_f64();
        let candidates = parts
            .iter()
            .enumerate()
            .map(|(p, qp)| {
                let key = qp.extract_word(0, qp.len());
                self.index.part_candidates(p, key, allocation[p])
            })
            .sum();
        GphOutcome {
            results,
            allocation,
            candidates,
            allocation_secs,
            processing_secs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardest_data::synth::{hm_imagenet, SynthConfig};
    use cardest_select::scan::ScanSelector;

    fn setup() -> (Dataset, GphProcessor) {
        let ds = hm_imagenet(SynthConfig::new(300, 41));
        let p = GphProcessor::build(&ds, 2);
        (ds, p)
    }

    #[test]
    fn allocation_respects_pigeonhole_budget() {
        let (ds, proc) = setup();
        let cost = ExactPartCost { index: &proc.index };
        let parts = proc.query_parts(&ds.records[0]);
        for theta in [0u32, 4, 8, 16, 20] {
            let alloc = allocate_thresholds(&cost, &parts, theta);
            let total: u32 = alloc.iter().sum();
            let budget = (theta + 1).saturating_sub(parts.len() as u32);
            assert_eq!(total, budget, "θ={theta}: allocation {alloc:?}");
        }
    }

    #[test]
    fn gph_results_are_exact_for_any_cost_model() {
        let (ds, proc) = setup();
        let scan = ScanSelector::new(&ds);
        let exact = ExactPartCost { index: &proc.index };
        // A deliberately bad cost model: constant estimates.
        struct Flat;
        impl PartCostModel for Flat {
            fn estimate(&self, _: usize, _: &BitVec, tau: u32) -> f64 {
                f64::from(tau) // monotone but uninformed
            }
            fn size_bytes(&self) -> usize {
                0
            }
            fn name(&self) -> String {
                "Flat".into()
            }
        }
        for qi in [0usize, 33, 150] {
            let q = &ds.records[qi];
            for theta in [4u32, 10, 16] {
                let truth = scan.select(q, f64::from(theta));
                let a = proc.process(&ds, q, theta, &exact);
                let b = proc.process(&ds, q, theta, &Flat);
                assert_eq!(a.results, truth, "exact cost model broke completeness");
                assert_eq!(b.results, truth, "flat cost model broke completeness");
            }
        }
    }

    /// The pre-redesign DP inner loop: per-τ `estimate` calls. Kept as the
    /// reference the curve-based allocator is asserted identical against.
    fn allocate_reference(
        cost: &dyn PartCostModel,
        query_parts: &[BitVec],
        theta: u32,
    ) -> Vec<u32> {
        struct PerEstimate<'a>(&'a dyn PartCostModel);
        impl PartCostModel for PerEstimate<'_> {
            fn estimate(&self, part: usize, qp: &BitVec, tau: u32) -> f64 {
                self.0.estimate(part, qp, tau)
            }
            // No `curve` override: the default per-τ loop *is* the old path.
            fn size_bytes(&self) -> usize {
                0
            }
            fn name(&self) -> String {
                "reference".into()
            }
        }
        allocate_thresholds(&PerEstimate(cost), query_parts, theta)
    }

    #[test]
    fn better_estimates_give_cheaper_allocations() {
        let (ds, proc) = setup();
        let exact = ExactPartCost { index: &proc.index };
        // Candidate work under the exact allocator must not exceed the naive
        // even allocation's (summed over a few queries — per query the DP is
        // optimal w.r.t. estimated, hence exact, costs).
        let mut exact_cost = 0f64;
        let mut even_cost = 0f64;
        for qi in (0..300).step_by(29) {
            let q = &ds.records[qi];
            let parts = proc.query_parts(q);
            let theta = 12u32;
            let opt = allocate_thresholds(&exact, &parts, theta);
            // The single-curve()-per-part DP must allocate exactly like the
            // old per-estimate inner loop.
            assert_eq!(
                opt,
                allocate_reference(&exact, &parts, theta),
                "curve-based DP diverged from per-estimate DP (query {qi})"
            );
            let even = proc.index.even_allocation(theta);
            for (p, qp) in parts.iter().enumerate() {
                exact_cost += exact.estimate(p, qp, opt[p]);
                even_cost += exact.estimate(p, qp, even[p]);
            }
        }
        assert!(
            exact_cost <= even_cost,
            "DP allocation worse than even split: {exact_cost} > {even_cost}"
        );
    }

    #[test]
    fn estimator_curve_fast_path_matches_per_estimate_costs_bitwise() {
        // Curve-indexed estimators (histogram, bucket means) take the
        // prepared-query fast path inside `EstimatorPartCost::curve`; their
        // per-τ costs — and therefore the DP allocations — must be
        // bit-identical to scalar `estimate` calls.
        use cardest_baselines::db_se::GroupHistogram;
        use cardest_baselines::{DbUs, MeanEstimator};
        use cardest_data::Workload;

        let (ds, proc) = setup();
        let part_datasets = proc.part_datasets(&ds);
        // A ladder-curve sampler with no curve indexing: must take (and
        // stay bit-identical on) the per-τ fallback, including max_tau = 0.
        let sampler = EstimatorPartCost {
            per_part: part_datasets
                .iter()
                .map(|pds| Box::new(DbUs::build(pds, 0.5, 3)) as Box<dyn CardinalityEstimator>)
                .collect(),
            label: "DB-US".into(),
        };
        let hist = EstimatorPartCost {
            per_part: part_datasets
                .iter()
                .map(|pds| Box::new(GroupHistogram::build(pds)) as Box<dyn CardinalityEstimator>)
                .collect(),
            label: "Histogram".into(),
        };
        let mean = EstimatorPartCost {
            per_part: part_datasets
                .iter()
                .map(|pds| {
                    let wl = Workload::sample_from(pds, 0.2, 8, 5);
                    Box::new(MeanEstimator::build(&wl, pds.theta_max, 33))
                        as Box<dyn CardinalityEstimator>
                })
                .collect(),
            label: "Mean".into(),
        };
        for qi in [0usize, 77, 150] {
            let q = &ds.records[qi];
            let parts = proc.query_parts(q);
            for model in [&sampler, &hist, &mean] {
                for (p, qp) in parts.iter().enumerate() {
                    // max_tau = 0 is the degenerate single-τ call every
                    // model must get right (a ladder curve read at index 0
                    // would report 0 here).
                    for max_tau in [0, qp.len() as u32] {
                        let curve = model.curve(p, qp, max_tau);
                        assert_eq!(curve.len() as u32, max_tau + 1);
                        for (t, &c) in curve.iter().enumerate() {
                            let direct = model.estimate(p, qp, t as u32);
                            assert_eq!(
                                c.to_bits(),
                                direct.to_bits(),
                                "{} part {p} τ={t}: {c} vs {direct}",
                                model.name()
                            );
                        }
                    }
                }
                for theta in [0u32, 4, 9, 14] {
                    assert_eq!(
                        allocate_thresholds(model, &parts, theta),
                        allocate_reference(model, &parts, theta),
                        "{} θ={theta}: allocations diverged",
                        model.name()
                    );
                }
            }
        }
    }

    #[test]
    fn part_datasets_align_with_index_parts() {
        let (ds, proc) = setup();
        let parts = proc.part_datasets(&ds);
        assert_eq!(parts.len(), proc.index.num_parts());
        for (p, pds) in parts.iter().enumerate() {
            let (_, width) = proc.index.part_span(p);
            assert_eq!(pds.records[0].as_bits().len(), width);
            assert_eq!(pds.len(), ds.len());
        }
    }
}
