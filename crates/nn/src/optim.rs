//! Optimizers: Adam (the workhorse) and plain SGD.

use crate::matrix::Matrix;
use crate::params::ParamStore;
use serde::{Deserialize, Serialize};

/// A first-order optimizer over a [`ParamStore`].
pub trait Optimizer {
    /// Applies one update from the currently accumulated gradients, then
    /// clears them.
    fn step(&mut self, store: &mut ParamStore);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (used by decay schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

impl Adam {
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    fn ensure_state(&mut self, store: &ParamStore) {
        while self.m.len() < store.len() {
            let idx = self.m.len();
            let id = store.ids().nth(idx).expect("id in range");
            let (r, c) = store.value(id).shape();
            self.m.push(Matrix::zeros(r, c));
            self.v.push(Matrix::zeros(r, c));
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut ParamStore) {
        self.ensure_state(store);
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let (b1, b2, eps, lr) = (self.beta1, self.beta2, self.eps, self.lr);
        for (idx, id) in store.ids().enumerate().collect::<Vec<_>>() {
            let m = &mut self.m[idx];
            let v = &mut self.v[idx];
            store.update(id, |value, grad| {
                let vals = value.as_mut_slice();
                // Lockstep indexing over four parallel buffers (value, grad,
                // m, v); an iterator zip would obscure the update.
                #[allow(clippy::needless_range_loop)]
                for i in 0..vals.len() {
                    let g = grad.as_slice()[i];
                    if !g.is_finite() {
                        continue; // skip poisoned gradients rather than corrupting moments
                    }
                    let mi = b1 * m.as_slice()[i] + (1.0 - b1) * g;
                    let vi = b2 * v.as_slice()[i] + (1.0 - b2) * g * g;
                    m.as_mut_slice()[i] = mi;
                    v.as_mut_slice()[i] = vi;
                    let m_hat = mi / bc1;
                    let v_hat = vi / bc2;
                    vals[i] -= lr * m_hat / (v_hat.sqrt() + eps);
                }
            });
        }
        store.zero_grads();
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Plain stochastic gradient descent, optionally with momentum.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Matrix>,
}

impl Sgd {
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            velocity: Vec::new(),
        }
    }

    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut ParamStore) {
        while self.velocity.len() < store.len() {
            let idx = self.velocity.len();
            let id = store.ids().nth(idx).expect("id in range");
            let (r, c) = store.value(id).shape();
            self.velocity.push(Matrix::zeros(r, c));
        }
        let (lr, mu) = (self.lr, self.momentum);
        for (idx, id) in store.ids().enumerate().collect::<Vec<_>>() {
            let vel = &mut self.velocity[idx];
            store.update(id, |value, grad| {
                let vals = value.as_mut_slice();
                #[allow(clippy::needless_range_loop)] // parallel value/grad/velocity buffers
                for i in 0..vals.len() {
                    let g = grad.as_slice()[i];
                    if !g.is_finite() {
                        continue;
                    }
                    let v = mu * vel.as_slice()[i] - lr * g;
                    vel.as_mut_slice()[i] = v;
                    vals[i] += v;
                }
            });
        }
        store.zero_grads();
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;

    /// Minimizing (w - 3)^2 should converge to w = 3 with both optimizers.
    fn converges(opt: &mut dyn Optimizer) -> f32 {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::full(1, 1, 0.0));
        for _ in 0..600 {
            let mut t = Tape::new();
            let wv = t.param(&store, w);
            let shifted = t.add_scalar(wv, -3.0);
            let sq = t.square(shifted);
            let l = t.sum_all(sq);
            t.backward(l, &mut store);
            opt.step(&mut store);
        }
        store.value(w).get(0, 0)
    }

    #[test]
    fn adam_minimizes_quadratic() {
        let w = converges(&mut Adam::new(0.05));
        assert!((w - 3.0).abs() < 0.05, "w = {w}");
    }

    #[test]
    fn sgd_minimizes_quadratic() {
        let w = converges(&mut Sgd::with_momentum(0.05, 0.9));
        assert!((w - 3.0).abs() < 0.05, "w = {w}");
    }

    #[test]
    fn step_clears_gradients() {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::full(1, 1, 1.0));
        store.accumulate_grad(w, &Matrix::full(1, 1, 1.0));
        let mut opt = Adam::new(0.01);
        opt.step(&mut store);
        assert_eq!(store.grad(w).get(0, 0), 0.0);
    }

    #[test]
    fn nonfinite_gradients_are_skipped() {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::full(1, 1, 1.0));
        store.accumulate_grad(w, &Matrix::full(1, 1, f32::NAN));
        let mut opt = Adam::new(0.1);
        opt.step(&mut store);
        assert_eq!(
            store.value(w).get(0, 0),
            1.0,
            "NaN grad must not move the weight"
        );
    }
}
