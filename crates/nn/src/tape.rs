//! Dynamic reverse-mode automatic differentiation over [`Matrix`] values.
//!
//! A [`Tape`] records the forward computation as a flat list of nodes; calling
//! [`Tape::backward`] walks the list in reverse, accumulating gradients into
//! each node and finally into the [`ParamStore`]. Building the graph per step
//! keeps the engine flexible enough for the paper's composite architectures
//! (per-distance decoder fan-out, VAE reparameterization, loss mixtures)
//! without a static-graph compiler.
//!
//! Gradient correctness for every op is checked against central finite
//! differences in this module's tests.

use crate::kernels::Parallelism;
use crate::matrix::Matrix;
use crate::params::{ParamId, ParamStore};

/// Handle to a node on a [`Tape`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var(usize);

#[derive(Debug)]
enum Op {
    /// Constant leaf (inputs, targets, masks).
    Input,
    /// Trainable leaf; gradients flow back into the store.
    Param(ParamId),
    /// `a @ b`
    MatMul(usize, usize),
    /// `a + broadcast_rows(b)` where `b` is `1 x m`.
    AddRow(usize, usize),
    Add(usize, usize),
    Sub(usize, usize),
    /// Element-wise product.
    Mul(usize, usize),
    /// `a ⊙ broadcast_rows(r)` where `r` is `1 x m`.
    MulRow(usize, usize),
    /// `a ⊙ broadcast_cols(c)` where `c` is `n x 1`.
    MulCol(usize, usize),
    Scale(usize, f32),
    AddScalar(usize, #[allow(dead_code)] f32),
    Relu(usize),
    Elu(usize, f32),
    Sigmoid(usize),
    Tanh(usize),
    Softplus(usize),
    Exp(usize),
    /// `ln(1 + x)`, defined for `x > -1`; used by MSLE.
    Ln1p(usize),
    /// `ln(x + eps)`; used by binary cross-entropy.
    LnEps(usize, f32),
    Square(usize),
    /// Element-wise `1/x`.
    Recip(usize),
    /// Row sums: `n x m` → `n x 1`.
    RowSums(usize),
    SumAll(usize),
    MeanAll(usize),
    /// Horizontal concatenation; `(parent, col_offset)` pairs.
    HConcat(Vec<(usize, usize)>),
    SliceCols(usize, usize, usize),
    SliceRows(usize, usize, usize),
    /// Replicates a `1 x m` row `n` times.
    BroadcastRow(usize, #[allow(dead_code)] usize),
}

struct Node {
    value: Matrix,
    grad: Option<Matrix>,
    op: Op,
}

/// Reverse-mode autodiff tape.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
    /// Worker budget for the matrix products recorded on (and
    /// back-propagated through) this tape. Threaded kernels are bit-identical
    /// to the scalar ones, so this changes wall clock, never results.
    par: Parallelism,
}

impl Tape {
    pub fn new() -> Self {
        Tape::default()
    }

    /// A tape whose matmul forward/backward kernels may use `par` workers.
    pub fn with_parallelism(par: Parallelism) -> Self {
        Tape {
            nodes: Vec::new(),
            par,
        }
    }

    /// The configured kernel parallelism.
    pub fn parallelism(&self) -> Parallelism {
        self.par
    }

    /// Number of recorded nodes (diagnostic).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, value: Matrix, op: Op) -> Var {
        self.nodes.push(Node {
            value,
            grad: None,
            op,
        });
        Var(self.nodes.len() - 1)
    }

    /// Value of a node.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// Gradient of a node after [`Tape::backward`], if any reached it.
    pub fn grad(&self, v: Var) -> Option<&Matrix> {
        self.nodes[v.0].grad.as_ref()
    }

    /// Records a constant leaf.
    pub fn input(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Input)
    }

    /// Records a trainable leaf by copying the parameter's current value.
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        self.push(store.value(id).clone(), Op::Param(id))
    }

    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let value = self.nodes[a.0]
            .value
            .matmul_with(&self.nodes[b.0].value, self.par);
        self.push(value, Op::MatMul(a.0, b.0))
    }

    /// `a + bias` where `bias` is a `1 x m` row broadcast over `a`'s rows.
    pub fn add_row(&mut self, a: Var, bias: Var) -> Var {
        let (am, bm) = (&self.nodes[a.0].value, &self.nodes[bias.0].value);
        assert_eq!(bm.rows(), 1, "add_row bias must be a row vector");
        assert_eq!(am.cols(), bm.cols(), "add_row width mismatch");
        let mut value = am.clone();
        for r in 0..value.rows() {
            let row = value.row_mut(r);
            for (v, &b) in row.iter_mut().zip(bm.row(0)) {
                *v += b;
            }
        }
        self.push(value, Op::AddRow(a.0, bias.0))
    }

    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let value = self.nodes[a.0]
            .value
            .zip(&self.nodes[b.0].value, |x, y| x + y);
        self.push(value, Op::Add(a.0, b.0))
    }

    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let value = self.nodes[a.0]
            .value
            .zip(&self.nodes[b.0].value, |x, y| x - y);
        self.push(value, Op::Sub(a.0, b.0))
    }

    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let value = self.nodes[a.0]
            .value
            .zip(&self.nodes[b.0].value, |x, y| x * y);
        self.push(value, Op::Mul(a.0, b.0))
    }

    /// `a ⊙ r` with `r` a `1 x m` row broadcast over rows.
    pub fn mul_row(&mut self, a: Var, r: Var) -> Var {
        let (am, rm) = (&self.nodes[a.0].value, &self.nodes[r.0].value);
        assert_eq!(rm.rows(), 1, "mul_row weight must be a row vector");
        assert_eq!(am.cols(), rm.cols(), "mul_row width mismatch");
        let mut value = am.clone();
        for i in 0..value.rows() {
            let row = value.row_mut(i);
            for (v, &w) in row.iter_mut().zip(rm.row(0)) {
                *v *= w;
            }
        }
        self.push(value, Op::MulRow(a.0, r.0))
    }

    /// `a ⊙ c` with `c` an `n x 1` column broadcast over columns.
    pub fn mul_col(&mut self, a: Var, c: Var) -> Var {
        let (am, cm) = (&self.nodes[a.0].value, &self.nodes[c.0].value);
        assert_eq!(cm.cols(), 1, "mul_col weight must be a column vector");
        assert_eq!(am.rows(), cm.rows(), "mul_col height mismatch");
        let mut value = am.clone();
        for i in 0..value.rows() {
            let w = cm.get(i, 0);
            for v in value.row_mut(i) {
                *v *= w;
            }
        }
        self.push(value, Op::MulCol(a.0, c.0))
    }

    pub fn scale(&mut self, a: Var, k: f32) -> Var {
        let value = self.nodes[a.0].value.map(|x| k * x);
        self.push(value, Op::Scale(a.0, k))
    }

    pub fn add_scalar(&mut self, a: Var, k: f32) -> Var {
        let value = self.nodes[a.0].value.map(|x| x + k);
        self.push(value, Op::AddScalar(a.0, k))
    }

    pub fn relu(&mut self, a: Var) -> Var {
        let value = self.nodes[a.0].value.map(|x| x.max(0.0));
        self.push(value, Op::Relu(a.0))
    }

    pub fn elu(&mut self, a: Var, alpha: f32) -> Var {
        let value = self.nodes[a.0]
            .value
            .map(|x| if x > 0.0 { x } else { alpha * (x.exp() - 1.0) });
        self.push(value, Op::Elu(a.0, alpha))
    }

    pub fn sigmoid(&mut self, a: Var) -> Var {
        let value = self.nodes[a.0].value.map(stable_sigmoid);
        self.push(value, Op::Sigmoid(a.0))
    }

    pub fn tanh(&mut self, a: Var) -> Var {
        let value = self.nodes[a.0].value.map(f32::tanh);
        self.push(value, Op::Tanh(a.0))
    }

    /// `softplus(x) = ln(1 + e^x)` — smooth non-negative reparameterization,
    /// used by the monotone baseline's weight constraints.
    pub fn softplus(&mut self, a: Var) -> Var {
        let value = self.nodes[a.0].value.map(stable_softplus);
        self.push(value, Op::Softplus(a.0))
    }

    pub fn exp(&mut self, a: Var) -> Var {
        let value = self.nodes[a.0].value.map(|x| x.clamp(-30.0, 30.0).exp());
        self.push(value, Op::Exp(a.0))
    }

    pub fn ln1p(&mut self, a: Var) -> Var {
        let value = self.nodes[a.0].value.map(|x| x.max(-0.999_999).ln_1p());
        self.push(value, Op::Ln1p(a.0))
    }

    pub fn ln_eps(&mut self, a: Var, eps: f32) -> Var {
        let value = self.nodes[a.0].value.map(|x| (x + eps).ln());
        self.push(value, Op::LnEps(a.0, eps))
    }

    pub fn square(&mut self, a: Var) -> Var {
        let value = self.nodes[a.0].value.map(|x| x * x);
        self.push(value, Op::Square(a.0))
    }

    /// Element-wise reciprocal `1/x`. Inputs must be bounded away from zero
    /// (e.g. softmax denominators, which are ≥ 1 term of `exp`).
    pub fn recip(&mut self, a: Var) -> Var {
        let value = self.nodes[a.0].value.map(|x| 1.0 / x);
        self.push(value, Op::Recip(a.0))
    }

    /// Row sums as an `n x 1` column vector.
    pub fn row_sums(&mut self, a: Var) -> Var {
        let src = &self.nodes[a.0].value;
        let mut value = Matrix::zeros(src.rows(), 1);
        for r in 0..src.rows() {
            value.set(r, 0, src.row(r).iter().sum());
        }
        self.push(value, Op::RowSums(a.0))
    }

    /// Sum of all elements as a `1 x 1` matrix.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let value = Matrix::from_vec(1, 1, vec![self.nodes[a.0].value.sum()]);
        self.push(value, Op::SumAll(a.0))
    }

    /// Mean of all elements as a `1 x 1` matrix.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let value = Matrix::from_vec(1, 1, vec![self.nodes[a.0].value.mean()]);
        self.push(value, Op::MeanAll(a.0))
    }

    /// Horizontal concatenation of equally-tall matrices.
    pub fn hconcat(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "hconcat of nothing");
        let mats: Vec<&Matrix> = parts.iter().map(|v| &self.nodes[v.0].value).collect();
        let value = Matrix::hconcat(&mats);
        let mut offset = 0;
        let mut parents = Vec::with_capacity(parts.len());
        for v in parts {
            parents.push((v.0, offset));
            offset += self.nodes[v.0].value.cols();
        }
        self.push(value, Op::HConcat(parents))
    }

    pub fn slice_cols(&mut self, a: Var, start: usize, end: usize) -> Var {
        let value = self.nodes[a.0].value.slice_cols(start, end);
        self.push(value, Op::SliceCols(a.0, start, end))
    }

    pub fn slice_rows(&mut self, a: Var, start: usize, end: usize) -> Var {
        let src = &self.nodes[a.0].value;
        assert!(start <= end && end <= src.rows(), "slice_rows out of range");
        let mut value = Matrix::zeros(end - start, src.cols());
        for r in start..end {
            value.row_mut(r - start).copy_from_slice(src.row(r));
        }
        self.push(value, Op::SliceRows(a.0, start, end))
    }

    /// Replicates a `1 x m` row vector into an `n x m` matrix.
    pub fn broadcast_row(&mut self, a: Var, n: usize) -> Var {
        let src = &self.nodes[a.0].value;
        assert_eq!(src.rows(), 1, "broadcast_row needs a row vector");
        let mut value = Matrix::zeros(n, src.cols());
        for r in 0..n {
            value.row_mut(r).copy_from_slice(src.row(0));
        }
        self.push(value, Op::BroadcastRow(a.0, n))
    }

    fn accumulate(&mut self, idx: usize, delta: Matrix) {
        match &mut self.nodes[idx].grad {
            Some(g) => g.axpy(1.0, &delta),
            slot @ None => *slot = Some(delta),
        }
    }

    /// Back-propagates from a scalar `loss` node, writing parameter gradients
    /// into `store`. The tape can be dropped afterwards; gradients persist in
    /// the store until `zero_grads`.
    pub fn backward(&mut self, loss: Var, store: &mut ParamStore) {
        assert_eq!(
            self.nodes[loss.0].value.shape(),
            (1, 1),
            "loss must be scalar"
        );
        self.nodes[loss.0].grad = Some(Matrix::full(1, 1, 1.0));

        for i in (0..self.nodes.len()).rev() {
            let Some(grad) = self.nodes[i].grad.take() else {
                continue;
            };
            // Deltas are computed with immutable borrows, then accumulated.
            let mut deltas: Vec<(usize, Matrix)> = Vec::new();
            match &self.nodes[i].op {
                Op::Input => {}
                Op::Param(id) => store.accumulate_grad(*id, &grad),
                Op::MatMul(a, b) => {
                    let (av, bv) = (&self.nodes[*a].value, &self.nodes[*b].value);
                    deltas.push((*a, grad.matmul_t_with(bv, self.par)));
                    deltas.push((*b, av.t_matmul_with(&grad, self.par)));
                }
                Op::AddRow(a, b) => {
                    deltas.push((*b, grad.col_sums()));
                    deltas.push((*a, grad.clone()));
                }
                Op::Add(a, b) => {
                    deltas.push((*a, grad.clone()));
                    deltas.push((*b, grad.clone()));
                }
                Op::Sub(a, b) => {
                    deltas.push((*a, grad.clone()));
                    deltas.push((*b, grad.map(|g| -g)));
                }
                Op::Mul(a, b) => {
                    let (av, bv) = (&self.nodes[*a].value, &self.nodes[*b].value);
                    deltas.push((*a, grad.zip(bv, |g, y| g * y)));
                    deltas.push((*b, grad.zip(av, |g, x| g * x)));
                }
                Op::MulRow(a, r) => {
                    let (av, rv) = (&self.nodes[*a].value, &self.nodes[*r].value);
                    let mut da = grad.clone();
                    for i in 0..da.rows() {
                        for (v, &w) in da.row_mut(i).iter_mut().zip(rv.row(0)) {
                            *v *= w;
                        }
                    }
                    let dr = grad.zip(av, |g, x| g * x).col_sums();
                    deltas.push((*a, da));
                    deltas.push((*r, dr));
                }
                Op::MulCol(a, c) => {
                    let (av, cv) = (&self.nodes[*a].value, &self.nodes[*c].value);
                    let mut da = grad.clone();
                    let mut dc = Matrix::zeros(cv.rows(), 1);
                    for i in 0..da.rows() {
                        let w = cv.get(i, 0);
                        let mut acc = 0.0;
                        for (v, &x) in da.row_mut(i).iter_mut().zip(av.row(i)) {
                            acc += *v * x;
                            *v *= w;
                        }
                        dc.set(i, 0, acc);
                    }
                    deltas.push((*a, da));
                    deltas.push((*c, dc));
                }
                Op::Scale(a, k) => deltas.push((*a, grad.map(|g| g * k))),
                Op::AddScalar(a, _) => deltas.push((*a, grad.clone())),
                Op::Relu(a) => {
                    let out = &self.nodes[i].value;
                    deltas.push((*a, grad.zip(out, |g, y| if y > 0.0 { g } else { 0.0 })));
                }
                Op::Elu(a, alpha) => {
                    let out = &self.nodes[i].value;
                    let al = *alpha;
                    deltas.push((
                        *a,
                        grad.zip(out, move |g, y| if y > 0.0 { g } else { g * (y + al) }),
                    ));
                }
                Op::Sigmoid(a) => {
                    let out = &self.nodes[i].value;
                    deltas.push((*a, grad.zip(out, |g, y| g * y * (1.0 - y))));
                }
                Op::Tanh(a) => {
                    let out = &self.nodes[i].value;
                    deltas.push((*a, grad.zip(out, |g, y| g * (1.0 - y * y))));
                }
                Op::Softplus(a) => {
                    let inp = &self.nodes[*a].value;
                    deltas.push((*a, grad.zip(inp, |g, x| g * stable_sigmoid(x))));
                }
                Op::Exp(a) => {
                    let out = &self.nodes[i].value;
                    deltas.push((*a, grad.zip(out, |g, y| g * y)));
                }
                Op::Ln1p(a) => {
                    let inp = &self.nodes[*a].value;
                    deltas.push((*a, grad.zip(inp, |g, x| g / (1.0 + x.max(-0.999_999)))));
                }
                Op::LnEps(a, eps) => {
                    let inp = &self.nodes[*a].value;
                    let e = *eps;
                    deltas.push((*a, grad.zip(inp, move |g, x| g / (x + e))));
                }
                Op::Square(a) => {
                    let inp = &self.nodes[*a].value;
                    deltas.push((*a, grad.zip(inp, |g, x| 2.0 * g * x)));
                }
                Op::Recip(a) => {
                    let out = &self.nodes[i].value;
                    deltas.push((*a, grad.zip(out, |g, y| -g * y * y)));
                }
                Op::RowSums(a) => {
                    let src = &self.nodes[*a].value;
                    let mut da = Matrix::zeros(src.rows(), src.cols());
                    for r in 0..src.rows() {
                        let g = grad.get(r, 0);
                        da.row_mut(r).iter_mut().for_each(|v| *v = g);
                    }
                    deltas.push((*a, da));
                }
                Op::SumAll(a) => {
                    let src = &self.nodes[*a].value;
                    let g = grad.get(0, 0);
                    deltas.push((*a, Matrix::full(src.rows(), src.cols(), g)));
                }
                Op::MeanAll(a) => {
                    let src = &self.nodes[*a].value;
                    let g = grad.get(0, 0) / src.len().max(1) as f32;
                    deltas.push((*a, Matrix::full(src.rows(), src.cols(), g)));
                }
                Op::HConcat(parents) => {
                    for (p, off) in parents.clone() {
                        let w = self.nodes[p].value.cols();
                        deltas.push((p, grad.slice_cols(off, off + w)));
                    }
                }
                Op::SliceCols(a, start, end) => {
                    let src = &self.nodes[*a].value;
                    let mut da = Matrix::zeros(src.rows(), src.cols());
                    for r in 0..grad.rows() {
                        da.row_mut(r)[*start..*end].copy_from_slice(grad.row(r));
                    }
                    deltas.push((*a, da));
                }
                Op::SliceRows(a, start, end) => {
                    let src = &self.nodes[*a].value;
                    let mut da = Matrix::zeros(src.rows(), src.cols());
                    for r in *start..*end {
                        da.row_mut(r).copy_from_slice(grad.row(r - start));
                    }
                    deltas.push((*a, da));
                }
                Op::BroadcastRow(a, _) => deltas.push((*a, grad.col_sums())),
            }
            for (p, d) in deltas {
                self.accumulate(p, d);
            }
        }
    }
}

#[inline]
fn stable_sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[inline]
fn stable_softplus(x: f32) -> f32 {
    if x > 20.0 {
        x
    } else if x < -20.0 {
        x.exp()
    } else {
        x.exp().ln_1p()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;
    use rand::Rng;

    /// Central finite-difference gradient of `f` w.r.t. the single parameter.
    fn numeric_grad(store: &mut ParamStore, id: ParamId, f: &dyn Fn(&ParamStore) -> f32) -> Matrix {
        let eps = 1e-3;
        let shape = store.value(id).shape();
        let mut out = Matrix::zeros(shape.0, shape.1);
        for r in 0..shape.0 {
            for c in 0..shape.1 {
                let orig = store.value(id).get(r, c);
                store.value_mut(id).set(r, c, orig + eps);
                let hi = f(store);
                store.value_mut(id).set(r, c, orig - eps);
                let lo = f(store);
                store.value_mut(id).set(r, c, orig);
                out.set(r, c, (hi - lo) / (2.0 * eps));
            }
        }
        out
    }

    fn check_unary(name: &str, apply: impl Fn(&mut Tape, Var) -> Var) {
        let mut rng = rng::seeded(11);
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::from_fn(2, 3, |_, _| rng.gen_range(0.05..0.9)));

        let run = |store: &ParamStore| -> f32 {
            let mut t = Tape::new();
            let p = t.param(store, w);
            let y = apply(&mut t, p);
            let l = t.mean_all(y);
            t.value(l).get(0, 0)
        };

        let mut t = Tape::new();
        let p = t.param(&store, w);
        let y = apply(&mut t, p);
        let l = t.mean_all(y);
        t.backward(l, &mut store);
        let analytic = store.grad(w).clone();
        let numeric = numeric_grad(&mut store, w, &run);
        let diff = analytic.max_abs_diff(&numeric);
        assert!(
            diff < 2e-2,
            "{name}: analytic vs numeric gradient diff {diff}"
        );
    }

    #[test]
    fn unary_op_gradients_match_finite_differences() {
        check_unary("relu", |t, v| t.relu(v));
        check_unary("elu", |t, v| t.elu(v, 1.0));
        check_unary("sigmoid", |t, v| t.sigmoid(v));
        check_unary("tanh", |t, v| t.tanh(v));
        check_unary("softplus", |t, v| t.softplus(v));
        check_unary("exp", |t, v| t.exp(v));
        check_unary("ln1p", |t, v| t.ln1p(v));
        check_unary("ln_eps", |t, v| t.ln_eps(v, 1e-3));
        check_unary("square", |t, v| t.square(v));
        check_unary("recip", |t, v| t.recip(v));
        check_unary("row_sums", |t, v| t.row_sums(v));
        check_unary("scale", |t, v| t.scale(v, -2.5));
        check_unary("add_scalar", |t, v| t.add_scalar(v, 0.7));
        check_unary("slice", |t, v| t.slice_cols(v, 1, 3));
    }

    #[test]
    fn matmul_gradients_match_finite_differences() {
        let mut rng = rng::seeded(5);
        let mut store = ParamStore::new();
        let a = store.register("a", Matrix::from_fn(2, 3, |_, _| rng.gen_range(-1.0..1.0)));
        let b = store.register("b", Matrix::from_fn(3, 4, |_, _| rng.gen_range(-1.0..1.0)));

        let run = |store: &ParamStore| -> f32 {
            let mut t = Tape::new();
            let av = t.param(store, a);
            let bv = t.param(store, b);
            let y = t.matmul(av, bv);
            let sq = t.square(y);
            let l = t.mean_all(sq);
            t.value(l).get(0, 0)
        };

        let mut t = Tape::new();
        let av = t.param(&store, a);
        let bv = t.param(&store, b);
        let y = t.matmul(av, bv);
        let sq = t.square(y);
        let l = t.mean_all(sq);
        t.backward(l, &mut store);
        let ga = store.grad(a).clone();
        let gb = store.grad(b).clone();

        store.zero_grads();
        let na = numeric_grad(&mut store, a, &run);
        let nb = numeric_grad(&mut store, b, &run);
        assert!(ga.max_abs_diff(&na) < 2e-2);
        assert!(gb.max_abs_diff(&nb) < 2e-2);
    }

    #[test]
    fn composite_graph_gradients_match() {
        // A realistic mini-model: hconcat, broadcast, add_row, relu, mul_row.
        let mut rng = rng::seeded(9);
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::from_fn(5, 2, |_, _| rng.gen_range(-0.5..0.5)));
        let bias = store.register("b", Matrix::from_fn(1, 2, |_, _| rng.gen_range(-0.5..0.5)));
        let e = store.register("e", Matrix::from_fn(1, 2, |_, _| rng.gen_range(-0.5..0.5)));
        let x = Matrix::from_fn(4, 3, |_, _| rng.gen_range(0.0..1.0));
        let weights = Matrix::row_vector(vec![0.25, 0.75]);

        let run = |store: &ParamStore| -> f32 {
            let mut t = Tape::new();
            let xv = t.input(x.clone());
            let ev = t.param(store, e);
            let eb = t.broadcast_row(ev, 4);
            let cat = t.hconcat(&[xv, eb]);
            let wv = t.param(store, w);
            let bv = t.param(store, bias);
            let h = t.matmul(cat, wv);
            let h = t.add_row(h, bv);
            let h = t.relu(h);
            let wts = t.input(weights.clone());
            let h = t.mul_row(h, wts);
            let l = t.sum_all(h);
            t.value(l).get(0, 0)
        };

        let mut t = Tape::new();
        let xv = t.input(x.clone());
        let ev = t.param(&store, e);
        let eb = t.broadcast_row(ev, 4);
        let cat = t.hconcat(&[xv, eb]);
        let wv = t.param(&store, w);
        let bv = t.param(&store, bias);
        let h = t.matmul(cat, wv);
        let h = t.add_row(h, bv);
        let h = t.relu(h);
        let wts = t.input(weights.clone());
        let h = t.mul_row(h, wts);
        let l = t.sum_all(h);
        t.backward(l, &mut store);

        for id in [w, bias, e] {
            let analytic = store.grad(id).clone();
            let numeric = numeric_grad(&mut store, id, &run);
            let diff = analytic.max_abs_diff(&numeric);
            assert!(diff < 3e-2, "param {}: diff {diff}", store.name(id));
        }
    }

    #[test]
    fn grad_accumulates_when_param_used_twice() {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::full(1, 1, 2.0));
        let mut t = Tape::new();
        let a = t.param(&store, w);
        let b = t.param(&store, w);
        let y = t.mul(a, b); // y = w^2, dy/dw = 2w = 4
        let l = t.sum_all(y);
        t.backward(l, &mut store);
        assert!((store.grad(w).get(0, 0) - 4.0).abs() < 1e-5);
    }

    #[test]
    fn mul_col_gradient_matches() {
        let mut rng = rng::seeded(3);
        let mut store = ParamStore::new();
        let c = store.register("c", Matrix::from_fn(3, 1, |_, _| rng.gen_range(0.1..1.0)));
        let x = Matrix::from_fn(3, 2, |_, _| rng.gen_range(-1.0..1.0));

        let run = |store: &ParamStore| -> f32 {
            let mut t = Tape::new();
            let xv = t.input(x.clone());
            let cv = t.param(store, c);
            let y = t.mul_col(xv, cv);
            let sq = t.square(y);
            let l = t.sum_all(sq);
            t.value(l).get(0, 0)
        };

        let mut t = Tape::new();
        let xv = t.input(x.clone());
        let cv = t.param(&store, c);
        let y = t.mul_col(xv, cv);
        let sq = t.square(y);
        let l = t.sum_all(sq);
        t.backward(l, &mut store);
        let analytic = store.grad(c).clone();
        let numeric = numeric_grad(&mut store, c, &run);
        assert!(analytic.max_abs_diff(&numeric) < 2e-2);
    }

    #[test]
    fn slice_rows_and_vstack_gradients() {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32));
        let mut t = Tape::new();
        let p = t.param(&store, w);
        let top = t.slice_rows(p, 0, 1);
        let l = t.sum_all(top);
        t.backward(l, &mut store);
        // Only the first row receives gradient.
        assert_eq!(store.grad(w).row(0), &[1.0, 1.0]);
        assert_eq!(store.grad(w).row(1), &[0.0, 0.0]);
    }
}
