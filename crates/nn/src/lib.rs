//! Minimal deep-learning substrate for the `cardest` workspace.
//!
//! The paper trains its models in TensorFlow and copies the weights into a C++
//! runtime for estimation. This crate replaces both halves with a single pure
//! Rust engine:
//!
//! * [`matrix::Matrix`] — contiguous row-major `f32` matrices with the handful
//!   of BLAS-like kernels the models need,
//! * [`kernels`] — cache-blocked, explicit-SIMD (AVX2/AVX-512 with runtime
//!   dispatch), and multi-threaded variants of those kernels, bit-identical
//!   to the scalar reference by construction, behind the
//!   [`kernels::Parallelism`] + [`kernels::KernelBackend`] config,
//! * [`tape::Tape`] — a dynamic reverse-mode autodiff tape over matrices,
//! * [`params::ParamStore`] — named trainable parameters plus their gradients,
//! * [`optim`] — Adam and SGD,
//! * [`layers`] — `Dense` layers and `Mlp` stacks built on the tape,
//! * [`vae`] — the variational auto-encoder of §5.2.1 of the paper,
//! * [`loss`] — MSLE and the other losses used by the estimators.
//!
//! The engine is deliberately small: models in this workspace are a few
//! hundred kilobytes of parameters, so clarity and determinism (seeded RNG,
//! reproducible iteration order) win over raw throughput. The [`kernels`]
//! layer recovers throughput without giving up determinism: blocked and
//! threaded products keep every output element's scalar accumulation order,
//! so any thread count produces the same bits.

pub mod init;
pub mod kernels;
pub mod layers;
pub mod loss;
pub mod matrix;
pub mod optim;
pub mod params;
pub mod rng;
pub mod tape;
pub mod vae;

pub use kernels::{KernelBackend, Parallelism};
pub use layers::{Activation, Dense, Mlp};
pub use matrix::Matrix;
pub use optim::{Adam, Optimizer, Sgd};
pub use params::{ParamId, ParamStore};
pub use tape::{Tape, Var};
pub use vae::{Vae, VaeConfig};
