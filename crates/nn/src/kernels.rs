//! Cache-blocked and multi-threaded compute kernels, **bit-identical** to the
//! scalar kernels in [`crate::matrix`] by construction.
//!
//! Every model in this workspace funnels through three matrix products:
//! `matmul` (forward layers), `t_matmul` (weight gradients), and `matmul_t`
//! (input gradients). The scalar reference kernels accumulate each output
//! element as a running `f32` sum over the inner dimension in ascending
//! order, skipping `a == 0.0` terms only when the right-hand operand is
//! entirely finite (see [`crate::matrix::Matrix::matmul`]). The variants here
//! keep **exactly that per-element operation sequence**:
//!
//! * the *blocked* kernels tile the output into register accumulators
//!   (`MR × NR` micro-tiles for `matmul`, 4-wide dot products for
//!   `matmul_t`), which changes memory traffic but not the order in which any
//!   single output element receives its contributions;
//! * the *threaded* kernels partition **output rows** across
//!   `std::thread::scope` workers; every element is still computed by the
//!   same blocked code on one thread, so the result is independent of the
//!   worker count.
//!
//! * the *SIMD* kernels ([`KernelBackend::Simd`]) run the same tiles through
//!   explicit `core::arch` AVX2 / AVX-512F intrinsics behind runtime feature
//!   detection. Vector **lanes are output columns**, never partial sums of
//!   one element: each lane accumulates its own output element with one
//!   `mul` + one `add` per ascending-`k` step, so no horizontal reduction
//!   exists to reorder — the per-element operation sequence is the scalar
//!   one, instruction for instruction (and the intrinsics never use FMA,
//!   whose single rounding would change bits). `matmul_t`, whose scalar form
//!   is a dot product along `k`, is packed through a transpose first so its
//!   SIMD form also vectorizes across output columns instead of reducing
//!   across lanes.
//!
//! Floating-point addition is deterministic for a fixed operand order, so
//! "same per-element order" ⇒ "same bits" — for finite values, signed zeros,
//! and NaN/∞ alike. The property tests in `tests/kernel_identity.rs` pin this
//! across backends × thread counts (including non-finite inputs);
//! `exp_kernel_bench` gates it again at benchmark scale.
//!
//! [`Parallelism`] is the knob the rest of the system plumbs through
//! (trainer minibatches, CardNet batch estimation, the serve worker pool,
//! `report::evaluate`): a worker-count hint that the kernels clamp by the
//! number of output rows and by a minimum useful work size, so callers can
//! pass one config everywhere without tiny products paying thread-spawn
//! overhead — plus an optional pinned [`KernelBackend`]. Unpinned configs
//! resolve the backend once per process: the `CARDEST_KERNEL_BACKEND` env
//! var (`scalar` | `blocked` | `simd` | `auto`) if set, else the best the
//! CPU supports.

use crate::matrix::Matrix;
use std::sync::OnceLock;

/// Per-thread kernel timing: wall-clock nanoseconds and call counts for the
/// three matrix-product entry points ([`Matrix::matmul_with`] and friends).
///
/// Thread-local `Cell`s, not atomics — the counters are bumped once per
/// kernel *call* (not per element), and each thread reads only its own
/// accumulation. The serving layer snapshots these around a batched model
/// call to attribute model wall time to kernel work; benches can report
/// aggregate kernel time per backend.
pub mod timing {
    use std::cell::Cell;
    use std::time::Duration;

    thread_local! {
        static KERNEL_NS: Cell<u64> = const { Cell::new(0) };
        static KERNEL_CALLS: Cell<u64> = const { Cell::new(0) };
    }

    /// Record one kernel invocation of duration `d` on this thread.
    #[inline]
    pub fn record(d: Duration) {
        let ns = d.as_nanos().min(u64::MAX as u128) as u64;
        let _ = KERNEL_NS.try_with(|c| c.set(c.get().saturating_add(ns)));
        let _ = KERNEL_CALLS.try_with(|c| c.set(c.get() + 1));
    }

    /// Total kernel nanoseconds accumulated on the calling thread.
    pub fn thread_nanos() -> u64 {
        KERNEL_NS.try_with(Cell::get).unwrap_or(0)
    }

    /// Total kernel invocations on the calling thread.
    pub fn thread_calls() -> u64 {
        KERNEL_CALLS.try_with(Cell::get).unwrap_or(0)
    }
}

/// Which compute-kernel implementation tier to run.
///
/// All three produce **bit-identical** outputs for every input — the choice
/// is purely a throughput decision, which is what makes it safe to resolve
/// from an env var or CPU detection at runtime.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KernelBackend {
    /// The reference scalar loops (restricted to each worker's row range).
    /// The slowest tier, kept selectable as the trust anchor and as the
    /// forced fallback for CI's no-SIMD leg.
    Scalar,
    /// Cache-blocked register micro-tiles relying on LLVM auto-vectorization
    /// (the PR 4 kernels).
    Blocked,
    /// Explicit AVX2 / AVX-512F tiles via `core::arch`, chosen by runtime
    /// feature detection. Falls back to [`KernelBackend::Blocked`] code on
    /// CPUs (or architectures) without AVX2 — selecting `Simd` is always
    /// safe.
    Simd,
}

/// The instruction-set tier the SIMD backend resolved to on this CPU.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SimdLevel {
    None,
    Avx2,
    Avx512,
}

fn simd_level() -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        static LEVEL: OnceLock<SimdLevel> = OnceLock::new();
        *LEVEL.get_or_init(|| {
            if std::arch::is_x86_feature_detected!("avx512f") {
                SimdLevel::Avx512
            } else if std::arch::is_x86_feature_detected!("avx2") {
                SimdLevel::Avx2
            } else {
                SimdLevel::None
            }
        })
    }
    #[cfg(not(target_arch = "x86_64"))]
    SimdLevel::None
}

impl KernelBackend {
    /// Whether this CPU has an explicit-SIMD path (AVX2 or better).
    pub fn simd_available() -> bool {
        simd_level() != SimdLevel::None
    }

    /// The instruction set the SIMD backend dispatches to on this CPU:
    /// `"avx512"`, `"avx2"`, or `"none"` (benchmark reports and logs).
    pub fn simd_support() -> &'static str {
        match simd_level() {
            SimdLevel::Avx512 => "avx512",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::None => "none",
        }
    }

    /// The best backend this CPU supports: [`KernelBackend::Simd`] when AVX2
    /// (or better) is detected, else [`KernelBackend::Blocked`].
    pub fn detect() -> KernelBackend {
        if KernelBackend::simd_available() {
            KernelBackend::Simd
        } else {
            KernelBackend::Blocked
        }
    }

    /// Parses a backend name: `scalar` | `blocked` | `simd` | `auto`
    /// (case-insensitive; `auto` resolves through [`KernelBackend::detect`]).
    pub fn parse(s: &str) -> Option<KernelBackend> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(KernelBackend::Scalar),
            "blocked" => Some(KernelBackend::Blocked),
            "simd" => Some(KernelBackend::Simd),
            "auto" => Some(KernelBackend::detect()),
            _ => None,
        }
    }

    /// The process-wide default for [`Parallelism`] configs that do not pin
    /// a backend: the `CARDEST_KERNEL_BACKEND` env var if set and valid
    /// (this is how CI forces the scalar-fallback leg without touching any
    /// call site), else [`KernelBackend::detect`]. Resolved once and cached.
    pub fn default_backend() -> KernelBackend {
        static DEFAULT: OnceLock<KernelBackend> = OnceLock::new();
        *DEFAULT.get_or_init(|| match std::env::var("CARDEST_KERNEL_BACKEND") {
            Ok(v) if !v.trim().is_empty() => KernelBackend::parse(&v).unwrap_or_else(|| {
                eprintln!(
                    "CARDEST_KERNEL_BACKEND=`{v}` not recognized \
                     (want scalar|blocked|simd|auto); using auto-detection"
                );
                KernelBackend::detect()
            }),
            _ => KernelBackend::detect(),
        })
    }

    /// Short stable name (CLI/bench/JSON vocabulary).
    pub fn label(self) -> &'static str {
        match self {
            KernelBackend::Scalar => "scalar",
            KernelBackend::Blocked => "blocked",
            KernelBackend::Simd => "simd",
        }
    }
}

/// Rows per register micro-tile in the blocked `matmul`.
const MR: usize = 4;
/// Columns per register micro-tile in the blocked `matmul` (two 8-lane f32
/// vectors — fixed width so the inner loops vectorize).
const NR: usize = 16;

/// Minimum multiply-adds a worker thread must have before the kernels spawn
/// it. The kernels run at tens of GFLOP/s, so 4M MACs ≈ 100–200 µs of work —
/// comfortably above a `thread::scope` spawn+join (~20 µs), which keeps
/// threading from ever losing to its own overhead on small products.
/// Callers that need fine-grained parallelism regardless (tests, coarse
/// per-row fan-outs that amortize one spawn over many kernel calls) use
/// [`Parallelism::exact_threads`] or partition above the kernel layer.
const MIN_WORK_PER_THREAD: usize = 4_000_000;

/// How many worker threads the compute kernels may use, and optionally
/// which [`KernelBackend`] they run.
///
/// A `Parallelism` is a *hint*: kernels clamp it by the number of output rows
/// (each row is computed entirely by one worker — that is what makes the
/// result bit-identical) and, unless constructed with
/// [`Parallelism::exact_threads`], by a minimum-work-per-thread threshold so
/// small products stay serial. The backend is `None` by default, meaning
/// "resolve [`KernelBackend::default_backend`] at dispatch" — pin one with
/// [`Parallelism::with_backend`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Parallelism {
    threads: usize,
    /// Skip the minimum-work clamp (tests and micro-benchmarks).
    force: bool,
    /// Pinned kernel tier; `None` defers to the process-wide default.
    backend: Option<KernelBackend>,
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::serial()
    }
}

impl Parallelism {
    /// Single-threaded (the default everywhere).
    pub const fn serial() -> Parallelism {
        Parallelism {
            threads: 1,
            force: false,
            backend: None,
        }
    }

    /// At most `n` worker threads (`0` is treated as `1`).
    pub fn threads(n: usize) -> Parallelism {
        Parallelism {
            threads: n.max(1),
            force: false,
            backend: None,
        }
    }

    /// One worker per available hardware thread.
    pub fn auto() -> Parallelism {
        Parallelism::threads(
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// Exactly `n` workers whenever the shape allows it, ignoring the
    /// minimum-work clamp. Meant for tests and benchmarks that must exercise
    /// the threaded path on small inputs; production callers want
    /// [`Parallelism::threads`].
    pub fn exact_threads(n: usize) -> Parallelism {
        Parallelism {
            threads: n.max(1),
            force: true,
            backend: None,
        }
    }

    /// Pins the kernel backend (builder form). Every backend is
    /// bit-identical, so this is a throughput knob like the thread count.
    pub const fn with_backend(mut self, backend: KernelBackend) -> Parallelism {
        self.backend = Some(backend);
        self
    }

    /// [`Parallelism::with_backend`] over an optional pin — the shape every
    /// config struct stores (`None` = resolve the process default).
    pub const fn with_backend_opt(mut self, backend: Option<KernelBackend>) -> Parallelism {
        if backend.is_some() {
            self.backend = backend;
        }
        self
    }

    /// The backend kernels will dispatch to: the pinned one, else the
    /// process-wide [`KernelBackend::default_backend`].
    pub fn backend(&self) -> KernelBackend {
        match self.backend {
            Some(b) => b,
            None => KernelBackend::default_backend(),
        }
    }

    /// The explicitly pinned backend, if any (config merging / display).
    pub fn pinned_backend(&self) -> Option<KernelBackend> {
        self.backend
    }

    /// A one-thread copy that keeps the pinned backend — what coarse row
    /// fan-outs hand to the kernels inside each worker.
    pub fn serial_worker(&self) -> Parallelism {
        Parallelism {
            threads: 1,
            force: false,
            backend: self.backend,
        }
    }

    /// The configured worker-count hint.
    pub fn thread_count(&self) -> usize {
        self.threads
    }

    pub fn is_serial(&self) -> bool {
        self.threads == 1
    }

    /// The larger of two hints (config merging: an estimator's own setting
    /// vs. a per-call override). A backend pinned on `self` wins over one
    /// pinned on `other`; either wins over "resolve the default".
    pub fn max(self, other: Parallelism) -> Parallelism {
        Parallelism {
            threads: self.threads.max(other.threads),
            force: self.force || other.force,
            backend: self.backend.or(other.backend),
        }
    }

    /// Effective worker count for `tasks` independent tasks totalling `work`
    /// multiply-adds: the hint, clamped by the task count and (unless
    /// constructed with [`Parallelism::exact_threads`]) by the minimum
    /// useful work per thread.
    pub fn workers(&self, tasks: usize, work: usize) -> usize {
        let cap = if self.force {
            tasks
        } else {
            tasks.min((work / MIN_WORK_PER_THREAD).max(1))
        };
        self.threads.min(cap)
    }
}

/// Partitions a row-major buffer of `row_len`-wide rows into contiguous row
/// ranges and runs `task(first_row, row_chunk)` on each — on the calling
/// thread when `workers <= 1`, else across `std::thread::scope` workers (the
/// calling thread takes the first chunk instead of idling).
///
/// Each row is handed to exactly one worker, which is what lets higher-level
/// fan-outs (per-distance encoder passes, per-query evaluation) stay
/// bit-identical to their serial order.
pub fn partition_rows<F>(out: &mut [f32], row_len: usize, workers: usize, task: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    if row_len == 0 || out.is_empty() {
        task(0, out);
        return;
    }
    let rows = out.len() / row_len;
    let workers = workers.clamp(1, rows.max(1));
    if workers <= 1 {
        task(0, out);
        return;
    }
    let chunk_rows = rows.div_ceil(workers);
    let mut chunks = out.chunks_mut(chunk_rows * row_len).enumerate();
    let first = chunks.next();
    std::thread::scope(|s| {
        for (t, chunk) in chunks {
            let task = &task;
            s.spawn(move || task(t * chunk_rows, chunk));
        }
        if let Some((t, chunk)) = first {
            task(t * chunk_rows, chunk);
        }
    });
}

impl Matrix {
    /// `self @ other` through the blocked (and, when `par` allows, threaded)
    /// kernel. Bit-identical to [`Matrix::matmul`] for every input.
    pub fn matmul_with(&self, other: &Matrix, par: Parallelism) -> Matrix {
        assert_eq!(
            self.cols(),
            other.rows(),
            "matmul shape mismatch: {}x{} @ {}x{}",
            self.rows(),
            self.cols(),
            other.rows(),
            other.cols()
        );
        let t_kernel = std::time::Instant::now();
        // Same batch-level finiteness rule as the scalar kernel: the sparse
        // skip is only sound when no skipped term could hide a 0·NaN / 0·∞.
        let skip_zeros = other.all_finite();
        let mut out = Matrix::zeros(self.rows(), other.cols());
        let n = other.cols();
        let k = self.cols();
        let backend = par.backend();
        // Per-call kernel choice — all orders are bit-identical, so this is
        // purely a throughput decision: a sparse left operand (binary
        // features, post-ReLU activations) favors the saxpy order whose zero
        // skip drops whole rows of work; a dense one favors register tiles.
        // The scalar backend *is* the saxpy order, so it skips the count.
        let sparse_left = backend != KernelBackend::Scalar && skip_zeros && {
            let nonzero = self.as_slice().iter().filter(|&&v| v != 0.0).count();
            4 * nonzero < 3 * self.len().max(1)
        };
        let work = self.rows() * k * n;
        let workers = par.workers(self.rows(), work);
        partition_rows(out.as_mut_slice(), n, workers, |first_row, chunk| {
            let (ad, bd) = (self.as_slice(), other.as_slice());
            match backend {
                KernelBackend::Scalar => {
                    matmul_rows_saxpy(ad, k, bd, n, first_row, chunk, skip_zeros)
                }
                _ if sparse_left => matmul_rows_saxpy(ad, k, bd, n, first_row, chunk, true),
                KernelBackend::Blocked => matmul_rows(ad, k, bd, n, first_row, chunk, skip_zeros),
                KernelBackend::Simd => matmul_rows_simd(ad, k, bd, n, first_row, chunk, skip_zeros),
            }
        });
        timing::record(t_kernel.elapsed());
        out
    }

    /// `selfᵀ @ other` through the row-partitioned kernel. Bit-identical to
    /// [`Matrix::t_matmul`] for every input.
    pub fn t_matmul_with(&self, other: &Matrix, par: Parallelism) -> Matrix {
        assert_eq!(self.rows(), other.rows(), "t_matmul shape mismatch");
        let t_kernel = std::time::Instant::now();
        let skip_zeros = other.all_finite();
        let mut out = Matrix::zeros(self.cols(), other.cols());
        let n = other.cols();
        let k = self.cols();
        let samples = self.rows();
        let work = samples * k * n;
        let workers = par.workers(k, work);
        let backend = par.backend();
        partition_rows(out.as_mut_slice(), n, workers, |first_row, chunk| {
            // The blocked t_matmul already *is* the scalar loop restricted to
            // a row range, so Scalar and Blocked share one body; Simd
            // vectorizes its inner saxpy across output columns.
            match backend {
                KernelBackend::Simd => t_matmul_rows_simd(
                    self.as_slice(),
                    k,
                    other.as_slice(),
                    n,
                    samples,
                    first_row,
                    chunk,
                    skip_zeros,
                ),
                _ => t_matmul_rows(
                    self.as_slice(),
                    k,
                    other.as_slice(),
                    n,
                    samples,
                    first_row,
                    chunk,
                    skip_zeros,
                ),
            }
        });
        timing::record(t_kernel.elapsed());
        out
    }

    /// `self @ otherᵀ` through the blocked/threaded kernel. Bit-identical to
    /// [`Matrix::matmul_t`] for every input.
    pub fn matmul_t_with(&self, other: &Matrix, par: Parallelism) -> Matrix {
        assert_eq!(self.cols(), other.cols(), "matmul_t shape mismatch");
        let t_kernel = std::time::Instant::now();
        let mut out = Matrix::zeros(self.rows(), other.rows());
        let n = other.rows();
        let k = self.cols();
        let backend = par.backend();
        let work = self.rows() * k * n;
        let workers = par.workers(self.rows(), work);
        // The scalar matmul_t is a dot product along `k` — vectorizing *that*
        // would need a horizontal reduction, which reorders the additions.
        // The SIMD path instead packs `otherᵀ` once (shared, read-only across
        // workers) and runs the column-vectorized dense kernel over it: each
        // lane owns one output element, accumulated in ascending `k` exactly
        // like the scalar dot product. The packing cost is O(n·k) against an
        // O(m·n·k) product — and only worth paying when a SIMD tile kernel
        // actually exists on this CPU; otherwise the Simd pin falls straight
        // through to the direct blocked t-kernel.
        let packed = match backend {
            KernelBackend::Simd if n > 0 && k > 0 && KernelBackend::simd_available() => {
                Some(other.transpose())
            }
            _ => None,
        };
        partition_rows(out.as_mut_slice(), n, workers, |first_row, chunk| {
            match (&packed, backend) {
                (Some(bt), _) => {
                    // Dense (no zero skip): the scalar matmul_t never skips.
                    matmul_rows_simd(
                        self.as_slice(),
                        k,
                        bt.as_slice(),
                        n,
                        first_row,
                        chunk,
                        false,
                    )
                }
                (None, KernelBackend::Scalar) => {
                    matmul_t_rows_scalar(self.as_slice(), k, other.as_slice(), n, first_row, chunk)
                }
                _ => matmul_t_rows(self.as_slice(), k, other.as_slice(), n, first_row, chunk),
            }
        });
        timing::record(t_kernel.elapsed());
        out
    }
}

/// Blocked `matmul` over output rows `first_row ..` of `a @ b`, writing into
/// `out` (a contiguous chunk of the output, `len = rows_here * n`).
///
/// Register micro-tiles of `MR × NR` accumulators; the inner dimension `k`
/// runs ascending over the *full* range for each tile, and the zero skip is
/// decided per `(row, k)` exactly like the scalar kernel — so each output
/// element sees the identical sequence of `f32` additions.
///
/// All three row kernels take raw slices + dimensions rather than `&Matrix`
/// deliberately: slice parameters carry `noalias` guarantees at the function
/// boundary, while a heap buffer loaded through a struct reference does not
/// — and without that LLVM refuses to vectorize the inner tile loops once
/// the kernel is reachable from the threaded fan-out (measured ~4× slower).
fn matmul_rows(
    ad: &[f32],
    kk: usize,
    bd: &[f32],
    n: usize,
    first_row: usize,
    out: &mut [f32],
    skip_zeros: bool,
) {
    if n == 0 {
        return;
    }
    let rows = out.len() / n;
    let a_row = |r: usize| -> &[f32] { &ad[r * kk..(r + 1) * kk] };
    let mut r = 0;
    while r + MR <= rows {
        let a_rows: [&[f32]; MR] = std::array::from_fn(|i| a_row(first_row + r + i));
        matmul_row_block::<MR>(a_rows, bd, kk, n, &mut out[r * n..(r + MR) * n], skip_zeros);
        r += MR;
    }
    while r < rows {
        matmul_row_block::<1>(
            [a_row(first_row + r)],
            bd,
            kk,
            n,
            &mut out[r * n..(r + 1) * n],
            skip_zeros,
        );
        r += 1;
    }
}

/// The reference kernel's i-k-j saxpy order restricted to a row range: the
/// [`KernelBackend::Scalar`] body and the sparse-left dispatch of
/// [`Matrix::matmul_with`]. With `skip_zeros` it is the sparse reference
/// order, without it the dense one — per-element accumulation matches
/// [`Matrix::matmul`] exactly either way.
#[allow(clippy::too_many_arguments)] // slice+dims boundary, see matmul_rows
fn matmul_rows_saxpy(
    ad: &[f32],
    kk: usize,
    bd: &[f32],
    n: usize,
    first_row: usize,
    out: &mut [f32],
    skip_zeros: bool,
) {
    if n == 0 {
        return;
    }
    let rows = out.len() / n;
    for r in 0..rows {
        let a_row = &ad[(first_row + r) * kk..(first_row + r + 1) * kk];
        let out_row = &mut out[r * n..(r + 1) * n];
        for (k, &av) in a_row.iter().enumerate() {
            if skip_zeros && av == 0.0 {
                continue;
            }
            let b_row = &bd[k * n..k * n + n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// The reference `a @ bᵀ` loop restricted to a row range — the
/// [`KernelBackend::Scalar`] body of [`Matrix::matmul_t_with`]: one
/// ascending-`k` dot product per output element, exactly like
/// [`Matrix::matmul_t`].
fn matmul_t_rows_scalar(
    ad: &[f32],
    kk: usize,
    bd: &[f32],
    n: usize,
    first_row: usize,
    out: &mut [f32],
) {
    if n == 0 {
        return;
    }
    let rows = out.len() / n;
    for r in 0..rows {
        let a_row = &ad[(first_row + r) * kk..(first_row + r + 1) * kk];
        let out_row = &mut out[r * n..(r + 1) * n];
        for (j, o) in out_row.iter_mut().enumerate() {
            let b_row = &bd[j * kk..(j + 1) * kk];
            let mut acc = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            *o = acc;
        }
    }
}

/// `M` rows of `a @ b` into `out` (`M * n` floats): fixed-width `M × NR`
/// register tiles over full column tiles, a dynamic-width tail for the last
/// partial tile. Per output element the accumulation is ascending `k` with
/// the scalar kernel's zero-skip decision — identical op sequence, identical
/// bits.
// lint: hot-path
#[inline]
fn matmul_row_block<const M: usize>(
    a_rows: [&[f32]; M],
    bd: &[f32],
    kk: usize,
    n: usize,
    out: &mut [f32],
    skip_zeros: bool,
) {
    let mut j0 = 0;
    while j0 + NR <= n {
        let mut acc = [[0.0f32; NR]; M];
        for k in 0..kk {
            let bt: &[f32; NR] = bd[k * n + j0..k * n + j0 + NR]
                .try_into()
                .expect("NR-wide tile");
            for (acc_row, a_row) in acc.iter_mut().zip(&a_rows) {
                let av = a_row[k];
                if skip_zeros && av == 0.0 {
                    continue;
                }
                for (o, &bv) in acc_row.iter_mut().zip(bt) {
                    *o += av * bv;
                }
            }
        }
        for (i, acc_row) in acc.iter().enumerate() {
            out[i * n + j0..i * n + j0 + NR].copy_from_slice(acc_row);
        }
        j0 += NR;
    }
    if j0 < n {
        matmul_row_tail(a_rows, bd, kk, n, j0, out, skip_zeros);
    }
}

/// The dynamic-width last column tile of a row block (columns `j0..n`,
/// `n - j0 < NR`), shared by the blocked and SIMD kernels — register
/// accumulators, ascending `k`, the scalar zero-skip decision per `(row, k)`.
// lint: hot-path
fn matmul_row_tail<const M: usize>(
    a_rows: [&[f32]; M],
    bd: &[f32],
    kk: usize,
    n: usize,
    j0: usize,
    out: &mut [f32],
    skip_zeros: bool,
) {
    let jw = n - j0;
    debug_assert!(jw < NR);
    let mut acc = [[0.0f32; NR]; M];
    for k in 0..kk {
        let bt = &bd[k * n + j0..k * n + j0 + jw];
        for (acc_row, a_row) in acc.iter_mut().zip(&a_rows) {
            let av = a_row[k];
            if skip_zeros && av == 0.0 {
                continue;
            }
            for (o, &bv) in acc_row[..jw].iter_mut().zip(bt) {
                *o += av * bv;
            }
        }
    }
    for (i, acc_row) in acc.iter().enumerate() {
        out[i * n + j0..i * n + j0 + jw].copy_from_slice(&acc_row[..jw]);
    }
}

/// `aᵀ @ b` restricted to output rows `first_row ..` (columns of `a`).
/// `ad` is `samples × kk`, `bd` is `samples × n`.
///
/// The scalar kernel accumulates output row `k` as contributions in
/// ascending sample order `r`; restricting `k` to this worker's range keeps
/// that per-element order untouched.
// lint: hot-path
#[allow(clippy::too_many_arguments)] // slice+dims boundary, see matmul_rows
fn t_matmul_rows(
    ad: &[f32],
    kk: usize,
    bd: &[f32],
    n: usize,
    samples: usize,
    first_row: usize,
    out: &mut [f32],
    skip_zeros: bool,
) {
    if n == 0 {
        return;
    }
    let rows_here = out.len() / n;
    if rows_here == 0 {
        return;
    }
    for r in 0..samples {
        let a_seg = &ad[r * kk + first_row..r * kk + first_row + rows_here];
        let b_row = &bd[r * n..r * n + n];
        for (k_local, &av) in a_seg.iter().enumerate() {
            if skip_zeros && av == 0.0 {
                continue;
            }
            let out_row = &mut out[k_local * n..k_local * n + n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// `a @ bᵀ` over output rows `first_row ..`: independent register-accumulated
/// dot products, four output columns at a time so each `a` row load is
/// reused. Ascending-`k` accumulation per element, like the scalar kernel.
/// `ad` is `rows × kk`, `bd` is `n × kk`.
fn matmul_t_rows(ad: &[f32], kk: usize, bd: &[f32], n: usize, first_row: usize, out: &mut [f32]) {
    if n == 0 {
        return;
    }
    let rows = out.len() / n;
    for r in 0..rows {
        let a_row = &ad[(first_row + r) * kk..(first_row + r + 1) * kk];
        let out_row = &mut out[r * n..(r + 1) * n];
        let mut j = 0;
        while j + 4 <= n {
            let b0 = &bd[j * kk..(j + 1) * kk];
            let b1 = &bd[(j + 1) * kk..(j + 2) * kk];
            let b2 = &bd[(j + 2) * kk..(j + 3) * kk];
            let b3 = &bd[(j + 3) * kk..(j + 4) * kk];
            let (mut acc0, mut acc1, mut acc2, mut acc3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            for (k, &av) in a_row.iter().enumerate() {
                acc0 += av * b0[k];
                acc1 += av * b1[k];
                acc2 += av * b2[k];
                acc3 += av * b3[k];
            }
            out_row[j] = acc0;
            out_row[j + 1] = acc1;
            out_row[j + 2] = acc2;
            out_row[j + 3] = acc3;
            j += 4;
        }
        while j < n {
            let b_row = &bd[j * kk..(j + 1) * kk];
            let mut acc = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            out_row[j] = acc;
            j += 1;
        }
    }
}

/// [`matmul_rows`] through the explicit-SIMD tile kernel when this CPU has
/// one, else the blocked kernel — bit-identical either way, so selecting
/// [`KernelBackend::Simd`] is always safe.
#[allow(clippy::too_many_arguments)] // slice+dims boundary, see matmul_rows
fn matmul_rows_simd(
    ad: &[f32],
    kk: usize,
    bd: &[f32],
    n: usize,
    first_row: usize,
    out: &mut [f32],
    skip_zeros: bool,
) {
    #[cfg(target_arch = "x86_64")]
    match simd_level() {
        SimdLevel::Avx512 => {
            // SAFETY: simd_level() observed AVX-512F via runtime detection,
            // satisfying the target_feature precondition; the slice/dims
            // contract (`ad` holds rows of length `kk` from `first_row`,
            // `bd` is `kk x n` row-major, `out.len()` a multiple of `n`) is
            // the same one the scalar kernel is called under.
            return unsafe { x86::matmul_rows_avx512(ad, kk, bd, n, first_row, out, skip_zeros) };
        }
        SimdLevel::Avx2 => {
            // SAFETY: simd_level() observed AVX2 via runtime detection;
            // slice/dims contract as above.
            return unsafe { x86::matmul_rows_avx2(ad, kk, bd, n, first_row, out, skip_zeros) };
        }
        SimdLevel::None => {}
    }
    matmul_rows(ad, kk, bd, n, first_row, out, skip_zeros)
}

/// [`t_matmul_rows`] through the explicit-SIMD saxpy kernel when this CPU
/// has one, else the blocked kernel — bit-identical either way.
#[allow(clippy::too_many_arguments)] // slice+dims boundary, see matmul_rows
fn t_matmul_rows_simd(
    ad: &[f32],
    kk: usize,
    bd: &[f32],
    n: usize,
    samples: usize,
    first_row: usize,
    out: &mut [f32],
    skip_zeros: bool,
) {
    #[cfg(target_arch = "x86_64")]
    match simd_level() {
        SimdLevel::Avx512 => {
            // SAFETY: simd_level() observed AVX-512F via runtime detection,
            // satisfying the target_feature precondition; the slice/dims
            // contract (`ad` column-major `kk x samples` from `first_row`,
            // `bd` is `kk x n` row-major, `out.len()` a multiple of `n`) is
            // the same one the scalar kernel is called under.
            return unsafe {
                x86::t_matmul_rows_avx512(ad, kk, bd, n, samples, first_row, out, skip_zeros)
            };
        }
        SimdLevel::Avx2 => {
            // SAFETY: simd_level() observed AVX2 via runtime detection;
            // slice/dims contract as above.
            return unsafe {
                x86::t_matmul_rows_avx2(ad, kk, bd, n, samples, first_row, out, skip_zeros)
            };
        }
        SimdLevel::None => {}
    }
    t_matmul_rows(ad, kk, bd, n, samples, first_row, out, skip_zeros)
}

/// Explicit `core::arch::x86_64` kernels (AVX2 and AVX-512F).
///
/// The bit-identity recipe, shared by every function here:
///
/// * **lanes are output columns** — lane `l` of an accumulator vector owns
///   output element `j0 + l` and nothing else, so there is no horizontal
///   reduction anywhere and no operand reassociation to worry about;
/// * per ascending-`k` step each lane performs exactly `mul` then `add`
///   (`_mm256_mul_ps` + `_mm256_add_ps`, never an FMA, whose single
///   rounding would differ from the scalar two-rounding sequence);
/// * packed x86 `mulps`/`addps` follow the same IEEE-754 and NaN
///   propagation rules as their scalar `mulss`/`addss` forms, so non-finite
///   inputs produce the same bits lane-wise;
/// * the sparse zero-skip is decided per `(row, k)` on the scalar `a` value,
///   exactly like the reference kernel;
/// * column tails (`n % NR`) and row tails (`rows % MR`) fall back to the
///   shared scalar tail bodies, which keep the same per-element order.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{matmul_row_tail, MR, NR};
    use core::arch::x86_64::*;

    /// AVX2 `matmul` over a row chunk: `MR`-row blocks × `NR`-column tiles,
    /// two 256-bit accumulators per row.
    ///
    /// # Safety
    /// AVX2 must be available (callers dispatch on runtime detection).
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn matmul_rows_avx2(
        ad: &[f32],
        kk: usize,
        bd: &[f32],
        n: usize,
        first_row: usize,
        out: &mut [f32],
        skip_zeros: bool,
    ) {
        if n == 0 {
            return;
        }
        let rows = out.len() / n;
        let a_row = |r: usize| -> &[f32] { &ad[r * kk..(r + 1) * kk] };
        let mut r = 0;
        while r + MR <= rows {
            let a_rows: [&[f32]; MR] = std::array::from_fn(|i| a_row(first_row + r + i));
            row_block_avx2::<MR>(a_rows, bd, kk, n, &mut out[r * n..(r + MR) * n], skip_zeros);
            r += MR;
        }
        while r < rows {
            row_block_avx2::<1>(
                [a_row(first_row + r)],
                bd,
                kk,
                n,
                &mut out[r * n..(r + 1) * n],
                skip_zeros,
            );
            r += 1;
        }
    }

    /// `M` rows of `a @ b` with two `__m256` accumulators per row (one
    /// `NR = 16` column tile). Mirrors [`super::matmul_row_block`] op for op.
    ///
    /// # Safety
    /// AVX2 must be available (the public entry points dispatch on runtime
    /// detection). Bounds preconditions backing the `get_unchecked`/raw
    /// pointer reads: every `a_rows[i]` has length `kk`, `bd` has length
    /// `kk * n`, and `out` has length `M * n` — all established by the
    /// callers' row slicing.
    // lint: hot-path
    #[target_feature(enable = "avx2")]
    #[allow(clippy::needless_range_loop)] // lockstep over three register arrays
    unsafe fn row_block_avx2<const M: usize>(
        a_rows: [&[f32]; M],
        bd: &[f32],
        kk: usize,
        n: usize,
        out: &mut [f32],
        skip_zeros: bool,
    ) {
        let bp = bd.as_ptr();
        let mut j0 = 0;
        while j0 + NR <= n {
            let mut acc_lo = [_mm256_setzero_ps(); M];
            let mut acc_hi = [_mm256_setzero_ps(); M];
            for k in 0..kk {
                let tile = bp.add(k * n + j0);
                let b_lo = _mm256_loadu_ps(tile);
                let b_hi = _mm256_loadu_ps(tile.add(8));
                for i in 0..M {
                    let av = *a_rows[i].get_unchecked(k);
                    if skip_zeros && av == 0.0 {
                        continue;
                    }
                    let va = _mm256_set1_ps(av);
                    acc_lo[i] = _mm256_add_ps(acc_lo[i], _mm256_mul_ps(va, b_lo));
                    acc_hi[i] = _mm256_add_ps(acc_hi[i], _mm256_mul_ps(va, b_hi));
                }
            }
            for i in 0..M {
                let op = out.as_mut_ptr().add(i * n + j0);
                _mm256_storeu_ps(op, acc_lo[i]);
                _mm256_storeu_ps(op.add(8), acc_hi[i]);
            }
            j0 += NR;
        }
        if j0 < n {
            matmul_row_tail(a_rows, bd, kk, n, j0, out, skip_zeros);
        }
    }

    /// AVX-512F `matmul` over a row chunk: one 512-bit accumulator per row
    /// covers a full `NR = 16` column tile.
    ///
    /// # Safety
    /// AVX-512F must be available (callers dispatch on runtime detection).
    #[target_feature(enable = "avx512f")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn matmul_rows_avx512(
        ad: &[f32],
        kk: usize,
        bd: &[f32],
        n: usize,
        first_row: usize,
        out: &mut [f32],
        skip_zeros: bool,
    ) {
        if n == 0 {
            return;
        }
        let rows = out.len() / n;
        let a_row = |r: usize| -> &[f32] { &ad[r * kk..(r + 1) * kk] };
        let mut r = 0;
        while r + MR <= rows {
            let a_rows: [&[f32]; MR] = std::array::from_fn(|i| a_row(first_row + r + i));
            row_block_avx512::<MR>(a_rows, bd, kk, n, &mut out[r * n..(r + MR) * n], skip_zeros);
            r += MR;
        }
        while r < rows {
            row_block_avx512::<1>(
                [a_row(first_row + r)],
                bd,
                kk,
                n,
                &mut out[r * n..(r + 1) * n],
                skip_zeros,
            );
            r += 1;
        }
    }

    /// # Safety
    /// AVX-512F must be available (the public entry points dispatch on
    /// runtime detection). Bounds preconditions backing the
    /// `get_unchecked`/raw pointer reads: every `a_rows[i]` has length
    /// `kk`, `bd` has length `kk * n`, and `out` has length `M * n` — all
    /// established by the callers' row slicing.
    // lint: hot-path
    #[target_feature(enable = "avx512f")]
    #[allow(clippy::needless_range_loop)] // lockstep over two register arrays
    unsafe fn row_block_avx512<const M: usize>(
        a_rows: [&[f32]; M],
        bd: &[f32],
        kk: usize,
        n: usize,
        out: &mut [f32],
        skip_zeros: bool,
    ) {
        let bp = bd.as_ptr();
        let mut j0 = 0;
        while j0 + NR <= n {
            let mut acc = [_mm512_setzero_ps(); M];
            for k in 0..kk {
                let b = _mm512_loadu_ps(bp.add(k * n + j0));
                for i in 0..M {
                    let av = *a_rows[i].get_unchecked(k);
                    if skip_zeros && av == 0.0 {
                        continue;
                    }
                    acc[i] = _mm512_add_ps(acc[i], _mm512_mul_ps(_mm512_set1_ps(av), b));
                }
            }
            for i in 0..M {
                _mm512_storeu_ps(out.as_mut_ptr().add(i * n + j0), acc[i]);
            }
            j0 += NR;
        }
        if j0 < n {
            matmul_row_tail(a_rows, bd, kk, n, j0, out, skip_zeros);
        }
    }

    /// AVX2 `t_matmul` over a row chunk: the reference sample-major saxpy
    /// with its inner column loop vectorized (each lane owns one output
    /// column; accumulation per element stays ascending sample order `r`).
    ///
    /// # Safety
    /// AVX2 must be available (callers dispatch on runtime detection).
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn t_matmul_rows_avx2(
        ad: &[f32],
        kk: usize,
        bd: &[f32],
        n: usize,
        samples: usize,
        first_row: usize,
        out: &mut [f32],
        skip_zeros: bool,
    ) {
        if n == 0 {
            return;
        }
        let rows_here = out.len() / n;
        if rows_here == 0 {
            return;
        }
        for r in 0..samples {
            let a_seg = &ad[r * kk + first_row..r * kk + first_row + rows_here];
            let b_row = bd.as_ptr().add(r * n);
            for (k_local, &av) in a_seg.iter().enumerate() {
                if skip_zeros && av == 0.0 {
                    continue;
                }
                let out_row = &mut out[k_local * n..k_local * n + n];
                let op = out_row.as_mut_ptr();
                let va = _mm256_set1_ps(av);
                let mut j = 0;
                while j + 8 <= n {
                    let o = _mm256_loadu_ps(op.add(j));
                    let b = _mm256_loadu_ps(b_row.add(j));
                    _mm256_storeu_ps(op.add(j), _mm256_add_ps(o, _mm256_mul_ps(va, b)));
                    j += 8;
                }
                while j < n {
                    *op.add(j) += av * *b_row.add(j);
                    j += 1;
                }
            }
        }
    }

    /// AVX-512F `t_matmul` over a row chunk (16-lane inner loop, then the
    /// scalar column tail).
    ///
    /// # Safety
    /// AVX-512F must be available (callers dispatch on runtime detection).
    #[target_feature(enable = "avx512f")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn t_matmul_rows_avx512(
        ad: &[f32],
        kk: usize,
        bd: &[f32],
        n: usize,
        samples: usize,
        first_row: usize,
        out: &mut [f32],
        skip_zeros: bool,
    ) {
        if n == 0 {
            return;
        }
        let rows_here = out.len() / n;
        if rows_here == 0 {
            return;
        }
        for r in 0..samples {
            let a_seg = &ad[r * kk + first_row..r * kk + first_row + rows_here];
            let b_row = bd.as_ptr().add(r * n);
            for (k_local, &av) in a_seg.iter().enumerate() {
                if skip_zeros && av == 0.0 {
                    continue;
                }
                let out_row = &mut out[k_local * n..k_local * n + n];
                let op = out_row.as_mut_ptr();
                let va = _mm512_set1_ps(av);
                let mut j = 0;
                while j + 16 <= n {
                    let o = _mm512_loadu_ps(op.add(j));
                    let b = _mm512_loadu_ps(b_row.add(j));
                    _mm512_storeu_ps(op.add(j), _mm512_add_ps(o, _mm512_mul_ps(va, b)));
                    j += 16;
                }
                while j < n {
                    *op.add(j) += av * *b_row.add(j);
                    j += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(rows: usize, cols: usize, f: impl FnMut(usize, usize) -> f32) -> Matrix {
        Matrix::from_fn(rows, cols, f)
    }

    fn assert_bits_eq(want: &Matrix, got: &Matrix, what: &str) {
        assert_eq!(want.shape(), got.shape(), "{what}: shape");
        for (i, (w, g)) in want.as_slice().iter().zip(got.as_slice()).enumerate() {
            assert_eq!(
                w.to_bits(),
                g.to_bits(),
                "{what}: element {i} differs ({w} vs {g})"
            );
        }
    }

    #[test]
    fn parallelism_clamps_and_merges() {
        assert_eq!(Parallelism::threads(0).thread_count(), 1);
        assert!(Parallelism::serial().is_serial());
        assert!(Parallelism::auto().thread_count() >= 1);
        let merged = Parallelism::threads(2).max(Parallelism::threads(5));
        assert_eq!(merged.thread_count(), 5);
        // Small work stays serial under a plain hint, threads under exact.
        assert_eq!(Parallelism::threads(8).workers(100, 1000), 1);
        assert_eq!(Parallelism::exact_threads(8).workers(100, 1000), 8);
        assert_eq!(Parallelism::exact_threads(8).workers(3, 1000), 3);
        assert_eq!(Parallelism::threads(8).workers(100, 64_000_000), 8);
    }

    #[test]
    fn backend_parsing_and_labels_roundtrip() {
        for b in [
            KernelBackend::Scalar,
            KernelBackend::Blocked,
            KernelBackend::Simd,
        ] {
            assert_eq!(KernelBackend::parse(b.label()), Some(b));
        }
        assert_eq!(KernelBackend::parse(" SIMD "), Some(KernelBackend::Simd));
        assert_eq!(KernelBackend::parse("auto"), Some(KernelBackend::detect()));
        assert_eq!(KernelBackend::parse("mmx"), None);
        // detect() never picks Scalar, and only picks Simd when the CPU has it.
        match KernelBackend::detect() {
            KernelBackend::Simd => assert!(KernelBackend::simd_available()),
            KernelBackend::Blocked => assert!(!KernelBackend::simd_available()),
            KernelBackend::Scalar => panic!("detect() must not choose Scalar"),
        }
        assert!(["avx512", "avx2", "none"].contains(&KernelBackend::simd_support()));
    }

    #[test]
    fn backend_pinning_merges_and_survives_serial_worker() {
        let pinned = Parallelism::threads(2).with_backend(KernelBackend::Scalar);
        assert_eq!(pinned.backend(), KernelBackend::Scalar);
        assert_eq!(pinned.pinned_backend(), Some(KernelBackend::Scalar));
        assert_eq!(Parallelism::serial().pinned_backend(), None);
        // Unpinned resolves the process default.
        assert_eq!(
            Parallelism::serial().backend(),
            KernelBackend::default_backend()
        );
        // max(): self's pin wins, any pin beats none; serial_worker keeps it.
        let merged = pinned.max(Parallelism::threads(8));
        assert_eq!(merged.thread_count(), 8);
        assert_eq!(merged.pinned_backend(), Some(KernelBackend::Scalar));
        let other = Parallelism::threads(8).with_backend(KernelBackend::Blocked);
        assert_eq!(
            pinned.max(other).pinned_backend(),
            Some(KernelBackend::Scalar)
        );
        assert_eq!(
            Parallelism::threads(8).max(other).pinned_backend(),
            Some(KernelBackend::Blocked)
        );
        let worker = merged.serial_worker();
        assert!(worker.is_serial());
        assert_eq!(worker.pinned_backend(), Some(KernelBackend::Scalar));
    }

    #[test]
    fn every_backend_matches_scalar_reference() {
        let a = filled(11, 19, |r, c| {
            if (r + c) % 3 == 0 {
                0.0
            } else {
                (r as f32).mul_add(0.7, -(c as f32) * 0.2)
            }
        });
        let b = filled(19, 18, |r, c| (r as f32 - c as f32) * 0.05);
        let want_mm = a.matmul(&b);
        let bt = b.transpose();
        let want_mmt = a.matmul_t(&bt);
        let at = a.transpose();
        let want_tmm = at.t_matmul(&b);
        for backend in [
            KernelBackend::Scalar,
            KernelBackend::Blocked,
            KernelBackend::Simd,
        ] {
            for t in [1, 3] {
                let par = Parallelism::exact_threads(t).with_backend(backend);
                let what = format!("{}/t={t}", backend.label());
                assert_bits_eq(&want_mm, &a.matmul_with(&b, par), &format!("matmul {what}"));
                assert_bits_eq(
                    &want_mmt,
                    &a.matmul_t_with(&bt, par),
                    &format!("matmul_t {what}"),
                );
                assert_bits_eq(
                    &want_tmm,
                    &at.t_matmul_with(&b, par),
                    &format!("t_matmul {what}"),
                );
            }
        }
    }

    #[test]
    fn blocked_matches_scalar_on_mixed_shapes() {
        for (m, k, n) in [(1, 1, 1), (3, 5, 2), (9, 13, 17), (4, 8, 8), (7, 3, 9)] {
            let a = filled(m, k, |r, c| {
                if (r + c) % 3 == 0 {
                    0.0
                } else {
                    (r as f32 - 0.5) * 0.3 + c as f32 * 0.1
                }
            });
            let b = filled(k, n, |r, c| (r * n + c) as f32 * 0.01 - 0.7);
            assert_bits_eq(
                &a.matmul(&b),
                &a.matmul_with(&b, Parallelism::serial()),
                "matmul",
            );
            let bt = b.transpose();
            assert_bits_eq(
                &a.matmul_t(&bt),
                &a.matmul_t_with(&bt, Parallelism::serial()),
                "matmul_t",
            );
            let at = a.transpose();
            assert_bits_eq(
                &at.t_matmul(&b),
                &at.t_matmul_with(&b, Parallelism::serial()),
                "t_matmul",
            );
        }
    }

    #[test]
    fn threaded_matches_scalar_for_every_worker_count() {
        let a = filled(13, 21, |r, c| if c % 4 == 0 { 0.0 } else { (r + c) as f32 });
        let b = filled(21, 10, |r, c| (r as f32 - c as f32) * 0.25);
        let want = a.matmul(&b);
        for t in [1, 2, 3, 4, 7, 16] {
            assert_bits_eq(
                &want,
                &a.matmul_with(&b, Parallelism::exact_threads(t)),
                "threads",
            );
        }
    }

    #[test]
    fn degenerate_shapes_are_handled() {
        let a = Matrix::zeros(0, 4);
        let b = Matrix::zeros(4, 3);
        assert_eq!(
            a.matmul_with(&b, Parallelism::exact_threads(4)).shape(),
            (0, 3)
        );
        let a = Matrix::zeros(3, 0);
        let b = Matrix::zeros(0, 2);
        let c = a.matmul_with(&b, Parallelism::exact_threads(2));
        assert_eq!(c.shape(), (3, 2));
        assert!(c.as_slice().iter().all(|&v| v == 0.0));
        let a = Matrix::zeros(2, 5);
        let b = Matrix::zeros(5, 0);
        assert_eq!(
            a.matmul_with(&b, Parallelism::exact_threads(2)).shape(),
            (2, 0)
        );
    }

    #[test]
    fn nonfinite_inputs_propagate_identically() {
        let a = filled(5, 6, |r, c| match (r + c) % 4 {
            0 => 0.0,
            1 => 1.5,
            _ => -0.25,
        });
        let mut b = filled(6, 5, |r, c| (r * 5 + c) as f32 * 0.1);
        b.set(2, 3, f32::NAN);
        b.set(4, 0, f32::INFINITY);
        let want = a.matmul(&b);
        assert!(want.as_slice().iter().any(|v| v.is_nan()));
        for t in [1, 2, 4] {
            assert_bits_eq(
                &want,
                &a.matmul_with(&b, Parallelism::exact_threads(t)),
                "nan matmul",
            );
        }
    }
}
