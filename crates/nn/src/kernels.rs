//! Cache-blocked and multi-threaded compute kernels, **bit-identical** to the
//! scalar kernels in [`crate::matrix`] by construction.
//!
//! Every model in this workspace funnels through three matrix products:
//! `matmul` (forward layers), `t_matmul` (weight gradients), and `matmul_t`
//! (input gradients). The scalar reference kernels accumulate each output
//! element as a running `f32` sum over the inner dimension in ascending
//! order, skipping `a == 0.0` terms only when the right-hand operand is
//! entirely finite (see [`crate::matrix::Matrix::matmul`]). The variants here
//! keep **exactly that per-element operation sequence**:
//!
//! * the *blocked* kernels tile the output into register accumulators
//!   (`MR × NR` micro-tiles for `matmul`, 4-wide dot products for
//!   `matmul_t`), which changes memory traffic but not the order in which any
//!   single output element receives its contributions;
//! * the *threaded* kernels partition **output rows** across
//!   `std::thread::scope` workers; every element is still computed by the
//!   same blocked code on one thread, so the result is independent of the
//!   worker count.
//!
//! Floating-point addition is deterministic for a fixed operand order, so
//! "same per-element order" ⇒ "same bits" — for finite values, signed zeros,
//! and NaN/∞ alike. The property tests in `tests/kernel_identity.rs` pin this
//! across rectangular and degenerate shapes, thread counts, and non-finite
//! inputs; `exp_kernel_bench` gates it again at benchmark scale.
//!
//! [`Parallelism`] is the knob the rest of the system plumbs through
//! (trainer minibatches, CardNet batch estimation, the serve worker pool,
//! `report::evaluate`): a worker-count hint that the kernels clamp by the
//! number of output rows and by a minimum useful work size, so callers can
//! pass one config everywhere without tiny products paying thread-spawn
//! overhead.

use crate::matrix::Matrix;

/// Rows per register micro-tile in the blocked `matmul`.
const MR: usize = 4;
/// Columns per register micro-tile in the blocked `matmul` (two 8-lane f32
/// vectors — fixed width so the inner loops vectorize).
const NR: usize = 16;

/// Minimum multiply-adds a worker thread must have before the kernels spawn
/// it. The kernels run at tens of GFLOP/s, so 4M MACs ≈ 100–200 µs of work —
/// comfortably above a `thread::scope` spawn+join (~20 µs), which keeps
/// threading from ever losing to its own overhead on small products.
/// Callers that need fine-grained parallelism regardless (tests, coarse
/// per-row fan-outs that amortize one spawn over many kernel calls) use
/// [`Parallelism::exact_threads`] or partition above the kernel layer.
const MIN_WORK_PER_THREAD: usize = 4_000_000;

/// How many worker threads the compute kernels may use.
///
/// A `Parallelism` is a *hint*: kernels clamp it by the number of output rows
/// (each row is computed entirely by one worker — that is what makes the
/// result bit-identical) and, unless constructed with
/// [`Parallelism::exact_threads`], by a minimum-work-per-thread threshold so
/// small products stay serial.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Parallelism {
    threads: usize,
    /// Skip the minimum-work clamp (tests and micro-benchmarks).
    force: bool,
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::serial()
    }
}

impl Parallelism {
    /// Single-threaded (the default everywhere).
    pub const fn serial() -> Parallelism {
        Parallelism {
            threads: 1,
            force: false,
        }
    }

    /// At most `n` worker threads (`0` is treated as `1`).
    pub fn threads(n: usize) -> Parallelism {
        Parallelism {
            threads: n.max(1),
            force: false,
        }
    }

    /// One worker per available hardware thread.
    pub fn auto() -> Parallelism {
        Parallelism::threads(
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// Exactly `n` workers whenever the shape allows it, ignoring the
    /// minimum-work clamp. Meant for tests and benchmarks that must exercise
    /// the threaded path on small inputs; production callers want
    /// [`Parallelism::threads`].
    pub fn exact_threads(n: usize) -> Parallelism {
        Parallelism {
            threads: n.max(1),
            force: true,
        }
    }

    /// The configured worker-count hint.
    pub fn thread_count(&self) -> usize {
        self.threads
    }

    pub fn is_serial(&self) -> bool {
        self.threads == 1
    }

    /// The larger of two hints (config merging: an estimator's own setting
    /// vs. a per-call override).
    pub fn max(self, other: Parallelism) -> Parallelism {
        Parallelism {
            threads: self.threads.max(other.threads),
            force: self.force || other.force,
        }
    }

    /// Effective worker count for `tasks` independent tasks totalling `work`
    /// multiply-adds: the hint, clamped by the task count and (unless
    /// constructed with [`Parallelism::exact_threads`]) by the minimum
    /// useful work per thread.
    pub fn workers(&self, tasks: usize, work: usize) -> usize {
        let cap = if self.force {
            tasks
        } else {
            tasks.min((work / MIN_WORK_PER_THREAD).max(1))
        };
        self.threads.min(cap)
    }
}

/// Partitions a row-major buffer of `row_len`-wide rows into contiguous row
/// ranges and runs `task(first_row, row_chunk)` on each — on the calling
/// thread when `workers <= 1`, else across `std::thread::scope` workers (the
/// calling thread takes the first chunk instead of idling).
///
/// Each row is handed to exactly one worker, which is what lets higher-level
/// fan-outs (per-distance encoder passes, per-query evaluation) stay
/// bit-identical to their serial order.
pub fn partition_rows<F>(out: &mut [f32], row_len: usize, workers: usize, task: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    if row_len == 0 || out.is_empty() {
        task(0, out);
        return;
    }
    let rows = out.len() / row_len;
    let workers = workers.clamp(1, rows.max(1));
    if workers <= 1 {
        task(0, out);
        return;
    }
    let chunk_rows = rows.div_ceil(workers);
    let mut chunks = out.chunks_mut(chunk_rows * row_len).enumerate();
    let first = chunks.next();
    std::thread::scope(|s| {
        for (t, chunk) in chunks {
            let task = &task;
            s.spawn(move || task(t * chunk_rows, chunk));
        }
        if let Some((t, chunk)) = first {
            task(t * chunk_rows, chunk);
        }
    });
}

impl Matrix {
    /// `self @ other` through the blocked (and, when `par` allows, threaded)
    /// kernel. Bit-identical to [`Matrix::matmul`] for every input.
    pub fn matmul_with(&self, other: &Matrix, par: Parallelism) -> Matrix {
        assert_eq!(
            self.cols(),
            other.rows(),
            "matmul shape mismatch: {}x{} @ {}x{}",
            self.rows(),
            self.cols(),
            other.rows(),
            other.cols()
        );
        // Same batch-level finiteness rule as the scalar kernel: the sparse
        // skip is only sound when no skipped term could hide a 0·NaN / 0·∞.
        let skip_zeros = other.all_finite();
        let mut out = Matrix::zeros(self.rows(), other.cols());
        let n = other.cols();
        let k = self.cols();
        // Per-call kernel choice — both orders are bit-identical, so this is
        // purely a throughput decision: a sparse left operand (binary
        // features, post-ReLU activations) favors the saxpy order whose zero
        // skip drops whole rows of work; a dense one favors register tiles.
        let sparse_left = skip_zeros && {
            let nonzero = self.as_slice().iter().filter(|&&v| v != 0.0).count();
            4 * nonzero < 3 * self.len().max(1)
        };
        let work = self.rows() * k * n;
        let workers = par.workers(self.rows(), work);
        partition_rows(out.as_mut_slice(), n, workers, |first_row, chunk| {
            if sparse_left {
                matmul_rows_saxpy(self.as_slice(), k, other.as_slice(), n, first_row, chunk);
            } else {
                matmul_rows(
                    self.as_slice(),
                    k,
                    other.as_slice(),
                    n,
                    first_row,
                    chunk,
                    skip_zeros,
                );
            }
        });
        out
    }

    /// `selfᵀ @ other` through the row-partitioned kernel. Bit-identical to
    /// [`Matrix::t_matmul`] for every input.
    pub fn t_matmul_with(&self, other: &Matrix, par: Parallelism) -> Matrix {
        assert_eq!(self.rows(), other.rows(), "t_matmul shape mismatch");
        let skip_zeros = other.all_finite();
        let mut out = Matrix::zeros(self.cols(), other.cols());
        let n = other.cols();
        let k = self.cols();
        let samples = self.rows();
        let work = samples * k * n;
        let workers = par.workers(k, work);
        partition_rows(out.as_mut_slice(), n, workers, |first_row, chunk| {
            t_matmul_rows(
                self.as_slice(),
                k,
                other.as_slice(),
                n,
                samples,
                first_row,
                chunk,
                skip_zeros,
            );
        });
        out
    }

    /// `self @ otherᵀ` through the blocked/threaded kernel. Bit-identical to
    /// [`Matrix::matmul_t`] for every input.
    pub fn matmul_t_with(&self, other: &Matrix, par: Parallelism) -> Matrix {
        assert_eq!(self.cols(), other.cols(), "matmul_t shape mismatch");
        let mut out = Matrix::zeros(self.rows(), other.rows());
        let n = other.rows();
        let k = self.cols();
        let work = self.rows() * k * n;
        let workers = par.workers(self.rows(), work);
        partition_rows(out.as_mut_slice(), n, workers, |first_row, chunk| {
            matmul_t_rows(self.as_slice(), k, other.as_slice(), n, first_row, chunk);
        });
        out
    }
}

/// Blocked `matmul` over output rows `first_row ..` of `a @ b`, writing into
/// `out` (a contiguous chunk of the output, `len = rows_here * n`).
///
/// Register micro-tiles of `MR × NR` accumulators; the inner dimension `k`
/// runs ascending over the *full* range for each tile, and the zero skip is
/// decided per `(row, k)` exactly like the scalar kernel — so each output
/// element sees the identical sequence of `f32` additions.
///
/// All three row kernels take raw slices + dimensions rather than `&Matrix`
/// deliberately: slice parameters carry `noalias` guarantees at the function
/// boundary, while a heap buffer loaded through a struct reference does not
/// — and without that LLVM refuses to vectorize the inner tile loops once
/// the kernel is reachable from the threaded fan-out (measured ~4× slower).
fn matmul_rows(
    ad: &[f32],
    kk: usize,
    bd: &[f32],
    n: usize,
    first_row: usize,
    out: &mut [f32],
    skip_zeros: bool,
) {
    if n == 0 {
        return;
    }
    let rows = out.len() / n;
    let a_row = |r: usize| -> &[f32] { &ad[r * kk..(r + 1) * kk] };
    let mut r = 0;
    while r + MR <= rows {
        let a_rows: [&[f32]; MR] = std::array::from_fn(|i| a_row(first_row + r + i));
        matmul_row_block::<MR>(a_rows, bd, kk, n, &mut out[r * n..(r + MR) * n], skip_zeros);
        r += MR;
    }
    while r < rows {
        matmul_row_block::<1>(
            [a_row(first_row + r)],
            bd,
            kk,
            n,
            &mut out[r * n..(r + 1) * n],
            skip_zeros,
        );
        r += 1;
    }
}

/// The reference kernel's i-k-j saxpy order restricted to a row range (the
/// sparse-left dispatch of [`Matrix::matmul_with`]). Zero skip always on —
/// this path is only chosen when `other` is all-finite. Per-element
/// accumulation order matches [`Matrix::matmul`] exactly.
fn matmul_rows_saxpy(
    ad: &[f32],
    kk: usize,
    bd: &[f32],
    n: usize,
    first_row: usize,
    out: &mut [f32],
) {
    if n == 0 {
        return;
    }
    let rows = out.len() / n;
    for r in 0..rows {
        let a_row = &ad[(first_row + r) * kk..(first_row + r + 1) * kk];
        let out_row = &mut out[r * n..(r + 1) * n];
        for (k, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &bd[k * n..k * n + n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// `M` rows of `a @ b` into `out` (`M * n` floats): fixed-width `M × NR`
/// register tiles over full column tiles, a dynamic-width tail for the last
/// partial tile. Per output element the accumulation is ascending `k` with
/// the scalar kernel's zero-skip decision — identical op sequence, identical
/// bits.
#[inline]
fn matmul_row_block<const M: usize>(
    a_rows: [&[f32]; M],
    bd: &[f32],
    kk: usize,
    n: usize,
    out: &mut [f32],
    skip_zeros: bool,
) {
    let mut j0 = 0;
    while j0 + NR <= n {
        let mut acc = [[0.0f32; NR]; M];
        for k in 0..kk {
            let bt: &[f32; NR] = bd[k * n + j0..k * n + j0 + NR]
                .try_into()
                .expect("NR-wide tile");
            for (acc_row, a_row) in acc.iter_mut().zip(&a_rows) {
                let av = a_row[k];
                if skip_zeros && av == 0.0 {
                    continue;
                }
                for (o, &bv) in acc_row.iter_mut().zip(bt) {
                    *o += av * bv;
                }
            }
        }
        for (i, acc_row) in acc.iter().enumerate() {
            out[i * n + j0..i * n + j0 + NR].copy_from_slice(acc_row);
        }
        j0 += NR;
    }
    if j0 < n {
        let jw = n - j0;
        let mut acc = [[0.0f32; NR]; M];
        for k in 0..kk {
            let bt = &bd[k * n + j0..k * n + j0 + jw];
            for (acc_row, a_row) in acc.iter_mut().zip(&a_rows) {
                let av = a_row[k];
                if skip_zeros && av == 0.0 {
                    continue;
                }
                for (o, &bv) in acc_row[..jw].iter_mut().zip(bt) {
                    *o += av * bv;
                }
            }
        }
        for (i, acc_row) in acc.iter().enumerate() {
            out[i * n + j0..i * n + j0 + jw].copy_from_slice(&acc_row[..jw]);
        }
    }
}

/// `aᵀ @ b` restricted to output rows `first_row ..` (columns of `a`).
/// `ad` is `samples × kk`, `bd` is `samples × n`.
///
/// The scalar kernel accumulates output row `k` as contributions in
/// ascending sample order `r`; restricting `k` to this worker's range keeps
/// that per-element order untouched.
#[allow(clippy::too_many_arguments)] // slice+dims boundary, see matmul_rows
fn t_matmul_rows(
    ad: &[f32],
    kk: usize,
    bd: &[f32],
    n: usize,
    samples: usize,
    first_row: usize,
    out: &mut [f32],
    skip_zeros: bool,
) {
    if n == 0 {
        return;
    }
    let rows_here = out.len() / n;
    if rows_here == 0 {
        return;
    }
    for r in 0..samples {
        let a_seg = &ad[r * kk + first_row..r * kk + first_row + rows_here];
        let b_row = &bd[r * n..r * n + n];
        for (k_local, &av) in a_seg.iter().enumerate() {
            if skip_zeros && av == 0.0 {
                continue;
            }
            let out_row = &mut out[k_local * n..k_local * n + n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// `a @ bᵀ` over output rows `first_row ..`: independent register-accumulated
/// dot products, four output columns at a time so each `a` row load is
/// reused. Ascending-`k` accumulation per element, like the scalar kernel.
/// `ad` is `rows × kk`, `bd` is `n × kk`.
fn matmul_t_rows(ad: &[f32], kk: usize, bd: &[f32], n: usize, first_row: usize, out: &mut [f32]) {
    if n == 0 {
        return;
    }
    let rows = out.len() / n;
    for r in 0..rows {
        let a_row = &ad[(first_row + r) * kk..(first_row + r + 1) * kk];
        let out_row = &mut out[r * n..(r + 1) * n];
        let mut j = 0;
        while j + 4 <= n {
            let b0 = &bd[j * kk..(j + 1) * kk];
            let b1 = &bd[(j + 1) * kk..(j + 2) * kk];
            let b2 = &bd[(j + 2) * kk..(j + 3) * kk];
            let b3 = &bd[(j + 3) * kk..(j + 4) * kk];
            let (mut acc0, mut acc1, mut acc2, mut acc3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            for (k, &av) in a_row.iter().enumerate() {
                acc0 += av * b0[k];
                acc1 += av * b1[k];
                acc2 += av * b2[k];
                acc3 += av * b3[k];
            }
            out_row[j] = acc0;
            out_row[j + 1] = acc1;
            out_row[j + 2] = acc2;
            out_row[j + 3] = acc3;
            j += 4;
        }
        while j < n {
            let b_row = &bd[j * kk..(j + 1) * kk];
            let mut acc = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            out_row[j] = acc;
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(rows: usize, cols: usize, f: impl FnMut(usize, usize) -> f32) -> Matrix {
        Matrix::from_fn(rows, cols, f)
    }

    fn assert_bits_eq(want: &Matrix, got: &Matrix, what: &str) {
        assert_eq!(want.shape(), got.shape(), "{what}: shape");
        for (i, (w, g)) in want.as_slice().iter().zip(got.as_slice()).enumerate() {
            assert_eq!(
                w.to_bits(),
                g.to_bits(),
                "{what}: element {i} differs ({w} vs {g})"
            );
        }
    }

    #[test]
    fn parallelism_clamps_and_merges() {
        assert_eq!(Parallelism::threads(0).thread_count(), 1);
        assert!(Parallelism::serial().is_serial());
        assert!(Parallelism::auto().thread_count() >= 1);
        let merged = Parallelism::threads(2).max(Parallelism::threads(5));
        assert_eq!(merged.thread_count(), 5);
        // Small work stays serial under a plain hint, threads under exact.
        assert_eq!(Parallelism::threads(8).workers(100, 1000), 1);
        assert_eq!(Parallelism::exact_threads(8).workers(100, 1000), 8);
        assert_eq!(Parallelism::exact_threads(8).workers(3, 1000), 3);
        assert_eq!(Parallelism::threads(8).workers(100, 64_000_000), 8);
    }

    #[test]
    fn blocked_matches_scalar_on_mixed_shapes() {
        for (m, k, n) in [(1, 1, 1), (3, 5, 2), (9, 13, 17), (4, 8, 8), (7, 3, 9)] {
            let a = filled(m, k, |r, c| {
                if (r + c) % 3 == 0 {
                    0.0
                } else {
                    (r as f32 - 0.5) * 0.3 + c as f32 * 0.1
                }
            });
            let b = filled(k, n, |r, c| (r * n + c) as f32 * 0.01 - 0.7);
            assert_bits_eq(
                &a.matmul(&b),
                &a.matmul_with(&b, Parallelism::serial()),
                "matmul",
            );
            let bt = b.transpose();
            assert_bits_eq(
                &a.matmul_t(&bt),
                &a.matmul_t_with(&bt, Parallelism::serial()),
                "matmul_t",
            );
            let at = a.transpose();
            assert_bits_eq(
                &at.t_matmul(&b),
                &at.t_matmul_with(&b, Parallelism::serial()),
                "t_matmul",
            );
        }
    }

    #[test]
    fn threaded_matches_scalar_for_every_worker_count() {
        let a = filled(13, 21, |r, c| if c % 4 == 0 { 0.0 } else { (r + c) as f32 });
        let b = filled(21, 10, |r, c| (r as f32 - c as f32) * 0.25);
        let want = a.matmul(&b);
        for t in [1, 2, 3, 4, 7, 16] {
            assert_bits_eq(
                &want,
                &a.matmul_with(&b, Parallelism::exact_threads(t)),
                "threads",
            );
        }
    }

    #[test]
    fn degenerate_shapes_are_handled() {
        let a = Matrix::zeros(0, 4);
        let b = Matrix::zeros(4, 3);
        assert_eq!(
            a.matmul_with(&b, Parallelism::exact_threads(4)).shape(),
            (0, 3)
        );
        let a = Matrix::zeros(3, 0);
        let b = Matrix::zeros(0, 2);
        let c = a.matmul_with(&b, Parallelism::exact_threads(2));
        assert_eq!(c.shape(), (3, 2));
        assert!(c.as_slice().iter().all(|&v| v == 0.0));
        let a = Matrix::zeros(2, 5);
        let b = Matrix::zeros(5, 0);
        assert_eq!(
            a.matmul_with(&b, Parallelism::exact_threads(2)).shape(),
            (2, 0)
        );
    }

    #[test]
    fn nonfinite_inputs_propagate_identically() {
        let a = filled(5, 6, |r, c| match (r + c) % 4 {
            0 => 0.0,
            1 => 1.5,
            _ => -0.25,
        });
        let mut b = filled(6, 5, |r, c| (r * 5 + c) as f32 * 0.1);
        b.set(2, 3, f32::NAN);
        b.set(4, 0, f32::INFINITY);
        let want = a.matmul(&b);
        assert!(want.as_slice().iter().any(|v| v.is_nan()));
        for t in [1, 2, 4] {
            assert_bits_eq(
                &want,
                &a.matmul_with(&b, Parallelism::exact_threads(t)),
                "nan matmul",
            );
        }
    }
}
