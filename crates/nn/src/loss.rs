//! Loss functions used by the estimators.
//!
//! The paper's regression loss is the **mean squared logarithmic error**
//! (MSLE, §6.2): it approximates MAPE and compresses the wide output range of
//! cardinalities. All losses here come in two forms: a tape builder (for
//! training) and a plain evaluation (for validation / reporting).

use crate::matrix::Matrix;
use crate::tape::{Tape, Var};

/// Builds `mean((ln(1+pred) - ln(1+target))^2)` on the tape.
pub fn msle(tape: &mut Tape, pred: Var, target: Var) -> Var {
    let lp = tape.ln1p(pred);
    let lt = tape.ln1p(target);
    let diff = tape.sub(lp, lt);
    let sq = tape.square(diff);
    tape.mean_all(sq)
}

/// Builds a column-weighted MSLE: squared log-differences are scaled by the
/// `1 x m` row `weights` before averaging over rows, then summed over columns.
/// With `weights = P(τ)` this is the `E_{τ~P}[L_g]` term of Eq. 2.
pub fn weighted_msle(tape: &mut Tape, pred: Var, target: Var, weights: Var) -> Var {
    let lp = tape.ln1p(pred);
    let lt = tape.ln1p(target);
    let diff = tape.sub(lp, lt);
    let sq = tape.square(diff);
    let weighted = tape.mul_row(sq, weights);
    let total = tape.sum_all(weighted);
    let n = tape.value(pred).rows().max(1) as f32;
    tape.scale(total, 1.0 / n)
}

/// Builds `mean((pred - target)^2)` on the tape.
pub fn mse(tape: &mut Tape, pred: Var, target: Var) -> Var {
    let diff = tape.sub(pred, target);
    let sq = tape.square(diff);
    tape.mean_all(sq)
}

/// Builds mean binary cross-entropy `-(t·ln(p) + (1-t)·ln(1-p))` on the tape.
/// `pred` must be in `(0, 1)` (e.g. sigmoid output).
pub fn bce(tape: &mut Tape, pred: Var, target: Var) -> Var {
    let eps = 1e-6;
    let ln_p = tape.ln_eps(pred, eps);
    let pos = tape.mul(target, ln_p);
    let one_minus_p = tape.scale(pred, -1.0);
    let one_minus_p = tape.add_scalar(one_minus_p, 1.0);
    let ln_not_p = tape.ln_eps(one_minus_p, eps);
    let one_minus_t = tape.scale(target, -1.0);
    let one_minus_t = tape.add_scalar(one_minus_t, 1.0);
    let neg = tape.mul(one_minus_t, ln_not_p);
    let sum = tape.add(pos, neg);
    let mean = tape.mean_all(sum);
    tape.scale(mean, -1.0)
}

/// Evaluates MSLE without a tape.
pub fn msle_value(pred: &Matrix, target: &Matrix) -> f32 {
    assert_eq!(pred.shape(), target.shape());
    let n = pred.len().max(1) as f32;
    pred.as_slice()
        .iter()
        .zip(target.as_slice())
        .map(|(&p, &t)| {
            let d = (1.0 + p.max(0.0)).ln() - (1.0 + t.max(0.0)).ln();
            d * d
        })
        .sum::<f32>()
        / n
}

/// Evaluates per-column MSLE (one value per column) without a tape.
/// Used by dynamic training to track the loss of each distance value.
pub fn msle_per_column(pred: &Matrix, target: &Matrix) -> Vec<f32> {
    assert_eq!(pred.shape(), target.shape());
    let (rows, cols) = pred.shape();
    let mut out = vec![0.0f32; cols];
    for r in 0..rows {
        let (pr, tr) = (pred.row(r), target.row(r));
        for c in 0..cols {
            let d = (1.0 + pr[c].max(0.0)).ln() - (1.0 + tr[c].max(0.0)).ln();
            out[c] += d * d;
        }
    }
    let n = rows.max(1) as f32;
    out.iter_mut().for_each(|v| *v /= n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamStore;

    #[test]
    fn msle_is_zero_on_exact_match() {
        let m = Matrix::row_vector(vec![0.0, 5.0, 100.0]);
        assert!(msle_value(&m, &m) < 1e-9);
    }

    #[test]
    fn msle_tape_matches_value_form() {
        let pred = Matrix::row_vector(vec![3.0, 10.0]);
        let target = Matrix::row_vector(vec![5.0, 9.0]);
        let mut t = Tape::new();
        let p = t.input(pred.clone());
        let y = t.input(target.clone());
        let l = msle(&mut t, p, y);
        let tape_val = t.value(l).get(0, 0);
        let direct = msle_value(&pred, &target);
        assert!((tape_val - direct).abs() < 1e-6);
    }

    #[test]
    fn weighted_msle_respects_weights() {
        // Column 0 has error, column 1 matches; zero weight on column 0
        // must zero the loss.
        let pred = Matrix::from_vec(2, 2, vec![10.0, 4.0, 20.0, 7.0]);
        let target = Matrix::from_vec(2, 2, vec![1.0, 4.0, 2.0, 7.0]);
        let mut t = Tape::new();
        let p = t.input(pred);
        let y = t.input(target);
        let w = t.input(Matrix::row_vector(vec![0.0, 1.0]));
        let l = weighted_msle(&mut t, p, y, w);
        assert!(t.value(l).get(0, 0) < 1e-9);
    }

    #[test]
    fn bce_penalizes_confident_mistakes() {
        let target = Matrix::row_vector(vec![1.0, 0.0]);
        let good = Matrix::row_vector(vec![0.99, 0.01]);
        let bad = Matrix::row_vector(vec![0.01, 0.99]);
        let eval = |pred: &Matrix| {
            let mut t = Tape::new();
            let p = t.input(pred.clone());
            let y = t.input(target.clone());
            let l = bce(&mut t, p, y);
            t.value(l).get(0, 0)
        };
        assert!(eval(&good) < 0.1);
        assert!(eval(&bad) > 2.0);
    }

    #[test]
    fn per_column_msle_averages_rows() {
        let pred = Matrix::from_vec(2, 2, vec![1.0, 0.0, 1.0, 0.0]);
        let target = Matrix::from_vec(2, 2, vec![1.0, 3.0, 1.0, 3.0]);
        let per = msle_per_column(&pred, &target);
        assert!(per[0] < 1e-9);
        let expect = (1.0f32.ln() - 4.0f32.ln()).powi(2);
        assert!((per[1] - expect).abs() < 1e-5);
    }

    #[test]
    fn msle_gradient_flows() {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::full(1, 1, 0.0));
        let mut t = Tape::new();
        let p = t.param(&store, w);
        let p = t.relu(p);
        let y = t.input(Matrix::full(1, 1, 10.0));
        let l = msle(&mut t, p, y);
        t.backward(l, &mut store);
        // Prediction is below target, so the gradient must push w upward
        // (negative gradient since loss decreases as w increases)...
        // At w=0 the ReLU subgradient is 0; nudge via value check instead.
        let g = store.grad(w).get(0, 0);
        assert!(g <= 0.0, "gradient {g} should not push w below the target");
    }
}
