//! Contiguous row-major `f32` matrices.
//!
//! Only the kernels needed by the estimators are implemented. Shapes are
//! validated with `assert!` (they are programming errors, not runtime inputs),
//! and hot loops index slices so bounds checks vanish after the initial
//! assertion.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense row-major matrix of `f32`.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Matrix {
    /// A `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A `rows x cols` matrix filled with `v`.
    pub fn full(rows: usize, cols: usize, v: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![v; rows * cols],
        }
    }

    /// Builds a matrix from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Wraps an existing buffer; `data.len()` must equal `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer does not match {rows}x{cols}"
        );
        Matrix { rows, cols, data }
    }

    /// A `1 x n` row vector.
    pub fn row_vector(data: Vec<f32>) -> Self {
        Matrix {
            rows: 1,
            cols: data.len(),
            data,
        }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        let start = r * self.cols;
        &self.data[start..start + self.cols]
    }

    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        let start = r * self.cols;
        &mut self.data[start..start + self.cols]
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Whether every element is finite (no NaN, no ±∞). One linear scan —
    /// the batch-level check that makes the sparse zero-skip in
    /// [`Matrix::matmul`] / [`Matrix::t_matmul`] sound.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// `self @ other` — the workhorse. i-k-j loop order keeps the inner loop
    /// a contiguous saxpy that LLVM auto-vectorizes.
    ///
    /// Binary inputs are sparse, so `a == 0.0` terms are skipped — but only
    /// after a batch-level finiteness check of `other`: skipping `0 · NaN`
    /// or `0 · ∞` would silently launder a diverged operand into a healthy
    /// zero, so when `other` carries any non-finite value the kernel runs
    /// dense and lets IEEE propagation do its job.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} @ {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let skip_zeros = other.all_finite();
        let mut out = Matrix::zeros(self.rows, other.cols);
        let n = other.cols;
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (k, &a) in a_row.iter().enumerate() {
                if skip_zeros && a == 0.0 {
                    continue; // binary inputs are sparse; skipping zeros is a real win
                }
                let b_row = &other.data[k * n..k * n + n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `selfᵀ @ other` without materializing the transpose. The sparse
    /// zero-skip follows the same finiteness rule as [`Matrix::matmul`].
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "t_matmul shape mismatch");
        let skip_zeros = other.all_finite();
        let mut out = Matrix::zeros(self.cols, other.cols);
        let n = other.cols;
        for r in 0..self.rows {
            let a_row = self.row(r);
            let b_row = other.row(r);
            for (k, &a) in a_row.iter().enumerate() {
                if skip_zeros && a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[k * n..k * n + n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self @ otherᵀ` without materializing the transpose.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_t shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = other.row(j);
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                *o = acc;
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Element-wise map into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Element-wise combine with another matrix of identical shape.
    pub fn zip(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "zip shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for empty matrices).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Column sums as a `1 x cols` row vector.
    pub fn col_sums(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            let row = self.row(r);
            for (o, &v) in out.data.iter_mut().zip(row) {
                *o += v;
            }
        }
        out
    }

    /// Horizontally concatenates matrices with equal row counts.
    pub fn hconcat(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "hconcat of nothing");
        let rows = parts[0].rows;
        assert!(parts.iter().all(|p| p.rows == rows), "hconcat row mismatch");
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let mut at = 0;
            let out_row = out.row_mut(r);
            for p in parts {
                out_row[at..at + p.cols].copy_from_slice(p.row(r));
                at += p.cols;
            }
        }
        out
    }

    /// Vertically concatenates matrices with equal column counts.
    pub fn vconcat(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "vconcat of nothing");
        let cols = parts[0].cols;
        assert!(parts.iter().all(|p| p.cols == cols), "vconcat col mismatch");
        let rows: usize = parts.iter().map(|p| p.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for p in parts {
            data.extend_from_slice(&p.data);
        }
        Matrix { rows, cols, data }
    }

    /// Copies columns `[start, end)` into a new matrix.
    pub fn slice_cols(&self, start: usize, end: usize) -> Matrix {
        assert!(start <= end && end <= self.cols, "slice_cols out of range");
        let width = end - start;
        let mut out = Matrix::zeros(self.rows, width);
        for r in 0..self.rows {
            out.row_mut(r).copy_from_slice(&self.row(r)[start..end]);
        }
        out
    }

    /// Copies the listed rows into a new matrix (gather).
    pub fn gather_rows(&self, idx: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(idx.len(), self.cols);
        for (o, &i) in idx.iter().enumerate() {
            out.row_mut(o).copy_from_slice(self.row(i));
        }
        out
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Largest absolute difference to another matrix of the same shape.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!(self.shape(), other.shape());
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn matmul_small() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let i = Matrix::from_fn(2, 2, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn transposed_products_agree_with_explicit_transpose() {
        let a = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 4, &[0.5; 12]);
        let direct = a.t_matmul(&b);
        let explicit = a.transpose().matmul(&b);
        assert!(direct.max_abs_diff(&explicit) < 1e-6);

        let c = m(5, 2, &[0.25; 10]);
        let direct = a.matmul_t(&c);
        let explicit = a.matmul(&c.transpose());
        assert!(direct.max_abs_diff(&explicit) < 1e-6);
    }

    #[test]
    fn hconcat_and_slice_roundtrip() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = m(2, 1, &[9.0, 8.0]);
        let cat = Matrix::hconcat(&[&a, &b]);
        assert_eq!(cat.shape(), (2, 3));
        assert_eq!(cat.row(0), &[1.0, 2.0, 9.0]);
        assert_eq!(cat.slice_cols(0, 2), a);
        assert_eq!(cat.slice_cols(2, 3), b);
    }

    #[test]
    fn vconcat_stacks_rows() {
        let a = m(1, 2, &[1.0, 2.0]);
        let b = m(2, 2, &[3.0, 4.0, 5.0, 6.0]);
        let cat = Matrix::vconcat(&[&a, &b]);
        assert_eq!(cat.shape(), (3, 2));
        assert_eq!(cat.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn col_sums_sum_mean() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.col_sums().as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(a.sum(), 21.0);
        assert!((a.mean() - 3.5).abs() < 1e-6);
    }

    #[test]
    fn gather_rows_picks_rows() {
        let a = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let g = a.gather_rows(&[2, 0]);
        assert_eq!(g.row(0), &[5.0, 6.0]);
        assert_eq!(g.row(1), &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn matmul_propagates_nonfinite_through_zero_terms() {
        // A diverged weight matrix must never masquerade as healthy: the
        // sparse skip may not turn 0·NaN / 0·∞ into silent zeros.
        let a = m(1, 2, &[0.0, 1.0]);
        let b = m(2, 2, &[f32::NAN, f32::INFINITY, 2.0, 3.0]);
        let c = a.matmul(&b);
        assert!(c.get(0, 0).is_nan(), "0·NaN + 1·2 must be NaN");
        assert!(c.get(0, 1).is_nan(), "0·∞ + 1·3 must be NaN");
        // Non-finite values on the *left* already propagate (never skipped).
        let a = m(1, 2, &[f32::NAN, 0.0]);
        let b = m(2, 1, &[1.0, 1.0]);
        assert!(a.matmul(&b).get(0, 0).is_nan());
        // All-finite operands keep the fast sparse path and exact values.
        assert!(m(2, 2, &[0.0, 1.0, 2.0, 3.0]).all_finite());
        assert!(!m(1, 2, &[1.0, f32::NEG_INFINITY]).all_finite());
        let a = m(1, 2, &[0.0, 2.0]);
        let b = m(2, 2, &[5.0, 6.0, 7.0, 8.0]);
        assert_eq!(a.matmul(&b).as_slice(), &[14.0, 16.0]);
    }

    #[test]
    fn t_matmul_propagates_nonfinite_through_zero_terms() {
        // aᵀ @ b with a zero in `a` aligned against an ∞ row of `b`.
        let a = m(2, 1, &[0.0, 1.0]);
        let b = m(2, 2, &[f32::INFINITY, 1.0, 2.0, 3.0]);
        let c = a.t_matmul(&b);
        assert!(c.get(0, 0).is_nan(), "0·∞ + 1·2 must be NaN");
        assert_eq!(c.get(0, 1), 3.0); // 0·1 + 1·3 — the finite column is exact
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = m(1, 3, &[1.0, 1.0, 1.0]);
        let b = m(1, 3, &[1.0, 2.0, 3.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.as_slice(), &[1.5, 2.0, 2.5]);
    }
}
