//! Variational auto-encoder (§5.2.1 of the paper).
//!
//! The representation network Γ embeds the sparse binary vector `x` into a
//! dense latent space and concatenates it back onto `x`:
//! `x' = [x ; VAE(x, ε)]`. Training samples the latent
//! `z = μ + exp(½·logvar) ⊙ ε` (reparameterization trick) so the model
//! generalizes; inference uses the deterministic expectation `E[VAE(x, ε)] = μ`
//! so the overall estimator stays deterministic — a precondition of the
//! monotonicity guarantee (Lemma 2).

use crate::layers::{Activation, Mlp};
use crate::loss;
use crate::matrix::Matrix;
use crate::params::ParamStore;
use crate::rng;
use crate::tape::{Tape, Var};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Hyperparameters of the VAE.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct VaeConfig {
    /// Input (binary vector) dimensionality.
    pub input_dim: usize,
    /// Hidden layer sizes shared by encoder and decoder (paper: 256/128/128,
    /// scaled down for CPU training).
    pub hidden: Vec<usize>,
    /// Latent dimensionality (paper: 32–128 depending on dataset).
    pub latent_dim: usize,
}

impl VaeConfig {
    pub fn new(input_dim: usize, hidden: Vec<usize>, latent_dim: usize) -> Self {
        VaeConfig {
            input_dim,
            hidden,
            latent_dim,
        }
    }
}

/// The VAE: encoder to `(μ, logvar)`, decoder back to Bernoulli logits.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Vae {
    pub config: VaeConfig,
    encoder: Mlp,
    mu_head: Mlp,
    logvar_head: Mlp,
    decoder: Mlp,
}

/// Outcome of a training forward pass.
pub struct VaeForward {
    /// Sampled latent `z` (the representation handed to Γ during training).
    pub z: Var,
    /// Total loss `BCE + β·KL` as a scalar node.
    pub loss: Var,
}

impl Vae {
    /// Registers all VAE parameters into `store`.
    pub fn new(store: &mut ParamStore, r: &mut impl Rng, config: VaeConfig) -> Self {
        // ELU activations, in line with the paper's VAE setup (§9.1.3).
        let enc_out = *config.hidden.last().expect("vae needs >= 1 hidden layer");
        let encoder = Mlp::new(
            store,
            r,
            "vae.enc",
            config.input_dim,
            &config.hidden[..config.hidden.len() - 1],
            enc_out,
            Activation::Elu,
            Activation::Elu,
        );
        let mu_head = Mlp::new(
            store,
            r,
            "vae.mu",
            enc_out,
            &[],
            config.latent_dim,
            Activation::None,
            Activation::None,
        );
        let logvar_head = Mlp::new(
            store,
            r,
            "vae.logvar",
            enc_out,
            &[],
            config.latent_dim,
            Activation::None,
            Activation::None,
        );
        let mut dec_hidden: Vec<usize> = config.hidden.clone();
        dec_hidden.reverse();
        let decoder = Mlp::new(
            store,
            r,
            "vae.dec",
            config.latent_dim,
            &dec_hidden,
            config.input_dim,
            Activation::Elu,
            Activation::Sigmoid,
        );
        Vae {
            config,
            encoder,
            mu_head,
            logvar_head,
            decoder,
        }
    }

    /// Training forward pass: encodes `x`, samples `z`, decodes, and builds the
    /// ELBO loss `BCE(x̂, x) + β·KL(q(z|x) ‖ N(0, I))` on the tape.
    pub fn forward_train(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        x: Var,
        noise_rng: &mut impl Rng,
        beta: f32,
    ) -> VaeForward {
        let n = tape.value(x).rows();
        let h = self.encoder.forward(tape, store, x);
        let mu = self.mu_head.forward(tape, store, h);
        let logvar = self.logvar_head.forward(tape, store, h);

        // z = mu + exp(0.5 * logvar) * eps
        let half_logvar = tape.scale(logvar, 0.5);
        let sigma = tape.exp(half_logvar);
        let mut eps = Matrix::zeros(n, self.config.latent_dim);
        rng::fill_normal(noise_rng, eps.as_mut_slice(), 0.0, 1.0);
        let eps = tape.input(eps);
        let noise = tape.mul(sigma, eps);
        let z = tape.add(mu, noise);

        let x_hat = self.decoder.forward(tape, store, z);
        let recon = loss::bce(tape, x_hat, x);

        // KL = -0.5 * mean(1 + logvar - mu^2 - exp(logvar))
        let mu_sq = tape.square(mu);
        let var = tape.exp(logvar);
        let inner = tape.add_scalar(logvar, 1.0);
        let inner = tape.sub(inner, mu_sq);
        let inner = tape.sub(inner, var);
        let kl = tape.mean_all(inner);
        let kl = tape.scale(kl, -0.5);

        let scaled_kl = tape.scale(kl, beta);
        let total = tape.add(recon, scaled_kl);
        VaeForward { z, loss: total }
    }

    /// Deterministic latent `μ(x)` — the inference-time representation.
    pub fn latent_mean(&self, store: &ParamStore, x: &Matrix) -> Matrix {
        self.latent_mean_with(store, x, crate::kernels::Parallelism::serial())
    }

    /// [`Vae::latent_mean`] with an explicit kernel worker budget
    /// (bit-identical for any `par`).
    pub fn latent_mean_with(
        &self,
        store: &ParamStore,
        x: &Matrix,
        par: crate::kernels::Parallelism,
    ) -> Matrix {
        let h = self.encoder.infer_with(store, x, par);
        self.mu_head.infer_with(store, &h, par)
    }

    /// Builds the deterministic latent on a tape (lets gradients fine-tune the
    /// encoder during estimator training, per the `λ·L_vae` term of Eq. 2).
    pub fn latent_mean_var(&self, tape: &mut Tape, store: &ParamStore, x: Var) -> Var {
        let h = self.encoder.forward(tape, store, x);
        self.mu_head.forward(tape, store, h)
    }

    /// Reconstruction of `x` through the deterministic latent (diagnostics).
    pub fn reconstruct(&self, store: &ParamStore, x: &Matrix) -> Matrix {
        let z = self.latent_mean(store, x);
        self.decoder.infer(store, &z)
    }

    pub fn latent_dim(&self) -> usize {
        self.config.latent_dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Adam, Optimizer};

    fn toy_patterns() -> Matrix {
        // Two well-separated binary prototypes repeated with a flipped bit.
        let a = [1.0, 1.0, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0];
        let b = [0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0];
        let mut rows = Vec::new();
        for i in 0..8 {
            let mut ra = a;
            ra[i] = 1.0 - ra[i];
            rows.extend_from_slice(&ra);
            let mut rb = b;
            rb[i] = 1.0 - rb[i];
            rows.extend_from_slice(&rb);
        }
        Matrix::from_vec(16, 8, rows)
    }

    #[test]
    fn vae_reconstructs_toy_patterns() {
        let mut r = rng::seeded(17);
        let mut store = ParamStore::new();
        let vae = Vae::new(&mut store, &mut r, VaeConfig::new(8, vec![16, 8], 4));
        let x = toy_patterns();
        let mut opt = Adam::new(0.01);
        let mut last_loss = f32::INFINITY;
        for epoch in 0..300 {
            let mut t = Tape::new();
            let xv = t.input(x.clone());
            let fwd = vae.forward_train(&mut t, &store, xv, &mut r, 0.05);
            let l = t.value(fwd.loss).get(0, 0);
            t.backward(fwd.loss, &mut store);
            opt.step(&mut store);
            if epoch == 299 {
                last_loss = l;
            }
        }
        assert!(
            last_loss < 0.55,
            "VAE failed to fit toy data: loss {last_loss}"
        );

        // Reconstruction should round-trip the two prototypes.
        let recon = vae.reconstruct(&store, &x);
        let mut correct = 0;
        for i in 0..x.rows() {
            for j in 0..x.cols() {
                let bit = recon.get(i, j) > 0.5;
                if bit == (x.get(i, j) > 0.5) {
                    correct += 1;
                }
            }
        }
        let acc = correct as f32 / (x.rows() * x.cols()) as f32;
        assert!(acc > 0.8, "reconstruction accuracy {acc}");
    }

    #[test]
    fn latent_mean_is_deterministic() {
        let mut r = rng::seeded(5);
        let mut store = ParamStore::new();
        let vae = Vae::new(&mut store, &mut r, VaeConfig::new(8, vec![8], 3));
        let x = toy_patterns();
        let z1 = vae.latent_mean(&store, &x);
        let z2 = vae.latent_mean(&store, &x);
        assert_eq!(z1, z2);
    }

    #[test]
    fn similar_inputs_have_similar_latents() {
        let mut r = rng::seeded(23);
        let mut store = ParamStore::new();
        let vae = Vae::new(&mut store, &mut r, VaeConfig::new(8, vec![16, 8], 2));
        let x = toy_patterns();
        let mut opt = Adam::new(0.01);
        for _ in 0..300 {
            let mut t = Tape::new();
            let xv = t.input(x.clone());
            let fwd = vae.forward_train(&mut t, &store, xv, &mut r, 0.05);
            t.backward(fwd.loss, &mut store);
            opt.step(&mut store);
        }
        let z = vae.latent_mean(&store, &x);
        // Rows alternate between the two prototypes; within-prototype latent
        // distance should be smaller than across.
        let dist = |a: usize, b: usize| {
            z.row(a)
                .iter()
                .zip(z.row(b))
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f32>()
                .sqrt()
        };
        let within = (dist(0, 2) + dist(1, 3)) / 2.0;
        let across = (dist(0, 1) + dist(2, 3)) / 2.0;
        assert!(
            within < across,
            "latent space failed to separate prototypes: within {within}, across {across}"
        );
    }
}
