//! Weight initialization schemes.

use crate::matrix::Matrix;
use crate::rng;
use rand::Rng;

/// Xavier/Glorot uniform initialization — balanced forward/backward variance,
/// the default for tanh/sigmoid layers.
pub fn xavier_uniform(rng: &mut impl Rng, fan_in: usize, fan_out: usize) -> Matrix {
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Matrix::from_fn(fan_in, fan_out, |_, _| rng.gen_range(-limit..limit))
}

/// He/Kaiming normal initialization — preserves variance through ReLU layers.
pub fn he_normal(r: &mut impl Rng, fan_in: usize, fan_out: usize) -> Matrix {
    let std = (2.0 / fan_in as f32).sqrt();
    Matrix::from_fn(fan_in, fan_out, |_, _| std * rng::normal(r))
}

/// Standard-normal initialization, used for the distance-embedding matrix `E`
/// (§5.2.2 of the paper: "E is initialized randomly, following standard normal
/// distribution").
pub fn std_normal(r: &mut impl Rng, rows: usize, cols: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng::normal(r))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_respects_limit() {
        let mut r = rng::seeded(1);
        let w = xavier_uniform(&mut r, 100, 100);
        let limit = (6.0_f32 / 200.0).sqrt();
        assert!(w.as_slice().iter().all(|v| v.abs() <= limit));
    }

    #[test]
    fn he_normal_variance_scales_with_fan_in() {
        let mut r = rng::seeded(2);
        let w = he_normal(&mut r, 512, 64);
        let var = w.as_slice().iter().map(|v| v * v).sum::<f32>() / w.len() as f32;
        let expect = 2.0 / 512.0;
        assert!(
            (var - expect).abs() < expect,
            "var {var}, expected ~{expect}"
        );
    }
}
