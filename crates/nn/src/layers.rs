//! Reusable layer abstractions: dense layers and MLP stacks.

use crate::init;
use crate::kernels::Parallelism;
use crate::matrix::Matrix;
use crate::params::{ParamId, ParamStore};
use crate::tape::{Tape, Var};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Activation functions used across the workspace's models.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// Identity (linear output layers).
    None,
    /// `max(0, x)` — the paper's choice for Φ and the decoders.
    Relu,
    /// Exponential linear unit — the paper's choice inside the VAE.
    Elu,
    Sigmoid,
    Tanh,
    /// `ln(1 + e^x)` — smooth, strictly positive.
    Softplus,
}

impl Activation {
    /// Applies the activation on the tape.
    pub fn apply(self, tape: &mut Tape, v: Var) -> Var {
        match self {
            Activation::None => v,
            Activation::Relu => tape.relu(v),
            Activation::Elu => tape.elu(v, 1.0),
            Activation::Sigmoid => tape.sigmoid(v),
            Activation::Tanh => tape.tanh(v),
            Activation::Softplus => tape.softplus(v),
        }
    }

    /// Applies the activation directly to a matrix (inference fast path).
    pub fn apply_matrix(self, m: &mut Matrix) {
        match self {
            Activation::None => {}
            Activation::Relu => m.as_mut_slice().iter_mut().for_each(|v| *v = v.max(0.0)),
            Activation::Elu => m
                .as_mut_slice()
                .iter_mut()
                .for_each(|v| *v = if *v > 0.0 { *v } else { v.exp() - 1.0 }),
            Activation::Sigmoid => m.as_mut_slice().iter_mut().for_each(|v| {
                *v = if *v >= 0.0 {
                    1.0 / (1.0 + (-*v).exp())
                } else {
                    v.exp() / (1.0 + v.exp())
                }
            }),
            Activation::Tanh => m.as_mut_slice().iter_mut().for_each(|v| *v = v.tanh()),
            Activation::Softplus => m
                .as_mut_slice()
                .iter_mut()
                .for_each(|v| *v = if *v > 20.0 { *v } else { v.exp().ln_1p() }),
        }
    }
}

/// A fully-connected layer: `act(x @ W + b)`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Dense {
    pub w: ParamId,
    pub b: ParamId,
    pub activation: Activation,
    pub in_dim: usize,
    pub out_dim: usize,
}

impl Dense {
    /// Registers weights in `store`. Initialization follows the activation:
    /// He for ReLU-family, Xavier otherwise.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        activation: Activation,
    ) -> Self {
        let w_init = match activation {
            Activation::Relu | Activation::Elu | Activation::Softplus => {
                init::he_normal(rng, in_dim, out_dim)
            }
            _ => init::xavier_uniform(rng, in_dim, out_dim),
        };
        let w = store.register(format!("{name}.w"), w_init);
        let b = store.register(format!("{name}.b"), Matrix::zeros(1, out_dim));
        Dense {
            w,
            b,
            activation,
            in_dim,
            out_dim,
        }
    }

    /// Forward pass on the tape (training).
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: Var) -> Var {
        let w = tape.param(store, self.w);
        let b = tape.param(store, self.b);
        let h = tape.matmul(x, w);
        let h = tape.add_row(h, b);
        self.activation.apply(tape, h)
    }

    /// Tape-free forward pass (inference fast path).
    pub fn infer(&self, store: &ParamStore, x: &Matrix) -> Matrix {
        self.infer_with(store, x, Parallelism::serial())
    }

    /// [`Dense::infer`] with an explicit kernel worker budget. Threaded
    /// kernels are bit-identical to the scalar path, so the result never
    /// depends on `par`.
    pub fn infer_with(&self, store: &ParamStore, x: &Matrix, par: Parallelism) -> Matrix {
        let mut h = x.matmul_with(store.value(self.w), par);
        let b = store.value(self.b);
        for r in 0..h.rows() {
            for (v, &bias) in h.row_mut(r).iter_mut().zip(b.row(0)) {
                *v += bias;
            }
        }
        self.activation.apply_matrix(&mut h);
        h
    }

    /// Number of scalar parameters in this layer.
    pub fn num_params(&self) -> usize {
        self.in_dim * self.out_dim + self.out_dim
    }
}

/// A stack of [`Dense`] layers.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Mlp {
    pub layers: Vec<Dense>,
}

impl Mlp {
    /// Builds an MLP with the given hidden sizes; all hidden layers use
    /// `hidden_act`, the output layer uses `out_act`.
    #[allow(clippy::too_many_arguments)] // a constructor mirroring the paper's hyperparameters
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        in_dim: usize,
        hidden: &[usize],
        out_dim: usize,
        hidden_act: Activation,
        out_act: Activation,
    ) -> Self {
        let mut layers = Vec::with_capacity(hidden.len() + 1);
        let mut prev = in_dim;
        for (i, &h) in hidden.iter().enumerate() {
            layers.push(Dense::new(
                store,
                rng,
                &format!("{name}.{i}"),
                prev,
                h,
                hidden_act,
            ));
            prev = h;
        }
        layers.push(Dense::new(
            store,
            rng,
            &format!("{name}.out"),
            prev,
            out_dim,
            out_act,
        ));
        Mlp { layers }
    }

    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: Var) -> Var {
        let mut h = x;
        for layer in &self.layers {
            h = layer.forward(tape, store, h);
        }
        h
    }

    pub fn infer(&self, store: &ParamStore, x: &Matrix) -> Matrix {
        self.infer_with(store, x, Parallelism::serial())
    }

    /// [`Mlp::infer`] with an explicit kernel worker budget (bit-identical
    /// for any `par`).
    pub fn infer_with(&self, store: &ParamStore, x: &Matrix, par: Parallelism) -> Matrix {
        let mut h = self.layers[0].infer_with(store, x, par);
        for layer in &self.layers[1..] {
            h = layer.infer_with(store, &h, par);
        }
        h
    }

    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim
    }

    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty MLP").out_dim
    }

    pub fn num_params(&self) -> usize {
        self.layers.iter().map(Dense::num_params).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Adam, Optimizer};
    use crate::rng;

    #[test]
    fn dense_infer_matches_tape_forward() {
        let mut r = rng::seeded(1);
        let mut store = ParamStore::new();
        let layer = Dense::new(&mut store, &mut r, "d", 4, 3, Activation::Relu);
        let x = Matrix::from_fn(5, 4, |_, _| 0.3);

        let mut tape = Tape::new();
        let xv = tape.input(x.clone());
        let y_tape = layer.forward(&mut tape, &store, xv);
        let y_infer = layer.infer(&store, &x);
        assert!(tape.value(y_tape).max_abs_diff(&y_infer) < 1e-6);
    }

    #[test]
    fn mlp_learns_xor() {
        // XOR is the classic non-linearly-separable sanity check.
        let mut r = rng::seeded(42);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(
            &mut store,
            &mut r,
            "xor",
            2,
            &[8, 8],
            1,
            Activation::Tanh,
            Activation::Sigmoid,
        );
        let x = Matrix::from_vec(4, 2, vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0]);
        let y = Matrix::from_vec(4, 1, vec![0.0, 1.0, 1.0, 0.0]);
        let mut opt = Adam::new(0.05);
        for _ in 0..400 {
            let mut t = Tape::new();
            let xv = t.input(x.clone());
            let yv = t.input(y.clone());
            let pred = mlp.forward(&mut t, &store, xv);
            let diff = t.sub(pred, yv);
            let sq = t.square(diff);
            let loss = t.mean_all(sq);
            t.backward(loss, &mut store);
            opt.step(&mut store);
        }
        let pred = mlp.infer(&store, &x);
        for (i, want) in [0.0, 1.0, 1.0, 0.0].iter().enumerate() {
            let got = pred.get(i, 0);
            assert!(
                (got - want).abs() < 0.2,
                "xor case {i}: predicted {got}, wanted {want}"
            );
        }
    }

    #[test]
    fn mlp_shapes_and_param_counts() {
        let mut r = rng::seeded(3);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(
            &mut store,
            &mut r,
            "m",
            10,
            &[16, 8],
            2,
            Activation::Relu,
            Activation::None,
        );
        assert_eq!(mlp.in_dim(), 10);
        assert_eq!(mlp.out_dim(), 2);
        assert_eq!(mlp.num_params(), 10 * 16 + 16 + 16 * 8 + 8 + 8 * 2 + 2);
        assert_eq!(store.num_scalars(), mlp.num_params());
    }
}
