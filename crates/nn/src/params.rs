//! Trainable-parameter storage.
//!
//! Every model in the workspace owns a [`ParamStore`]: named matrices plus
//! their accumulated gradients. The autodiff [`crate::tape::Tape`] copies
//! parameter values onto the tape during the forward pass and writes gradients
//! back after `backward`; optimizers then consume `(value, grad)` pairs.

use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// Opaque handle to one parameter inside a [`ParamStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParamId(pub(crate) usize);

#[derive(Clone, Debug, Serialize, Deserialize)]
struct Param {
    name: String,
    value: Matrix,
    #[serde(skip, default = "Matrix::empty_grad")]
    grad: Matrix,
}

impl Matrix {
    fn empty_grad() -> Matrix {
        Matrix::zeros(0, 0)
    }
}

/// Named trainable parameters with gradient buffers.
#[derive(Clone, Debug, Serialize, Deserialize, Default)]
pub struct ParamStore {
    params: Vec<Param>,
}

impl ParamStore {
    pub fn new() -> Self {
        ParamStore { params: Vec::new() }
    }

    /// Registers a parameter and returns its handle.
    pub fn register(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        let grad = Matrix::zeros(value.rows(), value.cols());
        self.params.push(Param {
            name: name.into(),
            value,
            grad,
        });
        ParamId(self.params.len() - 1)
    }

    pub fn len(&self) -> usize {
        self.params.len()
    }

    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.params[id.0].value
    }

    pub fn value_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.params[id.0].value
    }

    pub fn grad(&self, id: ParamId) -> &Matrix {
        &self.params[id.0].grad
    }

    pub fn name(&self, id: ParamId) -> &str {
        &self.params[id.0].name
    }

    /// Adds `delta` into the gradient buffer of `id`.
    pub fn accumulate_grad(&mut self, id: ParamId, delta: &Matrix) {
        let p = &mut self.params[id.0];
        if p.grad.shape() != p.value.shape() {
            p.grad = Matrix::zeros(p.value.rows(), p.value.cols());
        }
        p.grad.axpy(1.0, delta);
    }

    /// Clears all gradient buffers (keeps allocations).
    pub fn zero_grads(&mut self) {
        for p in &mut self.params {
            if p.grad.shape() != p.value.shape() {
                p.grad = Matrix::zeros(p.value.rows(), p.value.cols());
            } else {
                p.grad.fill_zero();
            }
        }
    }

    /// Iterates over all handles.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.params.len()).map(ParamId)
    }

    /// Applies `f(value, grad)` to one parameter (used by optimizers).
    pub fn update(&mut self, id: ParamId, f: impl FnOnce(&mut Matrix, &Matrix)) {
        let p = &mut self.params[id.0];
        if p.grad.shape() != p.value.shape() {
            p.grad = Matrix::zeros(p.value.rows(), p.value.cols());
        }
        f(&mut p.value, &p.grad);
    }

    /// Total number of scalar parameters.
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(|p| p.value.len()).sum()
    }

    /// Size of the serialized parameters in bytes (f32 payload only),
    /// reported by the Table 9 "model size" experiment.
    pub fn size_bytes(&self) -> usize {
        self.num_scalars() * std::mem::size_of::<f32>()
    }

    /// Global L2 norm of all gradients — used for gradient clipping.
    pub fn grad_norm(&self) -> f32 {
        self.params
            .iter()
            .map(|p| {
                if p.grad.is_empty() {
                    0.0
                } else {
                    let n = p.grad.norm();
                    n * n
                }
            })
            .sum::<f32>()
            .sqrt()
    }

    /// Scales every gradient so the global norm is at most `max_norm`.
    pub fn clip_grad_norm(&mut self, max_norm: f32) {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let scale = max_norm / norm;
            for p in &mut self.params {
                for g in p.grad.as_mut_slice() {
                    *g *= scale;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut store = ParamStore::new();
        let id = store.register("w", Matrix::full(2, 3, 1.5));
        assert_eq!(store.value(id).shape(), (2, 3));
        assert_eq!(store.name(id), "w");
        assert_eq!(store.num_scalars(), 6);
        assert_eq!(store.size_bytes(), 24);
    }

    #[test]
    fn grads_accumulate_and_reset() {
        let mut store = ParamStore::new();
        let id = store.register("w", Matrix::zeros(1, 2));
        store.accumulate_grad(id, &Matrix::row_vector(vec![1.0, 2.0]));
        store.accumulate_grad(id, &Matrix::row_vector(vec![0.5, 0.5]));
        assert_eq!(store.grad(id).as_slice(), &[1.5, 2.5]);
        store.zero_grads();
        assert_eq!(store.grad(id).as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn clipping_bounds_global_norm() {
        let mut store = ParamStore::new();
        let id = store.register("w", Matrix::zeros(1, 2));
        store.accumulate_grad(id, &Matrix::row_vector(vec![3.0, 4.0])); // norm 5
        store.clip_grad_norm(1.0);
        assert!((store.grad_norm() - 1.0).abs() < 1e-5);
        assert_eq!(store.grad(id).as_slice(), &[0.6, 0.8]);
    }

    #[test]
    fn serde_roundtrip_preserves_values() {
        let mut store = ParamStore::new();
        store.register("w", Matrix::full(2, 2, 0.25));
        let json = serde_json::to_string(&store).unwrap();
        let back: ParamStore = serde_json::from_str(&json).unwrap();
        assert_eq!(back.num_scalars(), 4);
        assert_eq!(back.value(ParamId(0)).as_slice(), &[0.25; 4]);
    }
}
