//! Seeded random-number helpers.
//!
//! `rand` is the only randomness dependency in the workspace; the couple of
//! distributions the models need (standard normal via Box–Muller, Zipf in the
//! data crate) are implemented on top of it so every experiment is
//! reproducible from a single `u64` seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates the workspace-standard RNG from a seed.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// One standard-normal sample via the Box–Muller transform.
pub fn normal(rng: &mut impl Rng) -> f32 {
    // Draw u1 from (0, 1] so the log is finite.
    let u1: f32 = 1.0 - rng.gen::<f32>();
    let u2: f32 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

/// Fills a buffer with `N(mean, std)` samples.
pub fn fill_normal(rng: &mut impl Rng, buf: &mut [f32], mean: f32, std: f32) {
    for v in buf {
        *v = mean + std * normal(rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = seeded(7);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn seeded_is_deterministic() {
        let a: Vec<f32> = {
            let mut r = seeded(42);
            (0..8).map(|_| normal(&mut r)).collect()
        };
        let b: Vec<f32> = {
            let mut r = seeded(42);
            (0..8).map(|_| normal(&mut r)).collect()
        };
        assert_eq!(a, b);
    }
}
