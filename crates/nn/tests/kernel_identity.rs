//! Property tests pinning the kernel-layer contract: every backend tier
//! (scalar row kernels, blocked micro-tiles, explicit AVX2/AVX-512 SIMD)
//! and every threading variant of `matmul` / `t_matmul` / `matmul_t`
//! produces outputs **bit-identical** to the scalar reference kernels —
//! across rectangular and degenerate shapes (0×n, 1×1, non-square), across
//! backends × 1/2/4 workers, and with non-finite inputs (NaN, ±∞, ±0.0) in
//! the mix. The one deliberate relaxation: NaN outputs match as a *class*
//! (any NaN equals any NaN), because NaN sign/payload propagation is
//! ISA-defined and differs across hosts.
//!
//! Bitwise comparison (not approximate) is the point: the serving cache,
//! the snapshot system, and the train-serial-vs-threaded guarantee all rely
//! on "backend and thread count change wall clock, never bits". On CPUs
//! without AVX2 the `simd` variants exercise the runtime-dispatch fallback
//! instead — selecting the SIMD backend must be safe everywhere.

use cardest_nn::kernels::{KernelBackend, Parallelism};
use cardest_nn::Matrix;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic matrix fill mixing the value classes that matter: exact
/// zeros (the sparse-skip path), negative zeros, ordinary finite values, and
/// — when `nonfinite` — NaN and ±∞.
fn matrix_from_seed(rows: usize, cols: usize, seed: u64, nonfinite: bool) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| {
        let roll: f64 = rng.gen();
        if roll < 0.30 {
            0.0
        } else if roll < 0.36 {
            -0.0
        } else if nonfinite && roll < 0.40 {
            f32::NAN
        } else if nonfinite && roll < 0.44 {
            f32::INFINITY
        } else if nonfinite && roll < 0.48 {
            f32::NEG_INFINITY
        } else {
            rng.gen_range(-2.0f32..2.0)
        }
    })
}

fn assert_bits_eq(want: &Matrix, got: &Matrix, what: &str) {
    assert_eq!(want.shape(), got.shape(), "{what}: shape mismatch");
    for (i, (w, g)) in want.as_slice().iter().zip(got.as_slice()).enumerate() {
        // NaNs compare as a class, not bit for bit: which NaN payload/sign an
        // FMA or x87-less fallback produces is ISA-defined, so demanding one
        // exact NaN bit pattern would tie the test to the host CPU. Every
        // non-NaN value (including ±0.0 and ±∞) must still match exactly.
        if w.is_nan() && g.is_nan() {
            continue;
        }
        assert_eq!(
            w.to_bits(),
            g.to_bits(),
            "{what}: element {i} differs: {w} vs {g}"
        );
    }
}

/// The configurations under test: the process-default backend on the serial
/// path, then every pinned backend × forced 1-, 2- and 4-thread partitions
/// (forced so tiny shapes still exercise the real partitioning code paths).
fn variants() -> Vec<(String, Parallelism)> {
    let mut v = vec![("default/serial".to_string(), Parallelism::serial())];
    for backend in [
        KernelBackend::Scalar,
        KernelBackend::Blocked,
        KernelBackend::Simd,
    ] {
        for t in [1, 2, 4] {
            v.push((
                format!("{}/threads={t}", backend.label()),
                Parallelism::exact_threads(t).with_backend(backend),
            ));
        }
    }
    v
}

fn check_all_kernels(m: usize, k: usize, n: usize, seed: u64, nonfinite: bool) {
    // matmul: (m×k) @ (k×n).
    let a = matrix_from_seed(m, k, seed, nonfinite);
    let b = matrix_from_seed(k, n, seed ^ 0x9E37_79B9, nonfinite);
    let want = a.matmul(&b);
    for (label, par) in variants() {
        assert_bits_eq(&want, &a.matmul_with(&b, par), &format!("matmul {label}"));
    }

    // t_matmul: (m×k)ᵀ @ (m×n) — shares the m-dimension.
    let a2 = matrix_from_seed(m, k, seed ^ 0xDEAD_BEEF, nonfinite);
    let b2 = matrix_from_seed(m, n, seed ^ 0xFACE_FEED, nonfinite);
    let want = a2.t_matmul(&b2);
    for (label, par) in variants() {
        assert_bits_eq(
            &want,
            &a2.t_matmul_with(&b2, par),
            &format!("t_matmul {label}"),
        );
    }

    // matmul_t: (m×k) @ (n×k)ᵀ — shares the k-dimension.
    let a3 = matrix_from_seed(m, k, seed ^ 0x0123_4567, nonfinite);
    let b3 = matrix_from_seed(n, k, seed ^ 0x89AB_CDEF, nonfinite);
    let want = a3.matmul_t(&b3);
    for (label, par) in variants() {
        assert_bits_eq(
            &want,
            &a3.matmul_t_with(&b3, par),
            &format!("matmul_t {label}"),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random rectangular shapes up to 21 per dimension (covers the 4×8
    /// micro-tile interior, every edge remainder, and single-row/column
    /// cases), finite values with many exact/negative zeros.
    #[test]
    fn kernels_bit_identical_on_finite_inputs(
        m in 0usize..22,
        k in 0usize..22,
        n in 0usize..22,
        seed in any::<u64>(),
    ) {
        check_all_kernels(m, k, n, seed, false);
    }

    /// Same property with NaN / ±∞ mixed in: the dense fallback (the
    /// sparse skip is disabled by the finiteness pre-check) must also be
    /// order-identical across variants — NaN where the reference has NaN
    /// (payload/sign free, see `assert_bits_eq`), exact bits elsewhere.
    #[test]
    fn kernels_bit_identical_on_nonfinite_inputs(
        m in 0usize..16,
        k in 0usize..16,
        n in 0usize..16,
        seed in any::<u64>(),
    ) {
        check_all_kernels(m, k, n, seed, true);
    }

    /// Degenerate shapes: at least one dimension pinned to zero, any
    /// worker count. (0×n) @ (n×m), (m×0) @ (0×n), and friends.
    #[test]
    fn kernels_handle_degenerate_shapes(
        m in 0usize..6,
        k in 0usize..6,
        n in 0usize..6,
        which in 0usize..3,
        seed in any::<u64>(),
    ) {
        let (m, k, n) = match which {
            0 => (0, k, n),
            1 => (m, 0, n),
            _ => (m, k, 0),
        };
        check_all_kernels(m, k, n, seed, true);
    }
}

/// Larger-than-cache-tile shapes hit the multi-chunk threaded path with
/// every worker owning many rows; one deterministic heavyweight case keeps
/// the proptest suite fast while still covering the "real" regime.
#[test]
fn kernels_bit_identical_at_model_scale() {
    // Typical CardNet shapes: batch 64, features ~160, hidden 96.
    check_all_kernels(64, 160, 96, 0xC0DE, false);
    // Sparse-binary-heavy left operand, like real extracted features.
    let a = Matrix::from_fn(64, 160, |r, c| {
        f32::from(u8::from((r * 7 + c * 3) % 5 == 0))
    });
    let b = matrix_from_seed(160, 96, 7, false);
    let want = a.matmul(&b);
    for (label, par) in variants() {
        assert_bits_eq(&want, &a.matmul_with(&b, par), &format!("sparse {label}"));
    }
}
