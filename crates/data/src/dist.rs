//! The four distance functions of the paper's evaluation (§9.1.1):
//! Hamming, Levenshtein edit distance, Jaccard distance, and Euclidean
//! distance — each with a threshold-bounded fast path used by the exact
//! selection algorithms.

use crate::record::Record;
use serde::{Deserialize, Serialize};

/// Which distance function a dataset uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DistanceKind {
    /// Hamming distance on binary vectors (integer-valued).
    Hamming,
    /// Levenshtein edit distance on strings (integer-valued).
    Edit,
    /// Jaccard *distance* `1 − |x∩y|/|x∪y|` on sets (real-valued in `[0,1]`).
    Jaccard,
    /// Euclidean (L2) distance on real vectors.
    Euclidean,
}

impl DistanceKind {
    /// True if the function only takes integer values.
    pub fn is_integer_valued(self) -> bool {
        matches!(self, DistanceKind::Hamming | DistanceKind::Edit)
    }

    pub fn name(self) -> &'static str {
        match self {
            DistanceKind::Hamming => "HM",
            DistanceKind::Edit => "ED",
            DistanceKind::Jaccard => "JC",
            DistanceKind::Euclidean => "EU",
        }
    }
}

/// A distance function `f : O × O → ℝ` (§2.1).
#[derive(Clone, Copy, Debug)]
pub struct Distance {
    pub kind: DistanceKind,
}

impl Distance {
    pub fn new(kind: DistanceKind) -> Self {
        Distance { kind }
    }

    /// Evaluates the distance; panics if the record types do not match the
    /// kind (a programming error, not a data error).
    pub fn eval(&self, x: &Record, y: &Record) -> f64 {
        match self.kind {
            DistanceKind::Hamming => f64::from(x.as_bits().hamming(y.as_bits())),
            DistanceKind::Edit => levenshtein(x.as_str(), y.as_str()) as f64,
            DistanceKind::Jaccard => jaccard_distance(x.as_set(), y.as_set()),
            DistanceKind::Euclidean => euclidean(x.as_vec(), y.as_vec()),
        }
    }

    /// `Some(d)` iff `d = f(x, y) ≤ θ`; may exit early otherwise.
    pub fn eval_within(&self, x: &Record, y: &Record, theta: f64) -> Option<f64> {
        match self.kind {
            DistanceKind::Hamming => x
                .as_bits()
                .hamming_within(y.as_bits(), theta.floor() as u32)
                .map(f64::from),
            DistanceKind::Edit => {
                levenshtein_within(x.as_str(), y.as_str(), theta.floor() as usize).map(|d| d as f64)
            }
            DistanceKind::Jaccard => {
                let d = jaccard_distance(x.as_set(), y.as_set());
                (d <= theta).then_some(d)
            }
            DistanceKind::Euclidean => euclidean_within(x.as_vec(), y.as_vec(), theta),
        }
    }
}

/// Full Levenshtein distance with the classic two-row DP.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let (a, b) = (a.as_bytes(), b.as_bytes());
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Banded (Ukkonen) Levenshtein: `Some(d)` iff `d ≤ k`. Runs in `O(k·|a|)`.
pub fn levenshtein_within(a: &str, b: &str, k: usize) -> Option<usize> {
    let (a, b) = (a.as_bytes(), b.as_bytes());
    let (n, m) = (a.len(), b.len());
    if n.abs_diff(m) > k {
        return None; // length filter
    }
    if n == 0 {
        return (m <= k).then_some(m);
    }
    if m == 0 {
        return (n <= k).then_some(n);
    }
    const BIG: usize = usize::MAX / 2;
    // DP over a band of width 2k+1 around the diagonal.
    let mut prev = vec![BIG; m + 1];
    let mut cur = vec![BIG; m + 1];
    for (j, p) in prev.iter_mut().enumerate().take(k.min(m) + 1) {
        *p = j;
    }
    for i in 1..=n {
        let lo = i.saturating_sub(k).max(1);
        let hi = (i + k).min(m);
        if lo > hi {
            return None;
        }
        cur[lo - 1] = if lo == 1 { i } else { BIG };
        let mut row_min = cur[lo - 1];
        for j in lo..=hi {
            let sub = prev[j - 1] + usize::from(a[i - 1] != b[j - 1]);
            let del = if prev[j] == BIG { BIG } else { prev[j] + 1 };
            let ins = if cur[j - 1] == BIG {
                BIG
            } else {
                cur[j - 1] + 1
            };
            cur[j] = sub.min(del).min(ins);
            row_min = row_min.min(cur[j]);
        }
        if hi < m {
            cur[hi + 1] = BIG; // seal the band edge for the next row
        }
        if row_min > k {
            return None; // the whole band exceeded k; distance must too
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    (prev[m] <= k).then_some(prev[m])
}

/// Jaccard *distance* on sorted, deduplicated slices.
pub fn jaccard_distance(a: &[u32], b: &[u32]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let inter = intersection_size(a, b);
    let union = a.len() + b.len() - inter;
    1.0 - inter as f64 / union as f64
}

/// Size of the intersection of two sorted slices (merge scan).
pub fn intersection_size(a: &[u32], b: &[u32]) -> usize {
    let (mut i, mut j, mut count) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Euclidean distance.
pub fn euclidean(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0f64;
    for (&x, &y) in a.iter().zip(b) {
        let d = f64::from(x) - f64::from(y);
        acc += d * d;
    }
    acc.sqrt()
}

/// Euclidean distance with early exit once the partial sum exceeds `theta²`.
pub fn euclidean_within(a: &[f32], b: &[f32], theta: f64) -> Option<f64> {
    debug_assert_eq!(a.len(), b.len());
    let bound = theta * theta;
    let mut acc = 0.0f64;
    // Check the bound every 16 dims: often enough to prune, rarely enough to
    // keep the inner loop vectorizable.
    for (ca, cb) in a.chunks(16).zip(b.chunks(16)) {
        for (&x, &y) in ca.iter().zip(cb) {
            let d = f64::from(x) - f64::from(y);
            acc += d * d;
        }
        if acc > bound {
            return None;
        }
    }
    (acc <= bound).then(|| acc.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitvec::BitVec;
    use proptest::prelude::*;

    #[test]
    fn levenshtein_known_values() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
    }

    #[test]
    fn banded_levenshtein_agrees_when_within() {
        let cases = [
            ("kitten", "sitting"),
            ("abcdef", "azced"),
            ("a", "b"),
            ("", ""),
        ];
        for (a, b) in cases {
            let full = levenshtein(a, b);
            for k in 0..=8 {
                let banded = levenshtein_within(a, b, k);
                if full <= k {
                    assert_eq!(banded, Some(full), "a={a}, b={b}, k={k}");
                } else {
                    assert_eq!(banded, None, "a={a}, b={b}, k={k}");
                }
            }
        }
    }

    #[test]
    fn jaccard_known_values() {
        assert!((jaccard_distance(&[1, 2, 3], &[2, 3, 4]) - 0.5).abs() < 1e-12);
        assert_eq!(jaccard_distance(&[1, 2], &[1, 2]), 0.0);
        assert_eq!(jaccard_distance(&[1], &[2]), 1.0);
        assert_eq!(jaccard_distance(&[], &[]), 0.0);
        assert_eq!(jaccard_distance(&[], &[1]), 1.0);
    }

    #[test]
    fn euclidean_known_values() {
        assert!((euclidean(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-9);
        assert_eq!(euclidean(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn euclidean_within_prunes() {
        let a = vec![0.0f32; 64];
        let mut b = vec![0.0f32; 64];
        b[0] = 10.0;
        assert_eq!(euclidean_within(&a, &b, 5.0), None);
        assert!(euclidean_within(&a, &b, 10.0).is_some());
    }

    #[test]
    fn distance_dispatch_matches_kernels() {
        let d = Distance::new(DistanceKind::Hamming);
        let x = Record::Bits(BitVec::from_u64(0b1100, 4));
        let y = Record::Bits(BitVec::from_u64(0b1010, 4));
        assert_eq!(d.eval(&x, &y), 2.0);
        assert_eq!(d.eval_within(&x, &y, 1.0), None);
        assert_eq!(d.eval_within(&x, &y, 2.0), Some(2.0));

        let d = Distance::new(DistanceKind::Jaccard);
        let x = Record::set_from(vec![1, 2, 3]);
        let y = Record::set_from(vec![2, 3, 4]);
        assert_eq!(d.eval(&x, &y), 0.5);
    }

    proptest! {
        #[test]
        fn levenshtein_is_a_metric(a in "[a-c]{0,12}", b in "[a-c]{0,12}", c in "[a-c]{0,12}") {
            let ab = levenshtein(&a, &b);
            let ba = levenshtein(&b, &a);
            prop_assert_eq!(ab, ba);
            prop_assert_eq!(levenshtein(&a, &a), 0);
            prop_assert!(levenshtein(&a, &c) <= ab + levenshtein(&b, &c));
            // bounded by the longer string
            prop_assert!(ab <= a.len().max(b.len()));
            prop_assert!(ab >= a.len().abs_diff(b.len()));
        }

        #[test]
        fn banded_matches_full_dp(a in "[a-d]{0,20}", b in "[a-d]{0,20}", k in 0usize..12) {
            let full = levenshtein(&a, &b);
            match levenshtein_within(&a, &b, k) {
                Some(d) => prop_assert_eq!(d, full),
                None => prop_assert!(full > k),
            }
        }

        #[test]
        fn jaccard_in_unit_interval_and_symmetric(
            a in prop::collection::btree_set(0u32..50, 0..20),
            b in prop::collection::btree_set(0u32..50, 0..20),
        ) {
            let av: Vec<u32> = a.into_iter().collect();
            let bv: Vec<u32> = b.into_iter().collect();
            let d = jaccard_distance(&av, &bv);
            prop_assert!((0.0..=1.0).contains(&d));
            prop_assert_eq!(d, jaccard_distance(&bv, &av));
            prop_assert_eq!(jaccard_distance(&av, &av), 0.0);
        }

        #[test]
        fn euclidean_within_agrees(a in prop::collection::vec(-10.0f32..10.0, 1..40),
                                   b_offsets in prop::collection::vec(-10.0f32..10.0, 1..40),
                                   theta in 0.0f64..30.0) {
            let n = a.len().min(b_offsets.len());
            let b: Vec<f32> = a[..n].iter().zip(&b_offsets[..n]).map(|(x, o)| x + o).collect();
            let exact = euclidean(&a[..n], &b);
            match euclidean_within(&a[..n], &b, theta) {
                Some(d) => { prop_assert!((d - exact).abs() < 1e-6); prop_assert!(d <= theta); }
                None => prop_assert!(exact > theta),
            }
        }
    }
}
