//! Workload-construction policies (§9.12) and out-of-dataset query
//! generation (§9.10).
//!
//! The paper studies three sampling policies — *single uniform sample*,
//! *multiple uniform samples*, and *single skewed sample* (uniform over
//! k-medoids clusters, then uniform within the chosen cluster) — plus
//! adversarial out-of-dataset queries selected as the 2,000 random records
//! farthest from the cluster medoids.

use crate::dataset::Dataset;
use crate::dist::DistanceKind;
use crate::record::Record;
use crate::synth::apply_typos;
use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A k-medoids-style clustering: greedy k-center seeding (farthest-first
/// traversal) followed by assignment. Exact PAM is quadratic per swap and
/// unnecessary here — the clustering only drives sampling skew.
pub struct Clustering {
    /// Indices of the medoid records in the dataset.
    pub medoids: Vec<usize>,
    /// `assignment[i]` = cluster of record `i`.
    pub assignment: Vec<usize>,
}

impl Clustering {
    pub fn cluster(dataset: &Dataset, k: usize, seed: u64) -> Clustering {
        assert!(k >= 1 && k <= dataset.len());
        let d = dataset.distance();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut medoids = vec![rng.gen_range(0..dataset.len())];
        let mut dist_to_nearest: Vec<f64> = dataset
            .records
            .iter()
            .map(|r| d.eval(&dataset.records[medoids[0]], r))
            .collect();
        while medoids.len() < k {
            // Farthest-first: the next medoid is the record farthest from all
            // current medoids.
            let (next, _) = dist_to_nearest
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite distances"))
                .expect("non-empty dataset");
            medoids.push(next);
            for (i, r) in dataset.records.iter().enumerate() {
                let nd = d.eval(&dataset.records[next], r);
                if nd < dist_to_nearest[i] {
                    dist_to_nearest[i] = nd;
                }
            }
        }
        let assignment = dataset
            .records
            .iter()
            .map(|r| {
                medoids
                    .iter()
                    .enumerate()
                    .map(|(ci, &m)| (ci, d.eval(&dataset.records[m], r)))
                    .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"))
                    .map(|(ci, _)| ci)
                    .expect("at least one medoid")
            })
            .collect();
        Clustering {
            medoids,
            assignment,
        }
    }

    /// Records per cluster, as reported in Table 13.
    pub fn cluster_sizes(&self, k: usize) -> Vec<usize> {
        let mut sizes = vec![0usize; k];
        for &c in &self.assignment {
            sizes[c] += 1;
        }
        sizes
    }
}

/// How the query workload is drawn from the dataset (§9.12).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SamplingPolicy {
    /// One uniform sample — the default everywhere else in the paper.
    SingleUniform,
    /// The union of `k` independent uniform samples (same total size).
    MultipleUniform { samples: usize },
    /// Uniformly pick a cluster, then a record within it: small clusters are
    /// over-represented, skewing the workload.
    SingleSkewed { clusters: usize },
}

/// Draws `n` query records from the dataset under the given policy.
pub fn draw_queries(dataset: &Dataset, n: usize, policy: SamplingPolicy, seed: u64) -> Vec<Record> {
    let mut rng = StdRng::seed_from_u64(seed);
    match policy {
        SamplingPolicy::SingleUniform => {
            let mut idx: Vec<usize> = (0..dataset.len()).collect();
            idx.shuffle(&mut rng);
            idx.truncate(n.min(dataset.len()));
            idx.into_iter()
                .map(|i| dataset.records[i].clone())
                .collect()
        }
        SamplingPolicy::MultipleUniform { samples } => {
            let per = n.div_ceil(samples.max(1));
            let mut out = Vec::with_capacity(n);
            for s in 0..samples {
                let mut idx: Vec<usize> = (0..dataset.len()).collect();
                let mut sub_rng = StdRng::seed_from_u64(seed.wrapping_add(1 + s as u64));
                idx.shuffle(&mut sub_rng);
                out.extend(
                    idx.into_iter()
                        .take(per)
                        .map(|i| dataset.records[i].clone()),
                );
            }
            out.truncate(n);
            out
        }
        SamplingPolicy::SingleSkewed { clusters } => {
            let clustering = Clustering::cluster(dataset, clusters, seed);
            let mut by_cluster: Vec<Vec<usize>> = vec![Vec::new(); clusters];
            for (i, &c) in clustering.assignment.iter().enumerate() {
                by_cluster[c].push(i);
            }
            by_cluster.retain(|c| !c.is_empty());
            (0..n)
                .map(|_| {
                    let c = &by_cluster[rng.gen_range(0..by_cluster.len())];
                    dataset.records[c[rng.gen_range(0..c.len())]].clone()
                })
                .collect()
        }
    }
}

/// Generates out-of-dataset queries per §9.10: draw `candidates` random
/// records of the right domain, reject any that appear in the dataset, and
/// keep the `keep` with the largest sum of squared distances to the medoids.
pub fn out_of_dataset_queries(
    dataset: &Dataset,
    clustering: &Clustering,
    candidates: usize,
    keep: usize,
    seed: u64,
) -> Vec<Record> {
    let mut rng = StdRng::seed_from_u64(seed);
    let d = dataset.distance();
    let mut pool: Vec<(f64, Record)> = Vec::with_capacity(candidates);
    while pool.len() < candidates {
        let q = random_record(dataset, &mut rng);
        if dataset.records.contains(&q) {
            continue;
        }
        let score: f64 = clustering
            .medoids
            .iter()
            .map(|&m| {
                let dist = d.eval(&dataset.records[m], &q);
                dist * dist
            })
            .sum();
        pool.push((score, q));
    }
    pool.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite scores"));
    pool.truncate(keep);
    pool.into_iter().map(|(_, q)| q).collect()
}

/// A uniformly random record of the dataset's domain, following the paper's
/// recipes: uniform bits; a perturbed out-of-pool string; a uniform-length
/// set over the observed token universe; `q[i] ~ U[-1, 1]` vectors.
fn random_record(dataset: &Dataset, rng: &mut StdRng) -> Record {
    match dataset.kind {
        DistanceKind::Hamming => {
            let dim = dataset.records[0].as_bits().len();
            Record::Bits(crate::bitvec::BitVec::from_bits(
                (0..dim).map(|_| rng.gen_bool(0.5)),
            ))
        }
        DistanceKind::Edit => {
            // The paper takes names from a disjoint corpus; we synthesize a
            // string far from the pool by heavy mutation of a random record.
            let base = dataset.records[rng.gen_range(0..dataset.len())].as_str();
            Record::Str(apply_typos(rng, base, base.len() / 2 + 3))
        }
        DistanceKind::Jaccard => {
            let universe: u32 = dataset
                .records
                .iter()
                .flat_map(|r| r.as_set().iter().copied())
                .max()
                .unwrap_or(1)
                + 1;
            let (lmin, lmax) = dataset
                .records
                .iter()
                .map(|r| r.as_set().len())
                .fold((usize::MAX, 0), |(lo, hi), l| (lo.min(l), hi.max(l)));
            let len = rng.gen_range(lmin.max(1)..=lmax.max(1));
            let tokens: Vec<u32> = (0..len).map(|_| rng.gen_range(0..universe)).collect();
            Record::set_from(tokens)
        }
        DistanceKind::Euclidean => {
            let dim = dataset.records[0].as_vec().len();
            Record::Vec((0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        }
    }
}

/// Long-tail grouping (§9.9): buckets query indices by actual cardinality,
/// one bucket per `group_width`, with everything above `groups·width` in the
/// last bucket. Returns `group -> query indices`.
pub fn cardinality_groups(cards: &[f64], group_width: f64, groups: usize) -> Vec<Vec<usize>> {
    let mut out = vec![Vec::new(); groups];
    for (i, &c) in cards.iter().enumerate() {
        let g = ((c / group_width).floor() as usize).min(groups - 1);
        out[g].push(i);
    }
    out
}

/// Zipf re-export convenience used by tests in other crates.
pub fn zipf(n: usize, exponent: f64) -> Zipf {
    Zipf::new(n, exponent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{hm_imagenet, SynthConfig};

    fn ds() -> Dataset {
        hm_imagenet(SynthConfig::new(300, 11))
    }

    #[test]
    fn clustering_assigns_every_record() {
        let ds = ds();
        let cl = Clustering::cluster(&ds, 4, 1);
        assert_eq!(cl.assignment.len(), ds.len());
        assert_eq!(cl.medoids.len(), 4);
        let sizes = cl.cluster_sizes(4);
        assert_eq!(sizes.iter().sum::<usize>(), ds.len());
        // Medoids belong to their own cluster.
        for (ci, &m) in cl.medoids.iter().enumerate() {
            assert_eq!(cl.assignment[m], ci, "medoid {m} not in its own cluster");
        }
    }

    #[test]
    fn policies_draw_requested_counts() {
        let ds = ds();
        for policy in [
            SamplingPolicy::SingleUniform,
            SamplingPolicy::MultipleUniform { samples: 5 },
            SamplingPolicy::SingleSkewed { clusters: 4 },
        ] {
            let qs = draw_queries(&ds, 50, policy, 7);
            assert_eq!(qs.len(), 50, "{policy:?}");
        }
    }

    #[test]
    fn skewed_sampling_overweights_small_clusters() {
        let ds = ds();
        let k = 4;
        let seed = 5;
        // `draw_queries` clusters internally with the draw seed, so this is
        // exactly the clustering the sampler used.
        let cl = Clustering::cluster(&ds, k, seed);
        let sizes = cl.cluster_sizes(k);
        let n = 400;
        let qs = draw_queries(&ds, n, SamplingPolicy::SingleSkewed { clusters: k }, seed);
        let mut hits = vec![0usize; k];
        for q in &qs {
            let idx = ds
                .records
                .iter()
                .position(|r| r == q)
                .expect("skewed queries are sampled from the dataset");
            hits[cl.assignment[idx]] += 1;
        }
        // The policy picks a cluster uniformly, then a member: every cluster's
        // query share is ~1/k regardless of its size...
        for (ci, &h) in hits.iter().enumerate() {
            let share = h as f64 / n as f64;
            assert!(
                (share - 1.0 / k as f64).abs() < 0.09,
                "cluster {ci} (size {}): query share {share:.3} far from uniform",
                sizes[ci]
            );
        }
        // ...so any below-average-size cluster is over-represented relative
        // to its share of the data.
        for (ci, &h) in hits.iter().enumerate() {
            let data_share = sizes[ci] as f64 / ds.len() as f64;
            if data_share < 0.15 {
                let query_share = h as f64 / n as f64;
                assert!(
                    query_share > data_share,
                    "skew missing: cluster {ci} query share {query_share:.3} <= data share {data_share:.3}"
                );
            }
        }
    }

    #[test]
    fn ood_queries_are_not_dataset_members() {
        let ds = ds();
        let cl = Clustering::cluster(&ds, 3, 2);
        let qs = out_of_dataset_queries(&ds, &cl, 40, 10, 13);
        assert_eq!(qs.len(), 10);
        for q in &qs {
            assert!(!ds.records.contains(q));
        }
    }

    #[test]
    fn cardinality_groups_partition_queries() {
        let cards = [0.5, 1.2, 3.7, 10.0];
        let groups = cardinality_groups(&cards, 1.0, 3);
        assert_eq!(groups[0], vec![0]);
        assert_eq!(groups[1], vec![1]);
        assert_eq!(groups[2], vec![2, 3]); // overflow lands in last bucket
    }
}
