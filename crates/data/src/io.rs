//! Dataset persistence: JSON-lines import/export so users can bring their
//! own records instead of the synthetic corpora.
//!
//! Format: a one-line JSON header (`DatasetHeader`), then one record per
//! line. Line-oriented JSON keeps files streamable and diff-friendly, and
//! needs no schema tooling.

use crate::dataset::Dataset;
use crate::dist::DistanceKind;
use crate::record::Record;
use serde::{Deserialize, Serialize};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// First line of a dataset file.
#[derive(Serialize, Deserialize, Debug, Clone, PartialEq)]
pub struct DatasetHeader {
    pub name: String,
    pub kind: DistanceKind,
    pub theta_max: f64,
    pub n_records: usize,
}

/// Writes a dataset as header + one JSON record per line.
pub fn save_jsonl(dataset: &Dataset, path: &Path) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut out = BufWriter::new(file);
    let header = DatasetHeader {
        name: dataset.name.clone(),
        kind: dataset.kind,
        theta_max: dataset.theta_max,
        n_records: dataset.len(),
    };
    writeln!(
        out,
        "{}",
        serde_json::to_string(&header).map_err(std::io::Error::other)?
    )?;
    for r in &dataset.records {
        writeln!(
            out,
            "{}",
            serde_json::to_string(r).map_err(std::io::Error::other)?
        )?;
    }
    out.flush()
}

/// Loads a dataset written by [`save_jsonl`]. Validates the record count and
/// that every record matches the header's distance kind.
pub fn load_jsonl(path: &Path) -> std::io::Result<Dataset> {
    let file = std::fs::File::open(path)?;
    let mut lines = BufReader::new(file).lines();
    let header_line = lines
        .next()
        .ok_or_else(|| std::io::Error::other("empty dataset file"))??;
    let header: DatasetHeader =
        serde_json::from_str(&header_line).map_err(std::io::Error::other)?;
    let mut records = Vec::with_capacity(header.n_records);
    for line in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let record: Record = serde_json::from_str(&line).map_err(std::io::Error::other)?;
        let matches_kind = matches!(
            (&record, header.kind),
            (Record::Bits(_), DistanceKind::Hamming)
                | (Record::Str(_), DistanceKind::Edit)
                | (Record::Set(_), DistanceKind::Jaccard)
                | (Record::Vec(_), DistanceKind::Euclidean)
        );
        if !matches_kind {
            return Err(std::io::Error::other(format!(
                "record type {} does not fit distance {:?}",
                record.kind_name(),
                header.kind
            )));
        }
        records.push(record);
    }
    if records.len() != header.n_records {
        return Err(std::io::Error::other(format!(
            "header promises {} records, file has {}",
            header.n_records,
            records.len()
        )));
    }
    Ok(Dataset::new(
        header.name,
        header.kind,
        records,
        header.theta_max,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{jc_bms, SynthConfig};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("cardest_io_tests");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir.join(name)
    }

    #[test]
    fn jsonl_roundtrip_preserves_dataset() {
        let ds = jc_bms(SynthConfig::new(40, 3));
        let path = tmp("roundtrip.jsonl");
        save_jsonl(&ds, &path).expect("save");
        let back = load_jsonl(&path).expect("load");
        assert_eq!(back.name, ds.name);
        assert_eq!(back.kind, ds.kind);
        assert_eq!(back.theta_max, ds.theta_max);
        assert_eq!(back.records, ds.records);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn kind_mismatch_is_rejected() {
        let ds = jc_bms(SynthConfig::new(5, 4));
        let path = tmp("mismatch.jsonl");
        save_jsonl(&ds, &path).expect("save");
        // Corrupt the header to claim Hamming.
        let content = std::fs::read_to_string(&path).expect("read");
        let corrupted = content.replacen("Jaccard", "Hamming", 1);
        std::fs::write(&path, corrupted).expect("write");
        assert!(load_jsonl(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_is_rejected() {
        let ds = jc_bms(SynthConfig::new(10, 5));
        let path = tmp("truncated.jsonl");
        save_jsonl(&ds, &path).expect("save");
        let content = std::fs::read_to_string(&path).expect("read");
        let lines: Vec<&str> = content.lines().collect();
        std::fs::write(&path, lines[..lines.len() - 2].join("\n")).expect("write");
        assert!(load_jsonl(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
