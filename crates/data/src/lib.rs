//! Data model for the `cardest` workspace: record types, distance functions,
//! synthetic corpora, query workloads, and the accuracy metrics of §2.1/§9.2.
//!
//! The paper evaluates four distance functions over eight corpora (Table 2).
//! The corpora are unavailable offline, so [`synth`] provides seeded,
//! structure-matched generators (documented in DESIGN.md §2.5); everything
//! downstream — feature extraction, the estimators, the optimizer case
//! studies — is agnostic to where the records came from.

pub mod bitvec;
pub mod dataset;
pub mod dist;
pub mod io;
pub mod metrics;
pub mod record;
pub mod sampling;
pub mod synth;
pub mod workload;
pub mod zipf;

pub use bitvec::BitVec;
pub use dataset::Dataset;
pub use dist::{Distance, DistanceKind};
pub use record::Record;
pub use workload::{Workload, WorkloadSplit};
