//! Bit-packed binary vectors with fast Hamming distance.
//!
//! This is the common interchange type of the whole system: feature
//! extraction maps every record into a [`BitVec`], and the regression model
//! consumes it (§3.1 of the paper poses `x ∈ {0,1}^d` as the interface
//! between the two components).

use serde::{Deserialize, Serialize};

/// A fixed-width binary vector packed into `u64` words.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitVec {
    len: usize,
    words: Vec<u64>,
}

impl std::fmt::Debug for BitVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BitVec[{}; ", self.len)?;
        for i in 0..self.len.min(64) {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        if self.len > 64 {
            write!(f, "…")?;
        }
        write!(f, "]")
    }
}

impl BitVec {
    /// All-zero vector of `len` bits.
    pub fn zeros(len: usize) -> Self {
        BitVec {
            len,
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// Builds from an iterator of bools, in index order.
    pub fn from_bits(bits: impl IntoIterator<Item = bool>) -> Self {
        let mut words = Vec::new();
        let mut len = 0;
        for bit in bits {
            if len % 64 == 0 {
                words.push(0u64);
            }
            if bit {
                *words.last_mut().expect("word pushed above") |= 1u64 << (len % 64);
            }
            len += 1;
        }
        BitVec { len, words }
    }

    /// Builds a `len`-bit vector from the low bits of `value` (bit 0 first).
    pub fn from_u64(value: u64, len: usize) -> Self {
        assert!(len <= 64);
        let mask = if len == 64 {
            u64::MAX
        } else {
            (1u64 << len) - 1
        };
        BitVec {
            len,
            words: vec![value & mask],
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Raw words (low bit = index 0 of each word).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    #[inline]
    pub fn set(&mut self, i: usize, v: bool) {
        debug_assert!(i < self.len);
        let (w, b) = (i / 64, i % 64);
        if v {
            self.words[w] |= 1u64 << b;
        } else {
            self.words[w] &= !(1u64 << b);
        }
    }

    /// Flips bit `i`.
    pub fn flip(&mut self, i: usize) {
        let (w, b) = (i / 64, i % 64);
        self.words[w] ^= 1u64 << b;
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Hamming distance via XOR + popcount — the hot path of the whole
    /// system (both the oracle and feature space live here).
    #[inline]
    pub fn hamming(&self, other: &BitVec) -> u32 {
        debug_assert_eq!(self.len, other.len, "hamming on unequal widths");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum()
    }

    /// Hamming distance, but stops early once it exceeds `bound`.
    /// Selection queries with a threshold use this to skip hopeless records.
    #[inline]
    pub fn hamming_within(&self, other: &BitVec, bound: u32) -> Option<u32> {
        let mut total = 0;
        for (a, b) in self.words.iter().zip(&other.words) {
            total += (a ^ b).count_ones();
            if total > bound {
                return None;
            }
        }
        Some(total)
    }

    /// Extracts bits `[start, start+width)` as a `u64` (width ≤ 64). Used by
    /// the GPH part-split in the query-optimizer case study.
    pub fn extract_word(&self, start: usize, width: usize) -> u64 {
        assert!(width <= 64 && start + width <= self.len);
        let mut out = 0u64;
        for i in 0..width {
            if self.get(start + i) {
                out |= 1u64 << i;
            }
        }
        out
    }

    /// Expands into an `f32` slice (`0.0` / `1.0`), the NN input encoding.
    pub fn write_f32(&self, out: &mut [f32]) {
        assert_eq!(out.len(), self.len);
        for (i, v) in out.iter_mut().enumerate() {
            *v = f32::from(u8::from(self.get(i)));
        }
    }

    /// Convenience `Vec<f32>` form of [`BitVec::write_f32`].
    pub fn to_f32(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.len];
        self.write_f32(&mut out);
        out
    }

    /// Concatenates two bit vectors.
    pub fn concat(&self, other: &BitVec) -> BitVec {
        let mut out = BitVec::zeros(self.len + other.len);
        for i in 0..self.len {
            if self.get(i) {
                out.set(i, true);
            }
        }
        for i in 0..other.len {
            if other.get(i) {
                out.set(self.len + i, true);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn from_bits_roundtrip() {
        let bits = [true, false, true, true, false, false, true];
        let bv = BitVec::from_bits(bits.iter().copied());
        assert_eq!(bv.len(), 7);
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(bv.get(i), b);
        }
        assert_eq!(bv.count_ones(), 4);
    }

    #[test]
    fn hamming_simple() {
        let a = BitVec::from_u64(0b1010, 4);
        let b = BitVec::from_u64(0b0110, 4);
        assert_eq!(a.hamming(&b), 2);
        assert_eq!(a.hamming(&a), 0);
    }

    #[test]
    fn hamming_spans_word_boundary() {
        let mut a = BitVec::zeros(130);
        let mut b = BitVec::zeros(130);
        a.set(0, true);
        a.set(64, true);
        a.set(129, true);
        b.set(129, true);
        assert_eq!(a.hamming(&b), 2);
    }

    #[test]
    fn hamming_within_early_exit() {
        let a = BitVec::from_u64(0xFF, 8);
        let b = BitVec::from_u64(0x00, 8);
        assert_eq!(a.hamming_within(&b, 7), None);
        assert_eq!(a.hamming_within(&b, 8), Some(8));
    }

    #[test]
    fn extract_word_matches_bits() {
        let bv = BitVec::from_bits([true, false, true, true, false, true].iter().copied());
        assert_eq!(bv.extract_word(0, 3), 0b101);
        assert_eq!(bv.extract_word(2, 4), 0b1011);
    }

    #[test]
    fn to_f32_encodes_bits() {
        let bv = BitVec::from_u64(0b101, 3);
        assert_eq!(bv.to_f32(), vec![1.0, 0.0, 1.0]);
    }

    #[test]
    fn concat_preserves_both_parts() {
        let a = BitVec::from_u64(0b11, 2);
        let b = BitVec::from_u64(0b01, 3);
        let c = a.concat(&b);
        assert_eq!(c.len(), 5);
        assert_eq!(c.to_f32(), vec![1.0, 1.0, 1.0, 0.0, 0.0]);
    }

    proptest! {
        #[test]
        fn hamming_is_a_metric(a in prop::collection::vec(any::<bool>(), 1..200),
                               b_flips in prop::collection::vec(any::<prop::sample::Index>(), 0..16),
                               c_flips in prop::collection::vec(any::<prop::sample::Index>(), 0..16)) {
            let av = BitVec::from_bits(a.iter().copied());
            let mut bv = av.clone();
            for f in &b_flips { bv.flip(f.index(a.len())); }
            let mut cv = av.clone();
            for f in &c_flips { cv.flip(f.index(a.len())); }

            // symmetry
            prop_assert_eq!(av.hamming(&bv), bv.hamming(&av));
            // identity
            prop_assert_eq!(av.hamming(&av), 0);
            // triangle inequality
            prop_assert!(av.hamming(&cv) <= av.hamming(&bv) + bv.hamming(&cv));
        }

        #[test]
        fn hamming_within_agrees_with_hamming(bits_a in prop::collection::vec(any::<bool>(), 1..128),
                                              bits_b in prop::collection::vec(any::<bool>(), 1..128),
                                              bound in 0u32..64) {
            let n = bits_a.len().min(bits_b.len());
            let a = BitVec::from_bits(bits_a[..n].iter().copied());
            let b = BitVec::from_bits(bits_b[..n].iter().copied());
            let exact = a.hamming(&b);
            match a.hamming_within(&b, bound) {
                Some(d) => { prop_assert_eq!(d, exact); prop_assert!(d <= bound); }
                None => prop_assert!(exact > bound),
            }
        }
    }
}
