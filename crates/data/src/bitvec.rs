//! Bit-packed binary vectors with fast Hamming distance.
//!
//! This is the common interchange type of the whole system: feature
//! extraction maps every record into a [`BitVec`], and the regression model
//! consumes it (§3.1 of the paper poses `x ∈ {0,1}^d` as the interface
//! between the two components).

use serde::{Deserialize, Serialize};

/// A fixed-width binary vector packed into `u64` words.
///
/// Two representation invariants back the derived `PartialEq`/`Hash` (cache
/// keys and dedup all over the system compare `BitVec`s structurally):
///
/// 1. `words.len() == len.div_ceil(64)` — every constructor allocates
///    exactly the words the length needs, so two logically equal vectors
///    can never differ in word count;
/// 2. padding bits beyond `len` in the last word are zero — every mutator
///    either cannot set them (in-range `set`/`flip` stay below `len`) or
///    masks the last word so a release-mode out-of-range index cannot
///    corrupt it.
///
/// The proptests at the bottom of this module drive random
/// constructor/mutator sequences against both invariants.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitVec {
    len: usize,
    words: Vec<u64>,
}

impl std::fmt::Debug for BitVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BitVec[{}; ", self.len)?;
        for i in 0..self.len.min(64) {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        if self.len > 64 {
            write!(f, "…")?;
        }
        write!(f, "]")
    }
}

impl BitVec {
    /// All-zero vector of `len` bits.
    pub fn zeros(len: usize) -> Self {
        BitVec {
            len,
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// Builds from an iterator of bools, in index order.
    pub fn from_bits(bits: impl IntoIterator<Item = bool>) -> Self {
        let mut words = Vec::new();
        let mut len = 0;
        for bit in bits {
            if len % 64 == 0 {
                words.push(0u64);
            }
            if bit {
                *words.last_mut().expect("word pushed above") |= 1u64 << (len % 64);
            }
            len += 1;
        }
        BitVec { len, words }
    }

    /// Builds a `len`-bit vector from the low bits of `value` (bit 0 first).
    pub fn from_u64(value: u64, len: usize) -> Self {
        assert!(len <= 64);
        // Word count must follow `len` exactly: `from_u64(v, 0)` used to
        // allocate one word while `zeros(0)` allocated none, making two
        // logically equal vectors unequal under derived `PartialEq`/`Hash`.
        let mut bv = BitVec::zeros(len);
        if len > 0 {
            bv.words[0] = value & Self::last_word_mask(len);
        }
        bv
    }

    /// Mask selecting the valid bits of the last word of a `len`-bit vector
    /// (`u64::MAX` when the last word is full).
    #[inline]
    fn last_word_mask(len: usize) -> u64 {
        match len % 64 {
            0 => u64::MAX,
            tail => (1u64 << tail) - 1,
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Raw words (low bit = index 0 of each word).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    #[inline]
    pub fn set(&mut self, i: usize, v: bool) {
        debug_assert!(i < self.len, "set out of range: {i} >= {}", self.len);
        let (w, b) = (i / 64, i % 64);
        if v {
            self.words[w] |= 1u64 << b;
            // Release builds compile the assert away; masking keeps an
            // out-of-range set from planting padding bits (same hazard as
            // `flip`). Clearing a bit can never create one.
            if w + 1 == self.words.len() {
                self.words[w] &= Self::last_word_mask(self.len);
            }
        } else {
            self.words[w] &= !(1u64 << b);
        }
    }

    /// Flips bit `i`.
    pub fn flip(&mut self, i: usize) {
        debug_assert!(i < self.len, "flip out of range: {i} >= {}", self.len);
        let (w, b) = (i / 64, i % 64);
        self.words[w] ^= 1u64 << b;
        // In release builds the assert above compiles away; masking the last
        // word keeps an out-of-range flip from setting padding bits, which
        // would silently corrupt `count_ones`, `hamming`, and `Hash`.
        if w + 1 == self.words.len() {
            self.words[w] &= Self::last_word_mask(self.len);
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Hamming distance via XOR + popcount — the hot path of the whole
    /// system (both the oracle and feature space live here).
    ///
    /// Panics (in release builds too) on unequal widths: the old
    /// `zip`-truncating behavior silently under-counted, which is a data
    /// bug, not a programming convenience.
    #[inline]
    pub fn hamming(&self, other: &BitVec) -> u32 {
        assert_eq!(self.len, other.len, "hamming on unequal widths");
        xor_popcount(&self.words, &other.words)
    }

    /// Batched Hamming distances `self ↔ others[i]`, one output per input.
    ///
    /// Same word-parallel XOR+popcount as [`BitVec::hamming`], but the
    /// query's words stay hot across the whole batch — this is the scan
    /// shape of the sampler baselines (DB-US/DB-SE key computation), where
    /// one query is compared against every retained sample record.
    pub fn hamming_many<'a, I>(&self, others: I) -> Vec<u32>
    where
        I: IntoIterator<Item = &'a BitVec>,
    {
        others
            .into_iter()
            .map(|other| {
                assert_eq!(self.len, other.len, "hamming on unequal widths");
                xor_popcount(&self.words, &other.words)
            })
            .collect()
    }

    /// Hamming distance, but stops early once it exceeds `bound`.
    /// Selection queries with a threshold use this to skip hopeless records.
    #[inline]
    pub fn hamming_within(&self, other: &BitVec, bound: u32) -> Option<u32> {
        assert_eq!(self.len, other.len, "hamming on unequal widths");
        let mut total = 0;
        for (a, b) in self.words.iter().zip(&other.words) {
            total += (a ^ b).count_ones();
            if total > bound {
                return None;
            }
        }
        Some(total)
    }

    /// Extracts bits `[start, start+width)` as a `u64` (width ≤ 64). Used by
    /// the GPH part-split in the query-optimizer case study.
    pub fn extract_word(&self, start: usize, width: usize) -> u64 {
        assert!(width <= 64 && start + width <= self.len);
        let mut out = 0u64;
        for i in 0..width {
            if self.get(start + i) {
                out |= 1u64 << i;
            }
        }
        out
    }

    /// Expands into an `f32` slice (`0.0` / `1.0`), the NN input encoding.
    pub fn write_f32(&self, out: &mut [f32]) {
        assert_eq!(out.len(), self.len);
        for (i, v) in out.iter_mut().enumerate() {
            *v = f32::from(u8::from(self.get(i)));
        }
    }

    /// Convenience `Vec<f32>` form of [`BitVec::write_f32`].
    pub fn to_f32(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.len];
        self.write_f32(&mut out);
        out
    }

    /// Concatenates two bit vectors.
    pub fn concat(&self, other: &BitVec) -> BitVec {
        let mut out = BitVec::zeros(self.len + other.len);
        for i in 0..self.len {
            if self.get(i) {
                out.set(i, true);
            }
        }
        for i in 0..other.len {
            if other.get(i) {
                out.set(self.len + i, true);
            }
        }
        out
    }
}

/// XOR + popcount over two equal-length word slices, 4-way unrolled so the
/// partial counts live in independent registers (the compiler folds each
/// `count_ones` to a `popcnt`; the unroll hides its latency). Addition of
/// counts is integer, so any grouping gives the same total.
#[inline]
fn xor_popcount(a: &[u64], b: &[u64]) -> u32 {
    debug_assert_eq!(a.len(), b.len());
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    let mut acc = [0u32; 4];
    for (wa, wb) in (&mut ca).zip(&mut cb) {
        acc[0] += (wa[0] ^ wb[0]).count_ones();
        acc[1] += (wa[1] ^ wb[1]).count_ones();
        acc[2] += (wa[2] ^ wb[2]).count_ones();
        acc[3] += (wa[3] ^ wb[3]).count_ones();
    }
    let mut total = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for (wa, wb) in ca.remainder().iter().zip(cb.remainder()) {
        total += (wa ^ wb).count_ones();
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    #[test]
    fn from_bits_roundtrip() {
        let bits = [true, false, true, true, false, false, true];
        let bv = BitVec::from_bits(bits.iter().copied());
        assert_eq!(bv.len(), 7);
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(bv.get(i), b);
        }
        assert_eq!(bv.count_ones(), 4);
    }

    #[test]
    fn hamming_simple() {
        let a = BitVec::from_u64(0b1010, 4);
        let b = BitVec::from_u64(0b0110, 4);
        assert_eq!(a.hamming(&b), 2);
        assert_eq!(a.hamming(&a), 0);
    }

    #[test]
    fn hamming_spans_word_boundary() {
        let mut a = BitVec::zeros(130);
        let mut b = BitVec::zeros(130);
        a.set(0, true);
        a.set(64, true);
        a.set(129, true);
        b.set(129, true);
        assert_eq!(a.hamming(&b), 2);
    }

    #[test]
    fn hamming_within_early_exit() {
        let a = BitVec::from_u64(0xFF, 8);
        let b = BitVec::from_u64(0x00, 8);
        assert_eq!(a.hamming_within(&b, 7), None);
        assert_eq!(a.hamming_within(&b, 8), Some(8));
    }

    #[test]
    fn extract_word_matches_bits() {
        let bv = BitVec::from_bits([true, false, true, true, false, true].iter().copied());
        assert_eq!(bv.extract_word(0, 3), 0b101);
        assert_eq!(bv.extract_word(2, 4), 0b1011);
    }

    #[test]
    fn to_f32_encodes_bits() {
        let bv = BitVec::from_u64(0b101, 3);
        assert_eq!(bv.to_f32(), vec![1.0, 0.0, 1.0]);
    }

    #[test]
    fn concat_preserves_both_parts() {
        let a = BitVec::from_u64(0b11, 2);
        let b = BitVec::from_u64(0b01, 3);
        let c = a.concat(&b);
        assert_eq!(c.len(), 5);
        assert_eq!(c.to_f32(), vec![1.0, 1.0, 1.0, 0.0, 0.0]);
    }

    proptest! {
        #[test]
        fn hamming_is_a_metric(a in prop::collection::vec(any::<bool>(), 1..200),
                               b_flips in prop::collection::vec(any::<prop::sample::Index>(), 0..16),
                               c_flips in prop::collection::vec(any::<prop::sample::Index>(), 0..16)) {
            let av = BitVec::from_bits(a.iter().copied());
            let mut bv = av.clone();
            for f in &b_flips { bv.flip(f.index(a.len())); }
            let mut cv = av.clone();
            for f in &c_flips { cv.flip(f.index(a.len())); }

            // symmetry
            prop_assert_eq!(av.hamming(&bv), bv.hamming(&av));
            // identity
            prop_assert_eq!(av.hamming(&av), 0);
            // triangle inequality
            prop_assert!(av.hamming(&cv) <= av.hamming(&bv) + bv.hamming(&cv));
        }

        #[test]
        fn hamming_within_agrees_with_hamming(bits_a in prop::collection::vec(any::<bool>(), 1..128),
                                              bits_b in prop::collection::vec(any::<bool>(), 1..128),
                                              bound in 0u32..64) {
            let n = bits_a.len().min(bits_b.len());
            let a = BitVec::from_bits(bits_a[..n].iter().copied());
            let b = BitVec::from_bits(bits_b[..n].iter().copied());
            let exact = a.hamming(&b);
            match a.hamming_within(&b, bound) {
                Some(d) => { prop_assert_eq!(d, exact); prop_assert!(d <= bound); }
                None => prop_assert!(exact > bound),
            }
        }

        /// `hamming_many` is a batched `hamming`: same distances, same order.
        /// Widths span several words so the 4-way unrolled popcount loop and
        /// its remainder both run.
        #[test]
        fn hamming_many_agrees_with_hamming(
            bits_q in prop::collection::vec(any::<bool>(), 1..400),
            flip_sets in prop::collection::vec(
                prop::collection::vec(any::<prop::sample::Index>(), 0..12), 0..8),
        ) {
            let q = BitVec::from_bits(bits_q.iter().copied());
            let others: Vec<BitVec> = flip_sets.iter().map(|flips| {
                let mut o = q.clone();
                for f in flips { o.flip(f.index(bits_q.len())); }
                o
            }).collect();
            let batched = q.hamming_many(others.iter());
            prop_assert_eq!(batched.len(), others.len());
            for (got, o) in batched.iter().zip(&others) {
                prop_assert_eq!(*got, q.hamming(o));
            }
        }
    }

    /// Representation invariants behind derived `PartialEq`/`Hash`:
    /// word count tracks `len` exactly, padding bits beyond `len` stay zero.
    fn assert_invariants(bv: &BitVec, what: &str) {
        assert_eq!(
            bv.words().len(),
            bv.len().div_ceil(64),
            "{what}: word count does not match len {}",
            bv.len()
        );
        if let Some(&last) = bv.words().last() {
            assert_eq!(
                last & !BitVec::last_word_mask(bv.len()),
                0,
                "{what}: padding bits set beyond len {}",
                bv.len()
            );
        }
    }

    fn hash_of(bv: &BitVec) -> u64 {
        let mut h = DefaultHasher::new();
        bv.hash(&mut h);
        h.finish()
    }

    #[test]
    fn empty_constructors_are_equal_and_hash_equal() {
        // Regression: `from_u64(v, 0)` used to allocate one word while
        // `zeros(0)` allocated none, splitting logically equal vectors under
        // derived `PartialEq`/`Hash` (a cache-key and dedup hazard).
        let a = BitVec::from_u64(0xDEAD_BEEF, 0);
        let b = BitVec::zeros(0);
        let c = BitVec::from_bits(std::iter::empty());
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(hash_of(&a), hash_of(&b));
        assert_eq!(hash_of(&a), hash_of(&c));
        assert_invariants(&a, "from_u64(_, 0)");
        assert_invariants(&b, "zeros(0)");
        assert_invariants(&c, "from_bits(empty)");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "flip out of range")]
    fn flip_rejects_out_of_range_index() {
        let mut bv = BitVec::zeros(10);
        bv.flip(10);
    }

    #[test]
    #[should_panic(expected = "hamming on unequal widths")]
    fn hamming_rejects_unequal_widths_in_release_too() {
        let a = BitVec::zeros(65);
        let b = BitVec::zeros(64);
        let _ = a.hamming(&b);
    }

    proptest! {
        /// Every constructor/mutator sequence preserves the representation
        /// invariants, and vectors with identical logical bits — however
        /// they were built — are `Eq` with equal hashes (and vice versa).
        #[test]
        fn padding_invariant_and_eq_hash_after_any_op_sequence(
            bits in prop::collection::vec(any::<bool>(), 0..150),
            word in any::<u64>(),
            word_len in 0usize..=64,
            op_codes in prop::collection::vec(0usize..3, 0..24),
            op_idxs in prop::collection::vec(any::<prop::sample::Index>(), 0..24),
            op_vals in prop::collection::vec(any::<bool>(), 0..24),
        ) {
            let mut bv = BitVec::from_bits(bits.iter().copied());
            let mut mirror = bits.clone();
            assert_invariants(&bv, "from_bits");

            // Zip truncates to the shortest stream — each draw is still an
            // arbitrary (op, index, value) triple.
            for ((&op, &idx), &v) in op_codes.iter().zip(&op_idxs).zip(&op_vals) {
                match op {
                    0 if !mirror.is_empty() => {
                        let i = idx.index(mirror.len());
                        bv.set(i, v);
                        mirror[i] = v;
                    }
                    1 if !mirror.is_empty() => {
                        let i = idx.index(mirror.len());
                        bv.flip(i);
                        mirror[i] = !mirror[i];
                    }
                    2 => {
                        let tail = BitVec::from_u64(word, word_len);
                        assert_invariants(&tail, "from_u64");
                        bv = bv.concat(&tail);
                        mirror.extend((0..word_len).map(|b| (word >> b) & 1 == 1));
                    }
                    _ => {}
                }
                assert_invariants(&bv, "after mutator");
            }

            // Logical bits survived the whole sequence.
            prop_assert_eq!(bv.len(), mirror.len());
            for (i, &b) in mirror.iter().enumerate() {
                prop_assert_eq!(bv.get(i), b);
            }

            // A structurally fresh rebuild of the same logical bits is Eq
            // with an equal hash — i.e. Eq/Hash agree with bitwise equality
            // regardless of construction path.
            let rebuilt = BitVec::from_bits(mirror.iter().copied());
            prop_assert_eq!(&bv, &rebuilt);
            prop_assert_eq!(hash_of(&bv), hash_of(&rebuilt));

            // And a single-bit difference breaks Eq.
            if !mirror.is_empty() {
                let mut other = rebuilt.clone();
                other.flip(0);
                prop_assert_ne!(&bv, &other);
            }
        }
    }
}
