//! Accuracy metrics of §2.1 and §9.2: MSE, MAPE, and the mean q-error.

/// Mean squared error `1/n Σ (c_i − ĉ_i)²`.
pub fn mse(actual: &[f64], estimated: &[f64]) -> f64 {
    assert_eq!(actual.len(), estimated.len());
    if actual.is_empty() {
        return 0.0;
    }
    actual
        .iter()
        .zip(estimated)
        .map(|(&c, &e)| (c - e) * (c - e))
        .sum::<f64>()
        / actual.len() as f64
}

/// Mean absolute percentage error `1/n Σ |c_i − ĉ_i| / c_i`, in percent.
///
/// Zero-cardinality queries are evaluated against `max(c, 1)` — the common
/// convention, since the paper's workloads always include the query itself
/// (queries are sampled from the dataset, so `c ≥ 1`).
pub fn mape(actual: &[f64], estimated: &[f64]) -> f64 {
    assert_eq!(actual.len(), estimated.len());
    if actual.is_empty() {
        return 0.0;
    }
    100.0
        * actual
            .iter()
            .zip(estimated)
            .map(|(&c, &e)| (c - e).abs() / c.max(1.0))
            .sum::<f64>()
        / actual.len() as f64
}

/// Mean q-error `1/n Σ max(c/ĉ, ĉ/c)` (§9.2), the symmetric version of MAPE.
/// Both sides are clamped to ≥ 1 so zero estimates stay finite.
pub fn mean_q_error(actual: &[f64], estimated: &[f64]) -> f64 {
    assert_eq!(actual.len(), estimated.len());
    if actual.is_empty() {
        return 1.0;
    }
    actual
        .iter()
        .zip(estimated)
        .map(|(&c, &e)| {
            let c = c.max(1.0);
            let e = e.max(1.0);
            (c / e).max(e / c)
        })
        .sum::<f64>()
        / actual.len() as f64
}

/// Mean squared logarithmic error — the training/validation criterion (§6.2).
pub fn msle(actual: &[f64], estimated: &[f64]) -> f64 {
    assert_eq!(actual.len(), estimated.len());
    if actual.is_empty() {
        return 0.0;
    }
    actual
        .iter()
        .zip(estimated)
        .map(|(&c, &e)| {
            let d = (1.0 + c.max(0.0)).ln() - (1.0 + e.max(0.0)).ln();
            d * d
        })
        .sum::<f64>()
        / actual.len() as f64
}

/// All four metrics at once — what every experiment table reports.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Accuracy {
    pub mse: f64,
    pub mape: f64,
    pub mean_q_error: f64,
    pub msle: f64,
}

impl Accuracy {
    pub fn compute(actual: &[f64], estimated: &[f64]) -> Accuracy {
        Accuracy {
            mse: mse(actual, estimated),
            mape: mape(actual, estimated),
            mean_q_error: mean_q_error(actual, estimated),
            msle: msle(actual, estimated),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_estimates_have_zero_error() {
        let c = [1.0, 10.0, 100.0];
        assert_eq!(mse(&c, &c), 0.0);
        assert_eq!(mape(&c, &c), 0.0);
        assert_eq!(mean_q_error(&c, &c), 1.0);
        assert_eq!(msle(&c, &c), 0.0);
    }

    #[test]
    fn known_values() {
        let actual = [10.0, 20.0];
        let est = [5.0, 40.0];
        assert_eq!(mse(&actual, &est), (25.0 + 400.0) / 2.0);
        assert!((mape(&actual, &est) - 75.0).abs() < 1e-9); // (50% + 100%) / 2
        assert_eq!(mean_q_error(&actual, &est), 2.0); // both off by 2x
    }

    #[test]
    fn q_error_is_symmetric_between_over_and_under() {
        assert_eq!(
            mean_q_error(&[10.0], &[20.0]),
            mean_q_error(&[10.0], &[5.0])
        );
    }

    #[test]
    fn zero_actual_is_safe() {
        assert!(mape(&[0.0], &[3.0]).is_finite());
        assert!(mean_q_error(&[0.0], &[0.0]).is_finite());
    }

    proptest! {
        #[test]
        fn q_error_at_least_one(actual in prop::collection::vec(0.0f64..1e6, 1..50),
                                est in prop::collection::vec(0.0f64..1e6, 1..50)) {
            let n = actual.len().min(est.len());
            let q = mean_q_error(&actual[..n], &est[..n]);
            prop_assert!(q >= 1.0 - 1e-12);
        }

        #[test]
        fn mse_is_nonnegative(actual in prop::collection::vec(0.0f64..1e6, 1..50),
                              est in prop::collection::vec(0.0f64..1e6, 1..50)) {
            let n = actual.len().min(est.len());
            prop_assert!(mse(&actual[..n], &est[..n]) >= 0.0);
            prop_assert!(msle(&actual[..n], &est[..n]) >= 0.0);
        }
    }
}
