//! A dataset `D` plus its distance function and supported threshold range
//! (`θ_max`, §2.1) — the unit every estimator is built against.

use crate::dist::{Distance, DistanceKind};
use crate::record::Record;

/// A named collection of records with a distance function and `θ_max`.
#[derive(Clone, Debug)]
pub struct Dataset {
    pub name: String,
    pub kind: DistanceKind,
    pub records: Vec<Record>,
    /// The maximum threshold the estimators must support.
    pub theta_max: f64,
}

impl Dataset {
    pub fn new(
        name: impl Into<String>,
        kind: DistanceKind,
        records: Vec<Record>,
        theta_max: f64,
    ) -> Self {
        Dataset {
            name: name.into(),
            kind,
            records,
            theta_max,
        }
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    pub fn distance(&self) -> Distance {
        Distance::new(self.kind)
    }

    /// Exact cardinality `|{ y ∈ D : f(x, y) ≤ θ }|` by linear scan — the
    /// reference the indexes and estimators are validated against.
    pub fn cardinality_scan(&self, query: &Record, theta: f64) -> usize {
        let d = self.distance();
        self.records
            .iter()
            .filter(|y| d.eval_within(query, y, theta).is_some())
            .count()
    }

    /// Cardinality at every integer distance `0..=max_d` (a histogram of
    /// distances after flooring). Used to derive per-distance training
    /// targets (`c_i` of §3.3) in one pass over the data.
    pub fn distance_histogram(&self, query: &Record, max_d: f64, buckets: usize) -> Vec<usize> {
        let d = self.distance();
        let mut hist = vec![0usize; buckets + 1];
        for y in &self.records {
            if let Some(dist) = d.eval_within(query, y, max_d) {
                let b = if max_d > 0.0 {
                    ((dist / max_d) * buckets as f64).floor() as usize
                } else {
                    0
                };
                hist[b.min(buckets)] += 1;
            }
        }
        hist
    }

    /// Maximum record width in the dataset (string length, set size, dims).
    pub fn max_width(&self) -> usize {
        self.records.iter().map(Record::width).max().unwrap_or(0)
    }

    /// Average record width.
    pub fn avg_width(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().map(Record::width).sum::<usize>() as f64 / self.records.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitvec::BitVec;

    fn tiny_hamming() -> Dataset {
        let records = (0u64..16)
            .map(|v| Record::Bits(BitVec::from_u64(v, 4)))
            .collect();
        Dataset::new("tiny", DistanceKind::Hamming, records, 4.0)
    }

    #[test]
    fn cardinality_scan_counts_within_threshold() {
        let ds = tiny_hamming();
        let q = Record::Bits(BitVec::from_u64(0, 4));
        // Hamming balls around 0000 in {0,1}^4: C(4,0..k) cumulative.
        assert_eq!(ds.cardinality_scan(&q, 0.0), 1);
        assert_eq!(ds.cardinality_scan(&q, 1.0), 5);
        assert_eq!(ds.cardinality_scan(&q, 2.0), 11);
        assert_eq!(ds.cardinality_scan(&q, 4.0), 16);
    }

    #[test]
    fn histogram_sums_to_ball_size() {
        let ds = tiny_hamming();
        let q = Record::Bits(BitVec::from_u64(0, 4));
        let hist = ds.distance_histogram(&q, 4.0, 4);
        assert_eq!(hist.iter().sum::<usize>(), 16);
        assert_eq!(hist[0], 1); // distance 0
        assert_eq!(hist[1], 4); // distance 1
    }

    #[test]
    fn widths_reported() {
        let ds = tiny_hamming();
        assert_eq!(ds.max_width(), 4);
        assert_eq!(ds.avg_width(), 4.0);
    }
}
