//! Zipf-distributed sampling, used by the set-domain generators
//! (basket datasets have strongly skewed token frequencies).

use rand::Rng;

/// A Zipf(`s`) distribution over `{0, 1, …, n−1}` sampled by inverse-CDF
/// lookup over the precomputed cumulative weights.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution; `exponent` ≥ 0 (0 = uniform).
    pub fn new(n: usize, exponent: f64) -> Self {
        assert!(n > 0, "Zipf needs a non-empty support");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(exponent);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Draws one rank (0 = most frequent).
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        // partition_point returns the count of elements < u, i.e. the first
        // index with cdf[i] >= u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    pub fn support_size(&self) -> usize {
        self.cdf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn zipf_is_skewed_toward_small_ranks() {
        let z = Zipf::new(100, 1.2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[50]);
        // rank 0 should dominate clearly at s=1.2
        assert!(counts[0] as f64 / 20_000.0 > 0.15);
    }

    #[test]
    fn exponent_zero_is_roughly_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut counts = vec![0usize; 10];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / 20_000.0;
            assert!((frac - 0.1).abs() < 0.03, "frac {frac}");
        }
    }

    #[test]
    fn samples_stay_in_support() {
        let z = Zipf::new(5, 2.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 5);
        }
    }
}
