//! Record types: the universe `O` of the problem definition (§2.1).

use crate::bitvec::BitVec;
use serde::{Deserialize, Serialize};

/// A record from one of the four data domains the paper evaluates.
///
/// Set elements are kept sorted and deduplicated, which the Jaccard kernels
/// rely on (merge-style intersection).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Record {
    /// A binary vector (Hamming distance domain).
    Bits(BitVec),
    /// A string (edit-distance domain); bytes, ASCII in our generators.
    Str(String),
    /// A sorted set of token ids (Jaccard domain).
    Set(Vec<u32>),
    /// A real-valued vector (Euclidean domain).
    Vec(Vec<f32>),
}

impl Record {
    /// Normalizes a token list into the sorted/deduped set representation.
    pub fn set_from(mut tokens: Vec<u32>) -> Record {
        tokens.sort_unstable();
        tokens.dedup();
        Record::Set(tokens)
    }

    pub fn as_bits(&self) -> &BitVec {
        match self {
            Record::Bits(b) => b,
            other => panic!("expected Bits record, got {}", other.kind_name()),
        }
    }

    pub fn as_str(&self) -> &str {
        match self {
            Record::Str(s) => s,
            other => panic!("expected Str record, got {}", other.kind_name()),
        }
    }

    pub fn as_set(&self) -> &[u32] {
        match self {
            Record::Set(s) => s,
            other => panic!("expected Set record, got {}", other.kind_name()),
        }
    }

    pub fn as_vec(&self) -> &[f32] {
        match self {
            Record::Vec(v) => v,
            other => panic!("expected Vec record, got {}", other.kind_name()),
        }
    }

    pub fn kind_name(&self) -> &'static str {
        match self {
            Record::Bits(_) => "Bits",
            Record::Str(_) => "Str",
            Record::Set(_) => "Set",
            Record::Vec(_) => "Vec",
        }
    }

    /// A crude size measure: bits, chars, elements, or dimensions.
    pub fn width(&self) -> usize {
        match self {
            Record::Bits(b) => b.len(),
            Record::Str(s) => s.len(),
            Record::Set(s) => s.len(),
            Record::Vec(v) => v.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_from_sorts_and_dedups() {
        let r = Record::set_from(vec![5, 1, 5, 3]);
        assert_eq!(r.as_set(), &[1, 3, 5]);
    }

    #[test]
    fn accessors_return_inner_values() {
        assert_eq!(Record::Str("ab".into()).as_str(), "ab");
        assert_eq!(Record::Vec(vec![1.0]).as_vec(), &[1.0]);
        assert_eq!(Record::Bits(BitVec::from_u64(0b1, 1)).as_bits().len(), 1);
    }

    #[test]
    #[should_panic(expected = "expected Bits")]
    fn wrong_accessor_panics_with_kind() {
        Record::Str("x".into()).as_bits();
    }

    #[test]
    fn width_reflects_domain_size() {
        assert_eq!(Record::Str("abc".into()).width(), 3);
        assert_eq!(Record::Set(vec![1, 2]).width(), 2);
        assert_eq!(Record::Vec(vec![0.0; 7]).width(), 7);
        assert_eq!(Record::Bits(BitVec::zeros(9)).width(), 9);
    }
}
