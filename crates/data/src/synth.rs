//! Seeded synthetic corpora standing in for the paper's datasets (Table 2).
//!
//! Every generator preserves the structural property that makes its paper
//! counterpart interesting for cardinality estimation (DESIGN.md §2.5):
//! clustered binary codes yield the heavy-tailed cardinality curves of
//! Figure 1; name-like strings produce many near-duplicates; baskets have
//! Zipfian tokens; embeddings live in a Gaussian mixture on the unit sphere.
//! Sizes are configurable so `quick` experiment runs finish in seconds.

use crate::bitvec::BitVec;
use crate::dataset::Dataset;
use crate::dist::DistanceKind;
use crate::record::Record;
use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One standard-normal sample (Box–Muller; mirrors `cardest_nn::rng::normal`
/// without a cross-crate dependency).
fn normal(rng: &mut impl Rng) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Parameters shared by all generators.
#[derive(Clone, Copy, Debug)]
pub struct SynthConfig {
    pub n_records: usize,
    pub seed: u64,
}

impl SynthConfig {
    pub fn new(n_records: usize, seed: u64) -> Self {
        SynthConfig { n_records, seed }
    }
}

/// `HM-ImageNet` stand-in: 64-bit learned-hash-style codes.
///
/// HashNet codes cluster by image class; we mimic that with `k` centroids and
/// independent per-bit flip noise, which reproduces the "flat then surging"
/// cardinality curves of Figure 1(a).
pub fn hm_imagenet(cfg: SynthConfig) -> Dataset {
    clustered_bits("HM-ImageNet", cfg, 64, 24, 0.08, 20.0)
}

/// `HM-PubChem` stand-in: longer, sparse fingerprint-like codes. Real
/// fingerprints are sparse with correlated substructure bits; we use sparse
/// cluster centroids plus asymmetric flip noise that keeps density low.
pub fn hm_pubchem(cfg: SynthConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let dim = 192;
    let k = 12;
    let centroids: Vec<BitVec> = (0..k)
        .map(|_| BitVec::from_bits((0..dim).map(|_| rng.gen_bool(0.12))))
        .collect();
    let records = (0..cfg.n_records)
        .map(|_| {
            let c = &centroids[rng.gen_range(0..k)];
            let mut bits = c.clone();
            for i in 0..dim {
                // Sparse data: bits turn on rarely, off more readily.
                let p = if bits.get(i) { 0.10 } else { 0.02 };
                if rng.gen_bool(p) {
                    bits.flip(i);
                }
            }
            Record::Bits(bits)
        })
        .collect();
    Dataset::new("HM-PubChem", DistanceKind::Hamming, records, 30.0)
}

fn clustered_bits(
    name: &str,
    cfg: SynthConfig,
    dim: usize,
    k: usize,
    flip_p: f64,
    theta_max: f64,
) -> Dataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let centroids: Vec<BitVec> = (0..k)
        .map(|_| BitVec::from_bits((0..dim).map(|_| rng.gen_bool(0.5))))
        .collect();
    // Cluster sizes follow a Zipf so some codes are common, some rare — the
    // long tail the paper highlights in Figure 1(b).
    let cluster_pick = Zipf::new(k, 0.9);
    let records = (0..cfg.n_records)
        .map(|_| {
            let c = &centroids[cluster_pick.sample(&mut rng)];
            let mut bits = c.clone();
            for i in 0..dim {
                if rng.gen_bool(flip_p) {
                    bits.flip(i);
                }
            }
            Record::Bits(bits)
        })
        .collect();
    Dataset::new(name, DistanceKind::Hamming, records, theta_max)
}

/// High-dimensional Hamming stand-in for `HM-GIST2048` (Figure 6 sweeps).
pub fn hm_highdim(cfg: SynthConfig, dim: usize, theta_max: f64) -> Dataset {
    clustered_bits("HM-HighDim", cfg, dim, 16, 0.05, theta_max)
}

const SYLLABLES: &[&str] = &[
    "an", "bel", "chen", "dra", "el", "fan", "gar", "hu", "in", "jo", "ka", "li", "mo", "na", "or",
    "pe", "qi", "ra", "sa", "tu", "ver", "wang", "xu", "yan", "zhou",
];

/// A synthetic person name: 2–4 syllables, capitalized, optional second word.
fn synth_name(rng: &mut impl Rng) -> String {
    let word = |mut rng: &mut dyn rand::RngCore| {
        let parts = rng.gen_range(1..=2) + 1;
        let mut s = String::new();
        for _ in 0..parts {
            s.push_str(SYLLABLES[rng.gen_range(0..SYLLABLES.len())]);
        }
        let mut chars = s.chars();
        let first = chars.next().expect("non-empty word").to_ascii_uppercase();
        std::iter::once(first).chain(chars).collect::<String>()
    };
    let given = word(rng);
    let family = word(rng);
    format!("{given} {family}")
}

/// Applies `k` random character edits (insert/delete/substitute) to a string.
pub fn apply_typos(rng: &mut impl Rng, s: &str, k: usize) -> String {
    let mut chars: Vec<char> = s.chars().collect();
    for _ in 0..k {
        if chars.is_empty() {
            chars.push(rng.gen_range(b'a'..=b'z') as char);
            continue;
        }
        let pos = rng.gen_range(0..chars.len());
        match rng.gen_range(0..3) {
            0 => chars[pos] = rng.gen_range(b'a'..=b'z') as char,
            1 => chars.insert(pos, rng.gen_range(b'a'..=b'z') as char),
            _ => {
                chars.remove(pos);
            }
        }
    }
    chars.into_iter().collect()
}

/// `ED-AMiner` stand-in: author names with a typo channel. A base pool of
/// names is reused with 0–3 edits so near-duplicates abound, matching an
/// author-name corpus.
pub fn ed_aminer(cfg: SynthConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let pool: Vec<String> = (0..(cfg.n_records / 8).max(8))
        .map(|_| synth_name(&mut rng))
        .collect();
    let records = (0..cfg.n_records)
        .map(|_| {
            let base = &pool[rng.gen_range(0..pool.len())];
            let typos = rng.gen_range(0..=3);
            Record::Str(apply_typos(&mut rng, base, typos))
        })
        .collect();
    Dataset::new("ED-AMiner", DistanceKind::Edit, records, 8.0)
}

const KEYWORDS: &[&str] = &[
    "learning",
    "deep",
    "query",
    "index",
    "graph",
    "neural",
    "database",
    "search",
    "join",
    "estimation",
    "cardinality",
    "similarity",
    "hashing",
    "distributed",
    "stream",
    "optimal",
    "efficient",
    "scalable",
    "adaptive",
    "robust",
];

/// `ED-DBLP` stand-in: publication-title-like strings (3–6 keywords).
pub fn ed_dblp(cfg: SynthConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n_templates = (cfg.n_records / 6).max(4);
    let templates: Vec<String> = (0..n_templates)
        .map(|_| {
            let k = rng.gen_range(3..=6);
            (0..k)
                .map(|_| KEYWORDS[rng.gen_range(0..KEYWORDS.len())])
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect();
    let records = (0..cfg.n_records)
        .map(|_| {
            let base = &templates[rng.gen_range(0..templates.len())];
            let typos = rng.gen_range(0..=5);
            Record::Str(apply_typos(&mut rng, base, typos))
        })
        .collect();
    Dataset::new("ED-DBLP", DistanceKind::Edit, records, 12.0)
}

/// `JC-BMS` stand-in: small Zipfian baskets (click data).
pub fn jc_bms(cfg: SynthConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let vocab = 400;
    let zipf = Zipf::new(vocab, 1.1);
    let records = (0..cfg.n_records)
        .map(|_| {
            let len = rng.gen_range(2..=14);
            let tokens: Vec<u32> = (0..len).map(|_| zipf.sample(&mut rng) as u32).collect();
            Record::set_from(tokens)
        })
        .collect();
    Dataset::new("JC-BMS", DistanceKind::Jaccard, records, 0.4)
}

/// `JC-DBLPq3` stand-in: 3-gram sets of synthetic titles (large sets).
pub fn jc_dblpq3(cfg: SynthConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n_templates = (cfg.n_records / 6).max(4);
    let templates: Vec<String> = (0..n_templates)
        .map(|_| {
            let k = rng.gen_range(4..=8);
            (0..k)
                .map(|_| KEYWORDS[rng.gen_range(0..KEYWORDS.len())])
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect();
    let records = (0..cfg.n_records)
        .map(|_| {
            let base = &templates[rng.gen_range(0..templates.len())];
            let typos = rng.gen_range(0..=4);
            let s = apply_typos(&mut rng, base, typos);
            Record::set_from(qgrams(&s, 3))
        })
        .collect();
    Dataset::new("JC-DBLPq3", DistanceKind::Jaccard, records, 0.4)
}

/// Hashes the positional `q`-grams of `s` into token ids.
pub fn qgrams(s: &str, q: usize) -> Vec<u32> {
    let bytes = s.as_bytes();
    if bytes.len() < q {
        return vec![fnv1a(bytes)];
    }
    bytes.windows(q).map(fnv1a).collect()
}

/// FNV-1a over a byte slice, folded to 32 bits — a stable, dependency-free
/// token hash for q-grams.
fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    (h ^ (h >> 32)) as u32
}

/// Gaussian-mixture unit vectors: `EU-Glove300` / `EU-Glove50` stand-ins.
/// Word embeddings cluster by topic; after normalization the mixture lives on
/// the sphere, so thresholds in [0, √2] are meaningful, as in the paper
/// (θ_max = 0.8 on normalized GloVe).
pub fn eu_glove(cfg: SynthConfig, dim: usize) -> Dataset {
    let name = format!("EU-Glove{dim}");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let k = 16;
    let centroids: Vec<Vec<f64>> = (0..k)
        .map(|_| (0..dim).map(|_| normal(&mut rng)).collect())
        .collect();
    let pick = Zipf::new(k, 0.8);
    let records = (0..cfg.n_records)
        .map(|_| {
            let c = &centroids[pick.sample(&mut rng)];
            let mut v: Vec<f64> = c.iter().map(|&x| x + 0.35 * normal(&mut rng)).collect();
            let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-9);
            v.iter_mut().for_each(|x| *x /= norm);
            Record::Vec(v.into_iter().map(|x| x as f32).collect())
        })
        .collect();
    Dataset::new(name, DistanceKind::Euclidean, records, 0.8)
}

/// A multi-attribute entity corpus for the conjunctive-query case study
/// (§9.11.1 / Table 11): each entity has `n_attrs` embedding attributes that
/// correlate through a shared entity cluster, mimicking Sentence-BERT
/// attribute embeddings of the same record.
pub struct EntityTable {
    pub name: String,
    /// `attrs[a][i]` = attribute `a` of entity `i` (unit vector).
    pub attrs: Vec<Vec<Vec<f32>>>,
    pub n_entities: usize,
}

pub fn entity_table(cfg: SynthConfig, n_attrs: usize, dim: usize) -> EntityTable {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let k = 12;
    // Per-attribute, per-cluster centroids: attributes of the same entity
    // share the cluster id, which correlates their selectivities.
    let centroids: Vec<Vec<Vec<f64>>> = (0..n_attrs)
        .map(|_| {
            (0..k)
                .map(|_| (0..dim).map(|_| normal(&mut rng)).collect())
                .collect()
        })
        .collect();
    let pick = Zipf::new(k, 0.7);
    let mut attrs: Vec<Vec<Vec<f32>>> = vec![Vec::with_capacity(cfg.n_records); n_attrs];
    for _ in 0..cfg.n_records {
        let cluster = pick.sample(&mut rng);
        for (a, per_attr) in attrs.iter_mut().enumerate() {
            let c = &centroids[a][cluster];
            let mut v: Vec<f64> = c.iter().map(|&x| x + 0.4 * normal(&mut rng)).collect();
            let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-9);
            v.iter_mut().for_each(|x| *x /= norm);
            per_attr.push(v.into_iter().map(|x| x as f32).collect());
        }
    }
    EntityTable {
        name: format!("Entities{n_attrs}x{dim}"),
        attrs,
        n_entities: cfg.n_records,
    }
}

/// The eight Table 2 stand-ins, in paper order. `n` is per-dataset record
/// count; string/set corpora are cheaper so they use `n` as given, the two
/// Euclidean ones are built at lower dimension than the paper for CPU time.
pub fn default_suite(n: usize, seed: u64) -> Vec<Dataset> {
    vec![
        hm_imagenet(SynthConfig::new(n, seed)),
        hm_pubchem(SynthConfig::new(n, seed + 1)),
        ed_aminer(SynthConfig::new(n, seed + 2)),
        ed_dblp(SynthConfig::new(n, seed + 3)),
        jc_bms(SynthConfig::new(n, seed + 4)),
        jc_dblpq3(SynthConfig::new(n, seed + 5)),
        eu_glove(SynthConfig::new(n, seed + 6), 48),
        eu_glove(SynthConfig::new(n, seed + 7), 24),
    ]
}

/// The four "default" datasets (boldface in Table 2) most experiments use.
pub fn default_four(n: usize, seed: u64) -> Vec<Dataset> {
    vec![
        hm_imagenet(SynthConfig::new(n, seed)),
        ed_aminer(SynthConfig::new(n, seed + 2)),
        jc_bms(SynthConfig::new(n, seed + 4)),
        eu_glove(SynthConfig::new(n, seed + 6), 48),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        let a = hm_imagenet(SynthConfig::new(50, 9));
        let b = hm_imagenet(SynthConfig::new(50, 9));
        assert_eq!(a.records, b.records);
        let c = hm_imagenet(SynthConfig::new(50, 10));
        assert_ne!(a.records, c.records);
    }

    #[test]
    fn hm_imagenet_shape() {
        let ds = hm_imagenet(SynthConfig::new(100, 1));
        assert_eq!(ds.len(), 100);
        assert_eq!(ds.kind, DistanceKind::Hamming);
        assert!(ds.records.iter().all(|r| r.as_bits().len() == 64));
    }

    #[test]
    fn pubchem_is_sparse() {
        let ds = hm_pubchem(SynthConfig::new(200, 2));
        let avg_density: f64 = ds
            .records
            .iter()
            .map(|r| f64::from(r.as_bits().count_ones()) / r.as_bits().len() as f64)
            .sum::<f64>()
            / ds.len() as f64;
        assert!(avg_density < 0.3, "fingerprints too dense: {avg_density}");
    }

    #[test]
    fn ed_corpora_have_near_duplicates() {
        let ds = ed_aminer(SynthConfig::new(200, 3));
        assert!(ds.records.iter().all(|r| !r.as_str().is_empty()));
        // With a pooled generator some pair must be within distance 3.
        let q = ds.records[0].clone();
        let close = ds.cardinality_scan(&q, 3.0);
        assert!(close >= 1);
    }

    #[test]
    fn jc_sets_are_sorted_unique() {
        let ds = jc_bms(SynthConfig::new(100, 4));
        for r in &ds.records {
            let s = r.as_set();
            assert!(
                s.windows(2).all(|w| w[0] < w[1]),
                "set not strictly sorted: {s:?}"
            );
        }
    }

    #[test]
    fn glove_vectors_are_unit_norm() {
        let ds = eu_glove(SynthConfig::new(50, 5), 32);
        for r in &ds.records {
            let n: f32 = r.as_vec().iter().map(|x| x * x).sum::<f32>().sqrt();
            assert!((n - 1.0).abs() < 1e-3, "norm {n}");
        }
    }

    #[test]
    fn qgrams_window_count() {
        assert_eq!(qgrams("abcd", 3).len(), 2);
        assert_eq!(qgrams("ab", 3).len(), 1); // short strings hash whole
    }

    #[test]
    fn entity_table_attrs_align() {
        let t = entity_table(SynthConfig::new(30, 6), 3, 16);
        assert_eq!(t.attrs.len(), 3);
        assert!(t.attrs.iter().all(|a| a.len() == 30));
        assert!(t.attrs[0][0].len() == 16);
    }

    #[test]
    fn default_suite_covers_all_kinds() {
        let suite = default_suite(20, 7);
        assert_eq!(suite.len(), 8);
        let kinds: Vec<_> = suite.iter().map(|d| d.kind).collect();
        assert!(kinds.contains(&DistanceKind::Hamming));
        assert!(kinds.contains(&DistanceKind::Edit));
        assert!(kinds.contains(&DistanceKind::Jaccard));
        assert!(kinds.contains(&DistanceKind::Euclidean));
    }
}
