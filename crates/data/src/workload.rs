//! Query workloads and labelled training examples (§6.1 of the paper).
//!
//! The paper samples 10% of the dataset as the query workload `Q`, splits it
//! 80:10:10 into training/validation/testing, generates a uniform grid of
//! thresholds `S ⊂ [0, θ_max]`, and labels every `(query, θ)` pair with the
//! exact cardinality.

use crate::dataset::Dataset;
use crate::record::Record;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A labelled example: one query with its cardinality at every grid threshold.
///
/// Storing the whole cardinality curve (rather than one `(θ, c)` pair) lets
/// the trainer derive the per-distance targets `c_i` of incremental
/// prediction exactly (DESIGN.md §2.3).
#[derive(Clone, Debug)]
pub struct LabelledQuery {
    pub query: Record,
    /// `cards[j]` = cardinality at `thresholds[j]`.
    pub cards: Vec<u32>,
}

/// A workload: queries plus the shared threshold grid.
#[derive(Clone, Debug)]
pub struct Workload {
    /// The uniform threshold grid `S` (ascending, includes θ_max).
    pub thresholds: Vec<f64>,
    pub queries: Vec<LabelledQuery>,
}

/// Train/validation/test split of a workload.
#[derive(Clone, Debug)]
pub struct WorkloadSplit {
    pub train: Workload,
    pub valid: Workload,
    pub test: Workload,
}

impl Workload {
    /// Builds a uniform threshold grid of `n_thresholds` values in
    /// `(0, θ_max]` plus the zero threshold.
    pub fn uniform_grid(theta_max: f64, n_thresholds: usize) -> Vec<f64> {
        assert!(n_thresholds >= 1);
        (0..=n_thresholds)
            .map(|i| theta_max * i as f64 / n_thresholds as f64)
            .collect()
    }

    /// Labels `queries` against `dataset` over `thresholds` by exact scan.
    /// One scan per query computes the whole cardinality curve.
    pub fn label(dataset: &Dataset, queries: Vec<Record>, thresholds: Vec<f64>) -> Workload {
        assert!(!thresholds.is_empty());
        assert!(
            thresholds.windows(2).all(|w| w[0] <= w[1]),
            "thresholds must ascend"
        );
        let d = dataset.distance();
        let theta_max = *thresholds.last().expect("non-empty grid");
        let labelled = queries
            .into_iter()
            .map(|query| {
                let mut cards = vec![0u32; thresholds.len()];
                for y in &dataset.records {
                    if let Some(dist) = d.eval_within(&query, y, theta_max) {
                        // First grid index whose threshold admits this record.
                        let idx = thresholds.partition_point(|&t| t < dist);
                        if idx < cards.len() {
                            cards[idx] += 1;
                        }
                    }
                }
                // Prefix-sum into cumulative cardinalities.
                for j in 1..cards.len() {
                    cards[j] += cards[j - 1];
                }
                LabelledQuery { query, cards }
            })
            .collect();
        Workload {
            thresholds,
            queries: labelled,
        }
    }

    /// The paper's workload construction: uniformly sample `fraction` of the
    /// dataset as queries, label them on a uniform grid.
    pub fn sample_from(
        dataset: &Dataset,
        fraction: f64,
        n_thresholds: usize,
        seed: u64,
    ) -> Workload {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = ((dataset.len() as f64 * fraction).round() as usize).clamp(1, dataset.len());
        let mut idx: Vec<usize> = (0..dataset.len()).collect();
        idx.shuffle(&mut rng);
        idx.truncate(n);
        let queries = idx
            .into_iter()
            .map(|i| dataset.records[i].clone())
            .collect();
        let grid = Self::uniform_grid(dataset.theta_max, n_thresholds);
        Self::label(dataset, queries, grid)
    }

    pub fn len(&self) -> usize {
        self.queries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Splits 80:10:10 (paper §6.1) after a seeded shuffle.
    pub fn split(mut self, seed: u64) -> WorkloadSplit {
        let mut rng = StdRng::seed_from_u64(seed);
        self.queries.shuffle(&mut rng);
        let n = self.queries.len();
        let n_train = n * 8 / 10;
        let n_valid = n / 10;
        let test_qs = self.queries.split_off(n_train + n_valid);
        let valid_qs = self.queries.split_off(n_train);
        let thresholds = self.thresholds;
        WorkloadSplit {
            train: Workload {
                thresholds: thresholds.clone(),
                queries: self.queries,
            },
            valid: Workload {
                thresholds: thresholds.clone(),
                queries: valid_qs,
            },
            test: Workload {
                thresholds,
                queries: test_qs,
            },
        }
    }

    /// Keeps the first `fraction` of the queries (Figure 7's training-size
    /// sweep).
    pub fn truncate_fraction(&self, fraction: f64) -> Workload {
        let keep =
            ((self.queries.len() as f64 * fraction).round() as usize).clamp(1, self.queries.len());
        Workload {
            thresholds: self.thresholds.clone(),
            queries: self.queries[..keep].to_vec(),
        }
    }

    /// Flattens into `(query_index, θ, c)` triples — the shape most baseline
    /// estimators train on.
    pub fn triples(&self) -> impl Iterator<Item = (usize, f64, u32)> + '_ {
        self.queries.iter().enumerate().flat_map(move |(qi, lq)| {
            self.thresholds
                .iter()
                .zip(&lq.cards)
                .map(move |(&t, &c)| (qi, t, c))
        })
    }

    /// Re-labels every query against an updated dataset (the §8 update path:
    /// "we always keep the original queries and only update their labels").
    pub fn relabel(&mut self, dataset: &Dataset) {
        let fresh = Workload::label(
            dataset,
            self.queries.iter().map(|q| q.query.clone()).collect(),
            self.thresholds.clone(),
        );
        self.queries = fresh.queries;
    }

    /// A random threshold from the grid (test-time sampling helper).
    pub fn random_threshold(&self, rng: &mut impl Rng) -> f64 {
        self.thresholds[rng.gen_range(0..self.thresholds.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitvec::BitVec;
    use crate::dist::DistanceKind;

    fn tiny() -> Dataset {
        let records = (0u64..32)
            .map(|v| Record::Bits(BitVec::from_u64(v, 5)))
            .collect();
        Dataset::new("tiny", DistanceKind::Hamming, records, 5.0)
    }

    #[test]
    fn labels_match_scan() {
        let ds = tiny();
        let q = Record::Bits(BitVec::from_u64(0, 5));
        let wl = Workload::label(&ds, vec![q.clone()], Workload::uniform_grid(5.0, 5));
        for (j, &t) in wl.thresholds.iter().enumerate() {
            assert_eq!(
                wl.queries[0].cards[j] as usize,
                ds.cardinality_scan(&q, t),
                "threshold {t}"
            );
        }
    }

    #[test]
    fn labels_are_monotone_in_threshold() {
        let ds = tiny();
        let wl = Workload::sample_from(&ds, 0.5, 5, 3);
        for lq in &wl.queries {
            assert!(
                lq.cards.windows(2).all(|w| w[0] <= w[1]),
                "cards {:?}",
                lq.cards
            );
        }
    }

    #[test]
    fn split_is_80_10_10() {
        let ds = tiny();
        let wl = Workload::sample_from(&ds, 1.0, 4, 3);
        let split = wl.split(1);
        assert_eq!(split.train.len(), 25); // 32*8/10
        assert_eq!(split.valid.len(), 3);
        assert_eq!(split.test.len(), 4);
        assert_eq!(split.train.thresholds, split.test.thresholds);
    }

    #[test]
    fn relabel_tracks_dataset_changes() {
        let mut ds = tiny();
        let q = Record::Bits(BitVec::from_u64(0, 5));
        let mut wl = Workload::label(&ds, vec![q.clone()], Workload::uniform_grid(5.0, 5));
        let before = wl.queries[0].cards.clone();
        // Delete everything except the query itself.
        ds.records.retain(|r| r.as_bits().hamming(q.as_bits()) == 0);
        wl.relabel(&ds);
        assert!(wl.queries[0].cards.iter().all(|&c| c == 1));
        assert_ne!(before, wl.queries[0].cards);
    }

    #[test]
    fn triples_enumerate_grid() {
        let ds = tiny();
        let wl = Workload::sample_from(&ds, 0.25, 4, 9);
        let triples: Vec<_> = wl.triples().collect();
        assert_eq!(triples.len(), wl.len() * wl.thresholds.len());
    }

    #[test]
    fn truncate_fraction_keeps_prefix() {
        let ds = tiny();
        let wl = Workload::sample_from(&ds, 1.0, 4, 5);
        let half = wl.truncate_fraction(0.5);
        assert_eq!(half.len(), 16);
        assert_eq!(half.queries[0].cards, wl.queries[0].cards);
    }
}
