//! Euclidean range search with a vantage-point tree.
//!
//! The paper uses a cover tree \[34\] for the conjunctive-query case study; a
//! VP-tree offers the same triangle-inequality pruning with a simpler
//! structure (DESIGN.md §2.4 documents the substitution). Exactness is
//! property-tested against the linear scan.

use cardest_data::dist::euclidean;
use cardest_data::{Dataset, Record};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Node {
    /// Record id of the vantage point.
    vantage: u32,
    /// Median distance from the vantage point to its subtree's records.
    radius: f64,
    inside: Option<Box<Node>>,
    outside: Option<Box<Node>>,
}

/// Exact vantage-point tree over the vector records of a dataset.
pub struct VpTree {
    root: Option<Box<Node>>,
}

impl VpTree {
    pub fn build(dataset: &Dataset, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ids: Vec<u32> = (0..dataset.len() as u32).collect();
        let root = Self::build_node(dataset, &mut ids, &mut rng);
        VpTree { root }
    }

    fn build_node(dataset: &Dataset, ids: &mut [u32], rng: &mut StdRng) -> Option<Box<Node>> {
        if ids.is_empty() {
            return None;
        }
        // Random vantage point, swapped to the front.
        let pick = rng.gen_range(0..ids.len());
        ids.swap(0, pick);
        let vantage = ids[0];
        let rest = &mut ids[1..];
        if rest.is_empty() {
            return Some(Box::new(Node {
                vantage,
                radius: 0.0,
                inside: None,
                outside: None,
            }));
        }
        let vp = dataset.records[vantage as usize].as_vec();
        // Median split by distance to the vantage point.
        let mut dists: Vec<(f64, u32)> = rest
            .iter()
            .map(|&id| (euclidean(vp, dataset.records[id as usize].as_vec()), id))
            .collect();
        let mid = dists.len() / 2;
        dists.select_nth_unstable_by(mid, |a, b| a.0.partial_cmp(&b.0).expect("finite"));
        let radius = dists[mid].0;
        for (slot, (_, id)) in rest.iter_mut().zip(&dists) {
            *slot = *id;
        }
        let (inside_ids, outside_ids) = rest.split_at_mut(mid);
        let inside = Self::build_node(dataset, inside_ids, rng);
        let outside = Self::build_node(dataset, outside_ids, rng);
        Some(Box::new(Node {
            vantage,
            radius,
            inside,
            outside,
        }))
    }

    /// Ids of all records within `theta` of `query`, sorted.
    pub fn select(&self, dataset: &Dataset, query: &Record, theta: f64) -> Vec<u32> {
        let mut out = Vec::new();
        if let Some(root) = &self.root {
            Self::search(dataset, root, query.as_vec(), theta, &mut out);
        }
        out.sort_unstable();
        out
    }

    /// Number of distance evaluations a range query makes (profiling helper
    /// used by the optimizer case study's cost accounting).
    pub fn count_with_evals(
        &self,
        dataset: &Dataset,
        query: &Record,
        theta: f64,
    ) -> (usize, usize) {
        let mut out = Vec::new();
        let mut evals = 0usize;
        if let Some(root) = &self.root {
            Self::search_counting(dataset, root, query.as_vec(), theta, &mut out, &mut evals);
        }
        (out.len(), evals)
    }

    fn search(dataset: &Dataset, node: &Node, q: &[f32], theta: f64, out: &mut Vec<u32>) {
        let d = euclidean(q, dataset.records[node.vantage as usize].as_vec());
        if d <= theta {
            out.push(node.vantage);
        }
        // Triangle inequality: the inside ball can contain matches only if
        // d − θ ≤ radius; the outside shell only if d + θ ≥ radius.
        if let Some(inside) = &node.inside {
            if d - theta <= node.radius {
                Self::search(dataset, inside, q, theta, out);
            }
        }
        if let Some(outside) = &node.outside {
            if d + theta >= node.radius {
                Self::search(dataset, outside, q, theta, out);
            }
        }
    }

    fn search_counting(
        dataset: &Dataset,
        node: &Node,
        q: &[f32],
        theta: f64,
        out: &mut Vec<u32>,
        evals: &mut usize,
    ) {
        *evals += 1;
        let d = euclidean(q, dataset.records[node.vantage as usize].as_vec());
        if d <= theta {
            out.push(node.vantage);
        }
        if let Some(inside) = &node.inside {
            if d - theta <= node.radius {
                Self::search_counting(dataset, inside, q, theta, out, evals);
            }
        }
        if let Some(outside) = &node.outside {
            if d + theta >= node.radius {
                Self::search_counting(dataset, outside, q, theta, out, evals);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::ScanSelector;
    use cardest_data::synth::{eu_glove, SynthConfig};
    use proptest::prelude::*;

    #[test]
    fn tree_matches_scan() {
        let ds = eu_glove(SynthConfig::new(300, 9), 16);
        let tree = VpTree::build(&ds, 1);
        let scan = ScanSelector::new(&ds);
        for qi in [0usize, 100, 299] {
            let q = ds.records[qi].clone();
            for theta in [0.0, 0.2, 0.5, 0.8] {
                assert_eq!(
                    tree.select(&ds, &q, theta),
                    scan.select(&q, theta),
                    "query {qi}, θ={theta}"
                );
            }
        }
    }

    #[test]
    fn pruning_reduces_evaluations() {
        let ds = eu_glove(SynthConfig::new(1000, 10), 16);
        let tree = VpTree::build(&ds, 2);
        let q = ds.records[5].clone();
        let (_, evals) = tree.count_with_evals(&ds, &q, 0.2);
        assert!(
            evals < ds.len(),
            "no pruning happened: {evals} evals for {} records",
            ds.len()
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]
        #[test]
        fn tree_always_agrees_with_scan(seed in 0u64..200, theta_pct in 0u32..=80) {
            let theta = f64::from(theta_pct) / 100.0;
            let ds = eu_glove(SynthConfig::new(150, seed), 8);
            let tree = VpTree::build(&ds, seed);
            let scan = ScanSelector::new(&ds);
            let q = ds.records[(seed % 150) as usize].clone();
            prop_assert_eq!(tree.select(&ds, &q, theta), scan.select(&q, theta));
        }
    }
}
