//! A unified selector over the per-distance indexes, plus parallel workload
//! labelling (training-data preparation, §6.1).

use crate::edit::EditIndex;
use crate::euclid::VpTree;
use crate::hamming::HammingIndex;
use crate::jaccard::JaccardIndex;
use cardest_data::workload::LabelledQuery;
use cardest_data::{Dataset, DistanceKind, Record, Workload};

/// An exact similarity-selection algorithm bound to a dataset.
pub enum Selector<'a> {
    Hamming {
        dataset: &'a Dataset,
        index: HammingIndex,
    },
    Edit {
        dataset: &'a Dataset,
        index: EditIndex,
    },
    Jaccard {
        dataset: &'a Dataset,
        index: JaccardIndex,
    },
    Euclidean {
        dataset: &'a Dataset,
        index: VpTree,
    },
}

/// Builds the appropriate index for the dataset's distance function.
pub fn build_selector(dataset: &Dataset) -> Selector<'_> {
    match dataset.kind {
        DistanceKind::Hamming => {
            let dim = dataset.records.first().map_or(1, |r| r.as_bits().len());
            Selector::Hamming {
                dataset,
                index: HammingIndex::build(dataset, HammingIndex::default_parts(dim)),
            }
        }
        DistanceKind::Edit => Selector::Edit {
            dataset,
            index: EditIndex::build(dataset),
        },
        DistanceKind::Jaccard => Selector::Jaccard {
            dataset,
            index: JaccardIndex::build(dataset, dataset.theta_max),
        },
        DistanceKind::Euclidean => Selector::Euclidean {
            dataset,
            index: VpTree::build(dataset, 0xCAFE),
        },
    }
}

impl Selector<'_> {
    /// Ids of all records within `theta` of `query`, sorted.
    pub fn select(&self, query: &Record, theta: f64) -> Vec<u32> {
        match self {
            Selector::Hamming { dataset, index } => index.select(dataset, query, theta),
            Selector::Edit { dataset, index } => index.select(dataset, query, theta),
            Selector::Jaccard { dataset, index } => index.select(dataset, query, theta),
            Selector::Euclidean { dataset, index } => index.select(dataset, query, theta),
        }
    }

    /// Exact cardinality of the selection.
    pub fn count(&self, query: &Record, theta: f64) -> usize {
        self.select(query, theta).len()
    }
}

/// Labels a query workload in parallel with scoped threads: each worker
/// scans a chunk of queries against the dataset. This is the training-data
/// preparation path; it must agree exactly with [`Workload::label`].
pub fn parallel_label(
    dataset: &Dataset,
    queries: Vec<Record>,
    thresholds: Vec<f64>,
    n_threads: usize,
) -> Workload {
    let n_threads = n_threads.max(1);
    if queries.len() < 2 * n_threads {
        return Workload::label(dataset, queries, thresholds);
    }
    let chunk = queries.len().div_ceil(n_threads);
    let chunks: Vec<Vec<Record>> = queries.chunks(chunk).map(<[Record]>::to_vec).collect();
    let mut results: Vec<Vec<LabelledQuery>> = Vec::with_capacity(chunks.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|qs| {
                let thr = thresholds.clone();
                scope.spawn(move || Workload::label(dataset, qs, thr).queries)
            })
            .collect();
        for h in handles {
            results.push(h.join().expect("labelling worker panicked"));
        }
    });
    Workload {
        thresholds,
        queries: results.into_iter().flatten().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardest_data::synth::{default_suite, SynthConfig};

    #[test]
    fn selector_dispatch_is_exact_for_all_kinds() {
        for ds in default_suite(120, 21) {
            let sel = build_selector(&ds);
            let q = ds.records[3].clone();
            for frac in [0.0, 0.5, 1.0] {
                let theta = ds.theta_max * frac;
                assert_eq!(
                    sel.count(&q, theta),
                    ds.cardinality_scan(&q, theta),
                    "{} θ={theta}",
                    ds.name
                );
            }
        }
    }

    #[test]
    fn parallel_label_matches_sequential() {
        let ds = cardest_data::synth::hm_imagenet(SynthConfig::new(200, 33));
        let queries: Vec<Record> = ds.records[..40].to_vec();
        let grid = Workload::uniform_grid(ds.theta_max, 8);
        let seq = Workload::label(&ds, queries.clone(), grid.clone());
        let par = parallel_label(&ds, queries, grid, 4);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.queries.iter().zip(&par.queries) {
            assert_eq!(a.cards, b.cards);
        }
    }
}
