//! Brute-force selection by linear scan — the correctness reference for every
//! index, and a perfectly reasonable algorithm at small `n`.

use cardest_data::{Dataset, Record};

/// Linear-scan selector with threshold-bounded distance evaluation.
pub struct ScanSelector<'a> {
    dataset: &'a Dataset,
}

impl<'a> ScanSelector<'a> {
    pub fn new(dataset: &'a Dataset) -> Self {
        ScanSelector { dataset }
    }

    /// Ids of all records within `theta` of `query`.
    pub fn select(&self, query: &Record, theta: f64) -> Vec<u32> {
        let d = self.dataset.distance();
        self.dataset
            .records
            .iter()
            .enumerate()
            .filter_map(|(i, y)| d.eval_within(query, y, theta).map(|_| i as u32))
            .collect()
    }

    /// `|select(query, theta)|` without materializing ids.
    pub fn count(&self, query: &Record, theta: f64) -> usize {
        let d = self.dataset.distance();
        self.dataset
            .records
            .iter()
            .filter(|y| d.eval_within(query, y, theta).is_some())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardest_data::synth::{hm_imagenet, SynthConfig};

    #[test]
    fn scan_matches_dataset_cardinality() {
        let ds = hm_imagenet(SynthConfig::new(200, 1));
        let scan = ScanSelector::new(&ds);
        let q = ds.records[0].clone();
        for theta in [0.0, 4.0, 12.0, 20.0] {
            assert_eq!(scan.count(&q, theta), ds.cardinality_scan(&q, theta));
            assert_eq!(scan.select(&q, theta).len(), scan.count(&q, theta));
        }
    }

    #[test]
    fn select_ids_are_sorted_and_valid() {
        let ds = hm_imagenet(SynthConfig::new(100, 2));
        let scan = ScanSelector::new(&ds);
        let ids = scan.select(&ds.records[3].clone(), 10.0);
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
        assert!(ids.iter().all(|&i| (i as usize) < ds.len()));
        assert!(ids.contains(&3), "query itself must match at any threshold");
    }
}
