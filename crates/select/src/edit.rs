//! Edit-distance selection: length partitioning + positional q-gram count
//! filtering, with banded-DP verification.
//!
//! The classic filter-and-verify pipeline: the length filter removes records
//! whose length differs from the query by more than `θ`; the count filter
//! removes records sharing too few q-grams (an edit operation destroys at
//! most `q` of the `|s| − q + 1` q-grams, so survivors must share at least
//! `max(|x|, |y|) − q + 1 − θ·q`); survivors are verified with the
//! `O(θ·|s|)` banded DP.

use cardest_data::dist::levenshtein_within;
use cardest_data::{Dataset, Record};
use std::collections::HashMap;

const Q: usize = 2;

/// Exact edit-distance selection index.
pub struct EditIndex {
    /// Record ids grouped by string length.
    by_length: HashMap<usize, Vec<u32>>,
    /// q-gram -> sorted record ids containing it (set semantics).
    inverted: HashMap<[u8; Q], Vec<u32>>,
    /// Distinct q-grams per record (for the count-filter bound).
    gram_counts: Vec<usize>,
    max_len: usize,
}

fn grams(s: &str) -> Vec<[u8; Q]> {
    let b = s.as_bytes();
    if b.len() < Q {
        // Pad short strings so they still carry one signature gram.
        let mut g = [0u8; Q];
        for (i, &c) in b.iter().enumerate() {
            g[i] = c;
        }
        return vec![g];
    }
    let mut out: Vec<[u8; Q]> = b
        .windows(Q)
        .map(|w| {
            let mut g = [0u8; Q];
            g.copy_from_slice(w);
            g
        })
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

impl EditIndex {
    pub fn build(dataset: &Dataset) -> Self {
        let mut by_length: HashMap<usize, Vec<u32>> = HashMap::new();
        let mut inverted: HashMap<[u8; Q], Vec<u32>> = HashMap::new();
        let mut gram_counts = Vec::with_capacity(dataset.len());
        let mut max_len = 0;
        for (id, r) in dataset.records.iter().enumerate() {
            let s = r.as_str();
            max_len = max_len.max(s.len());
            by_length.entry(s.len()).or_default().push(id as u32);
            let gs = grams(s);
            gram_counts.push(gs.len());
            for g in gs {
                inverted.entry(g).or_default().push(id as u32);
            }
        }
        EditIndex {
            by_length,
            inverted,
            gram_counts,
            max_len,
        }
    }

    /// Exact selection, sorted ids.
    pub fn select(&self, dataset: &Dataset, query: &Record, theta: f64) -> Vec<u32> {
        let k = theta.floor().max(0.0) as usize;
        let q = query.as_str();
        let qgrams = grams(q);

        // Count shared q-grams per candidate via the inverted lists.
        let mut shared: HashMap<u32, usize> = HashMap::new();
        for g in &qgrams {
            if let Some(ids) = self.inverted.get(g) {
                for &id in ids {
                    *shared.entry(id).or_insert(0) += 1;
                }
            }
        }

        let mut out = Vec::new();
        let lo = q.len().saturating_sub(k);
        let hi = (q.len() + k).min(self.max_len);
        for len in lo..=hi {
            let Some(ids) = self.by_length.get(&len) else {
                continue;
            };
            for &id in ids {
                let y = dataset.records[id as usize].as_str();
                // Count filter on *distinct* q-grams: each edit destroys at
                // most q distinct grams of the larger string.
                let need = self.gram_counts[id as usize]
                    .max(qgrams.len())
                    .saturating_sub(k * Q);
                let have = shared.get(&id).copied().unwrap_or(0);
                if have < need {
                    continue;
                }
                if levenshtein_within(q, y, k).is_some() {
                    out.push(id);
                }
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::ScanSelector;
    use cardest_data::synth::{ed_aminer, ed_dblp, SynthConfig};
    use proptest::prelude::*;

    #[test]
    fn grams_dedup_and_pad() {
        assert_eq!(grams("aaa").len(), 1); // "aa" repeated
        assert_eq!(grams("ab").len(), 1);
        assert_eq!(grams("a").len(), 1); // padded
        assert_eq!(grams("abc").len(), 2);
    }

    #[test]
    fn index_matches_scan_on_names() {
        let ds = ed_aminer(SynthConfig::new(300, 5));
        let idx = EditIndex::build(&ds);
        let scan = ScanSelector::new(&ds);
        for qi in [0usize, 42, 120] {
            let q = ds.records[qi].clone();
            for theta in [0.0, 1.0, 3.0, 6.0, 8.0] {
                assert_eq!(
                    idx.select(&ds, &q, theta),
                    scan.select(&q, theta),
                    "query {qi} ({}), θ={theta}",
                    q.as_str()
                );
            }
        }
    }

    #[test]
    fn index_matches_scan_on_titles() {
        let ds = ed_dblp(SynthConfig::new(200, 6));
        let idx = EditIndex::build(&ds);
        let scan = ScanSelector::new(&ds);
        let q = ds.records[7].clone();
        for theta in [0.0, 4.0, 12.0] {
            assert_eq!(idx.select(&ds, &q, theta), scan.select(&q, theta));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn index_always_agrees_with_scan(seed in 0u64..300, theta in 0u32..8) {
            let ds = ed_aminer(SynthConfig::new(100, seed));
            let idx = EditIndex::build(&ds);
            let scan = ScanSelector::new(&ds);
            let q = ds.records[(seed % 100) as usize].clone();
            prop_assert_eq!(idx.select(&ds, &q, f64::from(theta)), scan.select(&q, f64::from(theta)));
        }
    }
}
