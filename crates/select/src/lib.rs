//! Exact similarity-selection algorithms.
//!
//! These serve three roles in the reproduction:
//!
//! 1. **Label oracle** — training data for every learned estimator is produced
//!    by running exact selection (§6.1: exact algorithms produce no label
//!    noise).
//! 2. **`SimSelect` baseline** — Table 6 compares estimator latency against
//!    actually *running* the state-of-the-art selection algorithm.
//! 3. **Query-processing backend** — the §9.11 optimizer case studies execute
//!    the plans these indexes provide.
//!
//! One index per distance function:
//! [`hamming::HammingIndex`] (pigeonhole multi-index, the GPH family),
//! [`edit::EditIndex`] (length partitioning + banded DP verification),
//! [`jaccard::JaccardIndex`] (prefix-filter inverted index),
//! [`euclid::VpTree`] (vantage-point tree). All are exact: every index is
//! property-tested against the brute-force scan.

pub mod edit;
pub mod euclid;
pub mod hamming;
pub mod jaccard;
pub mod oracle;
pub mod scan;

pub use oracle::{build_selector, Selector};
pub use scan::ScanSelector;
