//! Hamming-distance selection via the pigeonhole multi-index — the family of
//! algorithms behind GPH [Qin et al., ICDE 2018], which the paper uses both
//! as the exact oracle and in the §9.11.2 case study.
//!
//! The vector is split into `m` disjoint parts. By the general pigeonhole
//! principle, if `H(x, y) ≤ θ` then for any allocation `τ_1 + … + τ_m ≥
//! θ − m + 1` (with `τ_i ≥ 0`) at least one part `i` has `H(x_i, y_i) ≤ τ_i`.
//! Each part keeps a hash map from part value to record ids; a query probes
//! each part either by enumerating the Hamming ball of radius `τ_i` around
//! its own part value (when that ball is small) or by scanning the distinct
//! part values, then verifies every candidate against the full vector.

use cardest_data::{Dataset, Record};
use std::collections::HashMap;

/// One part of the multi-index.
struct Part {
    /// Bit offset of this part inside the full vector.
    start: usize,
    /// Width in bits (≤ 64).
    width: usize,
    /// part value -> record ids.
    postings: HashMap<u64, Vec<u32>>,
}

/// Exact pigeonhole multi-index for Hamming selection.
pub struct HammingIndex {
    parts: Vec<Part>,
    dim: usize,
    n_records: usize,
}

impl HammingIndex {
    /// Builds the index with `m` parts (clamped to `[1, dim]`).
    pub fn build(dataset: &Dataset, m: usize) -> Self {
        let dim = dataset.records.first().map_or(0, |r| r.as_bits().len());
        let m = m.clamp(1, dim.max(1)).min(64);
        let mut parts: Vec<Part> = (0..m)
            .map(|i| {
                let start = i * dim / m;
                let end = (i + 1) * dim / m;
                Part {
                    start,
                    width: (end - start).min(64),
                    postings: HashMap::new(),
                }
            })
            .collect();
        for (id, r) in dataset.records.iter().enumerate() {
            let bits = r.as_bits();
            for p in &mut parts {
                let key = bits.extract_word(p.start, p.width);
                p.postings.entry(key).or_default().push(id as u32);
            }
        }
        HammingIndex {
            parts,
            dim,
            n_records: dataset.len(),
        }
    }

    /// Default part count used by the oracle: wide enough parts that postings
    /// lists stay selective, matching GPH's 32-bit part recommendation.
    pub fn default_parts(dim: usize) -> usize {
        (dim / 16).clamp(1, 8)
    }

    /// Even threshold allocation satisfying `Σ τ_i ≥ θ − m + 1`.
    pub fn even_allocation(&self, theta: u32) -> Vec<u32> {
        let m = self.parts.len() as u32;
        let need = (theta + 1).saturating_sub(m); // Σ τ_i must reach this
        let base = need / m;
        let extra = need % m;
        (0..m).map(|i| base + u32::from(i < extra)).collect()
    }

    /// Exact selection: ids of records within `theta` of `query`, sorted.
    pub fn select(&self, dataset: &Dataset, query: &Record, theta: f64) -> Vec<u32> {
        let theta_int = theta.floor().max(0.0) as u32;
        let allocation = self.even_allocation(theta_int);
        self.select_with_allocation(dataset, query, theta_int, &allocation)
    }

    /// Selection under an explicit per-part threshold allocation (the GPH
    /// optimizer case study supplies DP-optimized allocations here).
    pub fn select_with_allocation(
        &self,
        dataset: &Dataset,
        query: &Record,
        theta: u32,
        allocation: &[u32],
    ) -> Vec<u32> {
        assert_eq!(
            allocation.len(),
            self.parts.len(),
            "allocation arity mismatch"
        );
        let qbits = query.as_bits();
        assert_eq!(qbits.len(), self.dim, "query dimensionality mismatch");
        let mut seen = vec![false; self.n_records];
        let mut out = Vec::new();
        for (p, &tau) in self.parts.iter().zip(allocation) {
            let qkey = qbits.extract_word(p.start, p.width);
            self.probe_part(p, qkey, tau, &mut |id| {
                let idx = id as usize;
                if !seen[idx] {
                    seen[idx] = true;
                    let y = dataset.records[idx].as_bits();
                    if qbits.hamming_within(y, theta).is_some() {
                        out.push(id);
                    }
                }
            });
        }
        out.sort_unstable();
        out
    }

    /// Number of candidate ids a `(part, τ)` probe would touch — the cost the
    /// GPH optimizer estimates (exact version used by the `Exact` oracle).
    pub fn part_candidates(&self, part: usize, qkey: u64, tau: u32) -> usize {
        let mut count = 0;
        self.probe_part(&self.parts[part], qkey, tau, &mut |_| count += 1);
        count
    }

    /// Part count.
    pub fn num_parts(&self) -> usize {
        self.parts.len()
    }

    /// `(start, width)` of a part.
    pub fn part_span(&self, part: usize) -> (usize, usize) {
        (self.parts[part].start, self.parts[part].width)
    }

    /// Visits every record id whose part value lies within Hamming distance
    /// `tau` of `qkey`. Chooses ball enumeration vs. distinct-key scan by
    /// estimated cost.
    fn probe_part(&self, p: &Part, qkey: u64, tau: u32, visit: &mut dyn FnMut(u32)) {
        let ball = ball_size(p.width as u32, tau);
        if ball <= p.postings.len() as u64 * 2 {
            // Enumerate the Hamming ball around the query's part value.
            enumerate_ball(qkey, p.width as u32, tau, &mut |key| {
                if let Some(ids) = p.postings.get(&key) {
                    for &id in ids {
                        visit(id);
                    }
                }
            });
        } else {
            // Dense ball: scanning the distinct part values is cheaper.
            for (&key, ids) in &p.postings {
                if (key ^ qkey).count_ones() <= tau {
                    for &id in ids {
                        visit(id);
                    }
                }
            }
        }
    }
}

/// `Σ_{i≤tau} C(width, i)`, saturating.
fn ball_size(width: u32, tau: u32) -> u64 {
    let mut total: u64 = 0;
    let mut c: u64 = 1; // C(width, 0)
    for i in 0..=tau.min(width) {
        total = total.saturating_add(c);
        // C(width, i+1) = C(width, i) * (width - i) / (i + 1)
        c = c.saturating_mul(u64::from(width - i)) / u64::from(i + 1);
        if total > 1 << 40 {
            return u64::MAX; // effectively "too big to enumerate"
        }
    }
    total
}

/// Enumerates all `width`-bit values within Hamming distance `tau` of `base`.
fn enumerate_ball(base: u64, width: u32, tau: u32, visit: &mut impl FnMut(u64)) {
    visit(base);
    if tau == 0 {
        return;
    }
    // Iteratively flip combinations of up to tau bit positions.
    let mut positions: Vec<u32> = Vec::with_capacity(tau as usize);
    fn rec(
        base: u64,
        width: u32,
        remaining: u32,
        from: u32,
        positions: &mut Vec<u32>,
        visit: &mut impl FnMut(u64),
    ) {
        for p in from..width {
            positions.push(p);
            let mut v = base;
            for &q in positions.iter() {
                v ^= 1u64 << q;
            }
            visit(v);
            if remaining > 1 {
                rec(base, width, remaining - 1, p + 1, positions, visit);
            }
            positions.pop();
        }
    }
    rec(base, width, tau, 0, &mut positions, visit);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::ScanSelector;
    use cardest_data::synth::{hm_imagenet, hm_pubchem, SynthConfig};
    use proptest::prelude::*;

    #[test]
    fn ball_size_small_cases() {
        assert_eq!(ball_size(4, 0), 1);
        assert_eq!(ball_size(4, 1), 5);
        assert_eq!(ball_size(4, 2), 11);
        assert_eq!(ball_size(4, 4), 16);
    }

    #[test]
    fn enumerate_ball_visits_exactly_the_ball() {
        let mut seen = Vec::new();
        enumerate_ball(0b1010, 4, 2, &mut |v| seen.push(v));
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len() as u64, ball_size(4, 2));
        for v in seen {
            assert!((v ^ 0b1010u64).count_ones() <= 2);
        }
    }

    #[test]
    fn even_allocation_satisfies_pigeonhole() {
        let ds = hm_imagenet(SynthConfig::new(50, 1));
        let idx = HammingIndex::build(&ds, 4);
        for theta in 0..=20u32 {
            let alloc = idx.even_allocation(theta);
            let total: u32 = alloc.iter().sum();
            assert!(
                total + 4 > theta,
                "allocation {alloc:?} violates pigeonhole at θ={theta}"
            );
        }
    }

    #[test]
    fn index_matches_scan_on_imagenet() {
        let ds = hm_imagenet(SynthConfig::new(400, 3));
        let idx = HammingIndex::build(&ds, 4);
        let scan = ScanSelector::new(&ds);
        for qi in [0usize, 17, 101] {
            let q = ds.records[qi].clone();
            for theta in [0.0, 3.0, 8.0, 16.0, 20.0] {
                assert_eq!(
                    idx.select(&ds, &q, theta),
                    scan.select(&q, theta),
                    "query {qi}, θ={theta}"
                );
            }
        }
    }

    #[test]
    fn index_matches_scan_on_long_vectors() {
        let ds = hm_pubchem(SynthConfig::new(200, 4));
        let idx = HammingIndex::build(&ds, 6);
        let scan = ScanSelector::new(&ds);
        let q = ds.records[9].clone();
        for theta in [0.0, 10.0, 30.0] {
            assert_eq!(idx.select(&ds, &q, theta), scan.select(&q, theta));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn index_always_agrees_with_scan(seed in 0u64..500, theta in 0u32..18, m in 1usize..6) {
            let ds = hm_imagenet(SynthConfig::new(120, seed));
            let idx = HammingIndex::build(&ds, m);
            let scan = ScanSelector::new(&ds);
            let q = ds.records[(seed % 120) as usize].clone();
            prop_assert_eq!(idx.select(&ds, &q, f64::from(theta)), scan.select(&q, f64::from(theta)));
        }
    }
}
