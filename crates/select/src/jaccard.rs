//! Jaccard selection via the prefix-filter inverted index (AllPairs/PPJoin
//! family): exact set-similarity selection with size filtering.
//!
//! For a similarity threshold `t = 1 − θ`, records are tokenized in a global
//! rare-first order; if `J(x, y) ≥ t` then the first
//! `|x| − ⌈t·|x|⌉ + 1` tokens of `x` must intersect the indexed prefix of
//! `y`. Candidates from the probed prefix lists are size-filtered
//! (`t·|x| ≤ |y| ≤ |x|/t`) and verified exactly.

use cardest_data::dist::jaccard_distance;
use cardest_data::{Dataset, Record};
use std::collections::HashMap;

/// Exact prefix-filter index for Jaccard selection.
pub struct JaccardIndex {
    /// token -> record ids whose *prefix* (at the build threshold) contains it.
    prefix_lists: HashMap<u32, Vec<u32>>,
    /// Global token order: rank[token] = frequency rank (rare = small).
    rank: HashMap<u32, u32>,
    /// Records re-tokenized in rank order (ranks, ascending). Retained for
    /// future positional filters (PPJoin-style); verification reads the
    /// dataset's original sets.
    #[allow(dead_code)]
    ranked: Vec<Vec<u32>>,
    /// Minimum similarity the index was built for (supports θ ≤ θ_max).
    t_min: f64,
}

impl JaccardIndex {
    /// Builds the index supporting any query threshold `θ ≤ theta_max`
    /// (similarity `t ≥ 1 − theta_max`).
    pub fn build(dataset: &Dataset, theta_max: f64) -> Self {
        let t_min = (1.0 - theta_max).max(1e-9);
        // Global frequency-based ordering (rare tokens first) maximizes
        // prefix selectivity.
        let mut freq: HashMap<u32, u32> = HashMap::new();
        for r in &dataset.records {
            for &tok in r.as_set() {
                *freq.entry(tok).or_insert(0) += 1;
            }
        }
        let mut tokens: Vec<(u32, u32)> = freq.iter().map(|(&t, &f)| (t, f)).collect();
        tokens.sort_by_key(|&(t, f)| (f, t));
        let rank: HashMap<u32, u32> = tokens
            .iter()
            .enumerate()
            .map(|(i, &(t, _))| (t, i as u32))
            .collect();

        let mut prefix_lists: HashMap<u32, Vec<u32>> = HashMap::new();
        let mut ranked = Vec::with_capacity(dataset.len());
        for (id, r) in dataset.records.iter().enumerate() {
            let mut rs: Vec<u32> = r.as_set().iter().map(|t| rank[t]).collect();
            rs.sort_unstable();
            let p = prefix_len(rs.len(), t_min);
            for &tok in &rs[..p.min(rs.len())] {
                prefix_lists.entry(tok).or_default().push(id as u32);
            }
            ranked.push(rs);
        }
        JaccardIndex {
            prefix_lists,
            rank,
            ranked,
            t_min,
        }
    }

    /// Exact selection, sorted ids. `theta` must be ≤ the build-time maximum.
    pub fn select(&self, dataset: &Dataset, query: &Record, theta: f64) -> Vec<u32> {
        let t = (1.0 - theta).max(self.t_min);
        let mut q_ranked: Vec<u32> = query
            .as_set()
            .iter()
            .filter_map(|tok| self.rank.get(tok).copied())
            .collect();
        q_ranked.sort_unstable();
        let unseen = query.as_set().len() - q_ranked.len(); // tokens absent from D

        let qn = query.as_set().len();
        let mut out = Vec::new();
        if qn == 0 {
            // Empty query: matches exactly the records with J-distance ≤ θ,
            // which for an empty set means only empty records (distance 0).
            for (id, r) in dataset.records.iter().enumerate() {
                if jaccard_distance(query.as_set(), r.as_set()) <= theta {
                    out.push(id as u32);
                }
            }
            return out;
        }

        // Probe prefix length uses the *query* threshold t (longer prefix than
        // the indexed one is unnecessary; the indexed prefix was built for the
        // loosest threshold we support).
        let p = prefix_len(qn, t) + unseen;
        let mut candidate_flags: HashMap<u32, ()> = HashMap::new();
        for &tok in q_ranked.iter().take(p.min(q_ranked.len())) {
            if let Some(ids) = self.prefix_lists.get(&tok) {
                for &id in ids {
                    candidate_flags.entry(id).or_insert(());
                }
            }
        }

        let (lo, hi) = size_bounds(qn, t);
        let mut candidates: Vec<u32> = candidate_flags.into_keys().collect();
        candidates.sort_unstable();
        for id in candidates {
            let y = dataset.records[id as usize].as_set();
            if y.len() < lo || y.len() > hi {
                continue;
            }
            if jaccard_distance(query.as_set(), y) <= theta {
                out.push(id);
            }
        }
        out
    }
}

/// Prefix length `|x| − ⌈t·|x|⌉ + 1` (clamped into `[1, |x|]`).
fn prefix_len(set_len: usize, t: f64) -> usize {
    if set_len == 0 {
        return 0;
    }
    let keep = (t * set_len as f64).ceil() as usize;
    (set_len + 1 - keep.min(set_len)).clamp(1, set_len)
}

/// Size filter: `J(x,y) ≥ t ⇒ t·|x| ≤ |y| ≤ |x|/t`.
fn size_bounds(qn: usize, t: f64) -> (usize, usize) {
    let lo = (t * qn as f64).ceil() as usize;
    let hi = (qn as f64 / t).floor() as usize;
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::ScanSelector;
    use cardest_data::synth::{jc_bms, jc_dblpq3, SynthConfig};
    use proptest::prelude::*;

    #[test]
    fn prefix_len_known_values() {
        // |x| = 10, t = 0.8 -> keep 8, prefix 3.
        assert_eq!(prefix_len(10, 0.8), 3);
        assert_eq!(prefix_len(1, 0.5), 1);
        assert_eq!(prefix_len(0, 0.5), 0);
    }

    #[test]
    fn size_bounds_bracket_matches() {
        let (lo, hi) = size_bounds(10, 0.5);
        assert_eq!((lo, hi), (5, 20));
    }

    #[test]
    fn index_matches_scan_on_baskets() {
        let ds = jc_bms(SynthConfig::new(400, 7));
        let idx = JaccardIndex::build(&ds, 0.4);
        let scan = ScanSelector::new(&ds);
        for qi in [0usize, 55, 203] {
            let q = ds.records[qi].clone();
            for theta in [0.0, 0.1, 0.25, 0.4] {
                assert_eq!(
                    idx.select(&ds, &q, theta),
                    scan.select(&q, theta),
                    "query {qi}, θ={theta}"
                );
            }
        }
    }

    #[test]
    fn index_matches_scan_on_qgram_sets() {
        let ds = jc_dblpq3(SynthConfig::new(150, 8));
        let idx = JaccardIndex::build(&ds, 0.4);
        let scan = ScanSelector::new(&ds);
        let q = ds.records[11].clone();
        for theta in [0.0, 0.2, 0.4] {
            assert_eq!(idx.select(&ds, &q, theta), scan.select(&q, theta));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn index_always_agrees_with_scan(seed in 0u64..300, theta_pct in 0u32..=40) {
            let theta = f64::from(theta_pct) / 100.0;
            let ds = jc_bms(SynthConfig::new(120, seed));
            let idx = JaccardIndex::build(&ds, 0.4);
            let scan = ScanSelector::new(&ds);
            let q = ds.records[(seed % 120) as usize].clone();
            prop_assert_eq!(idx.select(&ds, &q, theta), scan.select(&q, theta));
        }
    }
}
