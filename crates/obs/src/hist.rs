//! Log-bucketed latency histograms with lock-free concurrent recording.
//!
//! Bucket `b` covers `[2^b, 2^{b+1})` nanoseconds (bucket 0 additionally
//! absorbs 0 ns), mirroring the convention used by `ServiceStats` in
//! `cardest-serve` so quantiles from the two layers are directly comparable.
//! 48 buckets cover ~78 hours, far beyond any plausible request latency.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 buckets. Bucket `b` covers `[2^b, 2^{b+1})` ns.
pub const HIST_BUCKETS: usize = 48;

/// Index of the log2 bucket covering `ns` nanoseconds.
// lint: hot-path
#[inline]
pub fn bucket_of(ns: u64) -> usize {
    if ns == 0 {
        0
    } else {
        (63 - ns.leading_zeros() as usize).min(HIST_BUCKETS - 1)
    }
}

/// Geometric midpoint of bucket `b`: `2^b * sqrt(2)` ns — the canonical
/// representative value reported for quantiles.
#[inline]
pub fn bucket_midpoint_ns(b: usize) -> u64 {
    ((1u128 << b) as f64 * std::f64::consts::SQRT_2) as u64
}

/// A concurrent log2-bucketed histogram of nanosecond durations.
///
/// Recording is a single relaxed `fetch_add` per observation plus two for
/// the count/sum totals — cheap enough for the request hot path.
#[derive(Debug)]
pub struct LogHistogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    pub fn new() -> LogHistogram {
        LogHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }

    /// Record one observation of `ns` nanoseconds.
    // lint: hot-path
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        self.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Record a [`std::time::Duration`] observation.
    // lint: hot-path
    #[inline]
    pub fn record(&self, d: std::time::Duration) {
        self.record_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Total number of observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Consistent point-in-time copy of the histogram. Concurrent recording
    /// may skew individual buckets by in-flight observations, but every
    /// completed `record_ns` call is visible in at most one bucket.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HIST_BUCKETS];
        for (dst, src) in buckets.iter_mut().zip(self.buckets.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        // Derive the count from the buckets themselves so the snapshot is
        // internally consistent even when racing recorders.
        let count: u64 = buckets.iter().sum();
        HistogramSnapshot {
            buckets,
            count,
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
        }
    }
}

/// Immutable copy of a [`LogHistogram`] with quantile/mean accessors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub buckets: [u64; HIST_BUCKETS],
    pub count: u64,
    pub sum_ns: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum_ns: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Quantile estimate in nanoseconds: the geometric midpoint of the
    /// bucket containing the `q`-th order statistic. Returns 0 when empty.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_midpoint_ns(b);
            }
        }
        bucket_midpoint_ns(HIST_BUCKETS - 1)
    }

    /// Mean observation in nanoseconds (exact, from the running sum).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Merge another snapshot into this one bucket-by-bucket.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += src;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn quantiles_land_in_right_bucket() {
        let h = LogHistogram::new();
        for ns in [10u64, 20, 40, 80, 160, 320, 640, 1280, 2560, 5120] {
            h.record_ns(ns);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10);
        // p50 -> 5th smallest = 160ns -> bucket 7 ([128,256)).
        assert_eq!(s.quantile_ns(0.5), bucket_midpoint_ns(7));
        // p100 -> 5120ns -> bucket 12 ([4096,8192)).
        assert_eq!(s.quantile_ns(1.0), bucket_midpoint_ns(12));
        assert!(s.mean_ns() > 0.0);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let s = LogHistogram::new().snapshot();
        assert_eq!(s.quantile_ns(0.99), 0);
        assert_eq!(s.mean_ns(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let a = LogHistogram::new();
        let b = LogHistogram::new();
        a.record_ns(100);
        b.record_ns(100_000);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.count, 2);
        assert_eq!(s.sum_ns, 100_100);
    }
}
