//! Unified metrics snapshot: an ordered, self-describing bag of counters,
//! gauges, and histograms with Prometheus-style text exposition and a JSON
//! rendering.
//!
//! The snapshot is deliberately schema-free (name → value pairs) so the
//! wire protocol's `Stats` frame and the HTTP exposition endpoint can share
//! one representation and new metrics never require a wire change.

use std::fmt::Write as _;

use crate::hist::HistogramSnapshot;

/// Point-in-time view of every metric a process exports. Insertion order is
/// preserved so renderings (and wire encodings) are deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
#[must_use]
pub struct MetricsSnapshot {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    pub fn new() -> MetricsSnapshot {
        MetricsSnapshot::default()
    }

    /// Append a monotonically-increasing counter.
    pub fn push_counter(&mut self, name: impl Into<String>, value: u64) {
        self.counters.push((name.into(), value));
    }

    /// Append an instantaneous gauge.
    pub fn push_gauge(&mut self, name: impl Into<String>, value: f64) {
        self.gauges.push((name.into(), value));
    }

    /// Append a latency histogram (nanosecond buckets).
    pub fn push_histogram(&mut self, name: impl Into<String>, hist: HistogramSnapshot) {
        self.histograms.push((name.into(), hist));
    }

    pub fn counters(&self) -> &[(String, u64)] {
        &self.counters
    }

    pub fn gauges(&self) -> &[(String, f64)] {
        &self.gauges
    }

    pub fn histograms(&self) -> &[(String, HistogramSnapshot)] {
        &self.histograms
    }

    /// Look up a counter by exact name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Look up a gauge by exact name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Look up a histogram by exact name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Prometheus text exposition format (version 0.0.4). Counters render
    /// as `# TYPE <name> counter` + value, histograms as cumulative
    /// `_bucket{le="..."}` series in **seconds** plus `_sum` and `_count`.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "# TYPE {name} gauge");
            if v.fract() == 0.0 && v.abs() < 1e15 {
                let _ = writeln!(out, "{name} {}", *v as i64);
            } else {
                let _ = writeln!(out, "{name} {v}");
            }
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cum = 0u64;
            for (b, &n) in h.buckets.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                cum += n;
                // Upper bound of log2 bucket b is 2^{b+1} ns, in seconds.
                let le = (1u128 << (b + 1)) as f64 * 1e-9;
                let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cum}");
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{name}_sum {}", h.sum_ns as f64 * 1e-9);
            let _ = writeln!(out, "{name}_count {}", h.count);
        }
        out
    }

    /// Compact JSON object: counters/gauges as flat maps, histograms as
    /// `{count, sum_ns, p50_ns, p99_ns}` summaries.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{v}", json_str(name));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", json_str(name), json_f64(*v));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{}:{{\"count\":{},\"sum_ns\":{},\"mean_ns\":{},\"p50_ns\":{},\"p99_ns\":{}}}",
                json_str(name),
                h.count,
                h.sum_ns,
                json_f64(h.mean_ns()),
                h.quantile_ns(0.5),
                h.quantile_ns(0.99),
            );
        }
        out.push_str("}}");
        out
    }
}

/// Escape a string as a JSON string literal (ASCII control-safe).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render an f64 as a JSON number (finite guard: NaN/inf become 0).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        if v.fract() == 0.0 && v.abs() < 1e15 {
            format!("{}", v as i64)
        } else {
            format!("{v}")
        }
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::LogHistogram;

    fn sample() -> MetricsSnapshot {
        let mut m = MetricsSnapshot::new();
        m.push_counter("cardest_requests_total", 42);
        m.push_counter("cardest_sheds_total", 3);
        m.push_gauge("cardest_inflight", 7.0);
        let h = LogHistogram::new();
        h.record_ns(1_000);
        h.record_ns(1_000_000);
        m.push_histogram("cardest_request_latency", h.snapshot());
        m
    }

    #[test]
    fn lookup_by_name() {
        let m = sample();
        assert_eq!(m.counter("cardest_requests_total"), Some(42));
        assert_eq!(m.counter("missing"), None);
        assert_eq!(m.gauge("cardest_inflight"), Some(7.0));
        assert_eq!(m.histogram("cardest_request_latency").unwrap().count, 2);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let text = sample().render_prometheus();
        assert!(text.contains("# TYPE cardest_requests_total counter"));
        assert!(text.contains("cardest_requests_total 42"));
        assert!(text.contains("# TYPE cardest_inflight gauge"));
        assert!(text.contains("cardest_inflight 7"));
        assert!(text.contains("# TYPE cardest_request_latency histogram"));
        assert!(text.contains("cardest_request_latency_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("cardest_request_latency_count 2"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.split_whitespace().count(), 2, "bad line: {line}");
        }
    }

    #[test]
    fn json_is_parseable_shape() {
        let js = sample().render_json();
        assert!(js.starts_with('{') && js.ends_with('}'));
        assert!(js.contains("\"cardest_requests_total\":42"));
        assert!(js.contains("\"p99_ns\":"));
        // Balanced braces (cheap structural check without a JSON parser).
        let open = js.matches('{').count();
        let close = js.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_f64(f64::NAN), "0");
        assert_eq!(json_f64(2.0), "2");
        assert_eq!(json_f64(2.5), "2.5");
    }
}
