//! Lock-witness callback hook: lets an embedding crate observe every
//! [`Observer`](crate::Observer) internal lock acquisition without this
//! crate depending on it.
//!
//! `cardest-serve` carries a debug-build runtime lock witness that panics
//! the moment any thread acquires two tracked locks against the global rank
//! order the lint's lock graph proves acyclic. The observer's trace ring
//! and slow-query log are locks in that graph too — but `cardest-obs` is
//! the bottom of the dependency stack and cannot call into serve. The
//! classic inversion: obs exposes a process-wide hook ([`install`]), serve
//! installs two `fn` pointers at service start, and every `Observer` lock
//! site brackets its guard with the crate-internal `acquire` RAII pair so
//! the witness sees obs ranks interleaved with serve ranks on the same
//! thread-local stack.
//!
//! When no hook is installed (obs used standalone, or a release build where
//! the serve witness compiles to nothing) the bracket is two branches on an
//! uncontended `OnceLock` — no allocation, no locking, no dependency.

use std::sync::OnceLock;

/// The observer-internal locks the hook distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObsLock {
    /// The sampled-trace ring (`Observer.ring`).
    Ring,
    /// The slow-query log (`Observer.slow`).
    Slow,
}

/// Callbacks bracketing every observer lock acquisition. `acquire` runs
/// immediately *before* the `.lock()` call (so a rank violation panics
/// while the thread still holds only its previous locks), `release` when
/// the guard drops.
#[derive(Debug, Clone, Copy)]
pub struct WitnessHook {
    pub acquire: fn(ObsLock),
    pub release: fn(ObsLock),
}

static HOOK: OnceLock<WitnessHook> = OnceLock::new();

/// Install the process-wide witness hook. First caller wins; returns
/// whether this call installed it. Idempotent installs of the same hook
/// are fine — the loser's pointers are simply dropped.
pub fn install(hook: WitnessHook) -> bool {
    HOOK.set(hook).is_ok()
}

/// RAII bracket around one observer lock acquisition. Constructed just
/// before the `.lock()` call; its `Drop` mirrors the guard's.
pub(crate) struct WitnessGuard {
    lock: ObsLock,
    hook: Option<WitnessHook>,
}

pub(crate) fn acquire(lock: ObsLock) -> WitnessGuard {
    let hook = HOOK.get().copied();
    if let Some(h) = hook {
        (h.acquire)(lock);
    }
    WitnessGuard { lock, hook }
}

impl Drop for WitnessGuard {
    fn drop(&mut self) {
        if let Some(h) = self.hook {
            (h.release)(self.lock);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uninstalled_hook_is_a_no_op_bracket() {
        // No install() in this process-wide state is not guaranteed (tests
        // share the binary), so only exercise the bracket path.
        let g = acquire(ObsLock::Ring);
        drop(g);
        let g = acquire(ObsLock::Slow);
        drop(g);
    }
}
