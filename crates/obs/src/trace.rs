//! Per-stage request tracing: stack-allocated span accumulation on the hot
//! path, per-stage latency histograms, a bounded ring of sampled full
//! traces, and a slow-query log.
//!
//! Design constraints:
//! - **No allocation on the hot path.** A [`TraceBuilder`] is a fixed
//!   `[u64; STAGE_COUNT]` carried by value inside the request job; spans are
//!   added with a single array store. Allocation happens only when a trace
//!   is *captured* (sampled into the ring or over the slow threshold), and a
//!   captured [`Trace`] is a flat `Copy` struct anyway.
//! - **Monotonic clock.** Callers time spans with [`std::time::Instant`];
//!   this module only ever sees elapsed durations.
//! - **Always-on histograms, sampled traces.** Per-stage histograms are fed
//!   by every finished request; only every `sample_every`-th request is
//!   retained as a full trace (plus everything over the slow threshold).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::hist::{HistogramSnapshot, LogHistogram};
use crate::witness::{self, ObsLock};

/// Pipeline stages instrumented along the serving path, in request order.
///
/// `EncoderPass` and `DecoderSweep` are *sub-spans* of `Model` (the batched
/// kernel call wall-clock): when summing stages against the end-to-end
/// total, include `Model` and skip the two sub-spans (see
/// [`Stage::is_substage`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Stage {
    /// Wire-frame decode on the connection reader thread.
    Decode = 0,
    /// Admission control: quota + queue-limit checks before enqueue.
    Admission = 1,
    /// Enqueue until a worker picks the job up (queue wait).
    QueueWait = 2,
    /// Time spent waiting on the micro-batch: the collection window plus the
    /// batch's serialized shared work (sibling prepare/probe, coalescing,
    /// result distribution) outside this request's own spans.
    BatchWindow = 3,
    /// Shared feature preparation + fingerprinting.
    Prepare = 4,
    /// Estimate-cache probe (exact / bound / miss).
    CacheProbe = 5,
    /// Whole batched model call (prepare-to-estimates wall clock).
    Model = 6,
    /// Encoder forward passes inside the model call (sub-span of `Model`).
    EncoderPass = 7,
    /// Monotone decoder sweeps inside the model call (sub-span of `Model`).
    DecoderSweep = 8,
    /// Response-frame encode on the writer side.
    RespondEncode = 9,
}

/// Number of [`Stage`] variants.
pub const STAGE_COUNT: usize = 10;

/// All stages in request order.
pub const STAGES: [Stage; STAGE_COUNT] = [
    Stage::Decode,
    Stage::Admission,
    Stage::QueueWait,
    Stage::BatchWindow,
    Stage::Prepare,
    Stage::CacheProbe,
    Stage::Model,
    Stage::EncoderPass,
    Stage::DecoderSweep,
    Stage::RespondEncode,
];

impl Stage {
    /// Stable snake_case name used in metric names and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Decode => "decode",
            Stage::Admission => "admission",
            Stage::QueueWait => "queue_wait",
            Stage::BatchWindow => "batch_window",
            Stage::Prepare => "prepare",
            Stage::CacheProbe => "cache_probe",
            Stage::Model => "model",
            Stage::EncoderPass => "encoder_pass",
            Stage::DecoderSweep => "decoder_sweep",
            Stage::RespondEncode => "respond_encode",
        }
    }

    /// True for spans nested inside another span (`EncoderPass` and
    /// `DecoderSweep` are inside `Model`); excluded from coverage sums.
    pub fn is_substage(self) -> bool {
        matches!(self, Stage::EncoderPass | Stage::DecoderSweep)
    }

    /// Inverse of `Stage as u8`; `None` for out-of-range codes.
    pub fn from_u8(v: u8) -> Option<Stage> {
        STAGES.get(v as usize).copied()
    }
}

/// Zero-allocation span accumulator carried inside a request job.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceBuilder {
    stages_ns: [u64; STAGE_COUNT],
}

impl TraceBuilder {
    pub fn new() -> TraceBuilder {
        TraceBuilder::default()
    }

    /// Add `d` to the accumulated time for `stage` (spans for the same
    /// stage accumulate, e.g. a retried cache probe).
    // lint: hot-path
    #[inline]
    pub fn add(&mut self, stage: Stage, d: Duration) {
        self.add_ns(stage, d.as_nanos().min(u64::MAX as u128) as u64);
    }

    // lint: hot-path
    #[inline]
    pub fn add_ns(&mut self, stage: Stage, ns: u64) {
        self.stages_ns[stage as usize] = self.stages_ns[stage as usize].saturating_add(ns);
    }

    /// Accumulated nanoseconds for one stage.
    pub fn get_ns(&self, stage: Stage) -> u64 {
        self.stages_ns[stage as usize]
    }

    pub fn stages_ns(&self) -> &[u64; STAGE_COUNT] {
        &self.stages_ns
    }
}

/// A captured end-to-end trace of one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Trace {
    /// Monotonically increasing capture id (process-local).
    pub id: u64,
    /// Per-stage accumulated nanoseconds, indexed by `Stage as usize`.
    pub stages_ns: [u64; STAGE_COUNT],
    /// End-to-end latency in nanoseconds (enqueue to response).
    pub total_ns: u64,
    /// Model epoch that answered the request.
    pub epoch: u64,
    /// Caller-defined answer-source code (the serve layer uses its wire
    /// `WireSource` encoding: computed / coalesced / cache / bracket).
    pub source: u8,
}

impl Trace {
    /// Sum of top-level spans (sub-spans excluded) — compare against
    /// `total_ns` to measure how much of the latency is attributed.
    pub fn attributed_ns(&self) -> u64 {
        STAGES
            .iter()
            .filter(|s| !s.is_substage())
            .map(|&s| self.stages_ns[s as usize])
            .sum()
    }
}

/// Configuration for an [`Observer`].
#[derive(Debug, Clone)]
pub struct ObsConfig {
    /// Master switch; when false, `finish_trace` still counts requests but
    /// records nothing else (callers should also skip span timing).
    pub enabled: bool,
    /// Capture every n-th finished request as a full trace (1 = all,
    /// 0 = never sample; slow queries are always captured).
    pub sample_every: u64,
    /// Requests at or above this end-to-end latency land in the slow log.
    pub slow_threshold: Duration,
    /// Capacity of the recent-trace ring buffer.
    pub ring_capacity: usize,
    /// Capacity of the slow-query log (ring of the most recent slow traces).
    pub slow_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            enabled: true,
            sample_every: 16,
            slow_threshold: Duration::from_millis(100),
            ring_capacity: 256,
            slow_capacity: 64,
        }
    }
}

/// Aggregation point for one service instance: per-stage histograms, the
/// end-to-end histogram, the sampled-trace ring, and the slow-query log.
///
/// Shared across worker and connection threads behind an `Arc`; recording
/// into histograms is lock-free, trace capture takes a short mutex only on
/// the sampled / slow subset.
#[derive(Debug)]
pub struct Observer {
    enabled: AtomicBool,
    sample_every: AtomicU64,
    slow_threshold_ns: AtomicU64,
    seq: AtomicU64,
    captured: AtomicU64,
    slow_seen: AtomicU64,
    stages: [LogHistogram; STAGE_COUNT],
    total: LogHistogram,
    ring: Mutex<VecDeque<Trace>>,
    slow: Mutex<VecDeque<Trace>>,
    ring_capacity: usize,
    slow_capacity: usize,
}

impl Observer {
    pub fn new(cfg: ObsConfig) -> Observer {
        Observer {
            enabled: AtomicBool::new(cfg.enabled),
            sample_every: AtomicU64::new(cfg.sample_every),
            slow_threshold_ns: AtomicU64::new(
                cfg.slow_threshold.as_nanos().min(u64::MAX as u128) as u64
            ),
            seq: AtomicU64::new(0),
            captured: AtomicU64::new(0),
            slow_seen: AtomicU64::new(0),
            stages: std::array::from_fn(|_| LogHistogram::new()),
            total: LogHistogram::new(),
            ring: Mutex::new(VecDeque::with_capacity(cfg.ring_capacity.min(4096))),
            slow: Mutex::new(VecDeque::with_capacity(cfg.slow_capacity.min(4096))),
            ring_capacity: cfg.ring_capacity,
            slow_capacity: cfg.slow_capacity,
        }
    }

    /// Whether span timing should be performed at all. Callers check this
    /// once per request and skip clock reads entirely when disabled.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    pub fn set_enabled(&self, on: bool) {
        // ordering: relaxed suffices — the flag publishes no data, only a
        // hint; readers that race the toggle merely time (or skip) a few
        // spans on either side of it, which sampling tolerates by design.
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Record a standalone span for a stage that is not tied to a request
    /// trace (e.g. frame decode on the reader thread, which happens before
    /// a job exists). Feeds the stage histogram only.
    // lint: hot-path
    #[inline]
    pub fn record_stage(&self, stage: Stage, d: Duration) {
        if self.enabled() {
            self.stages[stage as usize].record(d);
        }
    }

    // lint: hot-path
    #[inline]
    pub fn record_stage_ns(&self, stage: Stage, ns: u64) {
        if self.enabled() {
            self.stages[stage as usize].record_ns(ns);
        }
    }

    /// Finish a request: feed every stage histogram and the end-to-end
    /// histogram, then capture the full trace if sampled or slow.
    pub fn finish_trace(&self, builder: &TraceBuilder, total: Duration, epoch: u64, source: u8) {
        if !self.enabled() {
            return;
        }
        let total_ns = total.as_nanos().min(u64::MAX as u128) as u64;
        for &stage in STAGES.iter() {
            let ns = builder.get_ns(stage);
            // Sub-spans may legitimately be 0 (cache hits never run the
            // model); recording zeros would drown the histograms, so only
            // nonzero spans are recorded. QueueWait/BatchWindow zeros are
            // meaningful and always recorded.
            if ns > 0 || matches!(stage, Stage::QueueWait | Stage::BatchWindow) {
                self.stages[stage as usize].record_ns(ns);
            }
        }
        self.total.record_ns(total_ns);

        // ordering: relaxed suffices — the ticket only drives the 1-in-N
        // sampling decision; atomicity gives uniqueness, and no other
        // memory is synchronized through it.
        let n = self.seq.fetch_add(1, Ordering::Relaxed);
        let every = self.sample_every.load(Ordering::Relaxed);
        let slow = total_ns >= self.slow_threshold_ns.load(Ordering::Relaxed);
        let sampled = every > 0 && n.is_multiple_of(every);
        if !sampled && !slow {
            return;
        }
        let trace = Trace {
            id: n,
            stages_ns: *builder.stages_ns(),
            total_ns,
            epoch,
            source,
        };
        if sampled && self.ring_capacity > 0 {
            self.captured.fetch_add(1, Ordering::Relaxed);
            let _witness = witness::acquire(ObsLock::Ring);
            let mut ring = self.ring.lock().unwrap();
            if ring.len() == self.ring_capacity {
                ring.pop_front();
            }
            ring.push_back(trace);
        }
        if slow && self.slow_capacity > 0 {
            self.slow_seen.fetch_add(1, Ordering::Relaxed);
            let _witness = witness::acquire(ObsLock::Slow);
            let mut log = self.slow.lock().unwrap();
            if log.len() == self.slow_capacity {
                log.pop_front();
            }
            log.push_back(trace);
        }
    }

    /// Most recent sampled traces, oldest first, at most `max`.
    pub fn recent_traces(&self, max: usize) -> Vec<Trace> {
        let _witness = witness::acquire(ObsLock::Ring);
        let ring = self.ring.lock().unwrap();
        let skip = ring.len().saturating_sub(max);
        ring.iter().skip(skip).copied().collect()
    }

    /// Most recent slow-query traces, oldest first, at most `max`.
    pub fn slow_traces(&self, max: usize) -> Vec<Trace> {
        let _witness = witness::acquire(ObsLock::Slow);
        let log = self.slow.lock().unwrap();
        let skip = log.len().saturating_sub(max);
        log.iter().skip(skip).copied().collect()
    }

    /// Snapshot of one stage's latency histogram.
    pub fn stage_histogram(&self, stage: Stage) -> HistogramSnapshot {
        self.stages[stage as usize].snapshot()
    }

    /// Snapshot of the end-to-end latency histogram.
    pub fn total_histogram(&self) -> HistogramSnapshot {
        self.total.snapshot()
    }

    /// Number of requests finished through this observer.
    pub fn finished(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Number of traces captured into the ring (lifetime, not current len).
    pub fn captured(&self) -> u64 {
        self.captured.load(Ordering::Relaxed)
    }

    /// Number of slow queries seen (lifetime, not current log length).
    pub fn slow_seen(&self) -> u64 {
        self.slow_seen.load(Ordering::Relaxed)
    }

    pub fn sample_every(&self) -> u64 {
        self.sample_every.load(Ordering::Relaxed)
    }

    pub fn slow_threshold_ns(&self) -> u64 {
        self.slow_threshold_ns.load(Ordering::Relaxed)
    }
}

impl Default for Observer {
    fn default() -> Self {
        Observer::new(ObsConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_builder(ns: u64) -> TraceBuilder {
        let mut b = TraceBuilder::new();
        b.add_ns(Stage::QueueWait, ns / 2);
        b.add_ns(Stage::Model, ns / 2);
        b.add_ns(Stage::EncoderPass, ns / 4);
        b
    }

    #[test]
    fn sampling_captures_every_nth() {
        let obs = Observer::new(ObsConfig {
            sample_every: 4,
            slow_threshold: Duration::from_secs(1000),
            ..ObsConfig::default()
        });
        for i in 0..16 {
            obs.finish_trace(&sample_builder(1000 + i), Duration::from_micros(10), 1, 0);
        }
        assert_eq!(obs.finished(), 16);
        assert_eq!(obs.captured(), 4);
        assert_eq!(obs.recent_traces(100).len(), 4);
        assert_eq!(obs.slow_seen(), 0);
    }

    #[test]
    fn slow_queries_always_captured() {
        let obs = Observer::new(ObsConfig {
            sample_every: 0, // never sample
            slow_threshold: Duration::from_micros(50),
            ..ObsConfig::default()
        });
        obs.finish_trace(&sample_builder(100), Duration::from_micros(10), 1, 0);
        obs.finish_trace(&sample_builder(100), Duration::from_micros(80), 2, 3);
        assert!(obs.recent_traces(10).is_empty());
        let slow = obs.slow_traces(10);
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].epoch, 2);
        assert_eq!(slow[0].source, 3);
    }

    #[test]
    fn ring_is_bounded() {
        let obs = Observer::new(ObsConfig {
            sample_every: 1,
            ring_capacity: 8,
            slow_threshold: Duration::from_secs(1000),
            ..ObsConfig::default()
        });
        for _ in 0..100 {
            obs.finish_trace(&sample_builder(64), Duration::from_nanos(64), 1, 0);
        }
        let traces = obs.recent_traces(1000);
        assert_eq!(traces.len(), 8);
        // Oldest first; the last 8 of 100 captures survive.
        assert_eq!(traces[0].id, 92);
        assert_eq!(traces[7].id, 99);
    }

    #[test]
    fn disabled_observer_records_nothing() {
        let obs = Observer::new(ObsConfig {
            enabled: false,
            ..ObsConfig::default()
        });
        obs.finish_trace(&sample_builder(100), Duration::from_millis(500), 1, 0);
        obs.record_stage(Stage::Decode, Duration::from_micros(5));
        assert_eq!(obs.finished(), 0);
        assert_eq!(obs.total_histogram().count, 0);
        assert_eq!(obs.stage_histogram(Stage::Decode).count, 0);
    }

    #[test]
    fn attributed_excludes_substages() {
        let mut b = TraceBuilder::new();
        b.add_ns(Stage::QueueWait, 100);
        b.add_ns(Stage::Model, 200);
        b.add_ns(Stage::EncoderPass, 150);
        b.add_ns(Stage::DecoderSweep, 40);
        let t = Trace {
            id: 0,
            stages_ns: *b.stages_ns(),
            total_ns: 310,
            epoch: 1,
            source: 0,
        };
        assert_eq!(t.attributed_ns(), 300);
    }

    #[test]
    fn stage_codes_round_trip() {
        for (i, &s) in STAGES.iter().enumerate() {
            assert_eq!(s as usize, i);
            assert_eq!(Stage::from_u8(s as u8), Some(s));
        }
        assert_eq!(Stage::from_u8(STAGE_COUNT as u8), None);
    }
}
