//! # cardest-obs — observability primitives for the serving stack
//!
//! Std-only building blocks threaded through the whole request path:
//!
//! - [`LogHistogram`] — lock-free log2-bucketed latency histograms, using
//!   the same bucket convention as `ServiceStats` so quantiles line up.
//! - [`Stage`] / [`TraceBuilder`] / [`Trace`] — a zero-allocation span API
//!   over a monotonic clock: jobs carry a fixed-size [`TraceBuilder`] and
//!   each pipeline stage adds its elapsed time with one array store.
//! - [`Observer`] — per-service aggregation point: always-on per-stage
//!   histograms, a bounded ring of sampled full traces, and a slow-query
//!   log capturing every request over a configurable threshold with its
//!   complete span breakdown plus epoch and answer source.
//! - [`MetricsSnapshot`] — a single coherent, ordered bag of counters,
//!   gauges, and histograms with Prometheus text exposition
//!   ([`MetricsSnapshot::render_prometheus`]) and JSON rendering
//!   ([`MetricsSnapshot::render_json`]), shared by the wire `Stats` frame
//!   and the HTTP metrics endpoint.
//! - [`witness`] — a process-wide lock-witness callback hook: the embedding
//!   service installs two `fn` pointers and every `Observer` internal lock
//!   acquisition is reported to its runtime lock-rank checker, without obs
//!   taking any dependency on the layers above it.
//!
//! This crate depends on nothing (std only) so every layer — core, nn,
//! serve, bench — can feed it without dependency cycles.

pub mod hist;
pub mod snapshot;
pub mod trace;
pub mod witness;

pub use hist::{bucket_midpoint_ns, bucket_of, HistogramSnapshot, LogHistogram, HIST_BUCKETS};
pub use snapshot::{json_f64, json_str, MetricsSnapshot};
pub use trace::{ObsConfig, Observer, Stage, Trace, TraceBuilder, STAGES, STAGE_COUNT};
pub use witness::{install as install_witness, ObsLock, WitnessHook};
