//! The naive `Mean` estimator of §9.11: the same cardinality for every query
//! at a given threshold — the average over an offline random workload,
//! quantized per threshold bucket.

use cardest_core::{CardinalityCurve, CardinalityEstimator, PreparedQuery};
use cardest_data::{Record, Workload};

/// Per-threshold-bucket mean cardinality.
pub struct MeanEstimator {
    /// Bucket means indexed by quantized threshold.
    means: Vec<f64>,
    theta_max: f64,
}

impl MeanEstimator {
    /// Quantizes `[0, θ_max]` into `buckets` cells and averages the training
    /// labels per cell (empty cells inherit their left neighbour).
    pub fn build(workload: &Workload, theta_max: f64, buckets: usize) -> Self {
        let buckets = buckets.max(1);
        let mut sums = vec![0.0f64; buckets + 1];
        let mut counts = vec![0usize; buckets + 1];
        for (_, theta, c) in workload.triples() {
            let b = Self::bucket_of(theta, theta_max, buckets);
            sums[b] += f64::from(c);
            counts[b] += 1;
        }
        let mut means = vec![0.0f64; buckets + 1];
        let mut prev = 0.0;
        for (i, mean) in means.iter_mut().enumerate() {
            *mean = if counts[i] > 0 {
                sums[i] / counts[i] as f64
            } else {
                prev
            };
            prev = *mean;
        }
        MeanEstimator { means, theta_max }
    }

    fn bucket_of(theta: f64, theta_max: f64, buckets: usize) -> usize {
        if theta_max <= 0.0 {
            return 0;
        }
        (((theta / theta_max).clamp(0.0, 1.0)) * buckets as f64).floor() as usize
    }
}

impl CardinalityEstimator for MeanEstimator {
    fn estimate(&self, _query: &Record, theta: f64) -> f64 {
        self.means[Self::bucket_of(theta, self.theta_max, self.means.len() - 1)]
    }

    /// The per-bucket means up to θ's bucket — curve-indexed: step i is the
    /// estimate at any θ' in bucket i, which is what lets the GPH allocator
    /// read one curve instead of τ+1 estimates.
    fn curve(&self, _prepared: &PreparedQuery, theta: f64) -> CardinalityCurve {
        CardinalityCurve::from_values(self.means[..=self.threshold_step(theta)].to_vec())
    }

    fn threshold_step(&self, theta: f64) -> usize {
        Self::bucket_of(theta, self.theta_max, self.means.len() - 1)
    }

    fn name(&self) -> String {
        "Mean".into()
    }

    fn size_bytes(&self) -> usize {
        self.means.len() * 8
    }

    fn is_monotonic(&self) -> bool {
        false // bucket means need not increase, though they usually do
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardest_data::synth::{hm_imagenet, SynthConfig};

    #[test]
    fn mean_ignores_the_query() {
        let ds = hm_imagenet(SynthConfig::new(100, 1));
        let wl = Workload::sample_from(&ds, 0.3, 8, 2);
        let est = MeanEstimator::build(&wl, ds.theta_max, 16);
        let a = est.estimate(&ds.records[0], 10.0);
        let b = est.estimate(&ds.records[50], 10.0);
        assert_eq!(a, b);
    }

    #[test]
    fn mean_tracks_workload_average() {
        let ds = hm_imagenet(SynthConfig::new(100, 2));
        let wl = Workload::sample_from(&ds, 0.5, 8, 3);
        let est = MeanEstimator::build(&wl, ds.theta_max, 8);
        // At θ = θ_max every ball is large; at θ = 0 nearly singleton.
        assert!(est.estimate(&ds.records[0], ds.theta_max) > est.estimate(&ds.records[0], 0.0));
    }
}
