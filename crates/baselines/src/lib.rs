//! Competitor estimators from the paper's evaluation (§9.1.2).
//!
//! Three families, all implementing
//! [`cardest_core::CardinalityEstimator`]:
//!
//! * **Database methods** — [`db_us::DbUs`] (uniform sampling) and
//!   [`db_se`] (one specialized auxiliary-structure estimator per distance
//!   function), plus the trivial [`mean::MeanEstimator`] used by §9.11.
//! * **Traditional learning** — [`kde::TlKde`] (kernel density over sampled
//!   distances) and [`gbt::TlGbt`] (gradient-boosted regression trees from
//!   scratch; depth-wise growth stands in for XGBoost, leaf-wise for
//!   LightGBM — the defining difference between those two libraries).
//! * **Deep learning** — [`dnn::DlDnn`] (vanilla FNN), [`dnn::DlDnnSTau`]
//!   (independent per-τ networks), [`moe::DlMoe`] (sparsely-gated mixture of
//!   experts), [`rmi::DlRmi`] (two-stage recursive model index), and
//!   [`dln::DlDln`] (a monotone network standing in for deep lattice
//!   networks; DESIGN.md §2.4 documents each substitution).
//!
//! Every baseline speaks the v2 Estimator API
//! (`prepare` → `curve` → `estimate`, see `cardest_core::estimator`):
//! `prepare` caches the per-query work — featurization for the learned
//! models ([`features::prepared_features`]), sample/bucket distance keys for
//! the samplers, the nearest-pivot scan for the pivot histogram — so a
//! τ-sweep pays for it once, and `curve` returns the per-threshold values in
//! one call (a single convolution DP serves the whole curve of
//! [`db_se::GroupHistogram`]; the samplers return their empirical distance
//! ladders). Scalar `estimate` calls remain bit-identical to the prepared
//! paths.

pub mod db_se;
pub mod db_us;
pub mod dln;
pub mod dnn;
pub mod features;
pub mod gbt;
pub mod kde;
pub mod mean;
pub mod moe;
pub mod rmi;

pub use db_se::build_db_se;
pub use db_us::DbUs;
pub use dln::DlDln;
pub use dnn::{DlDnn, DlDnnSTau};
pub use features::{BaselineFeaturizer, RegressionData};
pub use gbt::{GrowthPolicy, TlGbt};
pub use kde::TlKde;
pub use mean::MeanEstimator;
pub use moe::DlMoe;
pub use rmi::DlRmi;
