//! `DL-DNN` and `DL-DNNsτ` — the "just feed a network" baselines.
//!
//! * `DL-DNN`: one vanilla FNN with four hidden layers over `[features ; θ]`,
//!   trained with MSLE. The paper uses it to show that naive deep regression
//!   underperforms incremental prediction.
//! * `DL-DNNsτ`: `τ_max + 1` *independently trained* networks, the k-th
//!   predicting the cardinality at transformed threshold `τ = k`. More
//!   parameters, slower to train, prone to overfitting (§9.2), and not
//!   monotonic across τ.

use crate::features::{prepared_features, BaselineFeaturizer, RegressionData};
use cardest_core::{
    next_instance_id, CardinalityCurve, CardinalityEstimator, Estimate, PreparedQuery,
};
use cardest_data::{Record, Workload};
use cardest_fx::FeatureExtractor;
use cardest_nn::layers::{Activation, Mlp};
use cardest_nn::{loss, Adam, Matrix, Optimizer, Parallelism, ParamStore, Tape};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::sync::Arc;

/// Shared training knobs for the DNN-family baselines.
#[derive(Clone, Debug)]
pub struct DnnOptions {
    pub hidden: Vec<usize>,
    pub epochs: usize,
    pub batch_size: usize,
    pub learning_rate: f32,
    pub seed: u64,
}

impl Default for DnnOptions {
    fn default() -> Self {
        DnnOptions {
            // Four hidden layers, per the paper's DL-DNN (scaled widths).
            hidden: vec![96, 64, 48, 32],
            epochs: 40,
            batch_size: 64,
            learning_rate: 2e-3,
            seed: 7,
        }
    }
}

/// Trains an MLP regressor with MSLE on `(x, y)`; the shared core of the
/// deep baselines (also used by RMI's stages).
pub(crate) fn fit_msle_mlp(
    x: &Matrix,
    y: &Matrix,
    hidden: &[usize],
    opts: &DnnOptions,
    name: &str,
) -> (Mlp, ParamStore) {
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut store = ParamStore::new();
    let mlp = Mlp::new(
        &mut store,
        &mut rng,
        name,
        x.cols(),
        hidden,
        1,
        Activation::Relu,
        Activation::Relu, // cardinalities are non-negative
    );
    let mut opt = Adam::new(opts.learning_rate);
    let n = x.rows();
    let bs = opts.batch_size.min(n).max(1);
    let mut order: Vec<usize> = (0..n).collect();
    for _ in 0..opts.epochs {
        order.shuffle(&mut rng);
        for chunk in order.chunks(bs) {
            let xb = x.gather_rows(chunk);
            let yb = y.gather_rows(chunk);
            let mut tape = Tape::new();
            let xv = tape.input(xb);
            let yv = tape.input(yb);
            let pred = mlp.forward(&mut tape, &store, xv);
            let l = loss::msle(&mut tape, pred, yv);
            tape.backward(l, &mut store);
            store.clip_grad_norm(5.0);
            opt.step(&mut store);
        }
    }
    (mlp, store)
}

/// One vanilla deep network over `[features ; θ]`.
pub struct DlDnn {
    mlp: Mlp,
    store: ParamStore,
    featurizer: BaselineFeaturizer,
    theta_max: f64,
    prep_id: u64,
}

impl DlDnn {
    pub fn train(
        workload: &Workload,
        featurizer: BaselineFeaturizer,
        theta_max: f64,
        opts: DnnOptions,
    ) -> Self {
        let data = RegressionData::from_workload(workload, &featurizer, theta_max);
        let (mlp, store) = fit_msle_mlp(&data.x, &data.y, &opts.hidden, &opts, "dldnn");
        DlDnn {
            mlp,
            store,
            featurizer,
            theta_max,
            prep_id: next_instance_id(),
        }
    }
}

impl CardinalityEstimator for DlDnn {
    fn estimate(&self, query: &Record, theta: f64) -> f64 {
        let x = RegressionData::query_row(&self.featurizer, query, theta, self.theta_max);
        f64::from(self.mlp.infer(&self.store, &x).get(0, 0))
    }

    /// Featurizes once; every θ of a sweep reuses the cached vector.
    fn prepare(&self, query: &Record) -> PreparedQuery {
        let prepared = PreparedQuery::from_record(query.clone());
        let _ = prepared_features(&self.featurizer, self.prep_id, &prepared);
        prepared
    }

    fn curve(&self, prepared: &PreparedQuery, theta: f64) -> CardinalityCurve {
        let feats = prepared_features(&self.featurizer, self.prep_id, prepared);
        let x = RegressionData::row_from_features(&feats.0, theta, self.theta_max);
        CardinalityCurve::point(f64::from(self.mlp.infer(&self.store, &x).get(0, 0)))
    }

    /// One stacked forward pass for the whole batch. The batched kernel
    /// computes each row with the per-row arithmetic of the single-query
    /// path, so batch estimates are bit-identical to scalar `estimate`
    /// calls (pinned by the `batched_dnn_matches_scalar_bitwise` test).
    fn estimate_batch(&self, prepared: &[&PreparedQuery], thetas: &[f64]) -> Vec<Estimate> {
        self.estimate_batch_par(prepared, thetas, Parallelism::serial())
    }

    fn estimate_batch_par(
        &self,
        prepared: &[&PreparedQuery],
        thetas: &[f64],
        par: Parallelism,
    ) -> Vec<Estimate> {
        assert_eq!(
            prepared.len(),
            thetas.len(),
            "estimate_batch: {} queries vs {} thresholds",
            prepared.len(),
            thetas.len()
        );
        if prepared.is_empty() {
            return Vec::new();
        }
        // One flat `n × (dim + 1)` fill — same per-row layout as
        // `RegressionData::row_from_features`, without a matrix per query.
        let dim = self.featurizer.dim();
        let width = dim + 1;
        let mut data = vec![0.0f32; prepared.len() * width];
        for ((p, &theta), row) in prepared.iter().zip(thetas).zip(data.chunks_mut(width)) {
            let feats = prepared_features(&self.featurizer, self.prep_id, p);
            row[..dim].copy_from_slice(&feats.0);
            row[dim] = (theta / self.theta_max.max(1e-12)) as f32;
        }
        let x = Matrix::from_vec(prepared.len(), width, data);
        let pred = self.mlp.infer_with(&self.store, &x, par);
        let source: Arc<str> = CardinalityEstimator::name(self).into();
        (0..prepared.len())
            .map(|r| Estimate::exact(f64::from(pred.get(r, 0))).with_source(Arc::clone(&source)))
            .collect()
    }

    fn name(&self) -> String {
        "DL-DNN".into()
    }

    fn size_bytes(&self) -> usize {
        self.store.size_bytes()
    }
}

/// `τ_max + 1` independent networks, one per transformed threshold.
pub struct DlDnnSTau {
    models: Vec<(Mlp, ParamStore)>,
    fx: Box<dyn FeatureExtractor>,
    prep_id: u64,
}

impl DlDnnSTau {
    /// Trains one network per τ on the queries' cumulative cardinality at
    /// that τ. The feature extractor supplies both the input encoding and the
    /// τ mapping (thresholds are grouped by `h_thr`).
    pub fn train(workload: &Workload, fx: Box<dyn FeatureExtractor>, opts: DnnOptions) -> Self {
        let n_out = fx.tau_max() + 1;
        let nq = workload.len();
        let d = fx.dim();
        let mut x = Matrix::zeros(nq, d);
        for (r, lq) in workload.queries.iter().enumerate() {
            fx.extract(&lq.query).write_f32(x.row_mut(r));
        }
        // Cumulative target per τ (same derivation as the CardNet tensors).
        let mut models = Vec::with_capacity(n_out);
        for tau in 0..n_out {
            let mut y = Matrix::zeros(nq, 1);
            for (r, lq) in workload.queries.iter().enumerate() {
                // Largest grid threshold mapping to ≤ tau gives the target.
                let mut target = 0.0f32;
                for (&theta, &c) in workload.thresholds.iter().zip(&lq.cards) {
                    if fx.map_threshold(theta) <= tau {
                        target = c as f32;
                    }
                }
                y.set(r, 0, target);
            }
            // Smaller nets per τ keep total size comparable to the paper's
            // relative ordering (DNNsτ is still the largest model).
            let sub_opts = DnnOptions {
                hidden: vec![48, 32],
                epochs: opts.epochs / 2,
                seed: opts.seed + tau as u64,
                ..opts.clone()
            };
            models.push(fit_msle_mlp(
                &x,
                &y,
                &sub_opts.hidden.clone(),
                &sub_opts,
                "dnnstau",
            ));
        }
        DlDnnSTau {
            models,
            fx,
            prep_id: next_instance_id(),
        }
    }
}

impl CardinalityEstimator for DlDnnSTau {
    fn estimate(&self, query: &Record, theta: f64) -> f64 {
        let tau = self.fx.map_threshold(theta).min(self.models.len() - 1);
        let bits = self.fx.extract(query);
        let x = Matrix::from_vec(1, bits.len(), bits.to_f32());
        let (mlp, store) = &self.models[tau];
        f64::from(mlp.infer(store, &x).get(0, 0))
    }

    /// Extracts the shared input encoding once for all τ networks.
    fn prepare(&self, query: &Record) -> PreparedQuery {
        PreparedQuery::with_bits(query.clone(), self.prep_id, self.fx.extract(query))
    }

    /// A genuinely multi-step curve: step t is the t-th independent
    /// network's prediction — which is exactly why DNNsτ is *not* monotone
    /// across τ (the paper's point).
    fn curve(&self, prepared: &PreparedQuery, theta: f64) -> CardinalityCurve {
        let tau = self.threshold_step(theta);
        let x = cardest_core::prepared_feature_matrix(self.fx.as_ref(), self.prep_id, prepared);
        CardinalityCurve::from_values(
            (0..=tau)
                .map(|t| {
                    let (mlp, store) = &self.models[t];
                    f64::from(mlp.infer(store, &x).get(0, 0))
                })
                .collect(),
        )
    }

    fn threshold_step(&self, theta: f64) -> usize {
        self.fx.map_threshold(theta).min(self.models.len() - 1)
    }

    fn name(&self) -> String {
        "DL-DNNsT".into()
    }

    fn size_bytes(&self) -> usize {
        self.models.iter().map(|(_, s)| s.size_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardest_data::metrics;
    use cardest_data::synth::{hm_imagenet, SynthConfig};
    use cardest_fx::build_extractor;

    fn setup() -> (cardest_data::Dataset, Workload, Workload) {
        let ds = hm_imagenet(SynthConfig::new(300, 17));
        let wl = Workload::sample_from(&ds, 0.4, 8, 2);
        let split = wl.split(3);
        (ds, split.train, split.test)
    }

    fn eval(est: &dyn CardinalityEstimator, wl: &Workload) -> f64 {
        let mut actual = Vec::new();
        let mut pred = Vec::new();
        for lq in &wl.queries {
            for (&theta, &c) in wl.thresholds.iter().zip(&lq.cards) {
                actual.push(f64::from(c));
                pred.push(est.estimate(&lq.query, theta));
            }
        }
        metrics::msle(&actual, &pred)
    }

    #[test]
    fn dnn_learns_something() {
        let (ds, train_wl, test_wl) = setup();
        let f = BaselineFeaturizer::from_dataset(&ds, 1);
        let opts = DnnOptions {
            epochs: 15,
            hidden: vec![48, 32],
            ..Default::default()
        };
        let dnn = DlDnn::train(&train_wl, f, ds.theta_max, opts);
        let msle = eval(&dnn, &test_wl);
        // The mean cardinality spans orders of magnitude; a trained model
        // should land well under MSLE of 9 (≈ e^3x multiplicative error).
        assert!(msle < 9.0, "DL-DNN failed to learn: MSLE {msle}");
        assert!(dnn.size_bytes() > 0);
    }

    #[test]
    fn batched_dnn_matches_scalar_bitwise() {
        // The stacked batch kernel (and its threaded variant) must agree
        // with per-query `estimate` bit for bit — same contract as CardNet's
        // batch path, which is what lets the serve layer batch baselines too.
        let (ds, train_wl, test_wl) = setup();
        let f = BaselineFeaturizer::from_dataset(&ds, 1);
        let opts = DnnOptions {
            epochs: 3,
            hidden: vec![32, 16],
            ..Default::default()
        };
        let dnn = DlDnn::train(&train_wl, f, ds.theta_max, opts);
        let queries: Vec<Record> = test_wl
            .queries
            .iter()
            .take(9)
            .map(|lq| lq.query.clone())
            .collect();
        let thetas: Vec<f64> = (0..queries.len())
            .map(|i| ds.theta_max * i as f64 / 8.0)
            .collect();
        let prepared: Vec<PreparedQuery> = queries.iter().map(|q| dnn.prepare(q)).collect();
        let refs: Vec<&PreparedQuery> = prepared.iter().collect();
        for threads in [1usize, 4] {
            let batch = dnn.estimate_batch_par(&refs, &thetas, Parallelism::threads(threads));
            for ((q, &theta), got) in queries.iter().zip(&thetas).zip(&batch) {
                let want = dnn.estimate(q, theta);
                assert_eq!(
                    got.value.to_bits(),
                    want.to_bits(),
                    "threads={threads} θ={theta}: {} vs {want}",
                    got.value
                );
            }
        }
    }

    #[test]
    fn dnnstau_trains_one_model_per_tau() {
        let (ds, train_wl, test_wl) = setup();
        let fx = build_extractor(&ds, 10, 1);
        let n_models = fx.tau_max() + 1;
        let opts = DnnOptions {
            epochs: 8,
            ..Default::default()
        };
        let est = DlDnnSTau::train(&train_wl, fx, opts);
        assert_eq!(est.models.len(), n_models);
        let msle = eval(&est, &test_wl);
        assert!(msle.is_finite());
        // DNNsτ must be the biggest model of the DNN family.
        let f = BaselineFeaturizer::from_dataset(&ds, 1);
        let dnn = DlDnn::train(
            &train_wl,
            f,
            ds.theta_max,
            DnnOptions {
                epochs: 2,
                hidden: vec![48, 32],
                ..Default::default()
            },
        );
        assert!(est.size_bytes() > dnn.size_bytes());
    }
}
