//! Shared featurization for the learned baselines.
//!
//! Per §9.1.2: learning models take the same feature extraction as CardNet on
//! edit and Jaccard distance, and the *original* vectors on Hamming and
//! Euclidean distance (TL-KDE is the exception — it consumes original records
//! directly).

use cardest_core::PreparedQuery;
use cardest_data::{Dataset, DistanceKind, Record, Workload};
use cardest_fx::{build_extractor, FeatureExtractor};
use cardest_nn::Matrix;
use std::sync::Arc;

/// Maps a record to the baseline input vector.
pub enum BaselineFeaturizer {
    /// Raw binary vector as f32 (HM datasets).
    RawBits { dim: usize },
    /// Raw real vector (EU datasets).
    RawVec { dim: usize },
    /// CardNet's feature extraction (ED and JC datasets).
    Extracted(Box<dyn FeatureExtractor>),
}

impl BaselineFeaturizer {
    /// Chooses the paper's input encoding for the dataset's distance.
    pub fn from_dataset(dataset: &Dataset, seed: u64) -> Self {
        match dataset.kind {
            DistanceKind::Hamming => BaselineFeaturizer::RawBits {
                dim: dataset.records.first().map_or(0, |r| r.as_bits().len()),
            },
            DistanceKind::Euclidean => BaselineFeaturizer::RawVec {
                dim: dataset.records.first().map_or(0, |r| r.as_vec().len()),
            },
            DistanceKind::Edit | DistanceKind::Jaccard => {
                BaselineFeaturizer::Extracted(build_extractor(dataset, 16, seed))
            }
        }
    }

    pub fn dim(&self) -> usize {
        match self {
            BaselineFeaturizer::RawBits { dim } | BaselineFeaturizer::RawVec { dim } => *dim,
            BaselineFeaturizer::Extracted(fx) => fx.dim(),
        }
    }

    /// Writes the feature vector of `record` into `out` (length = `dim()`).
    pub fn featurize(&self, record: &Record, out: &mut [f32]) {
        match self {
            BaselineFeaturizer::RawBits { .. } => record.as_bits().write_f32(out),
            BaselineFeaturizer::RawVec { .. } => out.copy_from_slice(record.as_vec()),
            BaselineFeaturizer::Extracted(fx) => fx.extract(record).write_f32(out),
        }
    }

    pub fn featurize_vec(&self, record: &Record) -> Vec<f32> {
        let mut out = vec![0.0; self.dim()];
        self.featurize(record, &mut out);
        out
    }
}

/// The cached feature vector of a prepared query — the shared per-query
/// state of every featurizer-backed baseline (GBT, DNN, MoE, RMI, DLN).
pub struct PreparedFeatures(pub Vec<f32>);

/// Featurizes `prepared` at most once per (query, owner): the first call
/// caches the vector inside the [`PreparedQuery`], later calls (any θ of a
/// sweep) reuse it. `owner` is the estimator's instance id, so a query
/// prepared under one model is never served another model's features.
pub fn prepared_features(
    featurizer: &BaselineFeaturizer,
    owner: u64,
    prepared: &PreparedQuery,
) -> Arc<PreparedFeatures> {
    prepared.state(owner, || {
        PreparedFeatures(featurizer.featurize_vec(prepared.record()))
    })
}

/// Flat regression dataset: `x = [features ; θ/θ_max]`, `y = cardinality`.
/// The common shape consumed by the GBT and DNN-family baselines.
pub struct RegressionData {
    /// `n × (dim+1)`.
    pub x: Matrix,
    /// `n × 1` raw cardinalities.
    pub y: Matrix,
    pub feat_dim: usize,
    pub theta_max: f64,
}

impl RegressionData {
    /// Flattens a labelled workload into per-(query, θ) training rows.
    pub fn from_workload(
        workload: &Workload,
        featurizer: &BaselineFeaturizer,
        theta_max: f64,
    ) -> Self {
        let dim = featurizer.dim();
        let n = workload.len() * workload.thresholds.len();
        let mut x = Matrix::zeros(n, dim + 1);
        let mut y = Matrix::zeros(n, 1);
        let mut row = 0;
        for lq in &workload.queries {
            let feats = featurizer.featurize_vec(&lq.query);
            for (&theta, &c) in workload.thresholds.iter().zip(&lq.cards) {
                let r = x.row_mut(row);
                r[..dim].copy_from_slice(&feats);
                r[dim] = (theta / theta_max.max(1e-12)) as f32;
                y.set(row, 0, c as f32);
                row += 1;
            }
        }
        RegressionData {
            x,
            y,
            feat_dim: dim,
            theta_max,
        }
    }

    /// One inference row for `(query, θ)`.
    pub fn query_row(
        featurizer: &BaselineFeaturizer,
        query: &Record,
        theta: f64,
        theta_max: f64,
    ) -> Matrix {
        let dim = featurizer.dim();
        let mut x = Matrix::zeros(1, dim + 1);
        featurizer.featurize(query, x.row_mut(0)[..dim].as_mut());
        x.set(0, dim, (theta / theta_max.max(1e-12)) as f32);
        x
    }

    /// One inference row from already-computed features — the per-θ step of
    /// a prepared-query sweep. Identical values to
    /// [`RegressionData::query_row`] on the same record.
    pub fn row_from_features(features: &[f32], theta: f64, theta_max: f64) -> Matrix {
        let dim = features.len();
        let mut x = Matrix::zeros(1, dim + 1);
        x.row_mut(0)[..dim].copy_from_slice(features);
        x.set(0, dim, (theta / theta_max.max(1e-12)) as f32);
        x
    }

    pub fn n_examples(&self) -> usize {
        self.x.rows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardest_data::synth::{default_suite, SynthConfig};

    #[test]
    fn featurizer_matches_paper_encoding_choices() {
        for ds in default_suite(40, 5) {
            let f = BaselineFeaturizer::from_dataset(&ds, 1);
            match ds.kind {
                DistanceKind::Hamming => assert!(matches!(f, BaselineFeaturizer::RawBits { .. })),
                DistanceKind::Euclidean => assert!(matches!(f, BaselineFeaturizer::RawVec { .. })),
                _ => assert!(matches!(f, BaselineFeaturizer::Extracted(_))),
            }
            let v = f.featurize_vec(&ds.records[0]);
            assert_eq!(v.len(), f.dim());
        }
    }

    #[test]
    fn regression_rows_cover_grid() {
        let ds = cardest_data::synth::hm_imagenet(SynthConfig::new(60, 2));
        let wl = Workload::sample_from(&ds, 0.2, 6, 3);
        let f = BaselineFeaturizer::from_dataset(&ds, 1);
        let data = RegressionData::from_workload(&wl, &f, ds.theta_max);
        assert_eq!(data.n_examples(), wl.len() * wl.thresholds.len());
        assert_eq!(data.x.cols(), f.dim() + 1);
        // θ column is normalized into [0, 1].
        for r in 0..data.n_examples() {
            let t = data.x.get(r, f.dim());
            assert!((0.0..=1.0).contains(&t));
        }
    }
}
