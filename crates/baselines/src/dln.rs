//! `DL-DLN`: a monotone deep network standing in for deep lattice networks
//! (You et al.). DESIGN.md §2.4 documents the substitution.
//!
//! Real DLNs stack calibrators and ensembles of interpolated lattices; the
//! defining property for this evaluation is *end-to-end monotonicity in θ*
//! combined with free (unconstrained) processing of the record features.
//! This implementation achieves exactly that with a partially-monotone MLP:
//!
//! * layer 1 splits its weight matrix — feature weights are unconstrained,
//!   the θ column's weights pass through `softplus` (non-negative);
//! * every subsequent layer's weights pass through `softplus` entirely, and
//!   activations are monotone (ReLU);
//! * hence every path from θ to the output has a non-negative product of
//!   weights and the output is non-decreasing in θ (the classic monotone
//!   network construction of Daniels & Velikova, which lattice networks
//!   generalize).

use crate::features::{prepared_features, BaselineFeaturizer, RegressionData};
use cardest_core::{next_instance_id, CardinalityCurve, CardinalityEstimator, PreparedQuery};
use cardest_data::{Record, Workload};
use cardest_nn::{init, loss, Adam, Matrix, Optimizer, ParamId, ParamStore, Tape, Var};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// DLN-substitute hyperparameters.
#[derive(Clone, Debug)]
pub struct DlnOptions {
    pub hidden: Vec<usize>,
    pub epochs: usize,
    pub batch_size: usize,
    pub learning_rate: f32,
    pub seed: u64,
}

impl Default for DlnOptions {
    fn default() -> Self {
        DlnOptions {
            hidden: vec![48, 32],
            epochs: 40,
            batch_size: 64,
            learning_rate: 2e-3,
            seed: 13,
        }
    }
}

struct MonotoneLayer {
    /// Unconstrained weights for the non-monotone inputs (first layer only
    /// has both blocks; later layers treat every input as monotone).
    w_free: Option<ParamId>,
    /// Raw weights for monotone inputs; `softplus` applied at use time.
    w_mono_raw: ParamId,
    b: ParamId,
}

impl MonotoneLayer {
    fn forward(&self, tape: &mut Tape, store: &ParamStore, free: Option<Var>, mono: Var) -> Var {
        let w_mono_raw = tape.param(store, self.w_mono_raw);
        let w_mono = tape.softplus(w_mono_raw);
        let mut h = tape.matmul(mono, w_mono);
        if let (Some(fv), Some(wf)) = (free, self.w_free) {
            let w_free = tape.param(store, wf);
            let hf = tape.matmul(fv, w_free);
            h = tape.add(h, hf);
        }
        let b = tape.param(store, self.b);
        let h = tape.add_row(h, b);
        tape.relu(h)
    }

    fn infer(&self, store: &ParamStore, free: Option<&Matrix>, mono: &Matrix) -> Matrix {
        let w_mono = store.value(self.w_mono_raw).map(softplus);
        let mut h = mono.matmul(&w_mono);
        if let (Some(fm), Some(wf)) = (free, self.w_free) {
            h.axpy(1.0, &fm.matmul(store.value(wf)));
        }
        let b = store.value(self.b);
        for r in 0..h.rows() {
            for (v, &bias) in h.row_mut(r).iter_mut().zip(b.row(0)) {
                *v = (*v + bias).max(0.0);
            }
        }
        h
    }
}

fn softplus(x: f32) -> f32 {
    if x > 20.0 {
        x
    } else {
        x.exp().ln_1p()
    }
}

/// The partially-monotone network.
pub struct DlDln {
    layers: Vec<MonotoneLayer>,
    store: ParamStore,
    featurizer: BaselineFeaturizer,
    theta_max: f64,
    prep_id: u64,
}

impl DlDln {
    pub fn train(
        workload: &Workload,
        featurizer: BaselineFeaturizer,
        theta_max: f64,
        opts: DlnOptions,
    ) -> Self {
        let data = RegressionData::from_workload(workload, &featurizer, theta_max);
        let feat_dim = data.feat_dim;
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let mut store = ParamStore::new();

        let mut layers = Vec::new();
        let mut mono_in = 1usize; // θ column
        let mut free_in = feat_dim;
        let dims: Vec<usize> = opts.hidden.iter().copied().chain([1usize]).collect();
        for (i, &out) in dims.iter().enumerate() {
            let w_free = (free_in > 0).then(|| {
                store.register(
                    format!("dln.{i}.wf"),
                    init::he_normal(&mut rng, free_in, out),
                )
            });
            // Raw weights start slightly negative so softplus yields small
            // positives (≈ gentle initial slopes).
            let raw = init::he_normal(&mut rng, mono_in, out).map(|v| v.abs() * 0.5 - 1.0);
            let w_mono_raw = store.register(format!("dln.{i}.wm"), raw);
            let b = store.register(format!("dln.{i}.b"), Matrix::zeros(1, out));
            layers.push(MonotoneLayer {
                w_free,
                w_mono_raw,
                b,
            });
            // After layer 1 all activations sit on monotone paths.
            mono_in = out;
            free_in = 0;
        }

        let mut opt = Adam::new(opts.learning_rate);
        let n = data.x.rows();
        let bs = opts.batch_size.min(n).max(1);
        let mut order: Vec<usize> = (0..n).collect();
        for _ in 0..opts.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(bs) {
                let xb = data.x.gather_rows(chunk);
                let yb = data.y.gather_rows(chunk);
                let mut tape = Tape::new();
                let xv = tape.input(xb);
                let yv = tape.input(yb);
                let feats = tape.slice_cols(xv, 0, feat_dim);
                let theta = tape.slice_cols(xv, feat_dim, feat_dim + 1);
                let mut h = layers[0].forward(&mut tape, &store, Some(feats), theta);
                for layer in &layers[1..] {
                    h = layer.forward(&mut tape, &store, None, h);
                }
                let l = loss::msle(&mut tape, h, yv);
                tape.backward(l, &mut store);
                store.clip_grad_norm(5.0);
                opt.step(&mut store);
            }
        }
        DlDln {
            layers,
            store,
            featurizer,
            theta_max,
            prep_id: next_instance_id(),
        }
    }

    fn infer(&self, x: &Matrix, feat_dim: usize) -> f64 {
        let feats = x.slice_cols(0, feat_dim);
        let theta = x.slice_cols(feat_dim, feat_dim + 1);
        let mut h = self.layers[0].infer(&self.store, Some(&feats), &theta);
        for layer in &self.layers[1..] {
            h = layer.infer(&self.store, None, &h);
        }
        f64::from(h.get(0, 0))
    }
}

impl CardinalityEstimator for DlDln {
    fn estimate(&self, query: &Record, theta: f64) -> f64 {
        let x = RegressionData::query_row(&self.featurizer, query, theta, self.theta_max);
        self.infer(&x, self.featurizer.dim())
    }

    /// Featurizes once; every θ of a sweep reuses the cached vector.
    fn prepare(&self, query: &Record) -> PreparedQuery {
        let prepared = PreparedQuery::from_record(query.clone());
        let _ = prepared_features(&self.featurizer, self.prep_id, &prepared);
        prepared
    }

    fn curve(&self, prepared: &PreparedQuery, theta: f64) -> CardinalityCurve {
        let feats = prepared_features(&self.featurizer, self.prep_id, prepared);
        let x = RegressionData::row_from_features(&feats.0, theta, self.theta_max);
        CardinalityCurve::point(self.infer(&x, self.featurizer.dim()))
    }

    fn name(&self) -> String {
        "DL-DLN".into()
    }

    fn size_bytes(&self) -> usize {
        self.store.size_bytes()
    }

    fn is_monotonic(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardest_data::metrics;
    use cardest_data::synth::{hm_imagenet, SynthConfig};

    fn trained() -> (DlDln, cardest_data::Dataset, Workload) {
        let ds = hm_imagenet(SynthConfig::new(250, 29));
        let wl = Workload::sample_from(&ds, 0.4, 8, 2);
        let split = wl.split(3);
        let f = BaselineFeaturizer::from_dataset(&ds, 1);
        let opts = DlnOptions {
            epochs: 15,
            ..Default::default()
        };
        (
            DlDln::train(&split.train, f, ds.theta_max, opts),
            ds,
            split.test,
        )
    }

    #[test]
    fn dln_is_monotone_in_theta_for_many_queries() {
        let (dln, ds, _) = trained();
        for qi in (0..250).step_by(23) {
            let q = &ds.records[qi];
            let mut prev = -1.0;
            for i in 0..=40 {
                let theta = ds.theta_max * f64::from(i) / 40.0;
                let c = dln.estimate(q, theta);
                assert!(
                    c >= prev - 1e-6,
                    "query {qi}: estimate dropped at θ={theta}: {c} < {prev}"
                );
                prev = c;
            }
        }
    }

    #[test]
    fn dln_learns_coarsely() {
        let (dln, _, test_wl) = trained();
        let mut actual = Vec::new();
        let mut pred = Vec::new();
        for lq in &test_wl.queries {
            for (&theta, &c) in test_wl.thresholds.iter().zip(&lq.cards) {
                actual.push(f64::from(c));
                pred.push(dln.estimate(&lq.query, theta));
            }
        }
        let msle = metrics::msle(&actual, &pred);
        // The paper reports DLN as the weakest deep model — coarse is
        // expected, catastrophic is not.
        assert!(msle < 12.0, "DLN catastrophically bad: MSLE {msle}");
    }
}
