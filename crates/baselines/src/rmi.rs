//! `DL-RMI`: a two-stage recursive model (Kraska et al.'s recursive-model
//! index, adapted from index lookup to cardinality regression as in the
//! paper's evaluation).
//!
//! Stage 1 predicts the log-cardinality of `[features ; θ]` and routes the
//! example to one of `M` stage-2 experts by quantizing its prediction over
//! the training output range; each expert is then trained only on the
//! examples routed to it. The paper observes RMI is the runner-up to CardNet
//! but "tends to mispredict the cardinalities closest to region boundaries".

use crate::dnn::{fit_msle_mlp, DnnOptions};
use crate::features::{prepared_features, BaselineFeaturizer, RegressionData};
use cardest_core::{next_instance_id, CardinalityCurve, CardinalityEstimator, PreparedQuery};
use cardest_data::{Record, Workload};
use cardest_nn::layers::Mlp;
use cardest_nn::{Matrix, ParamStore};

/// RMI hyperparameters.
#[derive(Clone, Debug)]
pub struct RmiOptions {
    pub n_experts: usize,
    pub stage1_hidden: Vec<usize>,
    pub stage2_hidden: Vec<usize>,
    pub dnn: DnnOptions,
}

impl Default for RmiOptions {
    fn default() -> Self {
        RmiOptions {
            n_experts: 4,
            stage1_hidden: vec![64, 32],
            stage2_hidden: vec![48, 32],
            dnn: DnnOptions::default(),
        }
    }
}

/// The two-stage model.
pub struct DlRmi {
    stage1: (Mlp, ParamStore),
    experts: Vec<(Mlp, ParamStore)>,
    /// Log-cardinality routing range observed on training data.
    route_lo: f64,
    route_hi: f64,
    featurizer: BaselineFeaturizer,
    theta_max: f64,
    prep_id: u64,
}

impl DlRmi {
    pub fn train(
        workload: &Workload,
        featurizer: BaselineFeaturizer,
        theta_max: f64,
        opts: RmiOptions,
    ) -> Self {
        let data = RegressionData::from_workload(workload, &featurizer, theta_max);
        let s1_opts = DnnOptions {
            seed: opts.dnn.seed + 100,
            ..opts.dnn.clone()
        };
        let stage1 = fit_msle_mlp(&data.x, &data.y, &opts.stage1_hidden, &s1_opts, "rmi.s1");

        // Routing range from stage-1 predictions on the training data.
        let mut preds = Vec::with_capacity(data.n_examples());
        for r in 0..data.n_examples() {
            let row = Matrix::from_vec(1, data.x.cols(), data.x.row(r).to_vec());
            let p = f64::from(stage1.0.infer(&stage1.1, &row).get(0, 0));
            preds.push((1.0 + p.max(0.0)).ln());
        }
        let route_lo = preds.iter().copied().fold(f64::INFINITY, f64::min);
        let route_hi = preds
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
            .max(route_lo + 1e-9);

        // Route training rows to experts and fit each on its share.
        let m = opts.n_experts.max(1);
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); m];
        for (r, &p) in preds.iter().enumerate() {
            buckets[route(p, route_lo, route_hi, m)].push(r);
        }
        let experts = buckets
            .into_iter()
            .enumerate()
            .map(|(k, rows)| {
                if rows.is_empty() {
                    // Empty bucket: fall back to a clone of stage 1's data.
                    return fit_msle_mlp(
                        &data.x,
                        &data.y,
                        &opts.stage2_hidden,
                        &DnnOptions {
                            epochs: 2,
                            ..opts.dnn.clone()
                        },
                        &format!("rmi.s2.{k}"),
                    );
                }
                let x = data.x.gather_rows(&rows);
                let y = data.y.gather_rows(&rows);
                let s2_opts = DnnOptions {
                    seed: opts.dnn.seed + 200 + k as u64,
                    ..opts.dnn.clone()
                };
                fit_msle_mlp(
                    &x,
                    &y,
                    &opts.stage2_hidden,
                    &s2_opts,
                    &format!("rmi.s2.{k}"),
                )
            })
            .collect();
        DlRmi {
            stage1,
            experts,
            route_lo,
            route_hi,
            featurizer,
            theta_max,
            prep_id: next_instance_id(),
        }
    }

    fn route_of(&self, x: &Matrix) -> usize {
        let p = f64::from(self.stage1.0.infer(&self.stage1.1, x).get(0, 0));
        route(
            (1.0 + p.max(0.0)).ln(),
            self.route_lo,
            self.route_hi,
            self.experts.len(),
        )
    }
}

fn route(log_pred: f64, lo: f64, hi: f64, m: usize) -> usize {
    let frac = ((log_pred - lo) / (hi - lo)).clamp(0.0, 1.0);
    ((frac * m as f64).floor() as usize).min(m - 1)
}

impl CardinalityEstimator for DlRmi {
    fn estimate(&self, query: &Record, theta: f64) -> f64 {
        let x = RegressionData::query_row(&self.featurizer, query, theta, self.theta_max);
        let (mlp, store) = &self.experts[self.route_of(&x)];
        f64::from(mlp.infer(store, &x).get(0, 0))
    }

    /// Featurizes once; every θ of a sweep reuses the cached vector.
    fn prepare(&self, query: &Record) -> PreparedQuery {
        let prepared = PreparedQuery::from_record(query.clone());
        let _ = prepared_features(&self.featurizer, self.prep_id, &prepared);
        prepared
    }

    fn curve(&self, prepared: &PreparedQuery, theta: f64) -> CardinalityCurve {
        let feats = prepared_features(&self.featurizer, self.prep_id, prepared);
        let x = RegressionData::row_from_features(&feats.0, theta, self.theta_max);
        let (mlp, store) = &self.experts[self.route_of(&x)];
        CardinalityCurve::point(f64::from(mlp.infer(store, &x).get(0, 0)))
    }

    fn name(&self) -> String {
        "DL-RMI".into()
    }

    fn size_bytes(&self) -> usize {
        self.stage1.1.size_bytes()
            + self
                .experts
                .iter()
                .map(|(_, s)| s.size_bytes())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardest_data::metrics;
    use cardest_data::synth::{hm_imagenet, SynthConfig};

    #[test]
    fn rmi_routes_and_learns() {
        let ds = hm_imagenet(SynthConfig::new(250, 23));
        let wl = Workload::sample_from(&ds, 0.4, 8, 2);
        let split = wl.split(3);
        let f = BaselineFeaturizer::from_dataset(&ds, 1);
        let opts = RmiOptions {
            n_experts: 3,
            dnn: DnnOptions {
                epochs: 10,
                ..Default::default()
            },
            ..Default::default()
        };
        let rmi = DlRmi::train(&split.train, f, ds.theta_max, opts);
        assert_eq!(rmi.experts.len(), 3);

        let mut actual = Vec::new();
        let mut pred = Vec::new();
        for lq in &split.test.queries {
            for (&theta, &c) in split.test.thresholds.iter().zip(&lq.cards) {
                actual.push(f64::from(c));
                pred.push(rmi.estimate(&lq.query, theta));
            }
        }
        let msle = metrics::msle(&actual, &pred);
        assert!(msle < 9.0, "RMI failed to learn: MSLE {msle}");
    }

    #[test]
    fn routing_is_exhaustive_and_in_range() {
        for p in [-5.0, 0.0, 2.5, 99.0] {
            let r = route(p, 0.0, 5.0, 4);
            assert!(r < 4);
        }
        assert_eq!(route(0.0, 0.0, 5.0, 4), 0);
        assert_eq!(route(5.0, 0.0, 5.0, 4), 3);
    }
}
