//! `DB-US`: uniform-sampling estimation.
//!
//! Draws a fixed uniform sample `S ⊂ D` once, then estimates
//! `ĉ(x, θ) = |{ s ∈ S : f(x, s) ≤ θ }| · |D| / |S|`. Deterministic w.r.t.
//! the query, so the estimate is monotone in θ. The paper samples 1%; the
//! ratio is a parameter here because our scaled datasets are smaller.
//!
//! Prepared queries cache the per-sample distances (the entire per-query
//! cost) as a sorted key vector, so a τ-sweep pays for the sample scan once
//! and each threshold is a binary search; the curve is the empirical
//! distance ladder.

use cardest_core::{next_instance_id, CardinalityCurve, CardinalityEstimator, PreparedQuery};
use cardest_data::{Dataset, Distance, DistanceKind, Record};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The decision key of `eval_within(q, s, θ)` for one sample: the quantity
/// the within-θ test actually compares. Distances for most kinds; the
/// f64-accumulated *squared* distance for Euclidean, because
/// `euclidean_within` tests `Σd² ≤ θ²` and replicating that comparison (not
/// `√Σd² ≤ θ`) is what keeps cached counting bit-identical to the direct
/// scan even on knife-edge values.
pub(crate) fn decision_key(distance: &Distance, q: &Record, s: &Record) -> f64 {
    match distance.kind {
        DistanceKind::Euclidean => {
            let (a, b) = (q.as_vec(), s.as_vec());
            let mut acc = 0.0f64;
            for (&x, &y) in a.iter().zip(b) {
                let d = f64::from(x) - f64::from(y);
                acc += d * d;
            }
            acc
        }
        _ => distance.eval(q, s),
    }
}

/// The bound a decision key is compared against at threshold θ — mirrors
/// the exact clamping/flooring of [`Distance::eval_within`] per kind.
pub(crate) fn decision_bound(kind: DistanceKind, theta: f64) -> f64 {
    match kind {
        DistanceKind::Hamming => f64::from(theta.floor() as u32),
        DistanceKind::Edit => (theta.floor() as usize) as f64,
        DistanceKind::Jaccard => theta,
        DistanceKind::Euclidean => theta * theta,
    }
}

/// Sorted decision keys — the cached per-query state of the samplers.
pub(crate) struct SampleKeys(pub(crate) Vec<f64>);

impl SampleKeys {
    pub(crate) fn compute<'a>(
        distance: &Distance,
        q: &Record,
        sample: impl Iterator<Item = &'a Record>,
    ) -> SampleKeys {
        let mut keys: Vec<f64> = match distance.kind {
            // Batched word-parallel XOR+popcount: the query's words stay hot
            // across the whole sample scan. Hamming distances are exact
            // integers, so the keys are identical to the per-record
            // `decision_key` path — this is purely a throughput fast path.
            DistanceKind::Hamming => q
                .as_bits()
                .hamming_many(sample.map(Record::as_bits))
                .into_iter()
                .map(f64::from)
                .collect(),
            _ => sample.map(|s| decision_key(distance, q, s)).collect(),
        };
        keys.sort_by(|a, b| a.partial_cmp(b).expect("finite distances"));
        SampleKeys(keys)
    }

    /// `|{ s : f(q, s) ≤ θ }|` — same count as an `eval_within` scan.
    pub(crate) fn count_within(&self, kind: DistanceKind, theta: f64) -> usize {
        let bound = decision_bound(kind, theta);
        self.0.partition_point(|&k| k <= bound)
    }
}

/// Uniform-sampling estimator.
pub struct DbUs {
    sample: Vec<Record>,
    distance: Distance,
    scale: f64,
    prep_id: u64,
}

impl DbUs {
    pub fn build(dataset: &Dataset, ratio: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = ((dataset.len() as f64 * ratio).round() as usize).clamp(1, dataset.len());
        let mut idx: Vec<usize> = (0..dataset.len()).collect();
        idx.shuffle(&mut rng);
        idx.truncate(n);
        let sample = idx
            .into_iter()
            .map(|i| dataset.records[i].clone())
            .collect();
        DbUs {
            sample,
            distance: dataset.distance(),
            scale: dataset.len() as f64 / n as f64,
            prep_id: next_instance_id(),
        }
    }

    pub fn sample_size(&self) -> usize {
        self.sample.len()
    }

    fn keys(&self, prepared: &PreparedQuery) -> std::sync::Arc<SampleKeys> {
        prepared.state(self.prep_id, || {
            SampleKeys::compute(&self.distance, prepared.record(), self.sample.iter())
        })
    }
}

impl CardinalityEstimator for DbUs {
    /// Scalar fast path: one early-exiting `eval_within` scan. Bit-identical
    /// to `curve(…).last()` — the cached keys replicate exactly the
    /// comparisons this scan performs.
    fn estimate(&self, query: &Record, theta: f64) -> f64 {
        let hits = self
            .sample
            .iter()
            .filter(|s| self.distance.eval_within(query, s, theta).is_some())
            .count();
        hits as f64 * self.scale
    }

    /// Caches the per-sample distance keys (the entire per-query cost) so
    /// every threshold of a sweep is a binary search.
    fn prepare(&self, query: &Record) -> PreparedQuery {
        let prepared = PreparedQuery::from_record(query.clone());
        let _ = self.keys(&prepared);
        prepared
    }

    /// The empirical ladder: one step per sample entering the θ-ball, scaled
    /// by `|D|/|S|`. Non-decreasing by construction; the final point equals
    /// `estimate` bit for bit.
    fn curve(&self, prepared: &PreparedQuery, theta: f64) -> CardinalityCurve {
        let keys = self.keys(prepared);
        let m = keys.count_within(self.distance.kind, theta);
        CardinalityCurve::from_values((0..=m).map(|i| i as f64 * self.scale).collect())
    }

    fn name(&self) -> String {
        "DB-US".into()
    }

    fn size_bytes(&self) -> usize {
        // Approximate in-memory footprint of the retained sample.
        self.sample
            .iter()
            .map(|r| match r {
                Record::Bits(b) => b.words().len() * 8,
                Record::Str(s) => s.len(),
                Record::Set(s) => s.len() * 4,
                Record::Vec(v) => v.len() * 4,
            })
            .sum()
    }

    fn is_monotonic(&self) -> bool {
        true // the sample is fixed; hits can only grow with θ
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardest_data::synth::{hm_imagenet, SynthConfig};

    #[test]
    fn full_sample_is_exact() {
        let ds = hm_imagenet(SynthConfig::new(120, 3));
        let est = DbUs::build(&ds, 1.0, 1);
        let q = &ds.records[0];
        for theta in [0.0, 5.0, 12.0] {
            assert_eq!(est.estimate(q, theta), ds.cardinality_scan(q, theta) as f64);
        }
    }

    #[test]
    fn estimates_scale_with_sampling_ratio() {
        let ds = hm_imagenet(SynthConfig::new(400, 4));
        let est = DbUs::build(&ds, 0.25, 2);
        assert_eq!(est.sample_size(), 100);
        let q = &ds.records[0];
        let truth = ds.cardinality_scan(q, 12.0) as f64;
        let approx = est.estimate(q, 12.0);
        assert!(
            (approx - truth).abs() / truth.max(1.0) < 0.8,
            "{approx} vs {truth}"
        );
    }

    #[test]
    fn curve_matches_scan_bitwise_on_every_kind() {
        for ds in cardest_data::synth::default_suite(120, 9) {
            let est = DbUs::build(&ds, 0.4, 7);
            let q = &ds.records[1];
            let prepared = est.prepare(q);
            for i in 0..=10 {
                let theta = ds.theta_max * f64::from(i) / 10.0;
                let curve = est.curve(&prepared, theta);
                assert!(curve.is_non_decreasing(), "{}", ds.name);
                assert_eq!(
                    curve.last().to_bits(),
                    est.estimate(q, theta).to_bits(),
                    "{} θ={theta}",
                    ds.name
                );
            }
        }
    }

    #[test]
    fn monotone_in_theta() {
        let ds = hm_imagenet(SynthConfig::new(150, 5));
        let est = DbUs::build(&ds, 0.3, 3);
        let q = &ds.records[7];
        let mut prev = 0.0;
        for i in 0..=20 {
            let c = est.estimate(q, f64::from(i));
            assert!(c >= prev);
            prev = c;
        }
        assert!(est.is_monotonic());
    }
}
