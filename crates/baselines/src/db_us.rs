//! `DB-US`: uniform-sampling estimation.
//!
//! Draws a fixed uniform sample `S ⊂ D` once, then estimates
//! `ĉ(x, θ) = |{ s ∈ S : f(x, s) ≤ θ }| · |D| / |S|`. Deterministic w.r.t.
//! the query, so the estimate is monotone in θ. The paper samples 1%; the
//! ratio is a parameter here because our scaled datasets are smaller.

use cardest_core::CardinalityEstimator;
use cardest_data::{Dataset, Distance, Record};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Uniform-sampling estimator.
pub struct DbUs {
    sample: Vec<Record>,
    distance: Distance,
    scale: f64,
}

impl DbUs {
    pub fn build(dataset: &Dataset, ratio: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = ((dataset.len() as f64 * ratio).round() as usize).clamp(1, dataset.len());
        let mut idx: Vec<usize> = (0..dataset.len()).collect();
        idx.shuffle(&mut rng);
        idx.truncate(n);
        let sample = idx
            .into_iter()
            .map(|i| dataset.records[i].clone())
            .collect();
        DbUs {
            sample,
            distance: dataset.distance(),
            scale: dataset.len() as f64 / n as f64,
        }
    }

    pub fn sample_size(&self) -> usize {
        self.sample.len()
    }
}

impl CardinalityEstimator for DbUs {
    fn estimate(&self, query: &Record, theta: f64) -> f64 {
        let hits = self
            .sample
            .iter()
            .filter(|s| self.distance.eval_within(query, s, theta).is_some())
            .count();
        hits as f64 * self.scale
    }

    fn name(&self) -> String {
        "DB-US".into()
    }

    fn size_bytes(&self) -> usize {
        // Approximate in-memory footprint of the retained sample.
        self.sample
            .iter()
            .map(|r| match r {
                Record::Bits(b) => b.words().len() * 8,
                Record::Str(s) => s.len(),
                Record::Set(s) => s.len() * 4,
                Record::Vec(v) => v.len() * 4,
            })
            .sum()
    }

    fn is_monotonic(&self) -> bool {
        true // the sample is fixed; hits can only grow with θ
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardest_data::synth::{hm_imagenet, SynthConfig};

    #[test]
    fn full_sample_is_exact() {
        let ds = hm_imagenet(SynthConfig::new(120, 3));
        let est = DbUs::build(&ds, 1.0, 1);
        let q = &ds.records[0];
        for theta in [0.0, 5.0, 12.0] {
            assert_eq!(est.estimate(q, theta), ds.cardinality_scan(q, theta) as f64);
        }
    }

    #[test]
    fn estimates_scale_with_sampling_ratio() {
        let ds = hm_imagenet(SynthConfig::new(400, 4));
        let est = DbUs::build(&ds, 0.25, 2);
        assert_eq!(est.sample_size(), 100);
        let q = &ds.records[0];
        let truth = ds.cardinality_scan(q, 12.0) as f64;
        let approx = est.estimate(q, 12.0);
        assert!(
            (approx - truth).abs() / truth.max(1.0) < 0.8,
            "{approx} vs {truth}"
        );
    }

    #[test]
    fn monotone_in_theta() {
        let ds = hm_imagenet(SynthConfig::new(150, 5));
        let est = DbUs::build(&ds, 0.3, 3);
        let q = &ds.records[7];
        let mut prev = 0.0;
        for i in 0..=20 {
            let c = est.estimate(q, f64::from(i));
            assert!(c >= prev);
            prev = c;
        }
        assert!(est.is_monotonic());
    }
}
