//! `DB-SE`: the specialized (auxiliary-structure) database estimator per
//! distance function (§9.1.2). The paper instantiates a different published
//! structure per domain; DESIGN.md §2.4 records each substitution:
//!
//! * Hamming — a dimension-group histogram with a distance-distribution
//!   convolution, the structure of the GPH histogram estimator \[63\];
//! * Edit / Jaccard — pivot (anchor) distance histograms chosen by
//!   farthest-first traversal, standing in for the q-gram/semi-lattice
//!   structures [36, 46] (same auxiliary-structure behaviour: cheap, coarse,
//!   degrades on large thresholds);
//! * Euclidean — LSH-bucket sampling with local density extrapolation \[76\].

use crate::db_us::SampleKeys;
use cardest_core::{next_instance_id, CardinalityCurve, CardinalityEstimator, PreparedQuery};
use cardest_data::{Dataset, Distance, DistanceKind, Record};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Builds the per-distance specialized estimator.
pub fn build_db_se(dataset: &Dataset, seed: u64) -> Box<dyn CardinalityEstimator> {
    match dataset.kind {
        DistanceKind::Hamming => Box::new(GroupHistogram::build(dataset)),
        DistanceKind::Edit | DistanceKind::Jaccard => {
            Box::new(PivotHistogram::build(dataset, 24, 64, seed))
        }
        DistanceKind::Euclidean => Box::new(LshBucketSampling::build(dataset, seed)),
    }
}

// ---------------------------------------------------------------------------
// Hamming: dimension-group histogram + convolution DP.
// ---------------------------------------------------------------------------

/// Bits are split into groups of ≤ 8; each group keeps exact frequencies of
/// its 2^w patterns. Assuming independence across groups (the histogram
/// assumption of \[63\]), the distribution of the total Hamming distance to a
/// query is the convolution of per-group distance distributions, and
/// `ĉ(x, θ) = |D| · P(dist ≤ θ)`.
pub struct GroupHistogram {
    groups: Vec<Group>,
    n_records: usize,
    dim: usize,
}

struct Group {
    start: usize,
    width: usize,
    /// pattern -> frequency.
    counts: HashMap<u64, u32>,
}

impl GroupHistogram {
    pub fn build(dataset: &Dataset) -> Self {
        let dim = dataset.records.first().map_or(0, |r| r.as_bits().len());
        let width = 8usize;
        let mut groups: Vec<Group> = (0..dim)
            .step_by(width)
            .map(|start| Group {
                start,
                width: width.min(dim - start),
                counts: HashMap::new(),
            })
            .collect();
        for r in &dataset.records {
            let bits = r.as_bits();
            for g in &mut groups {
                *g.counts
                    .entry(bits.extract_word(g.start, g.width))
                    .or_insert(0) += 1;
            }
        }
        GroupHistogram {
            groups,
            n_records: dataset.len(),
            dim,
        }
    }
}

impl GroupHistogram {
    /// The convolution DP: probability mass of total distance exactly `d`
    /// for `d < cap` (everything ≥ cap is irrelevant for `P(dist ≤ θ)`).
    /// Masses below `cap` are independent of `cap` — a larger cap only
    /// appends entries — which is what makes one DP serve a whole curve.
    fn dist_masses(&self, query: &Record, cap: usize) -> Vec<f64> {
        let bits = query.as_bits();
        let mut dp = vec![0.0f64; cap];
        dp[0] = 1.0;
        let n = self.n_records.max(1) as f64;
        for g in &self.groups {
            let qkey = bits.extract_word(g.start, g.width);
            // Per-group distance distribution against the stored patterns.
            let mut gd = vec![0.0f64; g.width + 1];
            for (&pattern, &count) in &g.counts {
                gd[(pattern ^ qkey).count_ones() as usize] += f64::from(count) / n;
            }
            let mut next = vec![0.0f64; cap];
            for (d, &p) in dp.iter().enumerate() {
                if p == 0.0 {
                    continue;
                }
                for (gd_d, &gp) in gd.iter().enumerate() {
                    if d + gd_d < cap {
                        next[d + gd_d] += p * gp;
                    }
                }
            }
            dp = next;
        }
        dp
    }
}

impl CardinalityEstimator for GroupHistogram {
    fn estimate(&self, query: &Record, theta: f64) -> f64 {
        let cap = self.threshold_step(theta) + 1;
        let dp = self.dist_masses(query, cap);
        self.n_records as f64 * dp.iter().sum::<f64>()
    }

    /// One convolution DP answers every integer threshold up to θ: step `t`
    /// of the curve is `|D| · P(dist ≤ t)`, the exact left-to-right partial
    /// sums `estimate` would compute at θ = t.
    fn curve(&self, prepared: &PreparedQuery, theta: f64) -> CardinalityCurve {
        let cap = self.threshold_step(theta) + 1;
        let dp = self.dist_masses(prepared.record(), cap);
        let n = self.n_records as f64;
        let mut acc = 0.0f64;
        CardinalityCurve::from_values(
            dp.iter()
                .map(|&p| {
                    acc += p;
                    n * acc
                })
                .collect(),
        )
    }

    fn threshold_step(&self, theta: f64) -> usize {
        (theta.floor().max(0.0) as usize).min(self.dim)
    }

    fn name(&self) -> String {
        "DB-SE".into()
    }

    fn size_bytes(&self) -> usize {
        self.groups.iter().map(|g| g.counts.len() * 12).sum()
    }

    fn is_monotonic(&self) -> bool {
        true // P(dist ≤ θ) is a CDF
    }
}

// ---------------------------------------------------------------------------
// Edit / Jaccard: pivot distance histograms.
// ---------------------------------------------------------------------------

/// Farthest-first pivots; each pivot stores a histogram of distances from the
/// pivot to every record. A query is answered from its nearest pivot's
/// histogram, shifted by the query–pivot distance (triangle inequality
/// heuristics: records within θ of the query lie within `d(q, p) + θ` of the
/// pivot; the histogram mass in `[0, θ]` after centering approximates the
/// ball size).
pub struct PivotHistogram {
    pivots: Vec<Record>,
    /// `hist[p][b]` = number of records in distance bucket `b` of pivot `p`.
    hist: Vec<Vec<u32>>,
    bucket_width: f64,
    distance: Distance,
    prep_id: u64,
}

/// Cached per-query state: the nearest pivot and the query–pivot distance —
/// the entire per-query cost of this estimator.
struct PivotPrepared {
    pivot: usize,
    dq: f64,
}

impl PivotHistogram {
    pub fn build(dataset: &Dataset, n_pivots: usize, buckets: usize, seed: u64) -> Self {
        let distance = dataset.distance();
        let mut rng = StdRng::seed_from_u64(seed);
        let first = rng.gen_range(0..dataset.len());
        let mut pivot_ids = vec![first];
        let mut nearest: Vec<f64> = dataset
            .records
            .iter()
            .map(|r| distance.eval(&dataset.records[first], r))
            .collect();
        while pivot_ids.len() < n_pivots.min(dataset.len()) {
            let (next, _) = nearest
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                .expect("non-empty");
            pivot_ids.push(next);
            for (i, r) in dataset.records.iter().enumerate() {
                let d = distance.eval(&dataset.records[next], r);
                if d < nearest[i] {
                    nearest[i] = d;
                }
            }
        }
        // Bucket width spans the observed distance range.
        let max_seen = dataset
            .records
            .iter()
            .map(|r| distance.eval(&dataset.records[pivot_ids[0]], r))
            .fold(0.0f64, f64::max)
            .max(dataset.theta_max);
        let bucket_width = (max_seen / buckets as f64).max(1e-9);
        let pivots: Vec<Record> = pivot_ids
            .iter()
            .map(|&i| dataset.records[i].clone())
            .collect();
        let mut hist = vec![vec![0u32; buckets + 1]; pivots.len()];
        for r in &dataset.records {
            for (p, pivot) in pivots.iter().enumerate() {
                let d = distance.eval(pivot, r);
                let b = ((d / bucket_width).floor() as usize).min(buckets);
                hist[p][b] += 1;
            }
        }
        PivotHistogram {
            pivots,
            hist,
            bucket_width,
            distance,
            prep_id: next_instance_id(),
        }
    }

    /// Nearest pivot and its distance to the query — the expensive part.
    fn nearest_pivot(&self, query: &Record) -> PivotPrepared {
        let (pivot, dq) = self
            .pivots
            .iter()
            .enumerate()
            .map(|(i, pv)| (i, self.distance.eval(pv, query)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("at least one pivot");
        PivotPrepared { pivot, dq }
    }

    /// Records within θ of q lie within [max(0, dq − θ), dq + θ] of the
    /// pivot; scale that band's mass by the fraction a θ-ball occupies of
    /// the band (a ring-intersection heuristic — coarse, as DB-SE is).
    fn band_estimate(&self, state: &PivotPrepared, theta: f64) -> f64 {
        let (p, dq) = (state.pivot, state.dq);
        let lo = (dq - theta).max(0.0);
        let hi = dq + theta;
        let b_lo = (lo / self.bucket_width).floor() as usize;
        let b_hi = ((hi / self.bucket_width).floor() as usize).min(self.hist[p].len() - 1);
        let band: f64 = self.hist[p][b_lo..=b_hi]
            .iter()
            .map(|&c| f64::from(c))
            .sum();
        let band_width = (hi - lo).max(self.bucket_width);
        let fraction = (2.0 * theta / band_width).clamp(0.0, 1.0);
        // Guarantee monotone growth: the band plus fraction both widen with θ.
        band * fraction
    }
}

impl CardinalityEstimator for PivotHistogram {
    fn estimate(&self, query: &Record, theta: f64) -> f64 {
        self.band_estimate(&self.nearest_pivot(query), theta)
    }

    /// Caches the nearest-pivot scan so a sweep touches the pivots once.
    fn prepare(&self, query: &Record) -> PreparedQuery {
        let prepared = PreparedQuery::from_record(query.clone());
        let _ = prepared.state(self.prep_id, || self.nearest_pivot(prepared.record()));
        prepared
    }

    fn curve(&self, prepared: &PreparedQuery, theta: f64) -> CardinalityCurve {
        let state = prepared.state(self.prep_id, || self.nearest_pivot(prepared.record()));
        CardinalityCurve::point(self.band_estimate(&state, theta))
    }

    fn name(&self) -> String {
        "DB-SE".into()
    }

    fn size_bytes(&self) -> usize {
        self.hist.iter().map(|h| h.len() * 4).sum::<usize>()
            + self
                .pivots
                .iter()
                .map(|r| match r {
                    Record::Bits(b) => b.words().len() * 8,
                    Record::Str(s) => s.len(),
                    Record::Set(s) => s.len() * 4,
                    Record::Vec(v) => v.len() * 4,
                })
                .sum::<usize>()
    }

    fn is_monotonic(&self) -> bool {
        true
    }
}

// ---------------------------------------------------------------------------
// Euclidean: LSH-bucket sampling (local density estimation, [76]).
// ---------------------------------------------------------------------------

/// Records are hashed into LSH buckets (p-stable projections); a query
/// estimates local density from the *records co-located in its bucket(s)*:
/// the fraction of co-located records within θ, extrapolated by the bucket's
/// share of the dataset.
pub struct LshBucketSampling {
    /// One table: concatenated hash key -> record ids (capped per bucket).
    table: HashMap<u64, Vec<u32>>,
    projections: Vec<Vec<f32>>,
    offsets: Vec<f32>,
    r: f64,
    records: Vec<Record>,
    distance: Distance,
    n_records: usize,
    /// Global fallback sample for queries hashing to empty buckets.
    fallback: Vec<u32>,
    prep_id: u64,
}

/// Cached per-query state: the chosen bucket's size and the sorted decision
/// keys of its members — the entire per-query cost of the LSH estimator.
struct LshPrepared {
    bucket_len: usize,
    keys: SampleKeys,
}

impl LshBucketSampling {
    pub fn build(dataset: &Dataset, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let dim = dataset.records.first().map_or(1, |r| r.as_vec().len());
        let n_hashes = 4;
        let r = dataset.theta_max.max(1e-6) * 2.0;
        let normal = |rng: &mut StdRng| -> f64 {
            let u1: f64 = 1.0 - rng.gen::<f64>();
            let u2: f64 = rng.gen();
            (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
        };
        let projections: Vec<Vec<f32>> = (0..n_hashes)
            .map(|_| (0..dim).map(|_| normal(&mut rng) as f32).collect())
            .collect();
        let offsets: Vec<f32> = (0..n_hashes)
            .map(|_| rng.gen_range(0.0..r) as f32)
            .collect();
        let mut me = LshBucketSampling {
            table: HashMap::new(),
            projections,
            offsets,
            r,
            records: dataset.records.clone(),
            distance: dataset.distance(),
            n_records: dataset.len(),
            fallback: Vec::new(),
            prep_id: next_instance_id(),
        };
        let cap = 64usize; // per-bucket sample cap keeps estimation O(1)-ish
        for (id, rec) in dataset.records.iter().enumerate() {
            let key = me.key_of(rec.as_vec());
            let bucket = me.table.entry(key).or_default();
            if bucket.len() < cap {
                bucket.push(id as u32);
            }
        }
        let step = (dataset.len() / 128).max(1);
        me.fallback = (0..dataset.len()).step_by(step).map(|i| i as u32).collect();
        me
    }

    fn lsh_state(&self, prepared: &PreparedQuery) -> std::sync::Arc<LshPrepared> {
        prepared.state(self.prep_id, || {
            let bucket = self.bucket_of(prepared.record());
            LshPrepared {
                bucket_len: bucket.len(),
                keys: SampleKeys::compute(
                    &self.distance,
                    prepared.record(),
                    bucket.iter().map(|&id| &self.records[id as usize]),
                ),
            }
        })
    }

    fn key_of(&self, x: &[f32]) -> u64 {
        let mut key = 0u64;
        for (proj, &off) in self.projections.iter().zip(&self.offsets) {
            let dot: f64 = proj
                .iter()
                .zip(x)
                .map(|(&a, &v)| f64::from(a) * f64::from(v))
                .sum::<f64>();
            let h = ((dot + f64::from(off)) / self.r).floor() as i64;
            key = key.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (h as u64);
        }
        key
    }

    /// The bucket the query's neighbourhood is sampled from.
    fn bucket_of(&self, query: &Record) -> &[u32] {
        let key = self.key_of(query.as_vec());
        self.table
            .get(&key)
            .filter(|b| b.len() >= 4)
            .unwrap_or(&self.fallback)
    }

    /// Local density extrapolation for `hits` of `bucket_len` co-located
    /// records within θ: scale by dataset-to-sample ratio.
    fn extrapolate(&self, hits: usize, bucket_len: usize) -> f64 {
        hits as f64 * self.n_records as f64 / bucket_len.max(1) as f64
            * (bucket_len as f64 / self.n_records as f64).max(1.0 / 64.0)
    }
}

impl CardinalityEstimator for LshBucketSampling {
    fn estimate(&self, query: &Record, theta: f64) -> f64 {
        let bucket = self.bucket_of(query);
        if bucket.is_empty() {
            return 0.0;
        }
        let hits = bucket
            .iter()
            .filter(|&&id| {
                self.distance
                    .eval_within(query, &self.records[id as usize], theta)
                    .is_some()
            })
            .count();
        self.extrapolate(hits, bucket.len())
    }

    /// Caches the bucket lookup and its members' distance keys so a sweep
    /// hashes and scans the bucket once.
    fn prepare(&self, query: &Record) -> PreparedQuery {
        let prepared = PreparedQuery::from_record(query.clone());
        let _ = self.lsh_state(&prepared);
        prepared
    }

    /// The bucket's empirical ladder under the density extrapolation — one
    /// step per co-located record entering the θ-ball.
    fn curve(&self, prepared: &PreparedQuery, theta: f64) -> CardinalityCurve {
        let state = self.lsh_state(prepared);
        if state.bucket_len == 0 {
            return CardinalityCurve::point(0.0);
        }
        let m = state.keys.count_within(self.distance.kind, theta);
        CardinalityCurve::from_values(
            (0..=m)
                .map(|i| self.extrapolate(i, state.bucket_len))
                .collect(),
        )
    }

    fn name(&self) -> String {
        "DB-SE".into()
    }

    fn size_bytes(&self) -> usize {
        self.table.values().map(|b| b.len() * 4 + 8).sum::<usize>()
            + self.projections.iter().map(|p| p.len() * 4).sum::<usize>()
    }

    fn is_monotonic(&self) -> bool {
        true // fixed bucket sample; hits grow with θ
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardest_data::metrics;
    use cardest_data::synth::{default_suite, hm_imagenet, SynthConfig};

    #[test]
    fn db_se_builds_for_every_kind_and_is_monotone() {
        for ds in default_suite(100, 11) {
            let est = build_db_se(&ds, 3);
            let q = &ds.records[0];
            let mut prev = -1.0;
            for i in 0..=10 {
                let theta = ds.theta_max * f64::from(i) / 10.0;
                let c = est.estimate(q, theta);
                assert!(c.is_finite() && c >= 0.0, "{}: bad estimate {c}", ds.name);
                assert!(c >= prev - 1e-9, "{}: non-monotone at θ={theta}", ds.name);
                prev = c;
            }
            assert!(est.size_bytes() > 0);
        }
    }

    #[test]
    fn group_histogram_is_reasonable_on_hamming() {
        let ds = hm_imagenet(SynthConfig::new(500, 12));
        let est = GroupHistogram::build(&ds);
        let mut actual = Vec::new();
        let mut pred = Vec::new();
        for qi in (0..500).step_by(61) {
            let q = &ds.records[qi];
            actual.push(ds.cardinality_scan(q, 12.0) as f64);
            pred.push(est.estimate(q, 12.0));
        }
        let q_err = metrics::mean_q_error(&actual, &pred);
        // Coarse is fine (it is DB-SE's weakness), wild is not.
        assert!(q_err < 50.0, "group histogram way off: {q_err}");
    }

    #[test]
    fn group_histogram_full_threshold_counts_everything() {
        let ds = hm_imagenet(SynthConfig::new(200, 13));
        let est = GroupHistogram::build(&ds);
        let c = est.estimate(&ds.records[0], 64.0);
        assert!((c - 200.0).abs() < 1.0, "P(dist ≤ 64) must be ~1: {c}");
    }
}
