//! `TL-KDE`: kernel-density cardinality estimation (Heimel et al. / Mattig
//! et al. style), fed with original records.
//!
//! A fixed uniform sample `S` acts as kernel centers; the estimate integrates
//! a Gaussian kernel over the distance axis:
//! `ĉ(x, θ) = |D|/|S| · Σ_{s∈S} Φ((θ − f(x, s)) / h)`,
//! with `Φ` the standard normal CDF and `h` a Scott's-rule bandwidth fitted
//! on sampled pairwise distances. Monotone in θ because `Φ` is increasing
//! and the sample is fixed.

use cardest_core::{next_instance_id, CardinalityCurve, CardinalityEstimator, PreparedQuery};
use cardest_data::{Dataset, Distance, Record};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Gaussian-kernel density estimator over distances.
pub struct TlKde {
    sample: Vec<Record>,
    distance: Distance,
    scale: f64,
    bandwidth: f64,
    prep_id: u64,
}

/// Cached per-query state: distances to every kernel center, **in sample
/// order** — the curve folds them in exactly the order `estimate` does, so
/// the floating-point sum is bit-identical.
struct KdePrepared {
    dists: Vec<f64>,
}

fn norm_cdf(x: f64) -> f64 {
    // Abramowitz–Stegun erf approximation (same accuracy class as fx::pstable).
    let z = x / std::f64::consts::SQRT_2;
    let sign = if z < 0.0 { -1.0 } else { 1.0 };
    let z = z.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * z);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-z * z).exp();
    0.5 * (1.0 + sign * y)
}

impl TlKde {
    pub fn build(dataset: &Dataset, ratio: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = ((dataset.len() as f64 * ratio).round() as usize).clamp(2, dataset.len());
        let mut idx: Vec<usize> = (0..dataset.len()).collect();
        idx.shuffle(&mut rng);
        idx.truncate(n);
        let sample: Vec<Record> = idx.iter().map(|&i| dataset.records[i].clone()).collect();
        let distance = dataset.distance();

        // Scott's rule on a sampled distance distribution:
        // h = σ · m^(−1/5), with σ the std of pairwise sample distances.
        let mut dists = Vec::new();
        for i in 0..sample.len().min(64) {
            for j in (i + 1)..sample.len().min(64) {
                dists.push(distance.eval(&sample[i], &sample[j]));
            }
        }
        let mean = dists.iter().sum::<f64>() / dists.len().max(1) as f64;
        let var =
            dists.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / dists.len().max(1) as f64;
        let bandwidth = (var.sqrt() * (n as f64).powf(-0.2)).max(dataset.theta_max / 100.0);

        TlKde {
            sample,
            distance,
            scale: dataset.len() as f64 / n as f64,
            bandwidth,
            prep_id: next_instance_id(),
        }
    }

    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    fn dists(&self, prepared: &PreparedQuery) -> std::sync::Arc<KdePrepared> {
        prepared.state(self.prep_id, || KdePrepared {
            dists: self
                .sample
                .iter()
                .map(|s| self.distance.eval(prepared.record(), s))
                .collect(),
        })
    }
}

impl CardinalityEstimator for TlKde {
    fn estimate(&self, query: &Record, theta: f64) -> f64 {
        let total: f64 = self
            .sample
            .iter()
            .map(|s| norm_cdf((theta - self.distance.eval(query, s)) / self.bandwidth))
            .sum();
        total * self.scale
    }

    /// Caches the distances to every kernel center — the per-query cost —
    /// so each threshold of a sweep only re-evaluates the cheap CDF terms.
    fn prepare(&self, query: &Record) -> PreparedQuery {
        let prepared = PreparedQuery::from_record(query.clone());
        let _ = self.dists(&prepared);
        prepared
    }

    fn curve(&self, prepared: &PreparedQuery, theta: f64) -> CardinalityCurve {
        let state = self.dists(prepared);
        let total: f64 = state
            .dists
            .iter()
            .map(|&d| norm_cdf((theta - d) / self.bandwidth))
            .sum();
        CardinalityCurve::point(total * self.scale)
    }

    fn name(&self) -> String {
        "TL-KDE".into()
    }

    fn size_bytes(&self) -> usize {
        self.sample
            .iter()
            .map(|r| match r {
                Record::Bits(b) => b.words().len() * 8,
                Record::Str(s) => s.len(),
                Record::Set(s) => s.len() * 4,
                Record::Vec(v) => v.len() * 4,
            })
            .sum::<usize>()
            + 8
    }

    fn is_monotonic(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardest_data::metrics;
    use cardest_data::synth::{hm_imagenet, SynthConfig};

    #[test]
    fn kde_is_monotone_in_theta() {
        let ds = hm_imagenet(SynthConfig::new(150, 1));
        let est = TlKde::build(&ds, 0.3, 2);
        let q = &ds.records[0];
        let mut prev = 0.0;
        for i in 0..=20 {
            let c = est.estimate(q, f64::from(i));
            assert!(c >= prev - 1e-9);
            prev = c;
        }
    }

    #[test]
    fn kde_is_in_the_right_ballpark() {
        let ds = hm_imagenet(SynthConfig::new(300, 2));
        let est = TlKde::build(&ds, 0.5, 3);
        let mut actual = Vec::new();
        let mut predicted = Vec::new();
        for qi in (0..300).step_by(37) {
            let q = &ds.records[qi];
            actual.push(ds.cardinality_scan(q, 12.0) as f64);
            predicted.push(est.estimate(q, 12.0));
        }
        let q_err = metrics::mean_q_error(&actual, &predicted);
        assert!(q_err < 5.0, "KDE badly off: mean q-error {q_err}");
    }

    #[test]
    fn prepared_curve_matches_estimate_bitwise() {
        let ds = hm_imagenet(SynthConfig::new(100, 5));
        let est = TlKde::build(&ds, 0.3, 6);
        let q = &ds.records[2];
        let prepared = est.prepare(q);
        for i in 0..=8 {
            let theta = ds.theta_max * f64::from(i) / 8.0;
            assert_eq!(
                est.curve(&prepared, theta).last().to_bits(),
                est.estimate(q, theta).to_bits()
            );
        }
    }

    #[test]
    fn bandwidth_is_positive() {
        let ds = hm_imagenet(SynthConfig::new(80, 3));
        let est = TlKde::build(&ds, 0.4, 4);
        assert!(est.bandwidth() > 0.0);
    }
}
