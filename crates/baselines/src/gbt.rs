//! `TL-XGB` / `TL-LGBM`: gradient-boosted regression trees, from scratch.
//!
//! The two libraries the paper uses differ chiefly in how trees grow:
//! XGBoost expands level by level (depth-wise) while LightGBM always splits
//! the leaf with the best gain (leaf-wise / best-first). Both policies are
//! implemented here over the same histogram-split CART core, regressing
//! `ln(1 + c)` on `[features ; θ]` with squared loss (so each boosting round
//! fits residuals).
//!
//! The θ feature carries a monotone constraint, XGBoost-style: splits on θ
//! whose left child would out-predict the right are rejected, and child
//! value bounds propagate down the tree — this is what makes the paper's
//! TL-XGB/TL-LGBM monotonic rows monotone.

use crate::features::{prepared_features, BaselineFeaturizer, RegressionData};
use cardest_core::{next_instance_id, CardinalityCurve, CardinalityEstimator, PreparedQuery};
use cardest_data::{Record, Workload};
use cardest_nn::Matrix;

/// Tree-growth policy: the XGBoost/LightGBM distinction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GrowthPolicy {
    /// Level-by-level to `max_depth` (XGBoost flavour).
    DepthWise,
    /// Best-gain-first to `max_leaves` (LightGBM flavour).
    LeafWise,
}

/// GBT hyperparameters.
#[derive(Clone, Debug)]
pub struct GbtOptions {
    pub n_trees: usize,
    pub max_depth: usize,
    pub max_leaves: usize,
    pub learning_rate: f64,
    pub min_samples_leaf: usize,
    /// Histogram bins per feature.
    pub n_bins: usize,
    pub policy: GrowthPolicy,
}

impl Default for GbtOptions {
    fn default() -> Self {
        GbtOptions {
            n_trees: 24,
            max_depth: 6,
            max_leaves: 31,
            learning_rate: 0.3,
            min_samples_leaf: 4,
            n_bins: 32,
            policy: GrowthPolicy::DepthWise,
        }
    }
}

#[derive(Clone, Debug)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f32,
        left: usize,
        right: usize,
    },
}

#[derive(Clone, Debug)]
struct Tree {
    nodes: Vec<Node>,
}

impl Tree {
    fn predict(&self, x: &[f32]) -> f64 {
        let mut at = 0usize;
        loop {
            match &self.nodes[at] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    at = if x[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

/// A candidate split under evaluation.
struct SplitCandidate {
    gain: f64,
    feature: usize,
    threshold: f32,
    left_value: f64,
    right_value: f64,
    left_rows: Vec<u32>,
    right_rows: Vec<u32>,
}

/// A leaf awaiting expansion during tree growth.
struct OpenLeaf {
    node: usize,
    rows: Vec<u32>,
    depth: usize,
    /// Monotone bounds inherited from θ-splits above.
    lo: f64,
    hi: f64,
}

/// The gradient-boosted ensemble.
pub struct TlGbt {
    trees: Vec<Tree>,
    base: f64,
    options: GbtOptions,
    featurizer: BaselineFeaturizer,
    theta_max: f64,
    prep_id: u64,
}

impl TlGbt {
    /// Trains on a labelled workload.
    pub fn train(
        workload: &Workload,
        featurizer: BaselineFeaturizer,
        theta_max: f64,
        options: GbtOptions,
    ) -> Self {
        let data = RegressionData::from_workload(workload, &featurizer, theta_max);
        let n = data.n_examples();
        let theta_feature = data.feat_dim;
        // Log-space targets tame the output range, as the paper's MSLE does.
        let targets: Vec<f64> = (0..n)
            .map(|r| f64::from(1.0 + data.y.get(r, 0)).ln())
            .collect();
        let base = targets.iter().sum::<f64>() / n.max(1) as f64;
        let mut preds = vec![base; n];
        let mut trees = Vec::with_capacity(options.n_trees);
        for _ in 0..options.n_trees {
            let residuals: Vec<f64> = targets.iter().zip(&preds).map(|(&t, &p)| t - p).collect();
            let tree = grow_tree(&data.x, &residuals, &options, theta_feature);
            for (r, p) in preds.iter_mut().enumerate() {
                *p += options.learning_rate * tree.predict(data.x.row(r));
            }
            trees.push(tree);
        }
        TlGbt {
            trees,
            base,
            options,
            featurizer,
            theta_max,
            prep_id: next_instance_id(),
        }
    }

    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    fn predict_row(&self, x: &[f32]) -> f64 {
        let log = self.base
            + self
                .trees
                .iter()
                .map(|t| self.options.learning_rate * t.predict(x))
                .sum::<f64>();
        (log.exp() - 1.0).max(0.0)
    }
}

impl CardinalityEstimator for TlGbt {
    fn estimate(&self, query: &Record, theta: f64) -> f64 {
        let x = RegressionData::query_row(&self.featurizer, query, theta, self.theta_max);
        self.predict_row(x.row(0))
    }

    /// Featurizes once; every θ of a sweep reuses the cached vector.
    fn prepare(&self, query: &Record) -> PreparedQuery {
        let prepared = PreparedQuery::from_record(query.clone());
        let _ = prepared_features(&self.featurizer, self.prep_id, &prepared);
        prepared
    }

    fn curve(&self, prepared: &PreparedQuery, theta: f64) -> CardinalityCurve {
        let feats = prepared_features(&self.featurizer, self.prep_id, prepared);
        let x = RegressionData::row_from_features(&feats.0, theta, self.theta_max);
        CardinalityCurve::point(self.predict_row(x.row(0)))
    }

    fn name(&self) -> String {
        match self.options.policy {
            GrowthPolicy::DepthWise => "TL-XGB".into(),
            GrowthPolicy::LeafWise => "TL-LGBM".into(),
        }
    }

    fn size_bytes(&self) -> usize {
        // feature(4) + threshold(4) + children(8) or value(8) per node.
        self.trees.iter().map(|t| t.nodes.len() * 16).sum()
    }

    fn is_monotonic(&self) -> bool {
        true // θ-splits are constrained; other features ignore θ
    }
}

/// Grows a single regression tree on the residuals.
fn grow_tree(x: &Matrix, residuals: &[f64], options: &GbtOptions, theta_feature: usize) -> Tree {
    let n = x.rows();
    let all_rows: Vec<u32> = (0..n as u32).collect();
    let root_value = mean(residuals, &all_rows);
    let mut tree = Tree {
        nodes: vec![Node::Leaf { value: root_value }],
    };
    let mut open = vec![OpenLeaf {
        node: 0,
        rows: all_rows,
        depth: 0,
        lo: f64::NEG_INFINITY,
        hi: f64::INFINITY,
    }];
    let mut n_leaves = 1usize;

    while let Some(leaf_idx) = pick_leaf(&mut open, &tree, x, residuals, options, theta_feature) {
        let leaf = open.swap_remove(leaf_idx);
        let Some(split) = best_split(x, residuals, &leaf, options, theta_feature) else {
            continue;
        };
        let (lv, rv) = clamp_children(split.left_value, split.right_value, leaf.lo, leaf.hi);
        let left = tree.nodes.len();
        tree.nodes.push(Node::Leaf { value: lv });
        let right = tree.nodes.len();
        tree.nodes.push(Node::Leaf { value: rv });
        tree.nodes[leaf.node] = Node::Split {
            feature: split.feature,
            threshold: split.threshold,
            left,
            right,
        };
        n_leaves += 1;
        if n_leaves >= options.max_leaves {
            break;
        }
        // Monotone bound propagation: under a θ-split, the left subtree may
        // not exceed the split midpoint and the right may not fall below it.
        let (l_lo, l_hi, r_lo, r_hi) = if split.feature == theta_feature {
            let mid = (lv + rv) / 2.0;
            (leaf.lo, mid.min(leaf.hi), mid.max(leaf.lo), leaf.hi)
        } else {
            (leaf.lo, leaf.hi, leaf.lo, leaf.hi)
        };
        if leaf.depth + 1 < options.max_depth {
            open.push(OpenLeaf {
                node: left,
                rows: split.left_rows,
                depth: leaf.depth + 1,
                lo: l_lo,
                hi: l_hi,
            });
            open.push(OpenLeaf {
                node: right,
                rows: split.right_rows,
                depth: leaf.depth + 1,
                lo: r_lo,
                hi: r_hi,
            });
        }
    }
    tree
}

/// Depth-wise: FIFO (level order). Leaf-wise: the open leaf with the best
/// achievable gain.
fn pick_leaf(
    open: &mut [OpenLeaf],
    _tree: &Tree,
    x: &Matrix,
    residuals: &[f64],
    options: &GbtOptions,
    theta_feature: usize,
) -> Option<usize> {
    if open.is_empty() {
        return None;
    }
    match options.policy {
        GrowthPolicy::DepthWise => Some(0),
        GrowthPolicy::LeafWise => {
            let mut best: Option<(usize, f64)> = None;
            for (i, leaf) in open.iter().enumerate() {
                let gain = best_split(x, residuals, leaf, options, theta_feature)
                    .map_or(f64::NEG_INFINITY, |s| s.gain);
                if best.is_none_or(|(_, g)| gain > g) {
                    best = Some((i, gain));
                }
            }
            best.and_then(|(i, g)| (g > f64::NEG_INFINITY).then_some(i))
        }
    }
}

fn mean(residuals: &[f64], rows: &[u32]) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    rows.iter().map(|&r| residuals[r as usize]).sum::<f64>() / rows.len() as f64
}

/// Histogram split search over all features; returns the best variance-
/// reduction split honoring the θ monotone constraint.
fn best_split(
    x: &Matrix,
    residuals: &[f64],
    leaf: &OpenLeaf,
    options: &GbtOptions,
    theta_feature: usize,
) -> Option<SplitCandidate> {
    let rows = &leaf.rows;
    if rows.len() < 2 * options.min_samples_leaf {
        return None;
    }
    let total_sum: f64 = rows.iter().map(|&r| residuals[r as usize]).sum();
    let n = rows.len() as f64;
    let mut best: Option<SplitCandidate> = None;

    for feature in 0..x.cols() {
        // Histogram bounds for this feature over the leaf's rows.
        let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
        for &r in rows {
            let v = x.get(r as usize, feature);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if lo >= hi {
            continue; // constant feature in this leaf
        }
        let n_bins = options.n_bins;
        let width = (hi - lo) / n_bins as f32;
        let mut bin_sum = vec![0.0f64; n_bins];
        let mut bin_count = vec![0u32; n_bins];
        for &r in rows {
            let v = x.get(r as usize, feature);
            let b = (((v - lo) / width) as usize).min(n_bins - 1);
            bin_sum[b] += residuals[r as usize];
            bin_count[b] += 1;
        }
        let mut left_sum = 0.0f64;
        let mut left_count = 0u32;
        for b in 0..n_bins - 1 {
            left_sum += bin_sum[b];
            left_count += bin_count[b];
            let right_count = rows.len() as u32 - left_count;
            if (left_count as usize) < options.min_samples_leaf
                || (right_count as usize) < options.min_samples_leaf
            {
                continue;
            }
            let right_sum = total_sum - left_sum;
            let lv = left_sum / f64::from(left_count);
            let rv = right_sum / f64::from(right_count);
            if feature == theta_feature && lv > rv {
                continue; // monotone constraint: higher θ must not predict less
            }
            // Variance-reduction gain (squared loss): Σl²/nl + Σr²/nr − Σ²/n.
            let gain = left_sum * left_sum / f64::from(left_count)
                + right_sum * right_sum / f64::from(right_count)
                - total_sum * total_sum / n;
            if best.as_ref().is_none_or(|b| gain > b.gain) && gain > 1e-12 {
                let threshold = lo + width * (b + 1) as f32;
                let (mut lrows, mut rrows) = (Vec::new(), Vec::new());
                for &r in rows {
                    if x.get(r as usize, feature) <= threshold {
                        lrows.push(r);
                    } else {
                        rrows.push(r);
                    }
                }
                best = Some(SplitCandidate {
                    gain,
                    feature,
                    threshold,
                    left_value: lv,
                    right_value: rv,
                    left_rows: lrows,
                    right_rows: rrows,
                });
            }
        }
    }
    best
}

/// Clamps child predictions into the leaf's inherited monotone bounds.
fn clamp_children(lv: f64, rv: f64, lo: f64, hi: f64) -> (f64, f64) {
    (lv.clamp(lo, hi), rv.clamp(lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardest_data::metrics;
    use cardest_data::synth::{hm_imagenet, SynthConfig};

    fn setup() -> (cardest_data::Dataset, Workload, Workload) {
        let ds = hm_imagenet(SynthConfig::new(400, 7));
        let wl = Workload::sample_from(&ds, 0.3, 10, 2);
        let split = wl.split(3);
        (ds, split.train, split.test)
    }

    fn train(policy: GrowthPolicy) -> (TlGbt, cardest_data::Dataset, Workload) {
        let (ds, train_wl, test_wl) = setup();
        let f = BaselineFeaturizer::from_dataset(&ds, 1);
        let opts = GbtOptions {
            policy,
            n_trees: 16,
            ..Default::default()
        };
        (TlGbt::train(&train_wl, f, ds.theta_max, opts), ds, test_wl)
    }

    #[test]
    fn gbt_beats_constant_prediction() {
        for policy in [GrowthPolicy::DepthWise, GrowthPolicy::LeafWise] {
            let (gbt, _, test_wl) = train(policy);
            let mut actual = Vec::new();
            let mut pred = Vec::new();
            let mut mean_pred = Vec::new();
            let mean_card: f64 = test_wl.triples().map(|(_, _, c)| f64::from(c)).sum::<f64>()
                / (test_wl.len() * test_wl.thresholds.len()) as f64;
            for lq in &test_wl.queries {
                for (&theta, &c) in test_wl.thresholds.iter().zip(&lq.cards) {
                    actual.push(f64::from(c));
                    pred.push(gbt.estimate(&lq.query, theta));
                    mean_pred.push(mean_card);
                }
            }
            let gbt_msle = metrics::msle(&actual, &pred);
            let const_msle = metrics::msle(&actual, &mean_pred);
            assert!(
                gbt_msle < const_msle,
                "{policy:?}: GBT ({gbt_msle:.3}) no better than constant ({const_msle:.3})"
            );
        }
    }

    #[test]
    fn gbt_is_monotone_in_theta() {
        for policy in [GrowthPolicy::DepthWise, GrowthPolicy::LeafWise] {
            let (gbt, ds, _) = train(policy);
            for qi in [0usize, 50, 150] {
                let q = &ds.records[qi];
                let mut prev = -1.0;
                for i in 0..=20 {
                    let c = gbt.estimate(q, f64::from(i));
                    assert!(
                        c >= prev - 1e-9,
                        "{policy:?} query {qi}: estimate dropped at θ={i}: {c} < {prev}"
                    );
                    prev = c;
                }
            }
        }
    }

    #[test]
    fn names_match_policies() {
        let (xgb, _, _) = train(GrowthPolicy::DepthWise);
        let (lgbm, _, _) = train(GrowthPolicy::LeafWise);
        assert_eq!(xgb.name(), "TL-XGB");
        assert_eq!(lgbm.name(), "TL-LGBM");
        assert!(xgb.size_bytes() > 0);
        assert!(xgb.n_trees() == 16);
    }
}
