//! `DL-MoE`: a (sparsely-)gated mixture-of-experts regressor in the style of
//! Shazeer et al., adapted for cardinality estimation as in the paper.
//!
//! A gating network produces a softmax over `K` expert MLPs; the estimate is
//! the gate-weighted sum of expert outputs, trained end-to-end with MSLE.

use crate::features::{prepared_features, BaselineFeaturizer, RegressionData};
use cardest_core::{next_instance_id, CardinalityCurve, CardinalityEstimator, PreparedQuery};
use cardest_data::{Record, Workload};
use cardest_nn::layers::{Activation, Mlp};
use cardest_nn::{loss, Adam, Matrix, Optimizer, ParamStore, Tape, Var};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// MoE hyperparameters.
#[derive(Clone, Debug)]
pub struct MoeOptions {
    pub n_experts: usize,
    pub expert_hidden: Vec<usize>,
    pub gate_hidden: Vec<usize>,
    pub epochs: usize,
    pub batch_size: usize,
    pub learning_rate: f32,
    pub seed: u64,
}

impl Default for MoeOptions {
    fn default() -> Self {
        MoeOptions {
            n_experts: 4,
            expert_hidden: vec![64, 32],
            gate_hidden: vec![32],
            epochs: 40,
            batch_size: 64,
            learning_rate: 2e-3,
            seed: 11,
        }
    }
}

/// The gated mixture.
pub struct DlMoe {
    experts: Vec<Mlp>,
    gate: Mlp,
    store: ParamStore,
    featurizer: BaselineFeaturizer,
    theta_max: f64,
    prep_id: u64,
}

impl DlMoe {
    pub fn train(
        workload: &Workload,
        featurizer: BaselineFeaturizer,
        theta_max: f64,
        opts: MoeOptions,
    ) -> Self {
        let data = RegressionData::from_workload(workload, &featurizer, theta_max);
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let mut store = ParamStore::new();
        let experts: Vec<Mlp> = (0..opts.n_experts)
            .map(|k| {
                Mlp::new(
                    &mut store,
                    &mut rng,
                    &format!("moe.expert{k}"),
                    data.x.cols(),
                    &opts.expert_hidden,
                    1,
                    Activation::Relu,
                    Activation::Relu,
                )
            })
            .collect();
        let gate = Mlp::new(
            &mut store,
            &mut rng,
            "moe.gate",
            data.x.cols(),
            &opts.gate_hidden,
            opts.n_experts,
            Activation::Relu,
            Activation::None, // logits; softmax applied on the tape
        );

        let mut opt = Adam::new(opts.learning_rate);
        let n = data.x.rows();
        let bs = opts.batch_size.min(n).max(1);
        let mut order: Vec<usize> = (0..n).collect();
        for _ in 0..opts.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(bs) {
                let xb = data.x.gather_rows(chunk);
                let yb = data.y.gather_rows(chunk);
                let mut tape = Tape::new();
                let xv = tape.input(xb);
                let yv = tape.input(yb);
                let pred = Self::forward(&experts, &gate, &mut tape, &store, xv);
                let l = loss::msle(&mut tape, pred, yv);
                tape.backward(l, &mut store);
                store.clip_grad_norm(5.0);
                opt.step(&mut store);
            }
        }
        DlMoe {
            experts,
            gate,
            store,
            featurizer,
            theta_max,
            prep_id: next_instance_id(),
        }
    }

    /// Mixture forward pass: `Σ_k softmax(G(x))_k · E_k(x)`.
    fn forward(experts: &[Mlp], gate: &Mlp, tape: &mut Tape, store: &ParamStore, x: Var) -> Var {
        let logits = gate.forward(tape, store, x);
        let exp = tape.exp(logits);
        let denom = tape.row_sums(exp);
        let inv = tape.recip(denom);
        let gates = tape.mul_col(exp, inv); // n × K softmax
        let outs: Vec<Var> = experts.iter().map(|e| e.forward(tape, store, x)).collect();
        let stacked = tape.hconcat(&outs); // n × K
        let mixed = tape.mul(stacked, gates);
        tape.row_sums(mixed) // n × 1
    }

    fn infer(&self, x: &Matrix) -> f64 {
        let logits = self.gate.infer(&self.store, x);
        let row = logits.row(0);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = row.iter().map(|&v| (v - max).exp()).collect();
        let denom: f32 = exps.iter().sum();
        let mut total = 0.0f64;
        for (k, expert) in self.experts.iter().enumerate() {
            let w = f64::from(exps[k] / denom);
            if w < 1e-6 {
                continue; // sparse gating: skip negligible experts
            }
            total += w * f64::from(expert.infer(&self.store, x).get(0, 0));
        }
        total
    }
}

impl CardinalityEstimator for DlMoe {
    fn estimate(&self, query: &Record, theta: f64) -> f64 {
        let x = RegressionData::query_row(&self.featurizer, query, theta, self.theta_max);
        self.infer(&x)
    }

    /// Featurizes once; every θ of a sweep reuses the cached vector.
    fn prepare(&self, query: &Record) -> PreparedQuery {
        let prepared = PreparedQuery::from_record(query.clone());
        let _ = prepared_features(&self.featurizer, self.prep_id, &prepared);
        prepared
    }

    fn curve(&self, prepared: &PreparedQuery, theta: f64) -> CardinalityCurve {
        let feats = prepared_features(&self.featurizer, self.prep_id, prepared);
        let x = RegressionData::row_from_features(&feats.0, theta, self.theta_max);
        CardinalityCurve::point(self.infer(&x))
    }

    fn name(&self) -> String {
        "DL-MoE".into()
    }

    fn size_bytes(&self) -> usize {
        self.store.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardest_data::metrics;
    use cardest_data::synth::{hm_imagenet, SynthConfig};

    #[test]
    fn moe_learns_and_mixes() {
        let ds = hm_imagenet(SynthConfig::new(250, 19));
        let wl = Workload::sample_from(&ds, 0.4, 8, 2);
        let split = wl.split(3);
        let f = BaselineFeaturizer::from_dataset(&ds, 1);
        let opts = MoeOptions {
            epochs: 15,
            n_experts: 3,
            ..Default::default()
        };
        let moe = DlMoe::train(&split.train, f, ds.theta_max, opts);

        let mut actual = Vec::new();
        let mut pred = Vec::new();
        for lq in &split.test.queries {
            for (&theta, &c) in split.test.thresholds.iter().zip(&lq.cards) {
                actual.push(f64::from(c));
                pred.push(moe.estimate(&lq.query, theta));
            }
        }
        let msle = metrics::msle(&actual, &pred);
        assert!(msle < 9.0, "MoE failed to learn: MSLE {msle}");
        assert!(moe.size_bytes() > 0);
        assert_eq!(moe.name(), "DL-MoE");
    }

    #[test]
    fn gating_weights_are_a_distribution() {
        let ds = hm_imagenet(SynthConfig::new(100, 20));
        let wl = Workload::sample_from(&ds, 0.3, 6, 2);
        let f = BaselineFeaturizer::from_dataset(&ds, 1);
        let opts = MoeOptions {
            epochs: 3,
            n_experts: 4,
            ..Default::default()
        };
        let moe = DlMoe::train(&wl, f, ds.theta_max, opts);
        let x = RegressionData::query_row(&moe.featurizer, &ds.records[0], 5.0, ds.theta_max);
        let logits = moe.gate.infer(&moe.store, &x);
        let row = logits.row(0);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = row.iter().map(|&v| (v - max).exp()).collect();
        let denom: f32 = exps.iter().sum();
        let total: f32 = exps.iter().map(|e| e / denom).sum();
        assert!((total - 1.0).abs() < 1e-5);
    }
}
