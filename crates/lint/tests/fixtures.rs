//! Per-rule fixture tests: each `fixtures/<case>` directory is a
//! micro-workspace (`crates/app/src/...`) linted with the same canonical
//! [`Config::workspace`] CI uses, through both the library API and the
//! installed binary (`--deny` must exit nonzero on every seeded violation).

use std::path::PathBuf;
use std::process::Command;

use cardest_lint::{run, Config, Report, Rule};

fn fixture_root(case: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(case)
}

fn lint_fixture(case: &str) -> Report {
    let root = fixture_root(case);
    assert!(root.is_dir(), "missing fixture {case}");
    run(&Config::workspace(&root)).expect("fixture lints")
}

fn rules_of(report: &Report) -> Vec<Rule> {
    report.findings.iter().map(|f| f.rule).collect()
}

#[track_caller]
fn assert_clean(case: &str) {
    let report = lint_fixture(case);
    assert!(
        report.is_clean(),
        "expected {case} to be clean, got:\n{}",
        report
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

// ── Tokenizer resilience ─────────────────────────────────────────────────

#[test]
fn tokenizer_tricky_cases_produce_no_findings() {
    assert_clean("tokenizer");
}

// ── Rule 1: unsafe-safety-comment ────────────────────────────────────────

#[test]
fn unsafe_without_justification_is_flagged() {
    let report = lint_fixture("unsafe_bad");
    let rules = rules_of(&report);
    assert_eq!(rules.len(), 2, "{:?}", report.findings);
    assert!(rules.iter().all(|r| *r == Rule::UnsafeSafety));
}

#[test]
fn unsafe_justification_forms_are_accepted() {
    assert_clean("unsafe_ok");
}

// ── Rule 2: no-panic-on-hostile-input ────────────────────────────────────

#[test]
fn panicking_constructs_on_hostile_path_are_flagged() {
    let report = lint_fixture("panic_bad");
    let rules = rules_of(&report);
    assert_eq!(rules.len(), 4, "{:?}", report.findings);
    assert!(rules.iter().all(|r| *r == Rule::NoPanicHostile));
    let messages: String = report
        .findings
        .iter()
        .map(|f| f.message.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(messages.contains("`.unwrap()`"));
    assert!(messages.contains("`.expect()`"));
    assert!(messages.contains("`panic!`"));
    assert!(messages.contains("indexing"));
}

#[test]
fn typed_errors_checked_access_and_tests_are_exempt() {
    assert_clean("panic_ok");
}

// ── Rule 3: atomics-ordering-audit ───────────────────────────────────────

#[test]
fn undocumented_ordering_hazards_are_flagged() {
    let report = lint_fixture("atomics_bad");
    let rules = rules_of(&report);
    assert_eq!(rules.len(), 3, "{:?}", report.findings);
    assert!(rules.iter().all(|r| *r == Rule::AtomicsOrdering));
}

#[test]
fn documented_conventions_are_accepted() {
    assert_clean("atomics_ok");
}

// ── Rule 4: no-alloc-in-hot-path ─────────────────────────────────────────

#[test]
fn allocations_in_marked_functions_are_flagged() {
    let report = lint_fixture("hotpath_bad");
    let rules = rules_of(&report);
    assert_eq!(rules.len(), 3, "{:?}", report.findings);
    assert!(rules.iter().all(|r| *r == Rule::NoAllocHotPath));
    assert!(report
        .findings
        .iter()
        .any(|f| f.message.contains("not attached")));
}

#[test]
fn alloc_free_marked_functions_pass() {
    assert_clean("hotpath_ok");
}

// ── Rule 5: wire-kind-coverage ───────────────────────────────────────────

#[test]
fn uncovered_wire_variant_is_flagged() {
    let report = lint_fixture("wire_bad");
    let rules = rules_of(&report);
    assert_eq!(rules.len(), 1, "{:?}", report.findings);
    assert_eq!(rules.first().copied().unwrap(), Rule::WireKindCoverage);
    assert!(report.findings.first().unwrap().message.contains("Gamma"));
}

#[test]
fn fully_covered_wire_enum_passes() {
    assert_clean("wire_ok");
}

// ── Rule 6: lock-order (cross-file) ──────────────────────────────────────

#[test]
fn two_lock_cycle_reports_one_finding_with_both_witnesses() {
    let report = lint_fixture("lockorder_bad");
    let rules = rules_of(&report);
    assert_eq!(rules.len(), 1, "{:?}", report.findings);
    assert_eq!(rules.first().copied().unwrap(), Rule::LockOrder);
    let message = &report.findings.first().unwrap().message;
    assert!(
        message.contains("(in `fwd`)") && message.contains("(in `rev`)"),
        "a cycle must cite both witness paths: {message}"
    );
    assert!(
        !report.lock_graph.cycles.is_empty(),
        "the JSON lock graph must record the cycle"
    );
}

#[test]
fn consistent_order_with_call_expansion_edge_is_clean() {
    let report = lint_fixture("lockorder_ok");
    assert!(report.is_clean(), "{:?}", report.findings);
    assert!(
        report
            .lock_graph
            .edges
            .iter()
            .any(|e| e.from == "app::State.conns" && e.to == "app::State.stats"),
        "holding `conns` across a call to `inner` (which takes `stats`) must \
         produce the expanded edge: {:?}",
        report.lock_graph.edges
    );
    assert!(report.lock_graph.cycles.is_empty());
}

// ── Rule 7: relaxed-counter-drift ────────────────────────────────────────

#[test]
fn adhoc_load_of_surfaced_counter_is_flagged() {
    let report = lint_fixture("counterdrift_bad");
    let rules = rules_of(&report);
    assert_eq!(rules.len(), 1, "{:?}", report.findings);
    assert_eq!(rules.first().copied().unwrap(), Rule::CounterDrift);
    assert!(report
        .findings
        .first()
        .unwrap()
        .message
        .contains("`requests`"));
}

#[test]
fn sanctioned_readers_and_eponymous_getter_pass() {
    assert_clean("counterdrift_ok");
}

// ── Rule 8: instant-outside-span ─────────────────────────────────────────

#[test]
fn bare_instant_in_observed_scope_is_flagged() {
    let report = lint_fixture("instant_bad");
    let rules = rules_of(&report);
    assert_eq!(rules.len(), 1, "{:?}", report.findings);
    assert_eq!(rules.first().copied().unwrap(), Rule::InstantSpan);
}

#[test]
fn span_idiom_timing_comment_and_tests_pass() {
    assert_clean("instant_ok");
}

// ── Rule 9: wire-error-exhaustiveness ────────────────────────────────────

#[test]
fn unmapped_and_untested_wire_error_variant_is_flagged_twice() {
    let report = lint_fixture("wireerr_bad");
    let rules = rules_of(&report);
    assert_eq!(rules.len(), 2, "{:?}", report.findings);
    assert!(rules.iter().all(|r| *r == Rule::WireErrorExhaustive));
    let messages: String = report
        .findings
        .iter()
        .map(|f| f.message.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(messages.contains("never mapped"));
    assert!(messages.contains("never constructed in tests"));
    assert!(messages.contains("BadMagic"));
}

#[test]
fn fully_mapped_and_tested_wire_error_enum_passes() {
    assert_clean("wireerr_ok");
}

// ── Rule 10: hostile-length-taint ────────────────────────────────────────

#[test]
fn unclamped_wire_lengths_reaching_sinks_are_flagged() {
    let report = lint_fixture("taint_bad");
    let rules = rules_of(&report);
    assert_eq!(rules.len(), 2, "{:?}", report.findings);
    assert!(rules.iter().all(|r| *r == Rule::HostileLengthTaint));
    // Both flows ride in the inventory, marked unsanitized.
    assert_eq!(report.inventory.taint_flows.len(), 2);
    assert!(report.inventory.taint_flows.iter().all(|t| !t.sanitized));
}

#[test]
fn clamped_wire_lengths_pass_and_flows_are_still_recorded() {
    let report = lint_fixture("taint_ok");
    assert!(report.is_clean(), "{:?}", report.findings);
    assert_eq!(report.inventory.taint_flows.len(), 3);
    assert!(report.inventory.taint_flows.iter().all(|t| t.sanitized));
}

// ── Rule 11: guard-held-across-blocking ──────────────────────────────────

#[test]
fn guard_held_across_recv_is_flagged() {
    let report = lint_fixture("guardblock_bad");
    let rules = rules_of(&report);
    assert_eq!(rules.len(), 1, "{:?}", report.findings);
    assert_eq!(rules.first().copied().unwrap(), Rule::GuardBlocking);
    assert!(report
        .findings
        .first()
        .unwrap()
        .message
        .contains("channel recv"));
}

#[test]
fn scoped_guards_nonblocking_polls_and_justified_holds_pass() {
    assert_clean("guardblock_ok");
}

// ── Rule 12: channel-capacity-audit ──────────────────────────────────────

#[test]
fn unjustified_channels_are_flagged_per_boundedness_class() {
    let report = lint_fixture("chancap_bad");
    let rules = rules_of(&report);
    assert_eq!(rules.len(), 3, "{:?}", report.findings);
    assert!(rules.iter().all(|r| *r == Rule::ChannelCapacity));
    let kinds: Vec<&str> = report.inventory.channels.iter().map(|c| c.kind).collect();
    for kind in ["unbounded", "rendezvous", "bounded"] {
        assert!(kinds.contains(&kind), "missing {kind} in {kinds:?}");
    }
}

#[test]
fn justified_and_test_channels_pass_but_are_inventoried() {
    let report = lint_fixture("chancap_ok");
    assert!(report.is_clean(), "{:?}", report.findings);
    let channels = &report.inventory.channels;
    assert_eq!(channels.len(), 3, "{channels:?}");
    assert!(
        channels.iter().any(|c| c.test && !c.justified),
        "the test-code channel must be listed (exempt, not hidden): {channels:?}"
    );
}

// ── Suppression hygiene ──────────────────────────────────────────────────

#[test]
fn reasonless_or_unknown_suppressions_are_flagged() {
    let report = lint_fixture("suppress_bad");
    let rules = rules_of(&report);
    assert_eq!(rules.len(), 2, "{:?}", report.findings);
    assert!(rules.iter().all(|r| *r == Rule::Suppression));
    let messages: String = report
        .findings
        .iter()
        .map(|f| f.message.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(messages.contains("must state a reason"));
    assert!(messages.contains("unknown rule"));
}

// ── The binary gate: `--deny` exits nonzero on every seeded violation ────

/// One seeded-violation fixture per rule. [`fixture_suite_covers_every_rule`]
/// fails the build if a rule is added to [`Rule::ALL`] without a fixture
/// riding here, so this list cannot silently fall behind the registry.
const BAD_CASES: &[(&str, Rule)] = &[
    ("unsafe_bad", Rule::UnsafeSafety),
    ("panic_bad", Rule::NoPanicHostile),
    ("atomics_bad", Rule::AtomicsOrdering),
    ("hotpath_bad", Rule::NoAllocHotPath),
    ("wire_bad", Rule::WireKindCoverage),
    ("suppress_bad", Rule::Suppression),
    ("lockorder_bad", Rule::LockOrder),
    ("counterdrift_bad", Rule::CounterDrift),
    ("instant_bad", Rule::InstantSpan),
    ("wireerr_bad", Rule::WireErrorExhaustive),
    ("taint_bad", Rule::HostileLengthTaint),
    ("guardblock_bad", Rule::GuardBlocking),
    ("chancap_bad", Rule::ChannelCapacity),
];

#[test]
fn fixture_suite_covers_every_rule() {
    for rule in Rule::ALL {
        assert!(
            BAD_CASES.iter().any(|(_, r)| *r == rule),
            "rule `{}` has no seeded-violation fixture in BAD_CASES — add a \
             `fixtures/<case>` micro-workspace for it",
            rule.name()
        );
    }
}

#[test]
fn deny_gate_exits_nonzero_on_each_bad_fixture() {
    for &(case, rule) in BAD_CASES {
        let out = Command::new(env!("CARGO_BIN_EXE_cardest-lint"))
            .arg("--deny")
            .arg(fixture_root(case))
            .output()
            .expect("spawn cardest-lint");
        assert!(
            !out.status.success(),
            "--deny must fail on {case}: {}",
            String::from_utf8_lossy(&out.stdout)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains(&format!("[{}]", rule.name())),
            "{case} output should cite {}: {stdout}",
            rule.name()
        );
    }
}

#[test]
fn deny_gate_passes_on_good_fixtures() {
    for case in [
        "tokenizer",
        "unsafe_ok",
        "panic_ok",
        "atomics_ok",
        "hotpath_ok",
        "wire_ok",
        "lockorder_ok",
        "counterdrift_ok",
        "instant_ok",
        "wireerr_ok",
        "taint_ok",
        "guardblock_ok",
        "chancap_ok",
    ] {
        let out = Command::new(env!("CARGO_BIN_EXE_cardest-lint"))
            .arg("--deny")
            .arg(fixture_root(case))
            .output()
            .expect("spawn cardest-lint");
        assert!(
            out.status.success(),
            "--deny must pass on {case}: {}",
            String::from_utf8_lossy(&out.stdout)
        );
    }
}
