//! The linter's reason to exist: the real tree must lint clean, through the
//! library and through the CI-facing binary (including the JSON report).

use std::path::PathBuf;
use std::process::Command;

use cardest_lint::{run, Config};

fn workspace_root() -> PathBuf {
    // crates/lint -> crates -> workspace root
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("lint crate lives two levels under the workspace root")
        .to_path_buf()
}

#[test]
fn real_tree_lints_clean() {
    let report = run(&Config::workspace(&workspace_root())).expect("tree lints");
    assert!(
        report.is_clean(),
        "workspace has lint findings:\n{}",
        report
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Sanity that the walk actually saw the tree, not an empty directory.
    assert!(report.files_scanned > 50, "{} files", report.files_scanned);
    // The audit inventory must surface the known surfaces: the SIMD kernels'
    // unsafe sites and the lock-free counters' explicit orderings.
    assert!(report
        .inventory
        .unsafe_sites
        .iter()
        .any(|s| s.file.ends_with("crates/nn/src/kernels.rs")));
    assert!(!report.inventory.atomics.is_empty());
    // The cross-file pass must discover the serving stack's locks and prove
    // the acquisition graph acyclic.
    let graph = &report.lock_graph;
    assert!(
        graph
            .locks
            .iter()
            .any(|l| l.id == "serve::EstimateCache.shards"),
        "lock graph should name the cache shards: {:?}",
        graph.locks
    );
    assert!(graph.cycles.is_empty(), "{:?}", graph.cycles);
    assert_eq!(
        graph.order.len(),
        graph.locks.len(),
        "the topological order must cover every lock"
    );
    // Schema-3 inventories: the serving stack's queue topology is fully
    // justified, and every wire-length dataflow the taint pass traced was
    // sanitized before its sink (otherwise the tree would not lint clean).
    let channels = &report.inventory.channels;
    assert!(!channels.is_empty(), "no channels inventoried");
    assert!(
        channels.iter().all(|c| c.test || c.justified),
        "unjustified production channel in inventory: {channels:?}"
    );
    let flows = &report.inventory.taint_flows;
    assert!(!flows.is_empty(), "no taint flows traced in wire.rs");
    assert!(
        flows.iter().all(|t| t.sanitized),
        "unsanitized flow: {flows:?}"
    );
}

#[test]
fn deny_gate_passes_on_real_tree() {
    let out = Command::new(env!("CARGO_BIN_EXE_cardest-lint"))
        .arg("--deny")
        .arg(workspace_root())
        .output()
        .expect("spawn cardest-lint");
    assert!(
        out.status.success(),
        "cardest-lint --deny failed on the tree:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn json_report_has_findings_and_inventory() {
    let out = Command::new(env!("CARGO_BIN_EXE_cardest-lint"))
        .arg("--json")
        .arg(workspace_root())
        .output()
        .expect("spawn cardest-lint");
    assert!(out.status.success());
    let js = String::from_utf8_lossy(&out.stdout);
    assert!(js.starts_with('{') && js.trim_end().ends_with('}'));
    assert!(js.contains("\"schema\":3"));
    assert!(js.contains("\"findings\":[]"));
    assert!(js.contains("\"inventory\":"));
    assert!(js.contains("\"unsafe\":[{"));
    assert!(js.contains("\"atomics\":[{"));
    assert!(js.contains("\"files_scanned\":"));
    // Schema 3: the channel topology and every traced wire-length dataflow
    // ride in the inventory. The real tree has unbounded channels (all
    // justified) and sanitized taint flows (the clamps the taint rule
    // verifies), so both arrays are non-empty here.
    assert!(js.contains("\"channels\":[{"));
    assert!(js.contains("\"kind\":\"unbounded\""));
    assert!(js.contains("\"taint_flows\":[{"));
    assert!(js.contains("\"sanitized\":true"));
    // The lock graph rides in the inventory: non-empty locks and order on
    // the real tree, and no cycles.
    assert!(js.contains("\"lock_graph\":"));
    assert!(js.contains("\"locks\":[{"));
    assert!(js.contains("\"order\":[\""));
    assert!(js.contains("\"cycles\":[]"));
}
