//! Drive the mutation self-test end-to-end against the real tree: seed one
//! violation per rule per target crate into an in-memory copy and require
//! a 100 % kill rate, through the library and through the CI-facing binary.

use std::path::PathBuf;
use std::process::Command;

use cardest_lint::mutate::{run_mutations, MutantStatus, TARGET_CRATES};
use cardest_lint::{Config, Rule};

fn workspace_root() -> PathBuf {
    // crates/lint -> crates -> workspace root
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("lint crate lives two levels under the workspace root")
        .to_path_buf()
}

#[test]
fn every_seeded_mutant_is_killed() {
    let matrix = run_mutations(&Config::workspace(&workspace_root())).expect("harness runs");
    assert!(
        matrix.all_killed(),
        "surviving mutants:\n{}",
        matrix
            .survivors()
            .iter()
            .map(|s| format!("  {} in {} ({})", s.rule.name(), s.krate, s.file))
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The matrix is complete: one cell per rule per target crate, and every
    // cell is either a kill or an explicit n/a (rule scope excludes the
    // crate) — nothing silently skipped.
    assert_eq!(matrix.outcomes.len(), Rule::ALL.len() * TARGET_CRATES.len());
    for o in &matrix.outcomes {
        match o.status {
            MutantStatus::Killed => assert!(o.findings > 0, "kill with zero findings: {o:?}"),
            MutantStatus::NotApplicable => {
                assert_eq!(o.rule, Rule::InstantSpan, "unexpected n/a cell: {o:?}")
            }
            MutantStatus::Survived => unreachable!("covered by all_killed above"),
        }
    }
}

#[test]
fn mutate_gate_passes_and_emits_the_matrix() {
    let out = Command::new(env!("CARGO_BIN_EXE_cardest-lint"))
        .arg("--mutate")
        .arg("--json")
        .arg(workspace_root())
        .output()
        .expect("spawn cardest-lint --mutate");
    assert!(
        out.status.success(),
        "cardest-lint --mutate failed:\n{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let js = String::from_utf8_lossy(&out.stdout);
    assert!(js.starts_with('{') && js.trim_end().ends_with('}'));
    assert!(js.contains("\"kill_rate\":1.0"), "{js}");
    assert!(js.contains("\"status\":\"killed\""));
    assert!(!js.contains("\"status\":\"survived\""));
    for rule in Rule::ALL {
        assert!(
            js.contains(&format!("\"rule\":\"{}\"", rule.name())),
            "matrix is missing rule {}",
            rule.name()
        );
    }
}
