//! Mutation self-test: prove the linter catches what it claims.
//!
//! "The tree lints clean" is a weak statement on its own — a rule with a
//! silent matching bug lints clean too. This harness turns the claim into a
//! measurement: for every rule × every target crate it seeds **one**
//! representative violation into an in-memory copy of the real tree (drop a
//! SAFETY comment, remove a length clamp, swap two lock acquisitions,
//! un-justify a channel), reruns the full analysis, and records whether the
//! rule *killed* the mutant — i.e. produced a finding of that rule in the
//! mutated file. CI runs `cardest-lint --mutate` and fails below a 100 %
//! kill rate, then uploads the matrix as `lint-mutation-matrix.json`.
//!
//! Mutants never touch disk and never need to compile: the linter operates
//! on masked token streams, so an injected `pub unsafe fn` referencing
//! nothing is as good a probe as a real one. In-place mutations (the nn
//! SAFETY drop, the serve clamp removal) rewrite existing lines so the
//! harness also exercises each rule's justification-recognition path, not
//! just its match path.

use std::io;

use crate::rules::Rule;
use crate::{run_sources, scan_set, Config, SourceFile};

/// Crates the harness seeds violations into: the serving layer (the attack
/// surface), observability (shared concurrent state), the metrics core, and
/// the SIMD kernel crate (the unsafe surface).
pub const TARGET_CRATES: &[&str] = &["serve", "obs", "core", "nn"];

/// How one mutant rewrites the in-memory tree.
enum Mutation {
    /// Add a new source file at `rel`.
    AddFile { rel: String, content: String },
    /// Append source text to the existing file at `rel`.
    Append { rel: String, content: String },
    /// Replace the first occurrence of `find` in `rel` with `replace`.
    Replace {
        rel: String,
        find: String,
        replace: String,
    },
}

impl Mutation {
    /// The file the seeded violation lives in (where the kill must land).
    fn primary(&self) -> &str {
        match self {
            Mutation::AddFile { rel, .. }
            | Mutation::Append { rel, .. }
            | Mutation::Replace { rel, .. } => rel,
        }
    }

    /// Apply to a copy of the baseline. Errors if the target file or text
    /// is missing — a harness bug, not a surviving mutant, so it is loud.
    fn apply(&self, baseline: &[SourceFile]) -> io::Result<Vec<SourceFile>> {
        let mut out = baseline.to_vec();
        match self {
            Mutation::AddFile { rel, content } => {
                if out.iter().any(|f| &f.rel == rel) {
                    return Err(other(format!("mutant file `{rel}` already exists")));
                }
                out.push(SourceFile::from_source(rel, content));
            }
            Mutation::Append { rel, content } => {
                let f = find_mut(&mut out, rel)?;
                let mut text = f.raw.join("\n");
                text.push('\n');
                text.push_str(content);
                *f = SourceFile::from_source(rel, &text);
            }
            Mutation::Replace { rel, find, replace } => {
                let f = find_mut(&mut out, rel)?;
                let text = f.raw.join("\n");
                if !text.contains(find.as_str()) {
                    return Err(other(format!(
                        "mutation target `{find}` not found in `{rel}`"
                    )));
                }
                let text = text.replacen(find.as_str(), replace, 1);
                *f = SourceFile::from_source(rel, &text);
            }
        }
        Ok(out)
    }
}

fn find_mut<'a>(sources: &'a mut [SourceFile], rel: &str) -> io::Result<&'a mut SourceFile> {
    sources
        .iter_mut()
        .find(|f| f.rel == rel)
        .ok_or_else(|| other(format!("mutation target file `{rel}` not in scan set")))
}

fn other(msg: String) -> io::Error {
    io::Error::other(msg)
}

/// The seeded violation for `rule` in `krate`, or `None` where the rule
/// cannot apply (its scope excludes the crate by construction).
fn mutant_for(rule: Rule, krate: &str) -> Option<Mutation> {
    let src = |name: &str| format!("crates/{krate}/src/{name}");
    match rule {
        Rule::UnsafeSafety => Some(if krate == "nn" {
            // Drop a real SAFETY comment off a real unsafe SIMD dispatch.
            Mutation::Replace {
                rel: src("kernels.rs"),
                find: "// SAFETY: simd_level() observed AVX-512F".to_string(),
                replace: "// NB: simd_level() observed AVX-512F".to_string(),
            }
        } else {
            Mutation::AddFile {
                rel: src("injected_unsafe.rs"),
                content: "pub unsafe fn injected_raw(p: *const u8) -> u8 {\n    *p\n}\n"
                    .to_string(),
            }
        }),
        Rule::NoPanicHostile => {
            let content = "pub fn injected_first(v: &[u8]) -> u8 {\n    v[0]\n}\n".to_string();
            Some(if krate == "serve" {
                // serve already owns a hostile decode file; extend it.
                Mutation::Append {
                    rel: src("wire.rs"),
                    content,
                }
            } else {
                Mutation::AddFile {
                    rel: src("http.rs"),
                    content,
                }
            })
        }
        Rule::AtomicsOrdering => Some(Mutation::AddFile {
            rel: src("injected_atomics.rs"),
            content: "use std::sync::atomic::{AtomicU64, Ordering};\n\n\
                      pub fn injected_publish(flag: &AtomicU64) {\n    \
                      flag.store(1, Ordering::Relaxed);\n}\n"
                .to_string(),
        }),
        Rule::NoAllocHotPath => Some(Mutation::AddFile {
            rel: src("injected_hot.rs"),
            content: "// lint: hot-path\npub fn injected_hot() -> Vec<u64> {\n    Vec::new()\n}\n"
                .to_string(),
        }),
        Rule::WireKindCoverage => Some(Mutation::AddFile {
            rel: src("injected_frame.rs"),
            content: "pub enum Frame {\n    InjectedVariant,\n}\n".to_string(),
        }),
        Rule::LockOrder => Some(Mutation::AddFile {
            rel: src("injected_cycle.rs"),
            content: "use std::sync::Mutex;\n\n\
                      pub struct InjectedPair {\n    a: Mutex<u64>,\n    b: Mutex<u64>,\n}\n\n\
                      impl InjectedPair {\n    \
                      pub fn injected_fwd(&self) -> u64 {\n        \
                      let ga = self.a.lock().unwrap();\n        \
                      let gb = self.b.lock().unwrap();\n        *ga + *gb\n    }\n    \
                      pub fn injected_rev(&self) -> u64 {\n        \
                      let gb = self.b.lock().unwrap();\n        \
                      let ga = self.a.lock().unwrap();\n        *ga - *gb\n    }\n}\n"
                .to_string(),
        }),
        Rule::CounterDrift => Some(Mutation::AddFile {
            rel: src("injected_drift.rs"),
            content: "use std::sync::atomic::Ordering;\n\n\
                      pub fn injected_peek(stats: &ServeStats) -> u64 {\n    \
                      stats.requests.load(Ordering::Relaxed)\n}\n"
                .to_string(),
        }),
        Rule::InstantSpan => {
            // Scoped to the serve/obs span surfaces; elsewhere n/a.
            (krate == "serve" || krate == "obs").then(|| Mutation::AddFile {
                rel: src("injected_clock.rs"),
                content: "pub fn injected_clock() -> std::time::Instant {\n    \
                          std::time::Instant::now()\n}\n"
                    .to_string(),
            })
        }
        Rule::WireErrorExhaustive => Some(Mutation::AddFile {
            rel: src("injected_error.rs"),
            content: "pub enum WireError {\n    InjectedVariant,\n}\n".to_string(),
        }),
        Rule::HostileLengthTaint => Some(if krate == "serve" {
            // Remove a real length clamp: the STATS count guard in wire.rs.
            Mutation::Replace {
                rel: src("wire.rs"),
                find: "if n as usize > MAX_STATS_ENTRIES {".to_string(),
                replace: "if n as usize > payload_hint {".to_string(),
            }
        } else {
            Mutation::AddFile {
                rel: src("http.rs"),
                content: "pub struct InjReader {\n    pos: u32,\n}\n\n\
                          impl InjReader {\n    \
                          pub fn u32(&mut self) -> u32 {\n        self.pos\n    }\n    \
                          pub fn injected_decode(&mut self) -> Vec<u8> {\n        \
                          let n = self.u32() as usize;\n        \
                          Vec::with_capacity(n)\n    }\n}\n"
                    .to_string(),
            }
        }),
        Rule::GuardBlocking => Some(Mutation::AddFile {
            rel: src("injected_guard.rs"),
            content: "use std::sync::mpsc::Receiver;\nuse std::sync::Mutex;\n\n\
                      pub struct InjectedQ {\n    q: Mutex<u64>,\n}\n\n\
                      impl InjectedQ {\n    \
                      pub fn injected_drain(&self, rx: &Receiver<u64>) -> u64 {\n        \
                      let g = self.q.lock().unwrap();\n        \
                      let v = rx.recv().unwrap();\n        *g + v\n    }\n}\n"
                .to_string(),
        }),
        Rule::ChannelCapacity => Some(if krate == "serve" {
            // Un-justify a real channel: blank the first `// capacity:`.
            Mutation::Replace {
                rel: src("service.rs"),
                find: "// capacity:".to_string(),
                replace: "// widened:".to_string(),
            }
        } else {
            Mutation::AddFile {
                rel: src("injected_chan.rs"),
                content: "use std::sync::mpsc;\n\n\
                          pub fn injected_pipe() -> (mpsc::Sender<u8>, mpsc::Receiver<u8>) {\n    \
                          mpsc::channel::<u8>()\n}\n"
                    .to_string(),
            }
        }),
        Rule::Suppression => Some(Mutation::AddFile {
            rel: src("injected_allow.rs"),
            content: "// lint: allow(lock-order)\npub fn injected_noop() {}\n".to_string(),
        }),
    }
}

/// Outcome of one seeded mutant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutantStatus {
    /// The rule produced at least one finding in the mutated file.
    Killed,
    /// The mutant lints clean under its rule — a coverage hole.
    Survived,
    /// The rule's scope excludes the crate by construction.
    NotApplicable,
}

impl MutantStatus {
    pub fn as_str(self) -> &'static str {
        match self {
            MutantStatus::Killed => "killed",
            MutantStatus::Survived => "survived",
            MutantStatus::NotApplicable => "n/a",
        }
    }
}

/// One cell of the kill matrix.
#[derive(Debug, Clone)]
pub struct MutantOutcome {
    pub rule: Rule,
    pub krate: &'static str,
    /// The mutated/added file (empty for n/a cells).
    pub file: String,
    pub status: MutantStatus,
    /// Findings of `rule` attributed to `file` in the mutated run.
    pub findings: usize,
}

/// The full rules × crates kill matrix.
#[derive(Debug, Clone)]
pub struct MutationMatrix {
    pub outcomes: Vec<MutantOutcome>,
}

impl MutationMatrix {
    pub fn applicable(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.status != MutantStatus::NotApplicable)
            .count()
    }

    pub fn killed(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.status == MutantStatus::Killed)
            .count()
    }

    pub fn survivors(&self) -> Vec<&MutantOutcome> {
        self.outcomes
            .iter()
            .filter(|o| o.status == MutantStatus::Survived)
            .collect()
    }

    pub fn all_killed(&self) -> bool {
        self.survivors().is_empty()
    }

    /// `lint-mutation-matrix.json`: the CI artifact.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"schema\":1,\"targets\":[");
        for (i, c) in TARGET_CRATES.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{c}\""));
        }
        out.push_str("],\"mutants\":[");
        for (i, o) in self.outcomes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":\"{}\",\"crate\":\"{}\",\"file\":\"{}\",\"status\":\"{}\",\"findings\":{}}}",
                o.rule.name(),
                o.krate,
                o.file,
                o.status.as_str(),
                o.findings,
            ));
        }
        let (killed, applicable) = (self.killed(), self.applicable());
        out.push_str(&format!(
            "],\"killed\":{killed},\"applicable\":{applicable},\"kill_rate\":{}}}",
            if applicable == 0 {
                "null".to_string()
            } else if killed == applicable {
                "1.0".to_string()
            } else {
                format!("{:.3}", killed as f64 / applicable as f64)
            }
        ));
        out
    }

    /// Human-readable matrix for `--mutate` without `--json`.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let width = Rule::ALL
            .iter()
            .map(|r| r.name().len())
            .max()
            .unwrap_or(0)
            .max("rule".len());
        out.push_str(&format!("{:<width$}", "rule"));
        for c in TARGET_CRATES {
            out.push_str(&format!("  {c:>8}"));
        }
        out.push('\n');
        for rule in Rule::ALL {
            out.push_str(&format!("{:<width$}", rule.name()));
            for c in TARGET_CRATES {
                let cell = self
                    .outcomes
                    .iter()
                    .find(|o| o.rule == rule && o.krate == *c)
                    .map(|o| o.status.as_str())
                    .unwrap_or("?");
                out.push_str(&format!("  {cell:>8}"));
            }
            out.push('\n');
        }
        let (killed, applicable) = (self.killed(), self.applicable());
        out.push_str(&format!(
            "mutation kill rate: {killed}/{applicable} ({})\n",
            if self.all_killed() { "100%" } else { "FAIL" }
        ));
        out
    }
}

/// Load the baseline tree once, verify it lints clean (a dirty baseline
/// would make every kill ambiguous), then run every rule × crate mutant.
pub fn run_mutations(cfg: &Config) -> io::Result<MutationMatrix> {
    let rels = scan_set(&cfg.root)?;
    let mut baseline = Vec::with_capacity(rels.len());
    for rel in &rels {
        baseline.push(SourceFile::load(&cfg.root, rel)?);
    }
    let base_report = run_sources(cfg, &baseline)?;
    if !base_report.is_clean() {
        return Err(other(format!(
            "baseline tree has {} finding(s); fix them before measuring mutation coverage",
            base_report.findings.len()
        )));
    }

    let mut outcomes = Vec::new();
    for rule in Rule::ALL {
        for &krate in TARGET_CRATES {
            let Some(mutation) = mutant_for(rule, krate) else {
                outcomes.push(MutantOutcome {
                    rule,
                    krate,
                    file: String::new(),
                    status: MutantStatus::NotApplicable,
                    findings: 0,
                });
                continue;
            };
            let primary = mutation.primary().to_string();
            let mutated = mutation.apply(&baseline)?;
            let report = run_sources(cfg, &mutated)?;
            let hits = report
                .findings
                .iter()
                .filter(|f| f.rule == rule && f.file == primary)
                .count();
            outcomes.push(MutantOutcome {
                rule,
                krate,
                file: primary,
                status: if hits > 0 {
                    MutantStatus::Killed
                } else {
                    MutantStatus::Survived
                },
                findings: hits,
            });
        }
    }
    Ok(MutationMatrix { outcomes })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_rule_has_a_mutant_for_the_serving_crate() {
        // serve is the attack surface: every rule must be probed there.
        for rule in Rule::ALL {
            assert!(
                mutant_for(rule, "serve").is_some(),
                "no serve mutant for {}",
                rule.name()
            );
        }
    }

    #[test]
    fn instant_span_is_not_applicable_outside_its_scope() {
        assert!(mutant_for(Rule::InstantSpan, "core").is_none());
        assert!(mutant_for(Rule::InstantSpan, "nn").is_none());
        assert!(mutant_for(Rule::InstantSpan, "obs").is_some());
    }

    #[test]
    fn matrix_json_reports_a_full_kill_as_rate_one() {
        let outcomes = Rule::ALL
            .into_iter()
            .flat_map(|rule| {
                TARGET_CRATES.iter().map(move |&krate| MutantOutcome {
                    rule,
                    krate,
                    file: "crates/x/src/y.rs".to_string(),
                    status: MutantStatus::Killed,
                    findings: 1,
                })
            })
            .collect();
        let m = MutationMatrix { outcomes };
        assert!(m.all_killed());
        let json = m.to_json();
        assert!(json.contains("\"kill_rate\":1.0"), "{json}");
        assert!(json.contains("\"schema\":1"), "{json}");
    }

    #[test]
    fn a_survivor_fails_the_matrix_and_shows_in_text() {
        let m = MutationMatrix {
            outcomes: vec![MutantOutcome {
                rule: Rule::LockOrder,
                krate: "serve",
                file: "crates/serve/src/injected_cycle.rs".to_string(),
                status: MutantStatus::Survived,
                findings: 0,
            }],
        };
        assert!(!m.all_killed());
        assert_eq!(m.survivors().len(), 1);
        assert!(m.render_text().contains("survived"));
        assert!(m.to_json().contains("\"status\":\"survived\""));
    }
}
