//! A lightweight per-crate symbol table: just enough name resolution to
//! support the cross-file passes (lock-order analysis, counter-drift,
//! span-coverage) without a real type checker.
//!
//! The table records three kinds of symbols per crate:
//!
//! - **Lock fields** — struct fields whose declared type mentions `Mutex<`
//!   or `RwLock<` (including wrappers like `Arc<Mutex<…>>` and containers
//!   like `Vec<Mutex<…>>`). Field names are assumed unique per crate, which
//!   holds for this workspace and keeps resolution table-driven instead of
//!   type-driven.
//! - **Lock parameters** — function parameters whose type mentions a lock.
//!   A parameter whose name matches a known lock field unifies with that
//!   field (the common "pass `&self.foo` down" pattern); otherwise it gets
//!   its own identity keyed by file stem, so the same name in sibling
//!   functions of one file refers to one lock.
//! - **Functions** — name, body span, parameter list, and (for accessor
//!   functions returning `&Mutex<…>`) the lock field their body exposes.
//!
//! Resolution of a lock *acquisition site* (`expr.lock()` / `.read()` /
//! `.write()`) walks the receiver expression backwards from the call and
//! maps its final component through this table. Receivers that resolve to
//! nothing — `stdout().lock()`, `TcpStream::read` — are deliberately
//! ignored: only locks the workspace declared are tracked.

use std::collections::HashMap;

use crate::lex::{find_word, is_ident_byte};
use crate::rules::item_span;
use crate::SourceFile;

/// What kind of synchronization primitive a symbol is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    Mutex,
    RwLock,
}

/// One declared lock (a struct field or a function-parameter lock).
#[derive(Debug, Clone)]
pub struct LockSym {
    /// Stable identifier, e.g. `serve::ServiceStats.clients` for fields or
    /// `serve::service.rx` for parameter locks (crate::file-stem.name).
    pub id: String,
    pub kind: LockKind,
    /// Declaration site (workspace-relative file, 1-based line).
    pub file: String,
    pub line: usize,
}

/// One function (or method) definition.
#[derive(Debug, Clone)]
pub struct FnSym {
    pub name: String,
    /// Index into the scan set / `sources` slice.
    pub file_idx: usize,
    /// 0-based line of the `fn` keyword.
    pub start: usize,
    /// 0-based line closing the body (inclusive). `start == end` bodies are
    /// possible for one-liners; declarations without a body are skipped.
    pub end: usize,
    /// Parameter locks: `(param name, lock index)`.
    pub param_locks: Vec<(String, usize)>,
}

/// Per-crate symbol table.
#[derive(Debug, Default)]
pub struct CrateTable {
    /// Crate directory name (`crates/<name>/…`).
    pub name: String,
    /// All locks declared in the crate.
    pub locks: Vec<LockSym>,
    /// Struct-field lock name → index into `locks`.
    pub fields: HashMap<String, usize>,
    /// Accessor fn name → index into `locks` (fns returning `&Mutex<…>`
    /// whose body exposes a known lock field).
    pub accessors: HashMap<String, usize>,
    /// All function definitions in the crate.
    pub fns: Vec<FnSym>,
    /// Function name → indices into `fns` (overload sets across impls).
    pub fn_by_name: HashMap<String, Vec<usize>>,
}

/// Crate directory name for a workspace-relative path (`crates/<name>/…`).
pub fn crate_of(rel: &str) -> Option<&str> {
    let mut parts = rel.split('/');
    if parts.next() != Some("crates") {
        return None;
    }
    parts.next()
}

fn file_stem(rel: &str) -> &str {
    rel.rsplit('/')
        .next()
        .and_then(|f| f.strip_suffix(".rs"))
        .unwrap_or(rel)
}

fn lock_kind_of(ty: &str) -> Option<LockKind> {
    // `Mutex<` / `RwLock<` at an identifier boundary, so `FauxMutex<`
    // does not match.
    for (pat, kind) in [("Mutex<", LockKind::Mutex), ("RwLock<", LockKind::RwLock)] {
        let mut start = 0usize;
        while let Some(p) = ty.get(start..).and_then(|s| s.find(pat)) {
            let at = start + p;
            if at == 0 || !is_ident_byte(ty.as_bytes()[at - 1]) {
                return Some(kind);
            }
            start = at + 1;
        }
    }
    None
}

/// Leading identifier of `s` (after trimming), if any.
fn leading_ident(s: &str) -> Option<&str> {
    let t = s.trim_start();
    let end = t.bytes().take_while(|&c| is_ident_byte(c)).count();
    if end == 0 {
        None
    } else {
        t.get(..end)
    }
}

/// Split a parameter list at top-level commas (angle brackets and parens
/// tracked so `HashMap<u64, ClientStats>` stays one parameter).
fn split_params(params: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0i64;
    let mut start = 0usize;
    for (i, c) in params.char_indices() {
        match c {
            '<' | '(' | '[' => depth += 1,
            '>' | ')' | ']' => depth -= 1,
            ',' if depth == 0 => {
                out.push(&params[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&params[start..]);
    out
}

/// Extract the parenthesized parameter text and the return-type text of the
/// `fn` starting at line `start` (scanning at most a few lines of signature).
fn fn_signature(code: &[String], start: usize) -> Option<(String, String)> {
    let mut sig = String::new();
    for line in code.iter().skip(start).take(12) {
        sig.push_str(line);
        sig.push(' ');
        // The signature ends at the body `{` or a declaration-only `;` once
        // the parameter parens are balanced.
        let open = sig.find('(')?;
        let mut depth = 0i64;
        for (i, c) in sig[open..].char_indices() {
            match c {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        let params = sig[open + 1..open + i].to_string();
                        let rest = &sig[open + i + 1..];
                        if let Some(body) = rest.find(['{', ';']) {
                            return Some((params, rest[..body].to_string()));
                        }
                        // Return type continues on a later line.
                        break;
                    }
                }
                _ => {}
            }
        }
    }
    None
}

/// Build the per-crate symbol tables for the whole scan set.
pub fn build(sources: &[SourceFile]) -> HashMap<String, CrateTable> {
    let mut tables: HashMap<String, CrateTable> = HashMap::new();

    // Pass 1: struct-field locks.
    for (fi, f) in sources.iter().enumerate() {
        let Some(krate) = crate_of(&f.rel) else {
            continue;
        };
        let table = tables
            .entry(krate.to_string())
            .or_insert_with(|| CrateTable {
                name: krate.to_string(),
                ..CrateTable::default()
            });
        collect_struct_locks(f, table);
        let _ = fi;
    }

    // Pass 2: functions (needs the field set for param unification and
    // accessor detection).
    for (fi, f) in sources.iter().enumerate() {
        let Some(krate) = crate_of(&f.rel) else {
            continue;
        };
        let table = tables.get_mut(krate).expect("crate table from pass 1");
        collect_fns(f, fi, table);
    }
    tables
}

fn collect_struct_locks(f: &SourceFile, table: &mut CrateTable) {
    let mut i = 0usize;
    while i < f.code.len() {
        let line = &f.code[i];
        let Some(at) = find_word(line, "struct") else {
            i += 1;
            continue;
        };
        let Some(name) = leading_ident(&line[at + "struct".len()..]) else {
            i += 1;
            continue;
        };
        let name = name.to_string();
        let Some(end) = item_span(&f.code, i) else {
            i += 1;
            continue;
        };
        // Walk the struct body, splitting field segments at depth-1 commas
        // (commas inside generic arguments still leave `ident: …Mutex<` as
        // the segment prefix, which is all `record_field` needs).
        let mut depth = 0i64;
        let mut seg = String::new();
        let mut seg_line = i;
        for li in i..=end {
            for c in f.code[li].chars() {
                match c {
                    '{' => {
                        depth += 1;
                        if depth == 1 {
                            seg.clear();
                            seg_line = li;
                        }
                    }
                    '}' => {
                        if depth == 1 {
                            record_field(&seg, seg_line, &name, f, table);
                        }
                        depth -= 1;
                    }
                    ',' if depth == 1 => {
                        record_field(&seg, seg_line, &name, f, table);
                        seg.clear();
                        seg_line = li;
                    }
                    c if depth == 1 => seg.push(c),
                    _ => {}
                }
            }
            if depth == 1 {
                seg.push(' ');
            }
        }
        i = end + 1;
    }
}

/// Record one struct-field segment (`[pub] ident: Type…`) if lock-typed.
fn record_field(seg: &str, line: usize, strukt: &str, f: &SourceFile, table: &mut CrateTable) {
    let t = seg.trim();
    // Strip `pub`, `pub(crate)`, `pub(super)` … visibility prefixes.
    let t = match t.strip_prefix("pub") {
        Some(r) if r.starts_with([' ', '(']) => {
            let r = r.trim_start();
            match r.strip_prefix('(').and_then(|s| s.split_once(')')) {
                Some((_, after)) => after.trim_start(),
                None => r,
            }
        }
        _ => t,
    };
    let Some(field) = leading_ident(t) else {
        return;
    };
    let rest = &t[field.len()..];
    if !rest.trim_start().starts_with(':') {
        return;
    }
    let Some(kind) = lock_kind_of(rest) else {
        return;
    };
    let idx = table.locks.len();
    table.locks.push(LockSym {
        id: format!("{}::{}.{}", table.name, strukt, field),
        kind,
        file: f.rel.clone(),
        line: line + 1,
    });
    table.fields.insert(field.to_string(), idx);
}

fn collect_fns(f: &SourceFile, file_idx: usize, table: &mut CrateTable) {
    for start in 0..f.code.len() {
        let line = &f.code[start];
        let Some(at) = find_word(line, "fn") else {
            continue;
        };
        let Some(name) = leading_ident(&line[at + "fn".len()..]) else {
            continue;
        };
        let name = name.to_string();
        let Some((params, ret)) = fn_signature(&f.code, start) else {
            continue;
        };
        let Some(end) = item_span(&f.code, start) else {
            continue;
        };
        // Declaration without a body (trait method): nothing to analyze.
        if f.code[start..=end].iter().all(|l| !l.contains('{')) {
            continue;
        }

        let mut param_locks = Vec::new();
        for p in split_params(&params) {
            let Some(pname) = leading_ident(p) else {
                continue;
            };
            let Some(kind) = lock_kind_of(p) else {
                continue;
            };
            // Unify with a same-named struct field when one exists (the
            // "pass the field down" pattern); otherwise mint a
            // file-stem-scoped lock identity.
            let idx = match table.fields.get(pname) {
                Some(&idx) => idx,
                None => {
                    let id = format!("{}::{}.{}", table.name, file_stem(&f.rel), pname);
                    match table.locks.iter().position(|l| l.id == id) {
                        Some(idx) => idx,
                        None => {
                            table.locks.push(LockSym {
                                id,
                                kind,
                                file: f.rel.clone(),
                                line: start + 1,
                            });
                            table.locks.len() - 1
                        }
                    }
                }
            };
            param_locks.push((pname.to_string(), idx));
        }

        // Accessor detection: `-> &…Mutex<…>` return type whose body touches
        // a known lock field.
        if lock_kind_of(&ret).is_some() {
            let field_hit = f.code[start..=end].iter().find_map(|l| {
                table
                    .fields
                    .iter()
                    .find_map(|(fname, &idx)| l.contains(&format!("self.{fname}")).then_some(idx))
            });
            if let Some(idx) = field_hit {
                table.accessors.insert(name.clone(), idx);
            }
        }

        let fidx = table.fns.len();
        table.fns.push(FnSym {
            name: name.clone(),
            file_idx,
            start,
            end,
            param_locks,
        });
        table.fn_by_name.entry(name).or_default().push(fidx);
    }
}

/// A parsed receiver component, outermost-last: `self.shards[i]` yields
/// `[shards(Index), self]` walking backwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompKind {
    Plain,
    Call,
    Index,
}

/// Walk a receiver expression backwards from `pos` (the index of the `.`
/// that starts `.lock(`/`.read(`/`.write(`) and return its components in
/// reverse order (final field/method first).
pub fn parse_receiver(text: &[u8], pos: usize) -> Vec<(String, CompKind)> {
    let mut comps = Vec::new();
    let mut i = pos;
    loop {
        // Skip whitespace (receivers span lines in chained calls).
        while i > 0 && (text[i - 1] as char).is_ascii_whitespace() {
            i -= 1;
        }
        if i == 0 {
            break;
        }
        let mut kind = CompKind::Plain;
        // Trailing `(…)` or `[…]` groups (possibly stacked, e.g. `f()[0]`).
        loop {
            let c = text[i - 1];
            let (open, close) = match c {
                b')' => (b'(', b')'),
                b']' => (b'[', b']'),
                _ => break,
            };
            kind = if close == b')' {
                CompKind::Call
            } else {
                CompKind::Index
            };
            let mut depth = 0i64;
            while i > 0 {
                let c = text[i - 1];
                if c == close {
                    depth += 1;
                } else if c == open {
                    depth -= 1;
                    if depth == 0 {
                        i -= 1;
                        break;
                    }
                }
                i -= 1;
            }
            while i > 0 && (text[i - 1] as char).is_ascii_whitespace() {
                i -= 1;
            }
        }
        // The identifier (absent for a parenthesized expression like
        // `(a.b()).lock()` — then the group itself ends the walk).
        let end = i;
        while i > 0 && is_ident_byte(text[i - 1]) {
            i -= 1;
        }
        if i == end && kind == CompKind::Plain {
            break;
        }
        let name = String::from_utf8_lossy(&text[i..end]).into_owned();
        comps.push((name, kind));
        // Continue through `.` or `::` separators.
        if i >= 1 && text[i - 1] == b'.' {
            i -= 1;
        } else if i >= 2 && text[i - 1] == b':' && text[i - 2] == b':' {
            i -= 2;
        } else {
            break;
        }
    }
    comps
}

impl CrateTable {
    /// Resolve a receiver (as parsed by [`parse_receiver`]) to a lock index,
    /// given the enclosing function (for parameter locks).
    pub fn resolve_lock(&self, comps: &[(String, CompKind)], enclosing: &FnSym) -> Option<usize> {
        let (name, kind) = comps.first()?;
        match kind {
            CompKind::Call => self.accessors.get(name.as_str()).copied(),
            CompKind::Plain | CompKind::Index => {
                if let Some(&idx) = self.fields.get(name.as_str()) {
                    return Some(idx);
                }
                // A bare identifier may be a lock-typed parameter of the
                // enclosing function.
                if comps.len() == 1 {
                    enclosing
                        .param_locks
                        .iter()
                        .find(|(p, _)| p == name)
                        .map(|&(_, idx)| idx)
                } else {
                    None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sf(rel: &str, src: &str) -> SourceFile {
        SourceFile::from_source(rel, src)
    }

    #[test]
    fn struct_field_locks_are_collected() {
        let src = "pub struct S {\n    pub a: Mutex<u64>,\n    b: Vec<Mutex<V>>,\n    c: Arc<RwLock<W>>,\n    d: u64,\n}\n";
        let f = sf("crates/app/src/lib.rs", src);
        let tables = build(std::slice::from_ref(&f));
        let t = &tables["app"];
        assert_eq!(t.locks.len(), 3);
        assert_eq!(t.locks[0].id, "app::S.a");
        assert_eq!(t.locks[1].id, "app::S.b");
        assert_eq!(t.locks[2].kind, LockKind::RwLock);
        assert!(t.fields.contains_key("c"));
        assert!(!t.fields.contains_key("d"));
    }

    #[test]
    fn param_locks_unify_with_fields_by_name() {
        let src = "struct S {\n    joins: Mutex<Vec<u8>>,\n}\nfn f(joins: &Arc<Mutex<Vec<u8>>>, other: &Mutex<u8>) {\n    let _ = joins;\n}\n";
        let f = sf("crates/app/src/net.rs", src);
        let tables = build(std::slice::from_ref(&f));
        let t = &tables["app"];
        let fsym = t.fns.iter().find(|x| x.name == "f").unwrap();
        assert_eq!(fsym.param_locks.len(), 2);
        // `joins` unified with the field; `other` minted a file-stem id.
        assert_eq!(t.locks[fsym.param_locks[0].1].id, "app::S.joins");
        assert_eq!(t.locks[fsym.param_locks[1].1].id, "app::net.other");
    }

    #[test]
    fn accessor_fns_map_to_their_field() {
        let src = "struct C {\n    shards: Vec<Mutex<u8>>,\n}\nimpl C {\n    fn shard(&self, i: usize) -> &Mutex<u8> {\n        &self.shards[i & 3]\n    }\n}\n";
        let f = sf("crates/app/src/cache.rs", src);
        let tables = build(std::slice::from_ref(&f));
        let t = &tables["app"];
        let idx = t.accessors["shard"];
        assert_eq!(t.locks[idx].id, "app::C.shards");
    }

    #[test]
    fn receiver_parsing_handles_chains_calls_and_indexing() {
        let cases: &[(&str, &[&str])] = &[
            ("self.clients.lock()", &["clients", "self"]),
            ("self.shards[idx].lock()", &["shards", "self"]),
            ("self.shard(e, fp)\n    .lock()", &["shard", "self"]),
            ("registry().live.lock()", &["live", "registry"]),
            ("rx.lock()", &["rx"]),
        ];
        for (src, want) in cases {
            let pos = src.find(".lock(").unwrap();
            let comps = parse_receiver(src.as_bytes(), pos);
            let names: Vec<&str> = comps.iter().map(|(n, _)| n.as_str()).collect();
            assert_eq!(&names, want, "receiver of {src:?}");
        }
    }
}
