//! Cross-file lock-order analysis.
//!
//! Using the per-crate symbol tables from [`crate::symbols`], this pass:
//!
//! 1. finds every acquisition of a *declared* lock (`expr.lock()` on a
//!    `Mutex` symbol, `.read()`/`.write()` on an `RwLock` symbol) in
//!    non-test code;
//! 2. infers how long each guard is held by walking the statement and
//!    block structure of the enclosing function (a `let`-bound guard lives
//!    to the end of its block or an explicit `drop(guard)`, a temporary
//!    guard to the end of its statement);
//! 3. records an edge `A -> B` whenever lock `B` is acquired — directly, or
//!    via a one-level-expanded intra-crate call (`self.f(…)`, `f(…)`,
//!    `Type::f(…)`) — while a guard for `A` is still held;
//! 4. reports every cycle in the resulting global acquisition graph as a
//!    potential deadlock, with one witness site per edge of the cycle.
//!
//! The held-interval inference is deliberately an *over*-approximation
//! (e.g. `let n = m.lock().unwrap().len();` binds a `usize`, not a guard,
//! but is treated as held to end of block): a superset of held intervals
//! can only add edges, never hide a real cycle. Receivers that do not
//! resolve through the symbol table (`stdout().lock()`, `TcpStream::read`)
//! are ignored — only workspace-declared locks participate.
//!
//! Besides findings, the pass emits the graph itself ([`LockGraph`]): the
//! `--json` inventory serializes it, and `cardest-serve`'s runtime lock
//! witness asserts its static rank table agrees with these edges, so the
//! static and runtime views cannot drift apart.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::lex::is_ident_byte;
use crate::rules::{suppressed, Rule};
use crate::symbols::{self, CrateTable, FnSym, LockKind};
use crate::{Config, Finding, SourceFile};

/// One node of the acquisition graph (a declared lock).
#[derive(Debug, Clone)]
pub struct LockNode {
    /// Stable id, e.g. `serve::ServiceStats.clients`.
    pub id: String,
    /// `mutex` or `rwlock`.
    pub kind: &'static str,
    /// Declaration site.
    pub file: String,
    pub line: usize,
}

/// One edge: `to` acquired while a guard of `from` is held.
#[derive(Debug, Clone)]
pub struct LockEdge {
    pub from: String,
    pub to: String,
    /// Witness site: where `to` is acquired (or the call that acquires it).
    pub file: String,
    pub line: usize,
    /// Function containing the witness site.
    pub func: String,
}

/// The global lock-acquisition graph.
#[derive(Debug, Clone, Default)]
pub struct LockGraph {
    /// All declared locks, sorted by id.
    pub locks: Vec<LockNode>,
    /// Deduplicated `(from, to)` edges with one witness site each.
    pub edges: Vec<LockEdge>,
    /// Cycles (each a list of lock ids; the first id repeats implicitly).
    pub cycles: Vec<Vec<String>>,
    /// Topological order of the acyclic part, lexicographic tie-break —
    /// the canonical rank order the runtime lock witness mirrors.
    pub order: Vec<String>,
}

/// One resolved acquisition inside a function body.
struct Acq {
    /// Lock index in the crate table.
    lock: usize,
    /// Byte offset (into the joined body text) of the `.` of the call.
    off: usize,
    /// End of the held interval (exclusive byte offset).
    end: usize,
    /// 1-based source line of the acquisition.
    line: usize,
}

struct FnBody {
    text: Vec<u8>,
    /// Brace depth *before* each byte.
    depth: Vec<u32>,
    /// 1-based source line for each byte.
    line: Vec<usize>,
}

fn join_body(f: &SourceFile, func: &FnSym) -> FnBody {
    let mut text = Vec::new();
    let mut line = Vec::new();
    for li in func.start..=func.end.min(f.code.len().saturating_sub(1)) {
        for &b in f.code[li].as_bytes() {
            text.push(b);
            line.push(li + 1);
        }
        text.push(b'\n');
        line.push(li + 1);
    }
    let mut depth = Vec::with_capacity(text.len());
    let mut d = 0u32;
    for &b in &text {
        depth.push(d);
        match b {
            b'{' => d += 1,
            b'}' => d = d.saturating_sub(1),
            _ => {}
        }
    }
    FnBody { text, depth, line }
}

/// Statement start: scan back from `p` to just past the previous `;`, `{`
/// or `}` (string/comment bodies are already blanked in the code view).
fn stmt_start(text: &[u8], p: usize) -> usize {
    let mut i = p;
    while i > 0 && !matches!(text[i - 1], b';' | b'{' | b'}') {
        i -= 1;
    }
    i
}

/// If the statement binds its value (`let [mut] name = …`), the guard name.
fn let_binding(stmt: &str) -> Option<&str> {
    let t = stmt.trim_start().strip_prefix("let ")?;
    let t = t.trim_start();
    let t = t.strip_prefix("mut ").unwrap_or(t).trim_start();
    let end = t.bytes().take_while(|&c| is_ident_byte(c)).count();
    (end > 0).then(|| &t[..end])
}

/// End of the held interval for an acquisition at `p` with depth `d`.
fn held_end(body: &FnBody, p: usize, d: u32, bound: Option<&str>) -> usize {
    let n = body.text.len();
    let mut end = n;
    for j in p + 1..n {
        let b = body.text[j];
        let closes_block = b == b'}' && body.depth[j] <= d;
        let ends_stmt = bound.is_none() && b == b';' && body.depth[j] <= d;
        if closes_block || ends_stmt {
            end = j;
            break;
        }
    }
    // An explicit `drop(name)` releases a bound guard early.
    if let Some(name) = bound {
        let hay = &body.text[p..end];
        let pat = b"drop";
        let mut i = 0usize;
        while i + pat.len() < hay.len() {
            if &hay[i..i + pat.len()] == pat
                && (i == 0 || !is_ident_byte(hay[i - 1]))
                && hay[i + pat.len()] == b'('
            {
                let inner_start = i + pat.len() + 1;
                if let Some(close) = hay[inner_start..].iter().position(|&c| c == b')') {
                    let inner = &hay[inner_start..inner_start + close];
                    if std::str::from_utf8(inner).map(str::trim) == Ok(name) {
                        return p + i;
                    }
                }
            }
            i += 1;
        }
    }
    end
}

const ACQ_PATTERNS: &[(&str, LockKind)] = &[
    (".lock(", LockKind::Mutex),
    (".read(", LockKind::RwLock),
    (".write(", LockKind::RwLock),
];

/// All resolved lock acquisitions in one function body.
fn find_acqs(f: &SourceFile, table: &CrateTable, func: &FnSym, body: &FnBody) -> Vec<Acq> {
    let text = std::str::from_utf8(&body.text).unwrap_or("");
    let mut acqs = Vec::new();
    for &(pat, want_kind) in ACQ_PATTERNS {
        let mut start = 0usize;
        while let Some(rel) = text.get(start..).and_then(|s| s.find(pat)) {
            let p = start + rel;
            start = p + 1;
            let line = body.line[p];
            // Skip acquisitions in `#[cfg(test)]` code; the rule targets
            // production lock discipline.
            if f.is_test.get(line - 1).copied().unwrap_or(false) {
                continue;
            }
            let comps = symbols::parse_receiver(&body.text, p);
            let Some(lock) = table.resolve_lock(&comps, func) else {
                continue;
            };
            if table.locks[lock].kind != want_kind {
                continue;
            }
            let ss = stmt_start(&body.text, p);
            let stmt = std::str::from_utf8(&body.text[ss..p]).unwrap_or("");
            let bound = let_binding(stmt);
            let end = held_end(body, p, body.depth[p], bound);
            acqs.push(Acq {
                lock,
                off: p,
                end,
                line,
            });
        }
    }
    acqs.sort_by_key(|a| a.off);
    acqs
}

const CALL_KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "static", "struct", "super", "trait", "true", "type", "union",
    "unsafe", "use", "where", "while",
];

/// Calls eligible for one-level expansion inside `body.text[from..to]`:
/// `name(…)` (free), `self.name(…)` (method on self), or `Path::name(…)`.
/// Arbitrary `expr.name(…)` receivers are *not* expanded — without types we
/// cannot tell which impl they hit, and guessing creates false edges.
fn find_calls(body: &FnBody, from: usize, to: usize) -> Vec<(String, usize)> {
    let t = &body.text;
    let mut out = Vec::new();
    for j in from..to.min(t.len()) {
        if t[j] != b'(' {
            continue;
        }
        // Walk back over whitespace, then the identifier.
        let mut i = j;
        while i > 0 && (t[i - 1] as char).is_ascii_whitespace() {
            i -= 1;
        }
        let end = i;
        while i > 0 && is_ident_byte(t[i - 1]) {
            i -= 1;
        }
        if i == end {
            continue;
        }
        let name = match std::str::from_utf8(&t[i..end]) {
            Ok(s) => s,
            Err(_) => continue,
        };
        if CALL_KEYWORDS.contains(&name) || name.as_bytes()[0].is_ascii_digit() {
            continue;
        }
        // Classify by what precedes the identifier.
        let ok = if i == 0 {
            true
        } else {
            match t[i - 1] {
                b'.' => {
                    // Only `self.name(` counts; other receivers are opaque.
                    let r = i - 1;
                    r >= 4 && &t[r - 4..r] == b"self" && (r == 4 || !is_ident_byte(t[r - 5]))
                }
                b':' => i >= 2 && t[i - 2] == b':',
                b'!' => false,
                c => !is_ident_byte(c),
            }
        };
        // `fn name(` is the definition, not a call.
        let is_def = {
            let mut k = i;
            while k > 0 && (t[k - 1] as char).is_ascii_whitespace() {
                k -= 1;
            }
            k >= 2 && &t[k - 2..k] == b"fn" && (k == 2 || !is_ident_byte(t[k - 3]))
        };
        if ok && !is_def {
            out.push((name.to_string(), j));
        }
    }
    out
}

/// Method-call patterns that block the calling thread: thread joins,
/// channel handoffs, condvar waits, and socket/stream IO. `.try_recv(` and
/// `.try_send(` are deliberately absent (non-blocking), as are `.read(`/
/// `.write(` (they collide with the RwLock acquisition patterns and the
/// rule must not flag nested lock acquisition — that is `lock-order`'s job).
const BLOCKING_PATTERNS: &[(&str, &str)] = &[
    (".join(", "thread join"),
    (".send(", "channel send"),
    (".recv(", "channel recv"),
    (".recv_timeout(", "channel recv"),
    (".wait(", "condvar wait"),
    (".wait_timeout(", "condvar wait"),
    (".wait_while(", "condvar wait"),
    (".write_all(", "socket/stream write"),
    (".read_exact(", "socket/stream read"),
    (".accept(", "socket accept"),
    ("thread::sleep(", "sleep"),
];

/// `guard-held-across-blocking`: reusing the guard-lifetime inference, flag
/// every blocking call (and every configured kernel-layer entry) inside a
/// held interval. A guard held across a block stalls every other contender
/// of that lock for the blocking call's full duration — the latency-cliff
/// shape the micro-batching layout exists to avoid. Suppressible at either
/// the blocking line or the acquisition line (one `// lint: allow` on the
/// `.lock()` covers every blocking call under that guard).
fn check_guard_blocking(
    cfg: &Config,
    f: &SourceFile,
    table: &CrateTable,
    func: &FnSym,
    body: &FnBody,
    acqs: &[Acq],
    findings: &mut Vec<Finding>,
) {
    let text = std::str::from_utf8(&body.text).unwrap_or("");
    let kernel: Vec<(String, String)> = cfg
        .kernel_entry_calls
        .iter()
        .map(|n| (format!(".{n}("), format!("kernel entry `{n}`")))
        .collect();
    for a in acqs {
        let lock_id = &table.locks[a.lock].id;
        let window = match text.get(a.off..a.end) {
            Some(w) => w,
            None => continue,
        };
        let all_pats = BLOCKING_PATTERNS
            .iter()
            .map(|&(p, w)| (p, w))
            .chain(kernel.iter().map(|(p, w)| (p.as_str(), w.as_str())));
        for (pat, what) in all_pats {
            let mut start = 0usize;
            while let Some(rel) = window.get(start..).and_then(|s| s.find(pat)) {
                let p = a.off + start + rel;
                start += rel + 1;
                if p == a.off {
                    continue; // the acquisition itself (`.read(`-style overlap)
                }
                let line = body.line[p];
                if suppressed(f, line - 1, Rule::GuardBlocking)
                    || suppressed(f, a.line - 1, Rule::GuardBlocking)
                {
                    continue;
                }
                findings.push(Finding {
                    file: f.rel.clone(),
                    line,
                    rule: Rule::GuardBlocking,
                    message: format!(
                        "guard for `{lock_id}` (acquired at line {} in `{}`) is still held \
                         across a {what} (`{}`); every contender of the lock stalls for the \
                         call's full duration — release the guard first, or justify with a \
                         `// lint: allow(guard-held-across-blocking) <reason>`",
                        a.line,
                        func.name,
                        pat.trim_start_matches('.').trim_end_matches('('),
                    ),
                });
            }
        }
    }
}

struct RawEdge {
    from: usize,
    to: usize,
    file: String,
    line: usize,
    func: String,
}

/// Run the pass: build the graph, report cycles as findings, and flag
/// guards held across blocking calls.
pub fn analyze(
    cfg: &Config,
    tables: &HashMap<String, CrateTable>,
    sources: &[SourceFile],
    findings: &mut Vec<Finding>,
) -> LockGraph {
    // Global node list, sorted by id for deterministic output.
    let mut crate_names: Vec<&String> = tables.keys().collect();
    crate_names.sort();
    let mut locks: Vec<(&str, usize, LockNode)> = Vec::new();
    for cname in &crate_names {
        let table = &tables[cname.as_str()];
        for (li, l) in table.locks.iter().enumerate() {
            locks.push((
                cname.as_str(),
                li,
                LockNode {
                    id: l.id.clone(),
                    kind: match l.kind {
                        LockKind::Mutex => "mutex",
                        LockKind::RwLock => "rwlock",
                    },
                    file: l.file.clone(),
                    line: l.line,
                },
            ));
        }
    }
    locks.sort_by(|a, b| a.2.id.cmp(&b.2.id));
    let global: HashMap<(&str, usize), usize> = locks
        .iter()
        .enumerate()
        .map(|(g, (c, li, _))| ((*c, *li), g))
        .collect();

    // Per-crate edge discovery.
    let mut raw_edges: Vec<RawEdge> = Vec::new();
    for cname in &crate_names {
        let table = &tables[cname.as_str()];
        // Pass 1: every function's own acquisitions.
        let bodies: Vec<FnBody> = table
            .fns
            .iter()
            .map(|func| join_body(&sources[func.file_idx], func))
            .collect();
        let acqs: Vec<Vec<Acq>> = table
            .fns
            .iter()
            .zip(&bodies)
            .map(|(func, body)| find_acqs(&sources[func.file_idx], table, func, body))
            .collect();
        let direct: Vec<BTreeSet<usize>> = acqs
            .iter()
            .map(|a| a.iter().map(|x| x.lock).collect())
            .collect();

        // Pass 2: edges from overlapping guards and expanded calls, plus
        // the blocking-while-locked scan over the same held intervals.
        for (fi, func) in table.fns.iter().enumerate() {
            let body = &bodies[fi];
            let file = &sources[func.file_idx].rel;
            check_guard_blocking(
                cfg,
                &sources[func.file_idx],
                table,
                func,
                body,
                &acqs[fi],
                findings,
            );
            for a in &acqs[fi] {
                let gfrom = global[&(cname.as_str(), a.lock)];
                for b in &acqs[fi] {
                    if b.off > a.off && b.off < a.end {
                        raw_edges.push(RawEdge {
                            from: gfrom,
                            to: global[&(cname.as_str(), b.lock)],
                            file: file.clone(),
                            line: b.line,
                            func: func.name.clone(),
                        });
                    }
                }
                for (callee_name, call_off) in find_calls(body, a.off, a.end) {
                    let Some(callees) = table.fn_by_name.get(&callee_name) else {
                        continue;
                    };
                    for &ci in callees {
                        for &l in &direct[ci] {
                            raw_edges.push(RawEdge {
                                from: gfrom,
                                to: global[&(cname.as_str(), l)],
                                file: file.clone(),
                                line: body.line[call_off],
                                func: func.name.clone(),
                            });
                        }
                    }
                }
            }
        }
    }

    // Dedup to one witness per (from, to), keeping the first site in
    // (file, line) order.
    raw_edges.sort_by(|a, b| {
        (a.from, a.to, a.file.as_str(), a.line).cmp(&(b.from, b.to, b.file.as_str(), b.line))
    });
    raw_edges.dedup_by(|a, b| a.from == b.from && a.to == b.to);

    let mut adj: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
    for e in &raw_edges {
        adj.entry(e.from).or_default().insert(e.to);
    }

    let cycles = find_cycles(locks.len(), &adj);

    // Report each cycle, unless a suppression covers one of its witnesses.
    let by_rel: HashMap<&str, &SourceFile> = sources.iter().map(|f| (f.rel.as_str(), f)).collect();
    for cyc in &cycles {
        let mut witnesses = Vec::new();
        for w in 0..cyc.len() {
            let (from, to) = (cyc[w], cyc[(w + 1) % cyc.len()]);
            if let Some(e) = raw_edges.iter().find(|e| e.from == from && e.to == to) {
                witnesses.push(e);
            }
        }
        let waived = witnesses.iter().any(|e| {
            by_rel
                .get(e.file.as_str())
                .is_some_and(|f| suppressed(f, e.line - 1, Rule::LockOrder))
        });
        if waived || witnesses.is_empty() {
            continue;
        }
        let mut path: Vec<&str> = cyc.iter().map(|&g| locks[g].2.id.as_str()).collect();
        path.push(locks[cyc[0]].2.id.as_str());
        let detail = witnesses
            .iter()
            .map(|e| {
                format!(
                    "`{} -> {}` at {}:{} (in `{}`)",
                    locks[e.from].2.id, locks[e.to].2.id, e.file, e.line, e.func
                )
            })
            .collect::<Vec<_>>()
            .join("; witness ");
        findings.push(Finding {
            file: witnesses[0].file.clone(),
            line: witnesses[0].line,
            rule: Rule::LockOrder,
            message: format!(
                "potential deadlock: lock-order cycle `{}`; witness {detail}",
                path.join(" -> ")
            ),
        });
    }

    let order = topo_order(&locks, &adj);
    LockGraph {
        edges: raw_edges
            .iter()
            .map(|e| LockEdge {
                from: locks[e.from].2.id.clone(),
                to: locks[e.to].2.id.clone(),
                file: e.file.clone(),
                line: e.line,
                func: e.func.clone(),
            })
            .collect(),
        cycles: cycles
            .iter()
            .map(|c| c.iter().map(|&g| locks[g].2.id.clone()).collect())
            .collect(),
        order,
        locks: locks.into_iter().map(|(_, _, n)| n).collect(),
    }
}

/// Elementary cycles, canonicalized so each starts at its smallest node.
fn find_cycles(n: usize, adj: &BTreeMap<usize, BTreeSet<usize>>) -> Vec<Vec<usize>> {
    let mut cycles = Vec::new();
    for start in 0..n {
        let mut path = vec![start];
        let mut on_path: BTreeSet<usize> = [start].into();
        dfs_cycles(start, start, adj, &mut path, &mut on_path, &mut cycles);
        if cycles.len() >= 64 {
            break;
        }
    }
    cycles
}

fn dfs_cycles(
    start: usize,
    at: usize,
    adj: &BTreeMap<usize, BTreeSet<usize>>,
    path: &mut Vec<usize>,
    on_path: &mut BTreeSet<usize>,
    cycles: &mut Vec<Vec<usize>>,
) {
    let Some(nexts) = adj.get(&at) else {
        return;
    };
    for &nx in nexts {
        if nx == start {
            cycles.push(path.clone());
        } else if nx > start && !on_path.contains(&nx) && cycles.len() < 64 {
            path.push(nx);
            on_path.insert(nx);
            dfs_cycles(start, nx, adj, path, on_path, cycles);
            path.pop();
            on_path.remove(&nx);
        }
    }
}

/// Kahn's algorithm with lexicographic tie-break; nodes stuck in cycles are
/// appended at the end in id order (the order is only canonical when the
/// graph is acyclic, which `--deny` enforces).
fn topo_order(
    locks: &[(&str, usize, LockNode)],
    adj: &BTreeMap<usize, BTreeSet<usize>>,
) -> Vec<String> {
    let n = locks.len();
    let mut indeg = vec![0usize; n];
    for nexts in adj.values() {
        for &t in nexts {
            indeg[t] += 1;
        }
    }
    let mut ready: BTreeSet<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut out = Vec::with_capacity(n);
    let mut done = vec![false; n];
    while let Some(&i) = ready.iter().next() {
        ready.remove(&i);
        done[i] = true;
        out.push(locks[i].2.id.clone());
        if let Some(nexts) = adj.get(&i) {
            for &t in nexts {
                indeg[t] -= 1;
                if indeg[t] == 0 && !done[t] {
                    ready.insert(t);
                }
            }
        }
    }
    for (i, l) in locks.iter().enumerate() {
        if !done[i] {
            out.push(l.2.id.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::build;

    fn graph_of(files: &[(&str, &str)]) -> (LockGraph, Vec<Finding>) {
        let sources: Vec<SourceFile> = files
            .iter()
            .map(|(rel, src)| SourceFile::from_source(rel, src))
            .collect();
        let tables = build(&sources);
        let mut findings = Vec::new();
        let cfg = Config::workspace(std::path::Path::new("."));
        let graph = analyze(&cfg, &tables, &sources, &mut findings);
        (graph, findings)
    }

    const CYCLIC: &str = r#"
use std::sync::Mutex;
pub struct Pair { a: Mutex<u64>, b: Mutex<u64> }
impl Pair {
    pub fn fwd(&self) -> u64 {
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
        *ga + *gb
    }
    pub fn rev(&self) -> u64 {
        let gb = self.b.lock().unwrap();
        let ga = self.a.lock().unwrap();
        *ga - *gb
    }
}
"#;

    #[test]
    fn two_lock_cycle_is_reported_with_both_witnesses() {
        let (graph, findings) = graph_of(&[("crates/app/src/lib.rs", CYCLIC)]);
        assert_eq!(graph.locks.len(), 2);
        assert_eq!(graph.edges.len(), 2);
        assert_eq!(graph.cycles.len(), 1);
        assert_eq!(findings.len(), 1);
        let msg = &findings[0].message;
        assert!(
            msg.contains("app::Pair.a -> app::Pair.b -> app::Pair.a"),
            "{msg}"
        );
        assert!(msg.contains("(in `fwd`)"), "{msg}");
        assert!(msg.contains("(in `rev`)"), "{msg}");
    }

    #[test]
    fn call_expansion_adds_edges_one_level_deep() {
        let src = r#"
use std::sync::Mutex;
pub struct S { a: Mutex<u64>, b: Mutex<u64> }
impl S {
    pub fn outer(&self) {
        let g = self.a.lock().unwrap();
        self.inner();
        drop(g);
    }
    fn inner(&self) {
        let _g = self.b.lock().unwrap();
    }
}
"#;
        let (graph, findings) = graph_of(&[("crates/app/src/lib.rs", src)]);
        assert!(findings.is_empty());
        assert_eq!(graph.edges.len(), 1);
        assert_eq!(graph.edges[0].from, "app::S.a");
        assert_eq!(graph.edges[0].to, "app::S.b");
        assert_eq!(graph.order, vec!["app::S.a", "app::S.b"]);
    }

    #[test]
    fn temporary_guards_do_not_overlap_across_statements() {
        let src = r#"
use std::sync::Mutex;
pub struct S { a: Mutex<u64>, b: Mutex<u64> }
impl S {
    pub fn seq(&self) -> u64 {
        let x = *self.a.lock().unwrap();
        let y = *self.b.lock().unwrap();
        x + y
    }
}
"#;
        // Both guards are temporaries (bound values are u64 copies)… but the
        // analysis over-approximates `let`-statements as guards held to end
        // of block, so the edge a -> b is expected; what matters is there is
        // no reverse edge, hence no cycle.
        let (graph, findings) = graph_of(&[("crates/app/src/lib.rs", src)]);
        assert!(findings.is_empty());
        assert!(graph.cycles.is_empty());
    }

    #[test]
    fn drop_releases_a_guard_before_the_next_acquisition() {
        let src = r#"
use std::sync::Mutex;
pub struct S { a: Mutex<u64>, b: Mutex<u64> }
impl S {
    pub fn handoff(&self) {
        let g = self.a.lock().unwrap();
        drop(g);
        let h = self.b.lock().unwrap();
        drop(h);
    }
}
"#;
        let (graph, findings) = graph_of(&[("crates/app/src/lib.rs", src)]);
        assert!(findings.is_empty());
        assert!(graph.edges.is_empty());
    }

    #[test]
    fn unresolved_receivers_are_ignored() {
        let src = r#"
pub fn print_all(lines: &[String]) {
    let out = std::io::stdout();
    let mut h = out.lock();
    for l in lines {
        let _ = h.write_all(l.as_bytes());
    }
}
"#;
        let (graph, findings) = graph_of(&[("crates/app/src/lib.rs", src)]);
        assert!(findings.is_empty());
        assert!(graph.locks.is_empty());
        assert!(graph.edges.is_empty());
    }

    #[test]
    fn suppression_on_a_witness_waives_the_cycle() {
        let src = CYCLIC.replace(
            "let gb = self.b.lock().unwrap();\n        let ga = self.a.lock().unwrap();",
            "let gb = self.b.lock().unwrap();\n        // lint: allow(lock-order) drain order is pinned by the caller.\n        let ga = self.a.lock().unwrap();",
        );
        let (graph, findings) = graph_of(&[("crates/app/src/lib.rs", &src)]);
        assert_eq!(graph.cycles.len(), 1, "graph still records the cycle");
        assert!(findings.is_empty(), "finding waived: {findings:?}");
    }

    #[test]
    fn guard_held_across_channel_recv_is_flagged() {
        let src = r#"
use std::sync::Mutex;
use std::sync::mpsc::Receiver;
pub struct Q { q: Mutex<u64> }
impl Q {
    pub fn drain(&self, rx: &Receiver<u64>) -> u64 {
        let g = self.q.lock().unwrap();
        let v = rx.recv().unwrap();
        *g + v
    }
}
"#;
        let (_, findings) = graph_of(&[("crates/app/src/lib.rs", src)]);
        let hits: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == Rule::GuardBlocking)
            .collect();
        assert_eq!(hits.len(), 1, "{findings:?}");
        let msg = &hits[0].message;
        assert!(msg.contains("app::Q.q"), "{msg}");
        assert!(msg.contains("channel recv"), "{msg}");
        assert!(msg.contains("`drain`"), "{msg}");
    }

    #[test]
    fn guard_dropped_before_blocking_call_is_clean() {
        let src = r#"
use std::sync::Mutex;
use std::sync::mpsc::Receiver;
pub struct Q { q: Mutex<u64> }
impl Q {
    pub fn drain(&self, rx: &Receiver<u64>) -> u64 {
        let v = {
            let g = self.q.lock().unwrap();
            *g
        };
        v + rx.recv().unwrap()
    }
}
"#;
        let (_, findings) = graph_of(&[("crates/app/src/lib.rs", src)]);
        assert!(
            findings.iter().all(|f| f.rule != Rule::GuardBlocking),
            "{findings:?}"
        );
    }

    #[test]
    fn guard_blocking_allow_on_the_acquisition_line_waives_the_finding() {
        let src = r#"
use std::sync::Mutex;
use std::sync::mpsc::Receiver;
pub struct Q { q: Mutex<u64> }
impl Q {
    pub fn drain(&self, rx: &Receiver<u64>) -> u64 {
        // lint: allow(guard-held-across-blocking) single consumer; recv is the critical section.
        let g = self.q.lock().unwrap();
        let v = rx.recv().unwrap();
        *g + v
    }
}
"#;
        let (_, findings) = graph_of(&[("crates/app/src/lib.rs", src)]);
        assert!(
            findings.iter().all(|f| f.rule != Rule::GuardBlocking),
            "{findings:?}"
        );
    }

    #[test]
    fn guard_held_across_kernel_entry_call_is_flagged() {
        let src = r#"
use std::sync::Mutex;
pub struct S { cache: Mutex<u64> }
impl S {
    pub fn answer(&self, k: &Kernel) -> u64 {
        let g = self.cache.lock().unwrap();
        let _ = k.estimate_batch(&[]);
        *g
    }
}
"#;
        let (_, findings) = graph_of(&[("crates/app/src/lib.rs", src)]);
        let hits: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == Rule::GuardBlocking)
            .collect();
        assert_eq!(hits.len(), 1, "{findings:?}");
        assert!(
            hits[0].message.contains("kernel entry"),
            "{}",
            hits[0].message
        );
    }
}
