//! A small lexical pass over Rust source: good enough to tell code from
//! comments and string literals, which is all the rules need.
//!
//! Instead of producing a token stream, [`mask`] produces two parallel views
//! of the file with identical line structure:
//!
//! - `code`: the source with every comment and string-literal *body* blanked
//!   to spaces (structural quotes are kept). Searching this view for
//!   `unsafe` or `.unwrap(` can never match inside a comment, a doc string,
//!   a raw string, or a char literal.
//! - `comment`: the inverse — only comment text survives (including the
//!   `//` / `/* */` markers), everything else is blanked.
//!
//! The lexer understands the constructs that defeat naive regex scans:
//! nested block comments, raw strings (`r"…"`, `r#"…"#`, `br##"…"##`), byte
//! strings, escape sequences, and the char-literal vs. lifetime ambiguity
//! (`'a'` vs. `<'a>`).

/// Parallel code/comment views of one source file (see module docs).
#[derive(Debug)]
pub struct Masked {
    /// Per line: source with comments and literal bodies blanked.
    pub code: Vec<String>,
    /// Per line: comment text only (markers included), the rest blanked.
    pub comment: Vec<String>,
}

/// True for bytes that can appear in a Rust identifier.
pub fn is_ident_byte(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphanumeric()
}

fn prev_is_ident(b: &[u8], i: usize) -> bool {
    i > 0 && is_ident_byte(b[i - 1])
}

/// If `b[i..]` opens a raw (byte) string (`r"`, `r#"`, `br##"` …), return
/// `(index of the opening quote, number of hashes)`.
fn raw_string_open(b: &[u8], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if j >= b.len() || b[j] != b'r' {
        return None;
    }
    j += 1;
    let mut hashes = 0usize;
    while j < b.len() && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    if j < b.len() && b[j] == b'"' {
        Some((j, hashes))
    } else {
        None
    }
}

/// Split source into the parallel code/comment views.
pub fn mask(src: &str) -> Masked {
    let b = src.as_bytes();
    let n = b.len();
    let mut code = vec![b' '; n];
    let mut comment = vec![b' '; n];
    // Newlines live in both views so line numbers stay aligned.
    for (i, &c) in b.iter().enumerate() {
        if c == b'\n' {
            code[i] = b'\n';
            comment[i] = b'\n';
        }
    }

    let mut i = 0usize;
    while i < n {
        let c = b[i];
        if c == b'\n' {
            i += 1;
            continue;
        }
        // Line comment: runs to end of line.
        if c == b'/' && i + 1 < n && b[i + 1] == b'/' {
            while i < n && b[i] != b'\n' {
                comment[i] = b[i];
                i += 1;
            }
            continue;
        }
        // Block comment: Rust block comments nest.
        if c == b'/' && i + 1 < n && b[i + 1] == b'*' {
            let mut depth = 0usize;
            while i < n {
                if b[i] == b'/' && i + 1 < n && b[i + 1] == b'*' {
                    depth += 1;
                    comment[i] = b'/';
                    comment[i + 1] = b'*';
                    i += 2;
                } else if b[i] == b'*' && i + 1 < n && b[i + 1] == b'/' {
                    depth = depth.saturating_sub(1);
                    comment[i] = b'*';
                    comment[i + 1] = b'/';
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    if b[i] != b'\n' {
                        comment[i] = b[i];
                    }
                    i += 1;
                }
            }
            continue;
        }
        // Raw (byte) string: no escapes, terminated by `"` + matching hashes.
        if (c == b'r' || c == b'b') && !prev_is_ident(b, i) {
            if let Some((quote, hashes)) = raw_string_open(b, i) {
                code[i..=quote].copy_from_slice(&b[i..=quote]);
                i = quote + 1;
                while i < n {
                    if b[i] == b'"'
                        && i + hashes < n
                        && b[i + 1..i + 1 + hashes].iter().all(|&h| h == b'#')
                    {
                        code[i] = b'"';
                        code[i + 1..i + 1 + hashes].fill(b'#');
                        i += 1 + hashes;
                        break;
                    }
                    i += 1;
                }
                continue;
            }
        }
        // Plain or byte string, with escapes.
        if c == b'"' || (c == b'b' && !prev_is_ident(b, i) && i + 1 < n && b[i + 1] == b'"') {
            if c == b'b' {
                code[i] = b'b';
                i += 1;
            }
            code[i] = b'"';
            i += 1;
            while i < n {
                if b[i] == b'\\' {
                    i += 2;
                } else if b[i] == b'"' {
                    code[i] = b'"';
                    i += 1;
                    break;
                } else {
                    i += 1;
                }
            }
            continue;
        }
        // Char literal vs. lifetime: `'x'` / `'\n'` are chars, `'a` in
        // `<'a>` (no closing quote within two bytes) is a lifetime.
        if c == b'\'' {
            let is_char = i + 1 < n
                && (b[i + 1] == b'\\' || (i + 2 < n && b[i + 2] == b'\'' && b[i + 1] != b'\''));
            if is_char {
                code[i] = b'\'';
                i += 1;
                while i < n {
                    if b[i] == b'\\' {
                        i += 2;
                    } else if b[i] == b'\'' {
                        code[i] = b'\'';
                        i += 1;
                        break;
                    } else {
                        i += 1;
                    }
                }
            } else {
                code[i] = b'\'';
                i += 1;
            }
            continue;
        }
        code[i] = c;
        i += 1;
    }

    Masked {
        code: to_lines(&code),
        comment: to_lines(&comment),
    }
}

fn to_lines(buf: &[u8]) -> Vec<String> {
    String::from_utf8_lossy(buf)
        .lines()
        .map(|l| l.to_string())
        .collect()
}

/// First occurrence of `word` in `line` at identifier boundaries.
pub fn find_word(line: &str, word: &str) -> Option<usize> {
    debug_assert!(word.bytes().all(|c| c.is_ascii()));
    let b = line.as_bytes();
    let mut start = 0usize;
    while let Some(p) = line.get(start..).and_then(|s| s.find(word)) {
        let at = start + p;
        let end = at + word.len();
        let before_ok = at == 0 || !is_ident_byte(b[at - 1]);
        let after_ok = end >= b.len() || !is_ident_byte(b[end]);
        if before_ok && after_ok {
            return Some(at);
        }
        start = at + 1;
    }
    None
}

/// Does `line` contain a method call `.name(` (whitespace tolerated before
/// the paren, but not other tokens — so `.unwrap` does not match
/// `.unwrap_or(` and a bare field access does not match)?
pub fn method_call(line: &str, name: &str) -> Option<usize> {
    let b = line.as_bytes();
    let pat = format!(".{name}");
    let mut start = 0usize;
    while let Some(p) = line.get(start..).and_then(|s| s.find(&pat)) {
        let at = start + p;
        let mut end = at + pat.len();
        if end >= b.len() || !is_ident_byte(b[end]) {
            while end < b.len() && (b[end] == b' ' || b[end] == b'\t') {
                end += 1;
            }
            if end < b.len() && b[end] == b'(' {
                return Some(at);
            }
        }
        start = at + 1;
    }
    None
}

/// Does `line` invoke the macro `name!`?
pub fn macro_call(line: &str, name: &str) -> Option<usize> {
    let b = line.as_bytes();
    let mut start = 0usize;
    while let Some(p) = line.get(start..).and_then(|s| s.find(name)) {
        let at = start + p;
        let end = at + name.len();
        let before_ok = at == 0 || (!is_ident_byte(b[at - 1]) && b[at - 1] != b'.');
        if before_ok && end < b.len() && b[end] == b'!' {
            return Some(at);
        }
        start = at + 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> String {
        mask(src).code.join("\n")
    }

    fn comment_of(src: &str) -> String {
        mask(src).comment.join("\n")
    }

    #[test]
    fn line_comments_are_masked_out_of_code() {
        let m = mask("let x = 1; // unsafe unwrap()\nlet y = 2;");
        assert!(!m.code[0].contains("unsafe"));
        assert!(m.comment[0].contains("unsafe unwrap()"));
        assert_eq!(m.code[1].trim(), "let y = 2;");
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner unsafe */ still comment */ b";
        let c = code_of(src);
        assert!(c.contains('a') && c.contains('b'));
        assert!(!c.contains("unsafe"));
        assert!(!c.contains("still"));
        assert!(comment_of(src).contains("inner unsafe"));
    }

    #[test]
    fn strings_are_blanked_but_quotes_survive() {
        let c = code_of(r#"let s = "unsafe { x.unwrap() }"; f(s);"#);
        assert!(!c.contains("unsafe"));
        assert!(!c.contains("unwrap"));
        assert!(c.contains("let s = \""));
        assert!(c.contains("f(s);"));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let c = code_of(r#"let s = "a\"unsafe\"b"; g();"#);
        assert!(!c.contains("unsafe"));
        assert!(c.contains("g();"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = "let s = r##\"contains \"quotes\" and unsafe\"##; h();";
        let c = code_of(src);
        assert!(!c.contains("unsafe"));
        assert!(!c.contains("quotes"));
        assert!(c.contains("h();"));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let c = code_of(r#"let a = b"unsafe"; let b_ = b'x'; k();"#);
        assert!(!c.contains("unsafe"));
        assert!(c.contains("k();"));
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        // Lifetimes stay in the code view untouched.
        assert_eq!(code_of(src), src);
    }

    #[test]
    fn char_literals_are_blanked() {
        let c = code_of("let q = '\\''; let z = 'u'; m();");
        assert!(!c.contains('u') || !c.contains("'u'"));
        assert!(c.contains("m();"));
    }

    #[test]
    fn multiline_string_keeps_line_count() {
        let src = "let s = \"line one\nline two unsafe\";\nlet t = 3;";
        let m = mask(src);
        assert_eq!(m.code.len(), 3);
        assert!(!m.code.join("\n").contains("unsafe"));
        assert_eq!(m.code[2].trim(), "let t = 3;");
    }

    #[test]
    fn find_word_respects_boundaries() {
        assert!(find_word("unsafe { }", "unsafe").is_some());
        assert!(find_word("unsafe_sites += 1;", "unsafe").is_none());
        assert!(find_word("do_unsafe()", "unsafe").is_none());
    }

    #[test]
    fn method_call_is_exact() {
        assert!(method_call("x.unwrap()", "unwrap").is_some());
        assert!(method_call("x.unwrap ()", "unwrap").is_some());
        assert!(method_call("x.unwrap_or(0)", "unwrap").is_none());
        assert!(method_call("x.expect(\"m\")", "expect").is_some());
        assert!(method_call("map.get(k)", "unwrap").is_none());
    }

    #[test]
    fn macro_call_is_exact() {
        assert!(macro_call("panic!(\"boom\")", "panic").is_some());
        assert!(macro_call("core::panic!(\"boom\")", "panic").is_some());
        assert!(macro_call("no_panic(x)", "panic").is_none());
        assert!(macro_call("x.panic!()", "panic").is_none());
    }
}
