//! The five workspace rules, plus the suppression machinery they share.
//!
//! All rules operate on the masked code/comment views from [`crate::lex`],
//! so string literals and comments can never produce false code matches.
//! Findings are attached to 1-based line numbers; a finding on line `L` can
//! be waived by a suppression comment on `L` itself (trailing) or on the
//! contiguous run of comment/attribute/blank lines directly above `L`.

use std::io;

use crate::lex::{find_word, is_ident_byte, macro_call, method_call};
use crate::{Config, Finding, Inventory, Site, SourceFile};

/// The rule set. Names (from [`Rule::name`]) are what appear in output and
/// in suppression comments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// Every `unsafe` block or fn carries a SAFETY justification.
    UnsafeSafety,
    /// No panicking constructs in non-test code of hostile-input files.
    NoPanicHostile,
    /// SeqCst, and Relaxed in RMW/flag-publish position, need justification.
    AtomicsOrdering,
    /// Hot-path-marked functions must not allocate.
    NoAllocHotPath,
    /// Every wire enum variant is exercised by the crate's test suites.
    WireKindCoverage,
    /// Suppressions themselves must be well-formed and carry a reason.
    Suppression,
}

impl Rule {
    pub fn name(self) -> &'static str {
        match self {
            Rule::UnsafeSafety => "unsafe-safety-comment",
            Rule::NoPanicHostile => "no-panic-on-hostile-input",
            Rule::AtomicsOrdering => "atomics-ordering-audit",
            Rule::NoAllocHotPath => "no-alloc-in-hot-path",
            Rule::WireKindCoverage => "wire-kind-coverage",
            Rule::Suppression => "suppression",
        }
    }

    /// Rules that may be named in a suppression comment. `suppression`
    /// findings are deliberately not waivable — that would be circular.
    pub fn from_name(name: &str) -> Option<Rule> {
        match name {
            "unsafe-safety-comment" => Some(Rule::UnsafeSafety),
            "no-panic-on-hostile-input" => Some(Rule::NoPanicHostile),
            "atomics-ordering-audit" => Some(Rule::AtomicsOrdering),
            "no-alloc-in-hot-path" => Some(Rule::NoAllocHotPath),
            "wire-kind-coverage" => Some(Rule::WireKindCoverage),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Shared line-level helpers
// ---------------------------------------------------------------------------

/// Strip comment markers (`//`, `///`, `//!`, leading `*` of block-comment
/// continuation lines) and surrounding whitespace from a comment-view line.
fn comment_content(line: &str) -> &str {
    line.trim()
        .trim_start_matches('/')
        .trim_start_matches(['!', '*'])
        .trim()
}

fn is_attr_line(code: &str) -> bool {
    let t = code.trim();
    t.starts_with("#[") || t.starts_with("#!")
}

/// Candidate comment lines for justifying/suppressing a finding on `line`:
/// the line itself plus the contiguous run of comment/attribute/blank lines
/// directly above it.
fn context_lines(f: &SourceFile, line: usize) -> Vec<usize> {
    let mut out = vec![line];
    let mut i = line;
    while i > 0 {
        i -= 1;
        let code = f.code[i].trim();
        if code.is_empty() || is_attr_line(&f.code[i]) {
            out.push(i);
        } else {
            break;
        }
    }
    out
}

/// Parse a suppression comment line into `(rule name, reason)`.
/// Syntax (start-anchored so prose mentioning the syntax is not parsed):
/// a comment whose content begins `lint: allow(<rule>) <reason>`.
fn parse_suppression(comment_line: &str) -> Option<(&str, &str)> {
    let c = comment_content(comment_line);
    let rest = c.strip_prefix("lint: allow(")?;
    let close = rest.find(')')?;
    Some((rest[..close].trim(), rest[close + 1..].trim()))
}

fn suppressed(f: &SourceFile, line: usize, rule: Rule) -> bool {
    context_lines(f, line).into_iter().any(|i| {
        parse_suppression(&f.comment[i])
            .and_then(|(name, _)| Rule::from_name(name))
            .is_some_and(|r| r == rule)
    })
}

/// `ordering:` marker in a comment (case-insensitive), excluding the path
/// separator in prose like "Ordering::Relaxed".
fn has_ordering_marker(text: &str) -> bool {
    let low = text.to_ascii_lowercase();
    let mut start = 0usize;
    while let Some(p) = low.get(start..).and_then(|s| s.find("ordering:")) {
        let after = start + p + "ordering:".len();
        if low.as_bytes().get(after) != Some(&b':') {
            return true;
        }
        start = after;
    }
    false
}

/// End line of the item starting at `start`: the line closing its brace
/// block, or the line of a terminating `;` for brace-less items.
pub fn item_span(code: &[String], start: usize) -> Option<usize> {
    let mut depth = 0i64;
    let mut seen_brace = false;
    for (li, line) in code.iter().enumerate().skip(start) {
        for c in line.chars() {
            match c {
                '{' => {
                    depth += 1;
                    seen_brace = true;
                }
                '}' => {
                    depth -= 1;
                    if seen_brace && depth <= 0 {
                        return Some(li);
                    }
                }
                ';' if !seen_brace && depth == 0 => return Some(li),
                _ => {}
            }
        }
    }
    None
}

/// Per line: is it inside a `#[cfg(test)]` item (test module or test-only
/// item)? Rules that target production code skip these lines.
pub fn test_lines(code: &[String]) -> Vec<bool> {
    let mut t = vec![false; code.len()];
    let mut i = 0usize;
    while i < code.len() {
        if code[i].trim().starts_with("#[cfg(test)]") {
            if let Some(end) = item_span(code, i) {
                for flag in &mut t[i..=end] {
                    *flag = true;
                }
                i = end + 1;
                continue;
            }
        }
        i += 1;
    }
    t
}

fn site(f: &SourceFile, i: usize) -> Site {
    Site {
        file: f.rel.clone(),
        line: i + 1,
        excerpt: f
            .raw
            .get(i)
            .map(|l| l.trim().to_string())
            .unwrap_or_default(),
    }
}

// ---------------------------------------------------------------------------
// Rule 1: unsafe-safety-comment
// ---------------------------------------------------------------------------

fn has_safety_comment(f: &SourceFile, line: usize) -> bool {
    context_lines(f, line)
        .into_iter()
        .any(|i| f.comment[i].contains("SAFETY") || f.comment[i].contains("# Safety"))
}

// ---------------------------------------------------------------------------
// Rule 2: no-panic-on-hostile-input
// ---------------------------------------------------------------------------

const PANIC_METHODS: &[&str] = &[
    "unwrap",
    "expect",
    "unwrap_err",
    "expect_err",
    "unwrap_unchecked",
];
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Rust keywords that may lexically precede `[` without forming an index
/// expression (`&mut [f32]`, `let [a, b] = …`, `return [0; 4]`, …).
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "static", "struct", "super", "trait", "true", "type", "union",
    "unsafe", "use", "where", "while",
];

/// Position of a direct index expression `expr[…]` on this line, if any.
/// Heuristic: `[` preceded (ignoring spaces) by an identifier that is not a
/// keyword, or by `)`, `]`, or `?` — which excludes attributes, `vec![…]`,
/// slice types, array literals, and slice patterns.
fn index_position(line: &str) -> Option<usize> {
    let b = line.as_bytes();
    for (p, &c) in b.iter().enumerate() {
        if c != b'[' {
            continue;
        }
        let mut q = p;
        while q > 0 && (b[q - 1] == b' ' || b[q - 1] == b'\t') {
            q -= 1;
        }
        if q == 0 {
            continue;
        }
        let prev = b[q - 1];
        if prev == b')' || prev == b']' || prev == b'?' {
            return Some(p);
        }
        if is_ident_byte(prev) {
            let mut s = q - 1;
            while s > 0 && is_ident_byte(b[s - 1]) {
                s -= 1;
            }
            // A lifetime (`&'a [u8]`) is a type position, not an index.
            let is_lifetime = s > 0 && b[s - 1] == b'\'';
            if let Some(ident) = line.get(s..q) {
                if !KEYWORDS.contains(&ident) && !is_lifetime {
                    return Some(p);
                }
            }
        }
    }
    None
}

fn check_hostile_line(f: &SourceFile, i: usize, findings: &mut Vec<Finding>) {
    let code = &f.code[i];
    let mut push = |msg: String| {
        if !suppressed(f, i, Rule::NoPanicHostile) {
            findings.push(Finding {
                file: f.rel.clone(),
                line: i + 1,
                rule: Rule::NoPanicHostile,
                message: msg,
            });
        }
    };
    for m in PANIC_METHODS {
        if method_call(code, m).is_some() {
            push(format!(
                "`.{m}()` can panic on hostile input; propagate a typed error instead"
            ));
        }
    }
    for m in PANIC_MACROS {
        if macro_call(code, m).is_some() {
            push(format!(
                "`{m}!` is reachable from hostile input; return an error instead"
            ));
        }
    }
    if index_position(code).is_some() {
        push(
            "direct slice/array indexing can panic on hostile input; use `.get()` or a \
             length-checked helper"
                .to_string(),
        );
    }
}

// ---------------------------------------------------------------------------
// Rule 3: atomics-ordering-audit
// ---------------------------------------------------------------------------

/// RMW operations where a Relaxed result is only conventionally fine when
/// the value is discarded (pure counters). If the value is consumed, the
/// site is ordering-sensitive and must be justified.
const RMW_COUNTERS: &[&str] = &[
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "fetch_and",
    "fetch_xor",
    "fetch_nand",
    "fetch_max",
    "fetch_min",
];

/// RMW operations that are always ordering-sensitive under Relaxed.
const RMW_ALWAYS: &[&str] = &[
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_update",
];

/// Is the RMW result consumed (bound, compared, or returned) rather than
/// discarded as a statement? Line-local heuristic.
fn value_consumed(line: &str, callpos: usize) -> bool {
    let t = line.trim_end();
    if !t.ends_with(';') {
        return true;
    }
    let lead = line.trim_start();
    for kw in ["if ", "while ", "return ", "match "] {
        if lead.starts_with(kw) {
            return true;
        }
    }
    let b = line.as_bytes();
    for i in 0..callpos.min(b.len().saturating_sub(1)) {
        if b[i] == b'=' {
            let prev = if i > 0 { b[i - 1] } else { b' ' };
            let next = b[i + 1];
            if !matches!(prev, b'=' | b'!' | b'<' | b'>') && !matches!(next, b'=' | b'>') {
                return true;
            }
        }
    }
    false
}

fn check_atomics_line(f: &SourceFile, i: usize, findings: &mut Vec<Finding>) {
    let code = &f.code[i];
    let mut push = |msg: String| {
        if !suppressed(f, i, Rule::AtomicsOrdering)
            && !context_lines(f, i)
                .into_iter()
                .any(|k| has_ordering_marker(&f.comment[k]))
        {
            findings.push(Finding {
                file: f.rel.clone(),
                line: i + 1,
                rule: Rule::AtomicsOrdering,
                message: msg,
            });
        }
    };
    if find_word(code, "SeqCst").is_some() {
        push(
            "SeqCst is almost never required here; justify it with an `// ordering:` comment \
             or weaken it"
                .to_string(),
        );
    }
    if find_word(code, "Relaxed").is_some() {
        if method_call(code, "store").is_some() {
            push(
                "Relaxed store publishing a flag/value needs an `// ordering:` justification \
                 (Release, or an argument why no data is published)"
                    .to_string(),
            );
        }
        for m in RMW_ALWAYS {
            if method_call(code, m).is_some() {
                push(format!(
                    "Relaxed `{m}` is ordering-sensitive; add an `// ordering:` justification"
                ));
            }
        }
        for m in RMW_COUNTERS {
            if let Some(p) = method_call(code, m) {
                if value_consumed(code, p) {
                    push(format!(
                        "Relaxed `{m}` whose result is consumed needs an `// ordering:` \
                         justification (pure statement counters are the documented convention)"
                    ));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 4: no-alloc-in-hot-path
// ---------------------------------------------------------------------------

const ALLOC_PATHS: &[&str] = &[
    "Vec::new",
    "Vec::with_capacity",
    "VecDeque::new",
    "VecDeque::with_capacity",
    "String::new",
    "String::from",
    "String::with_capacity",
    "Box::new",
    "Rc::new",
    "Arc::new",
    "HashMap::new",
    "HashSet::new",
    "BTreeMap::new",
    "BTreeSet::new",
];
const ALLOC_METHODS: &[&str] = &[
    "to_vec",
    "to_string",
    "to_owned",
    "into_owned",
    "collect",
    "clone",
];
const ALLOC_MACROS: &[&str] = &["vec", "format"];

fn alloc_token(code: &str) -> Option<&'static str> {
    for p in ALLOC_PATHS {
        if let Some(at) = code.find(p) {
            let before_ok = at == 0 || !is_ident_byte(code.as_bytes()[at - 1]);
            let end = at + p.len();
            let after_ok = end >= code.len() || !is_ident_byte(code.as_bytes()[end]);
            if before_ok && after_ok {
                return Some(p);
            }
        }
    }
    for m in ALLOC_METHODS {
        if method_call(code, m).is_some() {
            return Some(m);
        }
    }
    ALLOC_MACROS
        .iter()
        .find(|m| macro_call(code, m).is_some())
        .copied()
}

const HOT_PATH_MARKER: &str = "lint: hot-path";

fn check_hot_paths(f: &SourceFile, findings: &mut Vec<Finding>) {
    for i in 0..f.comment.len() {
        if !comment_content(&f.comment[i]).starts_with(HOT_PATH_MARKER) {
            continue;
        }
        // The marker binds to the next `fn` through blank/comment/attribute
        // lines (or a trailing marker on the fn line itself).
        let mut fn_line = None;
        for j in i..f.code.len().min(i + 16) {
            if find_word(&f.code[j], "fn").is_some() {
                fn_line = Some(j);
                break;
            }
            let t = f.code[j].trim();
            if j > i && !t.is_empty() && !is_attr_line(&f.code[j]) {
                break;
            }
        }
        let Some(fl) = fn_line else {
            findings.push(Finding {
                file: f.rel.clone(),
                line: i + 1,
                rule: Rule::NoAllocHotPath,
                message: "hot-path marker is not attached to a function".to_string(),
            });
            continue;
        };
        let Some(end) = item_span(&f.code, fl) else {
            continue;
        };
        for k in fl..=end {
            if let Some(tok) = alloc_token(&f.code[k]) {
                if !suppressed(f, k, Rule::NoAllocHotPath) {
                    findings.push(Finding {
                        file: f.rel.clone(),
                        line: k + 1,
                        rule: Rule::NoAllocHotPath,
                        message: format!("allocating call `{tok}` inside a hot-path function"),
                    });
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Suppression hygiene
// ---------------------------------------------------------------------------

fn check_suppressions(f: &SourceFile, findings: &mut Vec<Finding>) {
    for (i, cl) in f.comment.iter().enumerate() {
        if !comment_content(cl).starts_with("lint: allow(") {
            continue;
        }
        let msg = match parse_suppression(cl) {
            None => "malformed suppression: missing closing parenthesis".to_string(),
            Some((name, _)) if Rule::from_name(name).is_none() => {
                format!("suppression names unknown rule `{name}`")
            }
            Some((name, "")) => {
                format!("suppression of `{name}` must state a reason")
            }
            Some(_) => continue,
        };
        findings.push(Finding {
            file: f.rel.clone(),
            line: i + 1,
            rule: Rule::Suppression,
            message: msg,
        });
    }
}

// ---------------------------------------------------------------------------
// Per-file driver
// ---------------------------------------------------------------------------

pub fn check_file(cfg: &Config, f: &SourceFile, findings: &mut Vec<Finding>, inv: &mut Inventory) {
    check_suppressions(f, findings);
    let hostile = cfg.is_hostile(&f.rel);
    for i in 0..f.code.len() {
        let code = &f.code[i];
        if find_word(code, "unsafe").is_some() {
            inv.unsafe_sites.push(site(f, i));
            if !has_safety_comment(f, i) && !suppressed(f, i, Rule::UnsafeSafety) {
                findings.push(Finding {
                    file: f.rel.clone(),
                    line: i + 1,
                    rule: Rule::UnsafeSafety,
                    message: "`unsafe` without an adjacent `SAFETY:` justification".to_string(),
                });
            }
        }
        if code.contains("Ordering::") {
            inv.atomics.push(site(f, i));
        }
        if !f.is_test[i] {
            if hostile {
                check_hostile_line(f, i, findings);
            }
            check_atomics_line(f, i, findings);
        }
    }
    check_hot_paths(f, findings);
}

// ---------------------------------------------------------------------------
// Rule 5: wire-kind-coverage (cross-file)
// ---------------------------------------------------------------------------

/// Find a `(pub) enum <name>` declaration; return (line, variant names).
fn find_enum(f: &SourceFile, name: &str) -> Option<(usize, Vec<String>)> {
    for (i, line) in f.code.iter().enumerate() {
        let Some(e) = find_word(line, "enum") else {
            continue;
        };
        let rest = line[e + "enum".len()..].trim_start();
        let matches_name = rest.starts_with(name)
            && !rest
                .as_bytes()
                .get(name.len())
                .is_some_and(|&c| is_ident_byte(c));
        if !matches_name {
            continue;
        }
        let end = item_span(&f.code, i)?;
        let mut depth = 0i64;
        let mut variants = Vec::new();
        for li in i..=end {
            if li > i && depth == 1 {
                let t = f.code[li].trim();
                let ident: String = t
                    .bytes()
                    .take_while(|&c| is_ident_byte(c))
                    .map(char::from)
                    .collect();
                if !ident.is_empty() && !t.starts_with('#') {
                    variants.push(ident);
                }
            }
            for c in f.code[li].chars() {
                match c {
                    '{' => depth += 1,
                    '}' => depth -= 1,
                    _ => {}
                }
            }
        }
        return Some((i, variants));
    }
    None
}

/// `path::Variant` occurrence with identifier boundaries on both sides.
fn contains_path(text: &str, pat: &str) -> bool {
    let b = text.as_bytes();
    let mut start = 0usize;
    while let Some(p) = text.get(start..).and_then(|s| s.find(pat)) {
        let at = start + p;
        let end = at + pat.len();
        let before_ok = at == 0 || !is_ident_byte(b[at - 1]);
        let after_ok = end >= b.len() || !is_ident_byte(b[end]);
        if before_ok && after_ok {
            return true;
        }
        start = at + 1;
    }
    false
}

pub fn check_wire_coverage(
    cfg: &Config,
    sources: &[SourceFile],
    findings: &mut Vec<Finding>,
) -> io::Result<()> {
    for f in sources {
        let Some((decl_line, variants)) = find_enum(f, &cfg.wire_enum) else {
            continue;
        };
        let comps: Vec<&str> = f.rel.split('/').collect();
        let Some(src_idx) = comps.iter().rposition(|c| *c == "src") else {
            continue;
        };
        let crate_rel = comps[..src_idx].join("/");
        let tests_dir = cfg.root.join(&crate_rel).join("tests");
        let mut suites = Vec::new();
        if tests_dir.is_dir() {
            crate::collect_rs(&cfg.root, &tests_dir, &mut suites)?;
        }
        if suppressed(f, decl_line, Rule::WireKindCoverage) {
            continue;
        }
        if suites.is_empty() {
            findings.push(Finding {
                file: f.rel.clone(),
                line: decl_line + 1,
                rule: Rule::WireKindCoverage,
                message: format!(
                    "wire enum `{}` has no `{}/tests` suite exercising its variants",
                    cfg.wire_enum, crate_rel
                ),
            });
            continue;
        }
        let mut text = String::new();
        for s in &suites {
            text.push_str(&SourceFile::load(&cfg.root, s)?.code.join("\n"));
            text.push('\n');
        }
        for v in &variants {
            let pat = format!("{}::{v}", cfg.wire_enum);
            if !contains_path(&text, &pat) {
                findings.push(Finding {
                    file: f.rel.clone(),
                    line: decl_line + 1,
                    rule: Rule::WireKindCoverage,
                    message: format!(
                        "variant `{pat}` is not exercised by any test under `{crate_rel}/tests`"
                    ),
                });
            }
        }
    }
    Ok(())
}
