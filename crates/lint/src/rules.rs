//! The workspace rules, plus the suppression machinery they share.
//!
//! All rules operate on the masked code/comment views from [`crate::lex`],
//! so string literals and comments can never produce false code matches.
//! Findings are attached to 1-based line numbers; a finding on line `L` can
//! be waived by a suppression comment on `L` itself (trailing) or on the
//! contiguous run of comment/attribute/blank lines directly above `L`.

use std::io;

use crate::lex::{find_word, is_ident_byte, macro_call, method_call};
use crate::{Config, Finding, Inventory, Site, SourceFile};

/// The rule set. Names (from [`Rule::name`]) are what appear in output and
/// in suppression comments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// Every `unsafe` block or fn carries a SAFETY justification.
    UnsafeSafety,
    /// No panicking constructs in non-test code of hostile-input files.
    NoPanicHostile,
    /// SeqCst, and Relaxed in RMW/flag-publish position, need justification.
    AtomicsOrdering,
    /// Hot-path-marked functions must not allocate.
    NoAllocHotPath,
    /// Every wire enum variant is exercised by the crate's test suites.
    WireKindCoverage,
    /// No cycle in the cross-file lock-acquisition graph.
    LockOrder,
    /// Counters surfaced in `MetricsSnapshot` are read only through the
    /// registry's sanctioned readers (or a same-named getter).
    CounterDrift,
    /// `Instant::now()` in serve/obs production code must start an observed
    /// span or carry a `// timing:` justification.
    InstantSpan,
    /// Every wire error-enum variant is mapped in the error path and
    /// constructed in tests.
    WireErrorExhaustive,
    /// Wire-read lengths must pass a clamp before reaching an allocation
    /// or indexing sink (intra-procedural dataflow, hostile files only).
    HostileLengthTaint,
    /// No lock guard may be live across a blocking call (join, channel
    /// send/recv, condvar wait, socket IO, kernel entry).
    GuardBlocking,
    /// Every channel creation needs a `// capacity:` justification.
    ChannelCapacity,
    /// Suppressions themselves must be well-formed and carry a reason.
    Suppression,
}

impl Rule {
    /// Every rule, in the order `--list-rules` prints them.
    pub const ALL: [Rule; 13] = [
        Rule::UnsafeSafety,
        Rule::NoPanicHostile,
        Rule::AtomicsOrdering,
        Rule::NoAllocHotPath,
        Rule::WireKindCoverage,
        Rule::LockOrder,
        Rule::CounterDrift,
        Rule::InstantSpan,
        Rule::WireErrorExhaustive,
        Rule::HostileLengthTaint,
        Rule::GuardBlocking,
        Rule::ChannelCapacity,
        Rule::Suppression,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Rule::UnsafeSafety => "unsafe-safety-comment",
            Rule::NoPanicHostile => "no-panic-on-hostile-input",
            Rule::AtomicsOrdering => "atomics-ordering-audit",
            Rule::NoAllocHotPath => "no-alloc-in-hot-path",
            Rule::WireKindCoverage => "wire-kind-coverage",
            Rule::LockOrder => "lock-order",
            Rule::CounterDrift => "relaxed-counter-drift",
            Rule::InstantSpan => "instant-outside-span",
            Rule::WireErrorExhaustive => "wire-error-exhaustiveness",
            Rule::HostileLengthTaint => "hostile-length-taint",
            Rule::GuardBlocking => "guard-held-across-blocking",
            Rule::ChannelCapacity => "channel-capacity-audit",
            Rule::Suppression => "suppression",
        }
    }

    /// One-line description for `--list-rules`.
    pub fn doc(self) -> &'static str {
        match self {
            Rule::UnsafeSafety => "every `unsafe` block/fn carries a SAFETY justification",
            Rule::NoPanicHostile => {
                "no panicking constructs in non-test code of hostile-input decode files"
            }
            Rule::AtomicsOrdering => {
                "SeqCst, and Relaxed in RMW/flag-publish position, need an `// ordering:` comment"
            }
            Rule::NoAllocHotPath => "functions marked `// lint: hot-path` must not allocate",
            Rule::WireKindCoverage => {
                "every wire enum variant is exercised by the owning crate's test suites"
            }
            Rule::LockOrder => {
                "the cross-file lock-acquisition graph must be cycle-free (potential deadlocks)"
            }
            Rule::CounterDrift => {
                "surfaced metrics counters are read via the registry, never ad-hoc `.load()`s"
            }
            Rule::InstantSpan => {
                "`Instant::now()` in serve/obs code starts an observed span or has `// timing:`"
            }
            Rule::WireErrorExhaustive => {
                "every wire error variant is mapped in the error path and constructed in tests"
            }
            Rule::HostileLengthTaint => {
                "wire-read lengths are clamped (`MAX_*`/`.len()`/`.min(…)`) before allocation/indexing"
            }
            Rule::GuardBlocking => {
                "no lock guard is live across join/channel/condvar/socket IO/kernel-entry calls"
            }
            Rule::ChannelCapacity => {
                "every `channel()`/`sync_channel(n)` creation carries a `// capacity:` justification"
            }
            Rule::Suppression => "suppression comments must be well-formed and carry a reason",
        }
    }

    /// Rules that may be named in a suppression comment. `suppression`
    /// findings are deliberately not waivable — that would be circular.
    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL
            .into_iter()
            .find(|r| *r != Rule::Suppression && r.name() == name)
    }
}

// ---------------------------------------------------------------------------
// Shared line-level helpers
// ---------------------------------------------------------------------------

/// Strip comment markers (`//`, `///`, `//!`, leading `*` of block-comment
/// continuation lines) and surrounding whitespace from a comment-view line.
fn comment_content(line: &str) -> &str {
    line.trim()
        .trim_start_matches('/')
        .trim_start_matches(['!', '*'])
        .trim()
}

fn is_attr_line(code: &str) -> bool {
    let t = code.trim();
    t.starts_with("#[") || t.starts_with("#!")
}

/// Candidate comment lines for justifying/suppressing a finding on `line`:
/// the line itself plus the contiguous run of comment/attribute/blank lines
/// directly above it.
fn context_lines(f: &SourceFile, line: usize) -> Vec<usize> {
    let mut out = vec![line];
    let mut i = line;
    while i > 0 {
        i -= 1;
        let code = f.code[i].trim();
        if code.is_empty() || is_attr_line(&f.code[i]) {
            out.push(i);
        } else {
            break;
        }
    }
    out
}

/// Parse a suppression comment line into `(rule name, reason)`.
/// Syntax (start-anchored so prose mentioning the syntax is not parsed):
/// a comment whose content begins `lint: allow(<rule>) <reason>`.
fn parse_suppression(comment_line: &str) -> Option<(&str, &str)> {
    let c = comment_content(comment_line);
    let rest = c.strip_prefix("lint: allow(")?;
    let close = rest.find(')')?;
    Some((rest[..close].trim(), rest[close + 1..].trim()))
}

pub(crate) fn suppressed(f: &SourceFile, line: usize, rule: Rule) -> bool {
    context_lines(f, line).into_iter().any(|i| {
        parse_suppression(&f.comment[i])
            .and_then(|(name, _)| Rule::from_name(name))
            .is_some_and(|r| r == rule)
    })
}

/// `ordering:` marker in a comment (case-insensitive), excluding the path
/// separator in prose like "Ordering::Relaxed".
fn has_ordering_marker(text: &str) -> bool {
    let low = text.to_ascii_lowercase();
    let mut start = 0usize;
    while let Some(p) = low.get(start..).and_then(|s| s.find("ordering:")) {
        let after = start + p + "ordering:".len();
        if low.as_bytes().get(after) != Some(&b':') {
            return true;
        }
        start = after;
    }
    false
}

/// End line of the item starting at `start`: the line closing its brace
/// block, or the line of a terminating `;` for brace-less items.
pub fn item_span(code: &[String], start: usize) -> Option<usize> {
    let mut depth = 0i64;
    let mut seen_brace = false;
    for (li, line) in code.iter().enumerate().skip(start) {
        for c in line.chars() {
            match c {
                '{' => {
                    depth += 1;
                    seen_brace = true;
                }
                '}' => {
                    depth -= 1;
                    if seen_brace && depth <= 0 {
                        return Some(li);
                    }
                }
                ';' if !seen_brace && depth == 0 => return Some(li),
                _ => {}
            }
        }
    }
    None
}

/// Per line: is it inside a `#[cfg(test)]` item (test module or test-only
/// item)? Rules that target production code skip these lines.
pub fn test_lines(code: &[String]) -> Vec<bool> {
    let mut t = vec![false; code.len()];
    let mut i = 0usize;
    while i < code.len() {
        if code[i].trim().starts_with("#[cfg(test)]") {
            if let Some(end) = item_span(code, i) {
                for flag in &mut t[i..=end] {
                    *flag = true;
                }
                i = end + 1;
                continue;
            }
        }
        i += 1;
    }
    t
}

fn site(f: &SourceFile, i: usize) -> Site {
    Site {
        file: f.rel.clone(),
        line: i + 1,
        excerpt: f
            .raw
            .get(i)
            .map(|l| l.trim().to_string())
            .unwrap_or_default(),
    }
}

// ---------------------------------------------------------------------------
// Rule 1: unsafe-safety-comment
// ---------------------------------------------------------------------------

fn has_safety_comment(f: &SourceFile, line: usize) -> bool {
    context_lines(f, line)
        .into_iter()
        .any(|i| f.comment[i].contains("SAFETY") || f.comment[i].contains("# Safety"))
}

// ---------------------------------------------------------------------------
// Rule 2: no-panic-on-hostile-input
// ---------------------------------------------------------------------------

const PANIC_METHODS: &[&str] = &[
    "unwrap",
    "expect",
    "unwrap_err",
    "expect_err",
    "unwrap_unchecked",
];
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Rust keywords that may lexically precede `[` without forming an index
/// expression (`&mut [f32]`, `let [a, b] = …`, `return [0; 4]`, …).
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "static", "struct", "super", "trait", "true", "type", "union",
    "unsafe", "use", "where", "while",
];

/// Position of a direct index expression `expr[…]` on this line, if any.
/// Heuristic: `[` preceded (ignoring spaces) by an identifier that is not a
/// keyword, or by `)`, `]`, or `?` — which excludes attributes, `vec![…]`,
/// slice types, array literals, and slice patterns.
fn index_position(line: &str) -> Option<usize> {
    let b = line.as_bytes();
    for (p, &c) in b.iter().enumerate() {
        if c != b'[' {
            continue;
        }
        let mut q = p;
        while q > 0 && (b[q - 1] == b' ' || b[q - 1] == b'\t') {
            q -= 1;
        }
        if q == 0 {
            continue;
        }
        let prev = b[q - 1];
        if prev == b')' || prev == b']' || prev == b'?' {
            return Some(p);
        }
        if is_ident_byte(prev) {
            let mut s = q - 1;
            while s > 0 && is_ident_byte(b[s - 1]) {
                s -= 1;
            }
            // A lifetime (`&'a [u8]`) is a type position, not an index.
            let is_lifetime = s > 0 && b[s - 1] == b'\'';
            if let Some(ident) = line.get(s..q) {
                if !KEYWORDS.contains(&ident) && !is_lifetime {
                    return Some(p);
                }
            }
        }
    }
    None
}

fn check_hostile_line(f: &SourceFile, i: usize, findings: &mut Vec<Finding>) {
    let code = &f.code[i];
    let mut push = |msg: String| {
        if !suppressed(f, i, Rule::NoPanicHostile) {
            findings.push(Finding {
                file: f.rel.clone(),
                line: i + 1,
                rule: Rule::NoPanicHostile,
                message: msg,
            });
        }
    };
    for m in PANIC_METHODS {
        if method_call(code, m).is_some() {
            push(format!(
                "`.{m}()` can panic on hostile input; propagate a typed error instead"
            ));
        }
    }
    for m in PANIC_MACROS {
        if macro_call(code, m).is_some() {
            push(format!(
                "`{m}!` is reachable from hostile input; return an error instead"
            ));
        }
    }
    if index_position(code).is_some() {
        push(
            "direct slice/array indexing can panic on hostile input; use `.get()` or a \
             length-checked helper"
                .to_string(),
        );
    }
}

// ---------------------------------------------------------------------------
// Rule 3: atomics-ordering-audit
// ---------------------------------------------------------------------------

/// RMW operations where a Relaxed result is only conventionally fine when
/// the value is discarded (pure counters). If the value is consumed, the
/// site is ordering-sensitive and must be justified.
const RMW_COUNTERS: &[&str] = &[
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "fetch_and",
    "fetch_xor",
    "fetch_nand",
    "fetch_max",
    "fetch_min",
];

/// RMW operations that are always ordering-sensitive under Relaxed.
const RMW_ALWAYS: &[&str] = &[
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_update",
];

/// Is the RMW result consumed (bound, compared, or returned) rather than
/// discarded as a statement? Line-local heuristic.
fn value_consumed(line: &str, callpos: usize) -> bool {
    let t = line.trim_end();
    if !t.ends_with(';') {
        return true;
    }
    let lead = line.trim_start();
    for kw in ["if ", "while ", "return ", "match "] {
        if lead.starts_with(kw) {
            return true;
        }
    }
    let b = line.as_bytes();
    for i in 0..callpos.min(b.len().saturating_sub(1)) {
        if b[i] == b'=' {
            let prev = if i > 0 { b[i - 1] } else { b' ' };
            let next = b[i + 1];
            if !matches!(prev, b'=' | b'!' | b'<' | b'>') && !matches!(next, b'=' | b'>') {
                return true;
            }
        }
    }
    false
}

fn check_atomics_line(f: &SourceFile, i: usize, findings: &mut Vec<Finding>) {
    let code = &f.code[i];
    let mut push = |msg: String| {
        if !suppressed(f, i, Rule::AtomicsOrdering)
            && !context_lines(f, i)
                .into_iter()
                .any(|k| has_ordering_marker(&f.comment[k]))
        {
            findings.push(Finding {
                file: f.rel.clone(),
                line: i + 1,
                rule: Rule::AtomicsOrdering,
                message: msg,
            });
        }
    };
    if find_word(code, "SeqCst").is_some() {
        push(
            "SeqCst is almost never required here; justify it with an `// ordering:` comment \
             or weaken it"
                .to_string(),
        );
    }
    if find_word(code, "Relaxed").is_some() {
        if method_call(code, "store").is_some() {
            push(
                "Relaxed store publishing a flag/value needs an `// ordering:` justification \
                 (Release, or an argument why no data is published)"
                    .to_string(),
            );
        }
        for m in RMW_ALWAYS {
            if method_call(code, m).is_some() {
                push(format!(
                    "Relaxed `{m}` is ordering-sensitive; add an `// ordering:` justification"
                ));
            }
        }
        for m in RMW_COUNTERS {
            if let Some(p) = method_call(code, m) {
                if value_consumed(code, p) {
                    push(format!(
                        "Relaxed `{m}` whose result is consumed needs an `// ordering:` \
                         justification (pure statement counters are the documented convention)"
                    ));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 4: no-alloc-in-hot-path
// ---------------------------------------------------------------------------

const ALLOC_PATHS: &[&str] = &[
    "Vec::new",
    "Vec::with_capacity",
    "VecDeque::new",
    "VecDeque::with_capacity",
    "String::new",
    "String::from",
    "String::with_capacity",
    "Box::new",
    "Rc::new",
    "Arc::new",
    "HashMap::new",
    "HashSet::new",
    "BTreeMap::new",
    "BTreeSet::new",
];
const ALLOC_METHODS: &[&str] = &[
    "to_vec",
    "to_string",
    "to_owned",
    "into_owned",
    "collect",
    "clone",
];
const ALLOC_MACROS: &[&str] = &["vec", "format"];

fn alloc_token(code: &str) -> Option<&'static str> {
    for p in ALLOC_PATHS {
        if let Some(at) = code.find(p) {
            let before_ok = at == 0 || !is_ident_byte(code.as_bytes()[at - 1]);
            let end = at + p.len();
            let after_ok = end >= code.len() || !is_ident_byte(code.as_bytes()[end]);
            if before_ok && after_ok {
                return Some(p);
            }
        }
    }
    for m in ALLOC_METHODS {
        if method_call(code, m).is_some() {
            return Some(m);
        }
    }
    ALLOC_MACROS
        .iter()
        .find(|m| macro_call(code, m).is_some())
        .copied()
}

const HOT_PATH_MARKER: &str = "lint: hot-path";

fn check_hot_paths(f: &SourceFile, findings: &mut Vec<Finding>) {
    for i in 0..f.comment.len() {
        if !comment_content(&f.comment[i]).starts_with(HOT_PATH_MARKER) {
            continue;
        }
        // The marker binds to the next `fn` through blank/comment/attribute
        // lines (or a trailing marker on the fn line itself).
        let mut fn_line = None;
        for j in i..f.code.len().min(i + 16) {
            if find_word(&f.code[j], "fn").is_some() {
                fn_line = Some(j);
                break;
            }
            let t = f.code[j].trim();
            if j > i && !t.is_empty() && !is_attr_line(&f.code[j]) {
                break;
            }
        }
        let Some(fl) = fn_line else {
            findings.push(Finding {
                file: f.rel.clone(),
                line: i + 1,
                rule: Rule::NoAllocHotPath,
                message: "hot-path marker is not attached to a function".to_string(),
            });
            continue;
        };
        let Some(end) = item_span(&f.code, fl) else {
            continue;
        };
        for k in fl..=end {
            if let Some(tok) = alloc_token(&f.code[k]) {
                if !suppressed(f, k, Rule::NoAllocHotPath) {
                    findings.push(Finding {
                        file: f.rel.clone(),
                        line: k + 1,
                        rule: Rule::NoAllocHotPath,
                        message: format!("allocating call `{tok}` inside a hot-path function"),
                    });
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 12: channel-capacity-audit
// ---------------------------------------------------------------------------

/// `capacity:` marker in a comment (case-insensitive), mirroring the
/// `ordering:`/`timing:` justification conventions.
fn has_capacity_marker(text: &str) -> bool {
    let low = text.to_ascii_lowercase();
    let mut start = 0usize;
    while let Some(p) = low.get(start..).and_then(|s| s.find("capacity:")) {
        let after = start + p + "capacity:".len();
        if low.as_bytes().get(after) != Some(&b':') {
            return true;
        }
        start = after;
    }
    false
}

/// A channel construction on this code line: `(kind, column)`. Matches
/// `channel(…)`, `channel::<T>(…)`, and `sync_channel(cap)` at identifier
/// boundaries; `sync_channel(0)` is a rendezvous channel, any other
/// capacity expression is `bounded`, plain `channel` is `unbounded`.
fn channel_site(code: &str) -> Option<(&'static str, usize)> {
    for word in ["sync_channel", "channel"] {
        let Some(at) = find_word(code, word) else {
            continue;
        };
        // Skip an optional turbofish (`channel::<WriterMsg>`), then require
        // a call paren so imports (`use mpsc::channel`) never match.
        let mut p = at + word.len();
        let b = code.as_bytes();
        if code[p..].starts_with("::<") {
            let mut depth = 0i64;
            for (i, c) in code[p..].char_indices() {
                match c {
                    '<' => depth += 1,
                    '>' => {
                        depth -= 1;
                        if depth == 0 {
                            p += i + 1;
                            break;
                        }
                    }
                    _ => {}
                }
            }
        }
        if b.get(p) != Some(&b'(') {
            continue;
        }
        if word == "channel" {
            return Some(("unbounded", at));
        }
        let arg: String = code[p + 1..]
            .chars()
            .take_while(|&c| c != ')')
            .collect::<String>()
            .trim()
            .to_string();
        let kind = if arg == "0" { "rendezvous" } else { "bounded" };
        return Some((kind, at));
    }
    None
}

/// Every channel creation must say why its boundedness is right: unbounded
/// queues are unbounded memory under backpressure, rendezvous channels are
/// handoff latency, and a bounded capacity is a tuning decision — all three
/// deserve one `// capacity:` line. The audit also records every site in
/// the `--json` inventory so the workspace's queue topology is reviewable.
fn check_channels(f: &SourceFile, findings: &mut Vec<Finding>, inv: &mut Inventory) {
    for i in 0..f.code.len() {
        let Some((kind, _)) = channel_site(&f.code[i]) else {
            continue;
        };
        let justified = context_lines(f, i)
            .into_iter()
            .any(|k| has_capacity_marker(&f.comment[k]));
        inv.channels.push(crate::ChannelSite {
            file: f.rel.clone(),
            line: i + 1,
            kind,
            justified,
            test: f.is_test[i],
            excerpt: f
                .raw
                .get(i)
                .map(|l| l.trim().to_string())
                .unwrap_or_default(),
        });
        if f.is_test[i] || justified || suppressed(f, i, Rule::ChannelCapacity) {
            continue;
        }
        findings.push(Finding {
            file: f.rel.clone(),
            line: i + 1,
            rule: Rule::ChannelCapacity,
            message: format!(
                "{kind} channel created without a `// capacity:` justification; say why this \
                 boundedness cannot grow without limit (or why blocking sends are safe here)"
            ),
        });
    }
}

// ---------------------------------------------------------------------------
// Suppression hygiene
// ---------------------------------------------------------------------------

fn check_suppressions(f: &SourceFile, findings: &mut Vec<Finding>) {
    for (i, cl) in f.comment.iter().enumerate() {
        if !comment_content(cl).starts_with("lint: allow(") {
            continue;
        }
        let msg = match parse_suppression(cl) {
            None => "malformed suppression: missing closing parenthesis".to_string(),
            Some((name, _)) if Rule::from_name(name).is_none() => {
                format!("suppression names unknown rule `{name}`")
            }
            Some((name, "")) => {
                format!("suppression of `{name}` must state a reason")
            }
            Some(_) => continue,
        };
        findings.push(Finding {
            file: f.rel.clone(),
            line: i + 1,
            rule: Rule::Suppression,
            message: msg,
        });
    }
}

// ---------------------------------------------------------------------------
// Per-file driver
// ---------------------------------------------------------------------------

pub fn check_file(cfg: &Config, f: &SourceFile, findings: &mut Vec<Finding>, inv: &mut Inventory) {
    check_suppressions(f, findings);
    let hostile = cfg.is_hostile(&f.rel);
    for i in 0..f.code.len() {
        let code = &f.code[i];
        if find_word(code, "unsafe").is_some() {
            inv.unsafe_sites.push(site(f, i));
            if !has_safety_comment(f, i) && !suppressed(f, i, Rule::UnsafeSafety) {
                findings.push(Finding {
                    file: f.rel.clone(),
                    line: i + 1,
                    rule: Rule::UnsafeSafety,
                    message: "`unsafe` without an adjacent `SAFETY:` justification".to_string(),
                });
            }
        }
        if code.contains("Ordering::") {
            inv.atomics.push(site(f, i));
        }
        if !f.is_test[i] {
            if hostile {
                check_hostile_line(f, i, findings);
            }
            check_atomics_line(f, i, findings);
        }
    }
    check_hot_paths(f, findings);
    check_channels(f, findings, inv);
}

// ---------------------------------------------------------------------------
// Rule 5: wire-kind-coverage (cross-file)
// ---------------------------------------------------------------------------

/// Find a `(pub) enum <name>` declaration; return (line, variant names).
fn find_enum(f: &SourceFile, name: &str) -> Option<(usize, Vec<String>)> {
    for (i, line) in f.code.iter().enumerate() {
        let Some(e) = find_word(line, "enum") else {
            continue;
        };
        let rest = line[e + "enum".len()..].trim_start();
        let matches_name = rest.starts_with(name)
            && !rest
                .as_bytes()
                .get(name.len())
                .is_some_and(|&c| is_ident_byte(c));
        if !matches_name {
            continue;
        }
        let end = item_span(&f.code, i)?;
        let mut depth = 0i64;
        let mut variants = Vec::new();
        for li in i..=end {
            if li > i && depth == 1 {
                let t = f.code[li].trim();
                let ident: String = t
                    .bytes()
                    .take_while(|&c| is_ident_byte(c))
                    .map(char::from)
                    .collect();
                if !ident.is_empty() && !t.starts_with('#') {
                    variants.push(ident);
                }
            }
            for c in f.code[li].chars() {
                match c {
                    '{' => depth += 1,
                    '}' => depth -= 1,
                    _ => {}
                }
            }
        }
        return Some((i, variants));
    }
    None
}

/// `path::Variant` occurrence with identifier boundaries on both sides.
pub(crate) fn contains_path(text: &str, pat: &str) -> bool {
    let b = text.as_bytes();
    let mut start = 0usize;
    while let Some(p) = text.get(start..).and_then(|s| s.find(pat)) {
        let at = start + p;
        let end = at + pat.len();
        let before_ok = at == 0 || !is_ident_byte(b[at - 1]);
        let after_ok = end >= b.len() || !is_ident_byte(b[end]);
        if before_ok && after_ok {
            return true;
        }
        start = at + 1;
    }
    false
}

pub fn check_wire_coverage(
    cfg: &Config,
    sources: &[SourceFile],
    findings: &mut Vec<Finding>,
) -> io::Result<()> {
    for f in sources {
        let Some((decl_line, variants)) = find_enum(f, &cfg.wire_enum) else {
            continue;
        };
        let comps: Vec<&str> = f.rel.split('/').collect();
        let Some(src_idx) = comps.iter().rposition(|c| *c == "src") else {
            continue;
        };
        let crate_rel = comps[..src_idx].join("/");
        let tests_dir = cfg.root.join(&crate_rel).join("tests");
        let mut suites = Vec::new();
        if tests_dir.is_dir() {
            crate::collect_rs(&cfg.root, &tests_dir, &mut suites)?;
        }
        if suppressed(f, decl_line, Rule::WireKindCoverage) {
            continue;
        }
        if suites.is_empty() {
            findings.push(Finding {
                file: f.rel.clone(),
                line: decl_line + 1,
                rule: Rule::WireKindCoverage,
                message: format!(
                    "wire enum `{}` has no `{}/tests` suite exercising its variants",
                    cfg.wire_enum, crate_rel
                ),
            });
            continue;
        }
        let mut text = String::new();
        for s in &suites {
            text.push_str(&SourceFile::load(&cfg.root, s)?.code.join("\n"));
            text.push('\n');
        }
        for v in &variants {
            let pat = format!("{}::{v}", cfg.wire_enum);
            if !contains_path(&text, &pat) {
                findings.push(Finding {
                    file: f.rel.clone(),
                    line: decl_line + 1,
                    rule: Rule::WireKindCoverage,
                    message: format!(
                        "variant `{pat}` is not exercised by any test under `{crate_rel}/tests`"
                    ),
                });
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Rule 6: relaxed-counter-drift (cross-file)
// ---------------------------------------------------------------------------

/// Function spans of a file: `(name, start line, end line)`, 0-based
/// inclusive. Used to attribute a code line to its innermost function.
pub(crate) fn fn_spans(code: &[String]) -> Vec<(String, usize, usize)> {
    let mut spans = Vec::new();
    for (i, line) in code.iter().enumerate() {
        let Some(at) = find_word(line, "fn") else {
            continue;
        };
        let rest = line[at + "fn".len()..].trim_start();
        let name: String = rest
            .bytes()
            .take_while(|&c| is_ident_byte(c))
            .map(char::from)
            .collect();
        if name.is_empty() {
            continue;
        }
        if let Some(end) = item_span(code, i) {
            spans.push((name, i, end));
        }
    }
    spans
}

fn innermost_fn(spans: &[(String, usize, usize)], line: usize) -> Option<&str> {
    spans
        .iter()
        .filter(|(_, s, e)| *s <= line && line <= *e)
        .max_by_key(|(_, s, _)| *s)
        .map(|(n, _, _)| n.as_str())
}

/// The identifiers surfaced through `push_counter(…)` calls in the metrics
/// export surface: the trailing identifier of each value expression
/// (`stats.requests` → `requests`, `obs.finished()` → `finished`).
fn surfaced_counters(f: &SourceFile) -> Vec<String> {
    let mut out = Vec::new();
    for line in &f.code {
        if method_call(line, "push_counter").is_none() {
            continue;
        }
        // The metric-name string body is blanked in the code view, so the
        // first `,` is the argument separator.
        let Some(comma) = line.find(',') else {
            continue;
        };
        let expr = &line[comma + 1..];
        let last_ident = expr
            .split(|c: char| !is_ident_byte(c as u8) || !c.is_ascii())
            .rfind(|s| !s.is_empty());
        if let Some(id) = last_ident {
            if !out.iter().any(|o| o == id) {
                out.push(id.to_string());
            }
        }
    }
    out
}

/// Every counter surfaced in the metrics snapshot must be read through the
/// registry's sanctioned reader functions (`snapshot`, `process_totals`,
/// `delta_since`, `read`) or a getter named after the counter itself —
/// never an ad-hoc `.load()` sprinkled elsewhere, which silently drifts
/// from the unified `MetricsSnapshot` the moment someone adds a field.
pub fn check_counter_drift(cfg: &Config, sources: &[SourceFile], findings: &mut Vec<Finding>) {
    let mut surfaced: Vec<String> = Vec::new();
    for f in sources {
        if f.rel.ends_with(&cfg.counter_surface_suffix) {
            surfaced.extend(surfaced_counters(f));
        }
    }
    if surfaced.is_empty() {
        return;
    }
    for f in sources {
        let spans = fn_spans(&f.code);
        for i in 0..f.code.len() {
            if f.is_test[i] {
                continue;
            }
            let code = &f.code[i];
            for ident in &surfaced {
                let pat = format!("{ident}.load");
                if method_call(code, "load").is_none() || !contains_path(code, &pat) {
                    continue;
                }
                let encl = innermost_fn(&spans, i);
                let sanctioned = encl.is_some_and(|n| {
                    n == ident || cfg.sanctioned_counter_readers.iter().any(|s| s == n)
                });
                if sanctioned || suppressed(f, i, Rule::CounterDrift) {
                    continue;
                }
                findings.push(Finding {
                    file: f.rel.clone(),
                    line: i + 1,
                    rule: Rule::CounterDrift,
                    message: format!(
                        "counter `{ident}` is surfaced in the metrics snapshot but read with an \
                         ad-hoc `.load()` here; read it via the registry ({}) or a `{ident}()` \
                         getter so the exported totals cannot drift",
                        cfg.sanctioned_counter_readers.join("/"),
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 7: instant-outside-span
// ---------------------------------------------------------------------------

/// `timing:` marker in a comment (case-insensitive), mirroring the
/// `ordering:` convention for atomics.
fn has_timing_marker(text: &str) -> bool {
    let low = text.to_ascii_lowercase();
    let mut start = 0usize;
    while let Some(p) = low.get(start..).and_then(|s| s.find("timing:")) {
        let after = start + p + "timing:".len();
        if low.as_bytes().get(after) != Some(&b':') {
            return true;
        }
        start = after;
    }
    false
}

/// In the observed scopes (serve/obs), every production `Instant::now()`
/// must either start an observed stage span (the `enabled().then(Instant::now)`
/// idiom) or carry a `// timing:` comment saying what clock it is and why it
/// is not a span — otherwise latency quietly escapes the per-stage
/// accounting that `batch_window`/trace coverage gates rely on.
pub fn check_instant_spans(cfg: &Config, sources: &[SourceFile], findings: &mut Vec<Finding>) {
    for f in sources {
        if !cfg
            .span_scopes
            .iter()
            .any(|p| f.rel.starts_with(p.as_str()))
        {
            continue;
        }
        for i in 0..f.code.len() {
            if f.is_test[i] {
                continue;
            }
            let code = &f.code[i];
            let Some(at) = code.find("Instant::now") else {
                continue;
            };
            if !contains_path(code, "Instant::now") {
                continue;
            }
            // The span idiom: the clock only exists when observation is on.
            if code[..at].contains("then(") {
                continue;
            }
            if context_lines(f, i)
                .into_iter()
                .any(|k| has_timing_marker(&f.comment[k]))
                || suppressed(f, i, Rule::InstantSpan)
            {
                continue;
            }
            findings.push(Finding {
                file: f.rel.clone(),
                line: i + 1,
                rule: Rule::InstantSpan,
                message: "`Instant::now()` outside an observed stage span; gate it with \
                          `enabled().then(Instant::now)` or justify the clock with a \
                          `// timing:` comment"
                    .to_string(),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 8: wire-error-exhaustiveness (cross-file)
// ---------------------------------------------------------------------------

/// Every variant of the wire error enum must be (a) *mapped* somewhere in
/// the owning crate's production code — an `=>` arm rendering or
/// translating it, so no error is silently unreachable in the net→frame
/// path — and (b) *constructed in tests* (inline `#[cfg(test)]` code or the
/// crate's `tests/` suites), so decode paths that should produce it are
/// actually exercised.
pub fn check_wire_error_coverage(
    cfg: &Config,
    sources: &[SourceFile],
    findings: &mut Vec<Finding>,
) -> io::Result<()> {
    for f in sources {
        let Some((decl_line, variants)) = find_enum(f, &cfg.wire_error_enum) else {
            continue;
        };
        if suppressed(f, decl_line, Rule::WireErrorExhaustive) {
            continue;
        }
        let decl_end = item_span(&f.code, decl_line).unwrap_or(decl_line);
        let comps: Vec<&str> = f.rel.split('/').collect();
        let Some(src_idx) = comps.iter().rposition(|c| *c == "src") else {
            continue;
        };
        let crate_rel = comps[..src_idx].join("/");
        let crate_prefix = format!("{crate_rel}/");

        // Production text (mapping sites) and test text (constructions).
        let mut prod = String::new();
        let mut test = String::new();
        for g in sources {
            if !g.rel.starts_with(&crate_prefix) {
                continue;
            }
            for i in 0..g.code.len() {
                let in_decl = g.rel == f.rel && i >= decl_line && i <= decl_end;
                if in_decl {
                    continue;
                }
                if g.is_test[i] {
                    test.push_str(&g.code[i]);
                    test.push('\n');
                } else {
                    prod.push_str(&g.code[i]);
                    prod.push('\n');
                }
            }
        }
        let tests_dir = cfg.root.join(&crate_rel).join("tests");
        let mut suites = Vec::new();
        if tests_dir.is_dir() {
            crate::collect_rs(&cfg.root, &tests_dir, &mut suites)?;
        }
        for s in &suites {
            test.push_str(&SourceFile::load(&cfg.root, s)?.code.join("\n"));
            test.push('\n');
        }

        for v in &variants {
            let pat = format!("{}::{v}", cfg.wire_error_enum);
            let mapped = prod
                .lines()
                .any(|l| contains_path(l, &pat) && l.contains("=>"));
            if !mapped {
                findings.push(Finding {
                    file: f.rel.clone(),
                    line: decl_line + 1,
                    rule: Rule::WireErrorExhaustive,
                    message: format!(
                        "variant `{pat}` is never mapped (no `=>` arm) in `{crate_rel}` \
                         production code; every wire error must render or translate somewhere"
                    ),
                });
            }
            if !contains_path(&test, &pat) {
                findings.push(Finding {
                    file: f.rel.clone(),
                    line: decl_line + 1,
                    rule: Rule::WireErrorExhaustive,
                    message: format!(
                        "variant `{pat}` is never constructed in tests (inline `#[cfg(test)]` \
                         or `{crate_rel}/tests`); its decode path is unexercised"
                    ),
                });
            }
        }
    }
    Ok(())
}
