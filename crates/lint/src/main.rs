//! `cardest-lint` CLI: lint the workspace tree and exit nonzero on any
//! finding.
//!
//! ```text
//! cargo run -p cardest-lint                    # human-readable findings
//! cargo run -p cardest-lint -- --json          # machine report + inventory
//! cargo run -p cardest-lint -- --deny          # explicit CI gate (same exit code)
//! cargo run -p cardest-lint -- --rule lock-order  # findings of one rule only
//! cargo run -p cardest-lint -- --list-rules    # print the rule registry
//! cargo run -p cardest-lint -- PATH            # lint a different workspace root
//! ```

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

use cardest_lint::{run, Config, Rule};

const USAGE: &str = "usage: cardest-lint [--json] [--deny] [--rule NAME] [--list-rules] [ROOT]

Lints every crates/*/src file under ROOT (default: the enclosing workspace)
against the project invariants and exits nonzero on any finding.

  --json        print a machine-readable report (schema 2: findings +
                unsafe/atomics inventory + lock graph) to stdout instead
                of rustc-style lines
  --deny        explicit strict gate for CI; today all findings are already
                denied, the flag reserves room for warn-level rules
  --rule NAME   report findings of a single rule only (the full analysis
                still runs; output and the exit code are filtered)
  --list-rules  print every rule name with a one-line description and exit
";

fn find_root() -> Option<PathBuf> {
    let mut dir = env::current_dir().ok()?;
    loop {
        if dir.join("crates").is_dir() && dir.join("Cargo.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn list_rules() {
    for r in Rule::ALL {
        println!("{:<26} {}", r.name(), r.doc());
    }
}

fn main() -> ExitCode {
    let mut json = false;
    let mut only: Option<Rule> = None;
    let mut root: Option<PathBuf> = None;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--deny" => {} // all findings are denying today; see USAGE
            "--list-rules" => {
                list_rules();
                return ExitCode::SUCCESS;
            }
            "--rule" => {
                let Some(name) = args.next() else {
                    eprintln!("cardest-lint: --rule needs a rule name\n{USAGE}");
                    return ExitCode::from(2);
                };
                // `suppression` is intentionally selectable here even though
                // it cannot be suppressed, so Rule::ALL is the single
                // source of valid names.
                match Rule::ALL.into_iter().find(|r| r.name() == name) {
                    Some(r) => only = Some(r),
                    None => {
                        eprintln!("cardest-lint: unknown rule `{name}`; valid rules are:");
                        list_rules();
                        return ExitCode::from(2);
                    }
                }
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("cardest-lint: unknown flag `{flag}`\n{USAGE}");
                return ExitCode::from(2);
            }
            path => root = Some(PathBuf::from(path)),
        }
    }
    let Some(root) = root.or_else(find_root) else {
        eprintln!("cardest-lint: could not locate a workspace root (a directory with crates/ and Cargo.toml); pass one explicitly");
        return ExitCode::from(2);
    };

    let mut report = match run(&Config::workspace(&root)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cardest-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(rule) = only {
        report.findings.retain(|f| f.rule == rule);
    }

    if json {
        println!("{}", report.to_json());
    } else {
        for f in &report.findings {
            println!("{f}");
        }
        eprintln!(
            "cardest-lint: {} finding(s) across {} file(s)",
            report.findings.len(),
            report.files_scanned
        );
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
