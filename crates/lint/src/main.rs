//! `cardest-lint` CLI: lint the workspace tree and exit nonzero on any
//! finding.
//!
//! ```text
//! cargo run -p cardest-lint                    # human-readable findings
//! cargo run -p cardest-lint -- --json          # machine report + inventory
//! cargo run -p cardest-lint -- --deny          # explicit CI gate (same exit code)
//! cargo run -p cardest-lint -- --rule lock-order,hostile-length-taint
//! cargo run -p cardest-lint -- --list-rules    # print the rule registry
//! cargo run -p cardest-lint -- --mutate        # mutation self-test (kill matrix)
//! cargo run -p cardest-lint -- PATH            # lint a different workspace root
//! ```

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

use cardest_lint::{mutate, run, Config, Rule};

const USAGE: &str =
    "usage: cardest-lint [--json] [--deny] [--rule NAMES] [--list-rules] [--mutate] [ROOT]

Lints every crates/*/src file under ROOT (default: the enclosing workspace)
against the project invariants and exits nonzero on any finding.

  --json        print a machine-readable report (schema 3: findings +
                unsafe/atomics/channels/taint-flow inventories + lock
                graph) to stdout instead of rustc-style lines
  --deny        explicit strict gate for CI; today all findings are already
                denied, the flag reserves room for warn-level rules
  --rule NAMES  report findings of the named rules only, comma-separated
                (the full analysis still runs; output and the exit code
                are filtered); repeatable
  --list-rules  print every rule name with a one-line description and exit
  --mutate      mutation self-test: seed one violation per rule per target
                crate into an in-memory copy of the tree and verify every
                mutant is killed; prints the kill matrix (JSON with --json)
                and exits nonzero below a 100% kill rate
";

fn find_root() -> Option<PathBuf> {
    let mut dir = env::current_dir().ok()?;
    loop {
        if dir.join("crates").is_dir() && dir.join("Cargo.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn list_rules() {
    for r in Rule::ALL {
        println!("{:<26} {}", r.name(), r.doc());
    }
}

fn main() -> ExitCode {
    let mut json = false;
    let mut do_mutate = false;
    let mut only: Vec<Rule> = Vec::new();
    let mut root: Option<PathBuf> = None;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--deny" => {} // all findings are denying today; see USAGE
            "--mutate" => do_mutate = true,
            "--list-rules" => {
                list_rules();
                return ExitCode::SUCCESS;
            }
            "--rule" => {
                let Some(names) = args.next() else {
                    eprintln!("cardest-lint: --rule needs a rule name (or a comma-separated list)\n{USAGE}");
                    return ExitCode::from(2);
                };
                for name in names.split(',').map(str::trim).filter(|n| !n.is_empty()) {
                    // `suppression` is intentionally selectable here even
                    // though it cannot be suppressed, so Rule::ALL is the
                    // single source of valid names.
                    match Rule::ALL.into_iter().find(|r| r.name() == name) {
                        Some(r) => {
                            if !only.contains(&r) {
                                only.push(r);
                            }
                        }
                        None => {
                            eprintln!("cardest-lint: unknown rule `{name}`; valid rules are:");
                            list_rules();
                            return ExitCode::from(2);
                        }
                    }
                }
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("cardest-lint: unknown flag `{flag}`\n{USAGE}");
                return ExitCode::from(2);
            }
            path => root = Some(PathBuf::from(path)),
        }
    }
    let Some(root) = root.or_else(find_root) else {
        eprintln!("cardest-lint: could not locate a workspace root (a directory with crates/ and Cargo.toml); pass one explicitly");
        return ExitCode::from(2);
    };
    let cfg = Config::workspace(&root);

    if do_mutate {
        let matrix = match mutate::run_mutations(&cfg) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("cardest-lint: {e}");
                return ExitCode::from(2);
            }
        };
        if json {
            println!("{}", matrix.to_json());
        } else {
            print!("{}", matrix.render_text());
        }
        for s in matrix.survivors() {
            eprintln!(
                "cardest-lint: mutant survived: rule `{}` did not fire on `{}`",
                s.rule.name(),
                s.file
            );
        }
        return if matrix.all_killed() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    let mut report = match run(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cardest-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if !only.is_empty() {
        report.findings.retain(|f| only.contains(&f.rule));
    }

    if json {
        println!("{}", report.to_json());
    } else {
        for f in &report.findings {
            println!("{f}");
        }
        eprintln!(
            "cardest-lint: {} finding(s) across {} file(s)",
            report.findings.len(),
            report.files_scanned
        );
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
