//! `hostile-length-taint`: intra-procedural dataflow over the masked token
//! stream of the hostile-input files (`src/wire.rs`, `src/net.rs`,
//! `src/http.rs`).
//!
//! The model is a classic source → sanitizer → sink analysis, specialized
//! to the one bug class this protocol layer keeps re-growing (PR 6 fixed a
//! hostile `len = u32::MAX` forcing a ~512 MiB allocation by hand):
//!
//! - **Sources** — integer reads off the wire: `.u16()`/`.u32()`/`.u64()`
//!   getter calls (the `Body` cursor), and `.parse::<uN/usize>()` of header
//!   fields (`Content-Length` style). The bound value and everything
//!   derived from it through `let` bindings, casts, and arithmetic within
//!   the same function carries the taint.
//! - **Sanitizers** — a comparison guard mentioning a tainted binding
//!   together with a named `MAX_*`-style constant or a `.len()` call
//!   (`if n as usize > MAX_STATS_ENTRIES`, `if promised > body.len() - pos`),
//!   or a `.min(…)` clamp applied to a tainted binding. Sanitizing any
//!   binding clears its whole derivation family: once `promised` (derived
//!   from `len`) is checked against the payload length, `len` itself is
//!   considered clamped too.
//! - **Sinks** — length-proportional allocation or panicking access:
//!   `Vec::with_capacity`/`with_capacity`, `vec![…; n]`, `.reserve(…)`,
//!   `zeros(…)` (the `BitVec` constructor), `.read_exact(…)`-sized buffers,
//!   and slice/range indexing `expr[…tainted…]`.
//!
//! The tracking is deliberately flow-insensitive below the statement level
//! and line-ordered above it (no branch reasoning): a clamp anywhere
//! *before* the sink in source order counts. That over-accepts convoluted
//! code, but every real decode path in this workspace is written
//! straight-line check-then-allocate, which is exactly the convention the
//! rule mechanizes. Every source→sink flow — sanitized or not — is recorded
//! in the `--json` inventory (`taint_flows`), so the audit shows its work.

use std::collections::HashMap;

use crate::lex::{is_ident_byte, method_call};
use crate::rules::{fn_spans, suppressed, Rule};
use crate::{Config, Finding, Inventory, SourceFile, TaintFlow};

/// Integer-getter method names whose results are attacker-controlled.
const SOURCE_METHODS: &[&str] = &["u16", "u32", "u64"];

/// Sink patterns: `(pattern, human name, args_follow)`. A pattern is hit
/// when it occurs on a line and a tainted identifier appears in the
/// argument region that follows it.
const SINK_CALLS: &[(&str, &str)] = &[
    ("with_capacity(", "Vec::with_capacity"),
    (".reserve(", ".reserve(…)"),
    (".read_exact(", ".read_exact(…)"),
    ("zeros(", "zeros(…) length-proportional constructor"),
];

/// One derivation family: every binding that (transitively) carries the
/// value of one wire read.
#[derive(Debug)]
struct Family {
    source_line: usize,
    sanitized: bool,
}

/// Identifiers on a code line, with byte offsets.
fn idents(line: &str) -> Vec<(usize, &str)> {
    let b = line.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < b.len() {
        if is_ident_byte(b[i]) && !b[i].is_ascii_digit() {
            let start = i;
            while i < b.len() && is_ident_byte(b[i]) {
                i += 1;
            }
            out.push((start, &line[start..i]));
        } else {
            i += 1;
        }
    }
    out
}

/// Is this line a taint source? Matches `.u16()`-style getter calls and
/// `.parse::<u16/u32/u64/usize>()`.
fn is_source_line(code: &str) -> bool {
    for m in SOURCE_METHODS {
        if method_call(code, m).is_some() {
            return true;
        }
    }
    if let Some(p) = method_call(code, "parse") {
        let rest = &code[p..];
        for ty in ["u16", "u32", "u64", "usize"] {
            if rest.starts_with(&format!("parse::<{ty}>")) {
                return true;
            }
        }
    }
    false
}

/// The `let [mut] name` binding a statement line introduces, if any.
fn let_target(code: &str) -> Option<&str> {
    let t = code.trim_start().strip_prefix("let ")?;
    let t = t.trim_start();
    let t = t.strip_prefix("mut ").unwrap_or(t).trim_start();
    let end = t.bytes().take_while(|&c| is_ident_byte(c)).count();
    (end > 0).then(|| &t[..end])
}

/// A SCREAMING_CASE constant of at least two characters (`MAX_PAYLOAD`,
/// `LIMIT`): the shape a named protocol cap takes in this workspace.
fn is_const_ident(id: &str) -> bool {
    id.len() >= 2
        && id.bytes().next().is_some_and(|c| c.is_ascii_uppercase())
        && id
            .bytes()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == b'_')
}

/// Does this line clamp a tainted value? True when a tainted identifier
/// appears together with a named constant, a `.len()` call, or a `.min(…)`
/// clamp on a comparison/guard line.
fn is_sanitizer_line(code: &str, tainted_on_line: bool) -> bool {
    if !tainted_on_line {
        return false;
    }
    if method_call(code, "min").is_some() {
        return true;
    }
    let comparing = code.contains("if ")
        || code.contains("while ")
        || code.contains("assert")
        || code.contains("debug_assert")
        || code.contains("match ");
    if !comparing {
        return false;
    }
    code.contains(".len()") || idents(code).iter().any(|(_, id)| is_const_ident(id))
}

/// Byte span of the argument region opened by the `(` at/after `at`.
fn arg_span(code: &str, at: usize) -> Option<(usize, usize)> {
    let b = code.as_bytes();
    let open = (at..b.len()).find(|&i| b[i] == b'(')?;
    let mut depth = 0i64;
    for (i, &c) in b.iter().enumerate().skip(open) {
        match c {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some((open + 1, i));
                }
            }
            _ => {}
        }
    }
    Some((open + 1, b.len()))
}

/// Position of a direct index/range expression `expr[…]` whose bracket body
/// mentions a tainted identifier; returns the bracket body span.
fn tainted_index_span<'a>(
    code: &'a str,
    tainted: &HashMap<String, usize>,
) -> Option<(usize, &'a str)> {
    let b = code.as_bytes();
    for (p, &c) in b.iter().enumerate() {
        if c != b'[' {
            continue;
        }
        // Only `ident[` / `)[` / `][` — an index expression, not a slice
        // type (`&[u8]`), attribute, or array literal.
        let mut q = p;
        while q > 0 && (b[q - 1] == b' ' || b[q - 1] == b'\t') {
            q -= 1;
        }
        if q == 0 {
            continue;
        }
        let prev = b[q - 1];
        if !(is_ident_byte(prev) || prev == b')' || prev == b']') {
            continue;
        }
        let mut depth = 0i64;
        let mut end = b.len();
        for (i, &ch) in b.iter().enumerate().skip(p) {
            match ch {
                b'[' => depth += 1,
                b']' => {
                    depth -= 1;
                    if depth == 0 {
                        end = i;
                        break;
                    }
                }
                _ => {}
            }
        }
        let Some(body) = code.get(p + 1..end) else {
            continue;
        };
        if idents(body).iter().any(|(_, id)| tainted.contains_key(*id)) {
            return Some((p, body));
        }
    }
    None
}

/// Run the taint pass over every hostile file.
pub fn check_taint(
    cfg: &Config,
    sources: &[SourceFile],
    findings: &mut Vec<Finding>,
    inv: &mut Inventory,
) {
    for f in sources {
        if !cfg
            .hostile_suffixes
            .iter()
            .any(|s| f.rel.ends_with(s.as_str()))
        {
            continue;
        }
        for (_, start, end) in fn_spans(&f.code) {
            check_fn(f, start, end, findings, inv);
        }
    }
}

/// Analyze one function body, line-ordered.
fn check_fn(
    f: &SourceFile,
    start: usize,
    end: usize,
    findings: &mut Vec<Finding>,
    inv: &mut Inventory,
) {
    // Binding name → family index; families carry source line + sanitized.
    let mut families: Vec<Family> = Vec::new();
    let mut tainted: HashMap<String, usize> = HashMap::new();

    for i in start..=end.min(f.code.len().saturating_sub(1)) {
        if f.is_test[i] {
            continue;
        }
        let code = &f.code[i];
        let line_idents = idents(code);
        let tainted_here = line_idents.iter().any(|(_, id)| tainted.contains_key(*id));

        // 1. Sanitizers first: a guard line clamps before anything after it.
        if is_sanitizer_line(code, tainted_here) {
            for (_, id) in &line_idents {
                if let Some(&fam) = tainted.get(*id) {
                    families[fam].sanitized = true;
                }
            }
        }

        // 2. Sinks: call-shaped sinks with a tainted argument, and tainted
        //    index/range expressions.
        let mut sink_hit: Option<(&str, String, usize)> = None; // (sink, var, fam)
        for &(pat, name) in SINK_CALLS {
            let Some(at) = code.find(pat) else {
                continue;
            };
            let Some((a0, a1)) = arg_span(code, at) else {
                continue;
            };
            let args = &code[a0..a1];
            if let Some((_, id)) = idents(args)
                .into_iter()
                .find(|(_, id)| tainted.contains_key(*id))
            {
                sink_hit = Some((name, id.to_string(), tainted[id]));
                break;
            }
        }
        if sink_hit.is_none() {
            if let Some((_, body)) = tainted_index_span(code, &tainted) {
                if let Some((_, id)) = idents(body)
                    .into_iter()
                    .find(|(_, id)| tainted.contains_key(*id))
                {
                    sink_hit = Some(("slice/range indexing", id.to_string(), tainted[id]));
                }
            }
        }
        if let Some((sink, var, fam)) = sink_hit {
            let sanitized = families[fam].sanitized;
            inv.taint_flows.push(TaintFlow {
                file: f.rel.clone(),
                source_line: families[fam].source_line,
                sink_line: i + 1,
                var: var.clone(),
                sink: sink.to_string(),
                sanitized,
            });
            if !sanitized && !suppressed(f, i, Rule::HostileLengthTaint) {
                findings.push(Finding {
                    file: f.rel.clone(),
                    line: i + 1,
                    rule: Rule::HostileLengthTaint,
                    message: format!(
                        "wire-read length `{var}` (read at line {}) reaches {sink} without a \
                         clamp; compare it against a `MAX_*` cap, the payload `.len()`, or \
                         `.min(…)` first",
                        families[fam].source_line,
                    ),
                });
            }
        }

        // 3. Propagation: a `let` whose RHS mentions a source or a tainted
        //    binding taints the new name (joining the existing family when
        //    derived; a fresh wire read starts a new family).
        if let Some(target) = let_target(code) {
            // Only the right-hand side determines the new binding's taint —
            // `let n = n.min(cap)` must see the old `n` on the RHS.
            let rhs = code.find('=').map(|p| &code[p + 1..]).unwrap_or("");
            let rhs_fam = idents(rhs)
                .into_iter()
                .find_map(|(_, id)| tainted.get(id).copied());
            if is_source_line(code) {
                // `let n = body.u16()?` — a fresh read, its own family.
                // A `.min(…)` on the same line is born clamped.
                let fam = families.len();
                families.push(Family {
                    source_line: i + 1,
                    sanitized: method_call(code, "min").is_some(),
                });
                tainted.insert(target.to_string(), fam);
            } else if let Some(fam) = rhs_fam {
                // Derived value (cast/arithmetic): same family, so a later
                // clamp of either binding clears both. A `.min(…)` in the
                // derivation sanitizes the family outright.
                if method_call(code, "min").is_some() {
                    families[fam].sanitized = true;
                }
                tainted.insert(target.to_string(), fam);
            } else {
                // Rebinding a tracked name to an untainted value clears it.
                tainted.remove(target);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Config, Inventory};
    use std::path::Path;

    fn taint_findings(src: &str) -> (Vec<Finding>, Inventory) {
        let f = SourceFile::from_source("crates/app/src/wire.rs", src);
        let cfg = Config::workspace(Path::new("."));
        let mut findings = Vec::new();
        let mut inv = Inventory::default();
        check_taint(&cfg, std::slice::from_ref(&f), &mut findings, &mut inv);
        (findings, inv)
    }

    #[test]
    fn unclamped_wire_length_reaching_with_capacity_is_flagged() {
        let src = r#"
fn decode(body: &mut Body) -> Vec<u8> {
    let n = body.u32() as usize;
    Vec::with_capacity(n)
}
"#;
        let (findings, inv) = taint_findings(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, Rule::HostileLengthTaint);
        assert_eq!(inv.taint_flows.len(), 1);
        assert!(!inv.taint_flows[0].sanitized);
    }

    #[test]
    fn max_constant_guard_sanitizes_the_family() {
        let src = r#"
fn decode(body: &mut Body) -> Result<Vec<u8>, E> {
    let n = body.u16() as usize;
    if n > MAX_ENTRIES {
        return Err(E::TooMany);
    }
    Ok(Vec::with_capacity(n))
}
"#;
        let (findings, inv) = taint_findings(src);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(inv.taint_flows.len(), 1, "sanitized flow still recorded");
        assert!(inv.taint_flows[0].sanitized);
    }

    #[test]
    fn derived_binding_checked_against_len_clears_the_whole_family() {
        // The PR 6 shape: `promised` derives from `len`; checking
        // `promised` against the remaining payload clamps `len` too.
        let src = r#"
fn decode(body: &mut Body) -> Result<BitVec, E> {
    let len = body.u32() as usize;
    let n_words = len.div_ceil(64);
    let promised = n_words * 8;
    if promised > body.remaining().len() {
        return Err(E::Truncated);
    }
    Ok(BitVec::zeros(len))
}
"#;
        let (findings, inv) = taint_findings(src);
        assert!(findings.is_empty(), "{findings:?}");
        assert!(inv.taint_flows.iter().all(|t| t.sanitized));
    }

    #[test]
    fn min_clamp_in_derivation_sanitizes() {
        let src = r#"
fn decode(body: &mut Body) -> Vec<u8> {
    let n = body.u32() as usize;
    let n = n.min(MAX_TAKE);
    Vec::with_capacity(n)
}
"#;
        let (findings, _) = taint_findings(src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn tainted_range_index_is_a_sink() {
        let src = r#"
fn slice_at(body: &mut Body, buf: &[u8]) -> u8 {
    let n = body.u16() as usize;
    let window = &buf[..n];
    window.iter().sum()
}
"#;
        let (findings, _) = taint_findings(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("slice/range indexing"));
    }

    #[test]
    fn non_hostile_files_are_out_of_scope() {
        let src =
            "fn f(b: &mut Body) -> Vec<u8> { let n = b.u32() as usize; Vec::with_capacity(n) }";
        let f = SourceFile::from_source("crates/app/src/cache.rs", src);
        let cfg = Config::workspace(Path::new("."));
        let mut findings = Vec::new();
        let mut inv = Inventory::default();
        check_taint(&cfg, std::slice::from_ref(&f), &mut findings, &mut inv);
        assert!(findings.is_empty());
        assert!(inv.taint_flows.is_empty());
    }

    #[test]
    fn rebinding_to_an_untainted_value_clears_the_name() {
        let src = r#"
fn decode(body: &mut Body) -> Vec<u8> {
    let n = body.u32() as usize;
    let n = 16;
    Vec::with_capacity(n)
}
"#;
        let (findings, _) = taint_findings(src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn suppression_with_reason_waives_the_sink() {
        let src = r#"
fn decode(body: &mut Body) -> Vec<u8> {
    let n = body.u32() as usize;
    // lint: allow(hostile-length-taint) n is capped by the framed payload size upstream.
    Vec::with_capacity(n)
}
"#;
        let (findings, inv) = taint_findings(src);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(inv.taint_flows.len(), 1, "flow still inventoried");
    }
}
