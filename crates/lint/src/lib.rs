//! # cardest-lint — the workspace invariant checker
//!
//! Mechanizes the conventions this codebase relies on but `rustc`/clippy
//! cannot see. The checker walks every `crates/*/src/**/*.rs` file under a
//! workspace root, lexes each file just enough to separate code from
//! comments and string literals ([`lex`]), and enforces twelve rules:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `unsafe-safety-comment` | every `unsafe` block/fn carries a `// SAFETY:` (or `/// # Safety`) justification |
//! | `no-panic-on-hostile-input` | no `unwrap`/`expect`/panic macros/direct indexing in non-test code of network-facing decode files (`src/wire.rs`, `src/net.rs`, `src/http.rs`) |
//! | `atomics-ordering-audit` | `SeqCst` always, and `Relaxed` in read-modify-write or flag-publish position, must carry an `// ordering:` justification |
//! | `no-alloc-in-hot-path` | functions marked `// lint: hot-path` call no allocating constructors |
//! | `wire-kind-coverage` | every variant of a `enum Frame` wire enum appears in the crate's test suites |
//! | `lock-order` | the cross-file lock-acquisition graph ([`lockgraph`]) has no cycles |
//! | `relaxed-counter-drift` | counters surfaced via `push_counter` are read only through sanctioned registry readers |
//! | `instant-outside-span` | `Instant::now()` in serve/obs production code starts an observed span or carries `// timing:` |
//! | `wire-error-exhaustiveness` | every `WireError` variant is mapped in the error path and constructed in tests |
//! | `hostile-length-taint` | wire-read lengths ([`taint`]) are clamped before reaching an allocation or indexing sink |
//! | `guard-held-across-blocking` | no lock guard is live across `.join()`/channel ops/`Condvar::wait`/socket IO/kernel entry |
//! | `channel-capacity-audit` | every channel creation carries a `// capacity:` justification of its boundedness |
//!
//! The concurrency-aware rules share a lightweight per-crate symbol
//! table ([`symbols`]): struct-field locks, lock-typed parameters, accessor
//! functions, and function spans — no `syn`, no type checker, just enough
//! resolution to be right about this workspace. The dataflow rule
//! ([`taint`]) adds intra-procedural taint tracking on the same masked
//! token stream, and the whole rule set is self-measured by a mutation
//! harness ([`mutate`]) that seeds one violation per rule per crate and
//! fails unless every mutant is killed.
//!
//! Any finding can be waived in place with a suppression comment that names
//! the rule and **must** state a reason, e.g.
//! `// lint: allow(no-panic-on-hostile-input) length was bounds-checked on the previous line.`
//! A suppression without a reason (or naming an unknown rule) is itself a
//! finding, so waivers stay auditable.
//!
//! The binary prints rustc-style `file:line: [rule] message` lines (or a
//! `--json` machine report including an unsafe/atomics inventory) and exits
//! nonzero on any finding.

pub mod lex;
pub mod lockgraph;
pub mod mutate;
pub mod rules;
pub mod symbols;
pub mod taint;

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use lockgraph::{LockEdge, LockGraph, LockNode};
pub use rules::Rule;

/// What to check. [`Config::workspace`] builds the canonical configuration
/// used by CI and the self-check test; fixtures reuse it on mini-trees that
/// mirror the `crates/<name>/src` layout.
#[derive(Debug, Clone)]
pub struct Config {
    /// Workspace root: the directory containing `crates/`.
    pub root: PathBuf,
    /// Path suffixes (with `/` separators) of files whose non-test code
    /// must never panic on hostile input.
    pub hostile_suffixes: Vec<String>,
    /// Name of the wire enum whose variants must be exercised by the
    /// owning crate's `tests/` suites.
    pub wire_enum: String,
    /// Name of the wire error enum whose variants must be mapped in the
    /// error path and constructed in tests.
    pub wire_error_enum: String,
    /// Path suffix of the metrics export surface whose `push_counter`
    /// calls define the surfaced-counter set for `relaxed-counter-drift`.
    pub counter_surface_suffix: String,
    /// Function names allowed to `.load()` surfaced counters (the registry
    /// readers); a getter named exactly like the counter is also allowed.
    pub sanctioned_counter_readers: Vec<String>,
    /// Path prefixes whose production code is subject to
    /// `instant-outside-span`.
    pub span_scopes: Vec<String>,
    /// Function names that enter the compute-kernel layer: calling one while
    /// a lock guard is live is flagged by `guard-held-across-blocking`, in
    /// addition to the built-in blocking set (join/send/recv/wait/socket IO).
    pub kernel_entry_calls: Vec<String>,
}

impl Config {
    /// The canonical workspace configuration: every `crates/*/src` tree is
    /// scanned; any `src/wire.rs`, `src/net.rs`, or `src/http.rs` is a
    /// hostile-input decode path; `enum Frame` is the wire enum.
    pub fn workspace(root: &Path) -> Config {
        Config {
            root: root.to_path_buf(),
            hostile_suffixes: vec![
                "src/wire.rs".to_string(),
                "src/net.rs".to_string(),
                "src/http.rs".to_string(),
            ],
            wire_enum: "Frame".to_string(),
            wire_error_enum: "WireError".to_string(),
            counter_surface_suffix: "src/obs_export.rs".to_string(),
            sanctioned_counter_readers: vec![
                "snapshot".to_string(),
                "process_totals".to_string(),
                "delta_since".to_string(),
                "read".to_string(),
            ],
            span_scopes: vec![
                "crates/serve/src/".to_string(),
                "crates/obs/src/".to_string(),
            ],
            kernel_entry_calls: vec![
                "infer_dist_batch".to_string(),
                "estimate_batch".to_string(),
                "estimate_batch_par".to_string(),
            ],
        }
    }

    fn is_hostile(&self, rel: &str) -> bool {
        self.hostile_suffixes.iter().any(|s| rel.ends_with(s))
    }
}

/// One rule violation, pointing at a specific source line (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Path relative to the workspace root, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    pub rule: Rule,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// A line of interest for the `--json` inventory (every `unsafe` site,
/// every explicit `Ordering::` use), whether or not it violates a rule.
#[derive(Debug, Clone)]
pub struct Site {
    pub file: String,
    pub line: usize,
    pub excerpt: String,
}

/// One channel-creation site found by `channel-capacity-audit`: every
/// queue in the workspace, with its boundedness class and whether a
/// `// capacity:` comment justifies it.
#[derive(Debug, Clone)]
pub struct ChannelSite {
    pub file: String,
    pub line: usize,
    /// `unbounded` (`channel()`), `rendezvous` (`sync_channel(0)`), or
    /// `bounded` (`sync_channel(n)` for any other capacity expression).
    pub kind: &'static str,
    /// A `// capacity:` justification is present in the site's context.
    pub justified: bool,
    /// Channel creation is in `#[cfg(test)]` code (listed but never flagged).
    pub test: bool,
    pub excerpt: String,
}

/// One wire-length dataflow traced by `hostile-length-taint`: a value read
/// off the wire that reached an allocation/indexing sink, and whether a
/// clamp sanitized it on the way.
#[derive(Debug, Clone)]
pub struct TaintFlow {
    pub file: String,
    /// Line of the wire read that introduced the value.
    pub source_line: usize,
    /// Line of the allocation/indexing sink it reached.
    pub sink_line: usize,
    /// The tainted binding observed at the sink.
    pub var: String,
    /// The sink pattern hit (e.g. `Vec::with_capacity`).
    pub sink: String,
    /// A `MAX_*`/`.len()` comparison or `.min(…)` clamp intervened.
    pub sanitized: bool,
}

/// Machine-readable audit inventory, emitted with `--json` so CI can
/// archive how the tree's unsafe/atomics surface evolves over time.
#[derive(Debug, Clone, Default)]
pub struct Inventory {
    pub unsafe_sites: Vec<Site>,
    pub atomics: Vec<Site>,
    pub channels: Vec<ChannelSite>,
    pub taint_flows: Vec<TaintFlow>,
}

/// Version of the `--json` report shape. Bumped to 2 when the inventory
/// gained the `lock_graph` section (and the report this `schema` field);
/// to 3 when it gained the `channels` and `taint_flows` inventories.
pub const JSON_SCHEMA: u32 = 3;

/// Result of a full lint run.
#[derive(Debug, Clone)]
pub struct Report {
    pub findings: Vec<Finding>,
    pub inventory: Inventory,
    pub lock_graph: LockGraph,
    pub files_scanned: usize,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Render the machine report. Hand-rolled JSON: this crate is std-only
    /// by design (it must not depend on anything it audits).
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"schema\":{JSON_SCHEMA},\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"file\":{},\"line\":{},\"rule\":{},\"message\":{}}}",
                json_str(&f.file),
                f.line,
                json_str(f.rule.name()),
                json_str(&f.message),
            ));
        }
        out.push_str(&format!("],\"files_scanned\":{},", self.files_scanned));
        out.push_str("\"inventory\":{\"unsafe\":[");
        push_sites(&mut out, &self.inventory.unsafe_sites);
        out.push_str("],\"atomics\":[");
        push_sites(&mut out, &self.inventory.atomics);
        out.push_str("],\"channels\":[");
        for (i, c) in self.inventory.channels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"file\":{},\"line\":{},\"kind\":{},\"justified\":{},\"test\":{},\"excerpt\":{}}}",
                json_str(&c.file),
                c.line,
                json_str(c.kind),
                c.justified,
                c.test,
                json_str(&c.excerpt),
            ));
        }
        out.push_str("],\"taint_flows\":[");
        for (i, t) in self.inventory.taint_flows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"file\":{},\"source_line\":{},\"sink_line\":{},\"var\":{},\"sink\":{},\"sanitized\":{}}}",
                json_str(&t.file),
                t.source_line,
                t.sink_line,
                json_str(&t.var),
                json_str(&t.sink),
                t.sanitized,
            ));
        }
        out.push_str("],\"lock_graph\":");
        push_lock_graph(&mut out, &self.lock_graph);
        out.push_str("}}");
        out
    }
}

fn push_lock_graph(out: &mut String, g: &LockGraph) {
    out.push_str("{\"locks\":[");
    for (i, l) in g.locks.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"id\":{},\"kind\":{},\"file\":{},\"line\":{}}}",
            json_str(&l.id),
            json_str(l.kind),
            json_str(&l.file),
            l.line,
        ));
    }
    out.push_str("],\"order\":[");
    for (i, id) in g.order.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_str(id));
    }
    out.push_str("],\"edges\":[");
    for (i, e) in g.edges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"from\":{},\"to\":{},\"file\":{},\"line\":{},\"fn\":{}}}",
            json_str(&e.from),
            json_str(&e.to),
            json_str(&e.file),
            e.line,
            json_str(&e.func),
        ));
    }
    out.push_str("],\"cycles\":[");
    for (i, c) in g.cycles.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        for (j, id) in c.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&json_str(id));
        }
        out.push(']');
    }
    out.push_str("]}");
}

fn push_sites(out: &mut String, sites: &[Site]) {
    for (i, s) in sites.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"file\":{},\"line\":{},\"excerpt\":{}}}",
            json_str(&s.file),
            s.line,
            json_str(&s.excerpt),
        ));
    }
}

/// Escape a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One loaded, lexed source file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel: String,
    /// Raw source lines (for excerpts).
    pub raw: Vec<String>,
    /// Code view (comments/literal bodies blanked), per line.
    pub code: Vec<String>,
    /// Comment view, per line.
    pub comment: Vec<String>,
    /// Per line: is this inside a `#[cfg(test)]` item?
    pub is_test: Vec<bool>,
}

impl SourceFile {
    pub fn load(root: &Path, rel: &str) -> io::Result<SourceFile> {
        let src = fs::read_to_string(root.join(rel))?;
        Ok(SourceFile::from_source(rel, &src))
    }

    pub fn from_source(rel: &str, src: &str) -> SourceFile {
        let masked = lex::mask(src);
        let raw: Vec<String> = src.lines().map(|l| l.to_string()).collect();
        let is_test = rules::test_lines(&masked.code);
        SourceFile {
            rel: rel.to_string(),
            raw,
            code: masked.code,
            comment: masked.comment,
            is_test,
        }
    }
}

/// Recursively collect `.rs` files under `dir`, as root-relative paths.
pub(crate) fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs(root, &p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            if let Ok(rel) = p.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
    Ok(())
}

/// Enumerate the scan set: every `.rs` file under every `crates/*/src`.
pub fn scan_set(root: &Path) -> io::Result<Vec<String>> {
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("no crates/ directory under {}", root.display()),
        ));
    }
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.join("src").is_dir())
        .collect();
    crate_dirs.sort();
    let mut files = Vec::new();
    for c in crate_dirs {
        collect_rs(root, &c.join("src"), &mut files)?;
    }
    Ok(files)
}

/// Run every rule over the configured tree.
pub fn run(cfg: &Config) -> io::Result<Report> {
    let rels = scan_set(&cfg.root)?;
    let mut sources = Vec::with_capacity(rels.len());
    for rel in &rels {
        sources.push(SourceFile::load(&cfg.root, rel)?);
    }
    run_sources(cfg, &sources)
}

/// Run every rule over an already-loaded source set. This is [`run`] minus
/// the disk walk; the mutation harness ([`mutate`]) drives it on in-memory
/// copies of the tree with seeded violations. `cfg.root` is still consulted
/// for the `tests/` suites the wire-coverage rules read — mutants only
/// rewrite `src` files, so sharing the on-disk suites is exact.
pub fn run_sources(cfg: &Config, sources: &[SourceFile]) -> io::Result<Report> {
    let mut findings = Vec::new();
    let mut inventory = Inventory::default();
    for f in sources {
        rules::check_file(cfg, f, &mut findings, &mut inventory);
    }
    rules::check_wire_coverage(cfg, sources, &mut findings)?;
    rules::check_counter_drift(cfg, sources, &mut findings);
    rules::check_instant_spans(cfg, sources, &mut findings);
    rules::check_wire_error_coverage(cfg, sources, &mut findings)?;
    taint::check_taint(cfg, sources, &mut findings, &mut inventory);
    let tables = symbols::build(sources);
    let lock_graph = lockgraph::analyze(cfg, &tables, sources, &mut findings);

    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule.name()).cmp(&(b.file.as_str(), b.line, b.rule.name()))
    });
    findings.dedup();
    Ok(Report {
        findings,
        inventory,
        lock_graph,
        files_scanned: sources.len(),
    })
}
