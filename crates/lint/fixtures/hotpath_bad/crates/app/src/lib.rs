//! Hot-path violations: an allocating marked function and a dangling marker.

// lint: hot-path
pub fn record(values: &[u64]) -> u64 {
    let copied = values.to_vec();
    let label = format!("{} values", copied.len());
    label.len() as u64
}

// lint: hot-path
pub static NOT_A_FUNCTION: u64 = 0;
