//! The documented conventions: statement-position Relaxed counters need no
//! comment; everything ordering-sensitive carries an `ordering:` note (or a
//! Release/Acquire pair).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

pub struct Counters {
    pub total: AtomicU64,
    pub ready: AtomicBool,
}

impl Counters {
    pub fn bump(&self) {
        self.total.fetch_add(1, Ordering::Relaxed);
    }

    pub fn seqcst_with_reason(&self) -> u64 {
        // ordering: SeqCst on purpose — this fixture documents the fence so
        // the audit accepts it.
        self.total.load(Ordering::SeqCst)
    }

    pub fn next_ticket(&self) -> u64 {
        // ordering: relaxed is fine, only uniqueness matters here.
        let n = self.total.fetch_add(1, Ordering::Relaxed);
        n + 1
    }

    pub fn publish(&self) {
        self.ready.store(true, Ordering::Release);
    }
}
