//! Wire enum with a variant (`Gamma`) no test suite ever constructs.

pub enum Frame {
    Alpha,
    Beta(u32),
    Gamma { token: u64 },
}

pub fn kind(f: &Frame) -> u8 {
    match f {
        Frame::Alpha => 1,
        Frame::Beta(_) => 2,
        Frame::Gamma { .. } => 3,
    }
}
