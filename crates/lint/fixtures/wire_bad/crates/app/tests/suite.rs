//! Round-trip suite that forgets Frame::Gamma — and mentioning it here in a
//! comment (Frame::Gamma) must not count as coverage.

#[test]
fn roundtrip_alpha_and_beta() {
    let frames = [app::Frame::Alpha, app::Frame::Beta(9)];
    assert_eq!(frames.len(), 2);
}
