//! Wire enum fully covered by the crate's test suite.

pub enum Frame {
    Alpha,
    Beta(u32),
    Gamma { token: u64 },
}
