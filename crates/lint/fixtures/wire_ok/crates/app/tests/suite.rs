#[test]
fn roundtrip_every_kind() {
    let frames = [
        app::Frame::Alpha,
        app::Frame::Beta(9),
        app::Frame::Gamma { token: 4 },
    ];
    assert_eq!(frames.len(), 3);
}
