//! Guards are released before blocking, or the hold is justified with a
//! reasoned `// lint: allow`.

use std::sync::mpsc::Receiver;
use std::sync::Mutex;

pub struct Queue {
    rx: Mutex<Receiver<u64>>,
}

impl Queue {
    /// Non-blocking drain under the guard: `try_recv` returns immediately.
    pub fn poll(&self) -> Option<u64> {
        let rx = self.rx.lock().ok()?;
        rx.try_recv().ok()
    }

    /// Blocking recv with the guard dropped first: the lock only covers the
    /// non-blocking part.
    pub fn peek_then_wait(&self, other: &Receiver<u64>) -> Option<u64> {
        let queued = {
            let rx = self.rx.lock().ok()?;
            rx.try_recv().ok()
        };
        match queued {
            Some(v) => Some(v),
            None => other.recv().ok(),
        }
    }

    /// Deliberate hold: the justification waives the finding for every
    /// blocking call under this guard.
    pub fn collect(&self) -> Option<u64> {
        // lint: allow(guard-held-across-blocking) single consumer — the
        // queue lock is the batch-collection critical section and the recv
        // is bounded by the batch window.
        let rx = self.rx.lock().ok()?;
        rx.recv().ok()
    }
}
