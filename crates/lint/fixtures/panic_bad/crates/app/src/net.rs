//! Hostile-input decode path with one panicking construct per line.

pub fn decode(buf: &[u8]) -> u32 {
    let first = buf.first().copied().unwrap();
    let second: u8 = buf.get(1).copied().expect("second byte");
    if first == 0xFF {
        panic!("bad magic");
    }
    let third = buf[2];
    u32::from(first) + u32::from(second) + u32::from(third)
}
