//! The three accepted clocks in an observed scope: the gated span idiom,
//! a `// timing:`-justified clock, and test code.

use std::time::Instant;

pub struct Obs {
    on: bool,
}

impl Obs {
    pub fn enabled(&self) -> bool {
        self.on
    }
}

pub fn traced(obs: &Obs) -> Option<Instant> {
    // The span idiom: the clock only exists when observation is on.
    obs.enabled().then(Instant::now)
}

pub fn deadline() -> Instant {
    // timing: admission deadline clock, not a latency measurement.
    Instant::now()
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn test_clocks_are_exempt() {
        let _ = Instant::now();
    }
}
