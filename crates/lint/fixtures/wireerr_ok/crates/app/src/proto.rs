//! Every `WireError` variant is mapped by a production `=>` arm and
//! constructed in a test.

pub enum WireError {
    Truncated,
    BadMagic,
}

pub fn render(e: &WireError) -> &'static str {
    match e {
        WireError::Truncated => "truncated",
        WireError::BadMagic => "bad magic",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_renders() {
        assert_eq!(render(&WireError::Truncated), "truncated");
        assert_eq!(render(&WireError::BadMagic), "bad magic");
    }
}
