//! Three undocumented ordering hazards: a bare SeqCst, a Relaxed RMW whose
//! result is consumed, and a Relaxed flag-publish store.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

pub struct Counters {
    pub total: AtomicU64,
    pub ready: AtomicBool,
}

impl Counters {
    pub fn seqcst_read(&self) -> u64 {
        self.total.load(Ordering::SeqCst)
    }

    pub fn next_ticket(&self) -> u64 {
        let n = self.total.fetch_add(1, Ordering::Relaxed);
        n + 1
    }

    pub fn publish(&self) {
        self.ready.store(true, Ordering::Relaxed);
    }
}
