//! The accepted read paths for a surfaced counter: a sanctioned reader
//! (`snapshot`) and a getter named after the counter itself.

use std::sync::atomic::{AtomicU64, Ordering};

pub mod obs_export;

pub struct Metrics;

impl Metrics {
    pub fn push_counter(&mut self, _name: &str, _value: u64) {}
}

pub struct Stats {
    pub requests: AtomicU64,
}

impl Stats {
    /// Getter named after the counter: the one blessed ad-hoc read.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// A sanctioned reader from the registry surface.
    pub fn snapshot(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }
}
