//! Same surface as the bad twin: `requests` is exported.

use crate::{Metrics, Stats};

pub fn export(m: &mut Metrics, stats: &Stats) {
    m.push_counter("app_requests_total", stats.requests);
}
