//! Two undocumented unsafe sites: a block and a fn. Both must be flagged.

pub fn read_first(xs: &[u32]) -> u32 {
    unsafe { *xs.as_ptr() }
}

pub unsafe fn add_offset(p: *const u32, off: usize) -> u32 {
    *p.add(off)
}
