//! The metrics export surface: `requests` is surfaced, so every read of
//! it elsewhere must go through a sanctioned reader.

use crate::{Metrics, Stats};

pub fn export(m: &mut Metrics, stats: &Stats) {
    m.push_counter("app_requests_total", stats.requests);
}
