//! An ad-hoc `.load()` of a surfaced counter outside the sanctioned
//! readers: the exported total and this read can silently drift.

use std::sync::atomic::{AtomicU64, Ordering};

pub mod obs_export;

pub struct Metrics;

impl Metrics {
    pub fn push_counter(&mut self, _name: &str, _value: u64) {}
}

pub struct Stats {
    pub requests: AtomicU64,
}

pub fn peek(stats: &Stats) -> u64 {
    stats.requests.load(Ordering::Relaxed)
}
