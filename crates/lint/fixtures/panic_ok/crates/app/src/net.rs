//! Hostile-input decode path done right: typed errors, checked access, and
//! one audited waiver. Test-module panics are exempt.

#[derive(Debug)]
pub enum DecodeError {
    Truncated,
    BadMagic,
}

pub fn decode(buf: &[u8]) -> Result<u32, DecodeError> {
    let first = buf.first().copied().ok_or(DecodeError::Truncated)?;
    if first == 0xFF {
        return Err(DecodeError::BadMagic);
    }
    let rest = buf.get(1..).unwrap_or(&[]);
    let known = [0u8; 4];
    let sum: u32 = rest.iter().map(|&b| u32::from(b)).sum();
    // lint: allow(no-panic-on-hostile-input) index 0 of a fixed [u8; 4] can never be out of bounds.
    let anchor = known[0];
    Ok(sum + u32::from(anchor))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panics_allowed_here() {
        let v = decode(&[1, 2, 3]).unwrap();
        let arr = [v, 1];
        assert_eq!(arr[0], 5);
    }
}
