//! Channels created with no `// capacity:` justification — one of each
//! boundedness class.

use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender};

pub fn pipe() -> (Sender<u64>, Receiver<u64>) {
    channel()
}

pub fn handoff() -> (SyncSender<u64>, Receiver<u64>) {
    sync_channel(0)
}

pub fn bounded_queue() -> (SyncSender<u64>, Receiver<u64>) {
    sync_channel(64)
}
