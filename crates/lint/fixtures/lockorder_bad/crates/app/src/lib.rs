//! Two-lock cycle: `fwd` nests `a` then `b`, `rev` nests `b` then `a`.
//! The lock-order pass must report exactly one cycle, citing both
//! witness sites.

use std::sync::Mutex;

pub struct Pair {
    pub a: Mutex<u64>,
    pub b: Mutex<u64>,
}

impl Pair {
    pub fn fwd(&self) -> u64 {
        let x = self.a.lock().unwrap();
        let y = self.b.lock().unwrap();
        *x + *y
    }

    pub fn rev(&self) -> u64 {
        let y = self.b.lock().unwrap();
        let x = self.a.lock().unwrap();
        *x + *y
    }
}
