//! A consistent lock order, including a nesting only visible through
//! one level of call expansion: `outer` holds `conns` across a call to
//! `inner`, which takes `stats` — the graph must contain the
//! `conns -> stats` edge and still be clean (no cycle).

use std::sync::Mutex;

pub struct State {
    pub conns: Mutex<u64>,
    pub stats: Mutex<u64>,
}

impl State {
    pub fn outer(&self) -> u64 {
        let c = self.conns.lock().unwrap();
        *c + self.inner()
    }

    fn inner(&self) -> u64 {
        *self.stats.lock().unwrap()
    }

    /// Same direct order as the expanded one: never a conflict.
    pub fn both(&self) -> u64 {
        let c = self.conns.lock().unwrap();
        let s = self.stats.lock().unwrap();
        *c + *s
    }
}
