//! Suppression hygiene violations: a reason-less waiver and an unknown rule.

pub fn reasonless(xs: &[u32]) -> u32 {
    // lint: allow(unsafe-safety-comment)
    unsafe { *xs.as_ptr() }
}

pub fn unknown_rule() -> u32 {
    // lint: allow(no-such-rule) the rule name above does not exist.
    7
}
