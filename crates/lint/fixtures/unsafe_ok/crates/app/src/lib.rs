//! Every unsafe site here carries a justification in one of the accepted
//! forms: trailing comment, comment run above, `# Safety` doc section, or an
//! explicit suppression with a reason.

pub fn trailing(xs: &[u32]) -> u32 {
    unsafe { *xs.as_ptr() } // SAFETY: as_ptr of a live slice is readable.
}

pub fn above(xs: &[u32]) -> u32 {
    // The pointer comes from a live slice borrow, so the read is in
    // bounds for len >= 1 callers.
    // SAFETY: see above; callers guarantee a non-empty slice.
    unsafe { *xs.as_ptr() }
}

/// Reads one element past a raw pointer.
///
/// # Safety
/// `p` must be valid for reads at `p + off`.
#[inline]
pub unsafe fn documented(p: *const u32, off: usize) -> u32 {
    *p.add(off)
}

pub fn waived(xs: &[u32]) -> u32 {
    // lint: allow(unsafe-safety-comment) exercised by the fixture suite; the invariant is trivial.
    unsafe { *xs.as_ptr() }
}
