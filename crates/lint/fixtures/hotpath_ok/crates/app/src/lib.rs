//! Allocation-free marked functions, plus one audited waiver. The unmarked
//! function may allocate freely.

// lint: hot-path
#[inline]
pub fn bucket(ns: u64) -> usize {
    if ns == 0 {
        0
    } else {
        (63 - ns.leading_zeros() as usize).min(47)
    }
}

// lint: hot-path
pub fn accumulate(acc: &mut [u64; 8], v: u64) {
    let slot = (v % 8) as usize;
    if let Some(s) = acc.get_mut(slot) {
        *s = s.saturating_add(v);
    }
}

// lint: hot-path
pub fn waived(values: &[u64]) -> Vec<u64> {
    // lint: allow(no-alloc-in-hot-path) one-time warmup allocation, amortized across the connection.
    values.to_vec()
}

pub fn cold(values: &[u64]) -> String {
    format!("{values:?}")
}
