//! A bare production `Instant::now()` in an observed scope: the latency
//! it measures escapes the per-stage span accounting.

use std::time::{Duration, Instant};

pub fn handle() -> Duration {
    let t0 = Instant::now();
    busy();
    t0.elapsed()
}

fn busy() {}
