//! Tokenizer torture fixture: every line here LOOKS like a violation to a
//! naive regex but is actually inert (inside strings, comments, raw strings,
//! char literals). The file is named `net.rs` so the hostile-input rule
//! applies; a correct lexer reports zero findings.

// A line comment mentioning unsafe { x.unwrap() } and buf[0] and panic!().

/* A block comment with unsafe and .expect("boom")
   /* nested block comment: still a comment despite unsafe { } */
   tail of the outer comment: x.unwrap() */

pub fn strings() -> usize {
    let a = "unsafe { danger.unwrap() } // not code";
    let b = "escaped quote \" then .expect(\"x\") still in string";
    let c = r#"raw string with "quotes" and x.unwrap() and buf[i]"#;
    let d = r##"raw with hashes: "# not the end, panic!("boom") "##;
    let e = b"byte string with unsafe and arr[0]";
    let f = br#"raw byte string: seqcst.store(1, Ordering::SeqCst)"#;
    a.len() + b.len() + c.len() + d.len() + e.len() + f.len()
}

pub fn chars_and_lifetimes<'a>(s: &'a str) -> (char, char, &'a str) {
    let quote = '\'';
    let bracket = '[';
    let _byte = b'!';
    (quote, bracket, s)
}

pub fn slices_that_are_not_indexing(xs: &[u32], ys: &mut [u32; 4]) -> Vec<u32> {
    let arr = [1u32, 2, 3];
    let from_macro = vec![4u32, 5];
    let [first, .., last] = arr;
    ys.copy_from_slice(&[first, last, 0, 0]);
    let mut out: Vec<u32> = xs.to_vec();
    out.extend(from_macro);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwraps_are_fine_in_tests() {
        let v = slices_that_are_not_indexing(&[1, 2], &mut [0; 4]);
        assert_eq!(v.first().copied().unwrap(), 1);
        let direct = v[0];
        assert_eq!(direct, 1);
    }
}
