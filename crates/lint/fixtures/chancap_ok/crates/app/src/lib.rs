//! Every channel says why its boundedness is right; test-code channels are
//! inventoried but exempt from the justification requirement.

use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender};

pub fn pipe() -> (Sender<u64>, Receiver<u64>) {
    // capacity: unbounded; one message per admission-controlled request, so
    // depth is bounded upstream of the channel.
    channel()
}

pub fn handoff() -> (SyncSender<u64>, Receiver<u64>) {
    // capacity: rendezvous — the producer must observe the consumer taking
    // each value before proceeding, which is the backpressure we want.
    sync_channel(0)
}

#[cfg(test)]
mod tests {
    use std::sync::mpsc::channel;

    #[test]
    fn test_channels_are_exempt() {
        let (tx, rx) = channel::<u64>();
        tx.send(1).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
    }
}
