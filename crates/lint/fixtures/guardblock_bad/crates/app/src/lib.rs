//! A guard held across a channel recv: every other worker contending for
//! the queue lock stalls for the full duration of the blocking call.

use std::sync::mpsc::Receiver;
use std::sync::Mutex;

pub struct Queue {
    rx: Mutex<Receiver<u64>>,
}

impl Queue {
    pub fn next(&self) -> Option<u64> {
        let rx = self.rx.lock().ok()?;
        rx.recv().ok()
    }
}
