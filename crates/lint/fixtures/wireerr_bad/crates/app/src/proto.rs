//! `WireError::BadMagic` is neither mapped in production (the `match`
//! swallows it behind `_`) nor constructed in any test: two findings.

pub enum WireError {
    Truncated,
    BadMagic,
}

pub fn render(e: &WireError) -> &'static str {
    match e {
        WireError::Truncated => "truncated",
        _ => "other",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncated_renders() {
        assert_eq!(render(&WireError::Truncated), "truncated");
    }
}
