//! The PR 6 inline-bits bug, reduced: wire-read lengths reach
//! length-proportional allocations with no clamp, so `len = u32::MAX`
//! forces a ~512 MiB allocation before the payload is even validated.

pub struct Body {
    n: u32,
}

pub struct BitVec;

impl BitVec {
    pub fn zeros(_len: usize) -> BitVec {
        BitVec
    }
}

impl Body {
    pub fn u32(&mut self) -> u32 {
        self.n
    }

    pub fn decode_bits(&mut self) -> BitVec {
        let len = self.u32() as usize;
        BitVec::zeros(len)
    }

    pub fn decode_counters(&mut self) -> Vec<u64> {
        let n = self.u32() as usize;
        Vec::with_capacity(n)
    }
}
