//! Every wire-read length is clamped before its sink — the straight-line
//! check-then-allocate convention the taint rule mechanizes. All three
//! sanitizer forms appear: a derived-value `.len()` comparison, a named
//! `MAX_*` cap, and a `.min(…)` clamp at the read itself.

pub const MAX_COUNTERS: usize = 200;

pub struct Body {
    n: u32,
    b: Vec<u8>,
    pos: usize,
}

pub struct BitVec;

impl BitVec {
    pub fn zeros(_len: usize) -> BitVec {
        BitVec
    }
}

pub enum DecodeError {
    TooLong,
}

impl Body {
    pub fn u32(&mut self) -> u32 {
        self.n
    }

    pub fn decode_bits(&mut self) -> Result<BitVec, DecodeError> {
        let len = self.u32() as usize;
        let n_words = len.div_ceil(64);
        let promised = n_words * 8;
        if promised > self.b.len() - self.pos {
            return Err(DecodeError::TooLong);
        }
        Ok(BitVec::zeros(len))
    }

    pub fn decode_counters(&mut self) -> Result<Vec<u64>, DecodeError> {
        let n = self.u32() as usize;
        if n > MAX_COUNTERS {
            return Err(DecodeError::TooLong);
        }
        Ok(Vec::with_capacity(n))
    }

    pub fn take_clamped(&mut self) -> Vec<u8> {
        let n = (self.u32() as usize).min(MAX_COUNTERS);
        Vec::with_capacity(n)
    }
}
