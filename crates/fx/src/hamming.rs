//! §4.1 — Hamming distance: the identity extraction.
//!
//! Binary vectors are fed to the model unchanged; the threshold is used
//! directly as `τ` when `θ_max ≤ τ_max`, otherwise mapped proportionally
//! (`τ = ⌊τ_max · θ/θ_max⌋`).

use crate::traits::{proportional_tau, FeatureExtractor};
use cardest_data::{BitVec, Record};

/// Identity extractor for binary-vector data.
pub struct HammingIdentityExtractor {
    dim: usize,
    theta_max: f64,
    tau_max: usize,
}

impl HammingIdentityExtractor {
    pub fn new(dim: usize, theta_max: f64, tau_max: usize) -> Self {
        HammingIdentityExtractor {
            dim,
            theta_max,
            tau_max,
        }
    }

    /// The effective τ ceiling: when `θ_max ≤ τ_max` only `θ_max + 1`
    /// decoders are useful (§4: "θ_max is not necessarily mapped to τ_max").
    pub fn effective_tau_max(&self) -> usize {
        if self.theta_max <= self.tau_max as f64 {
            self.theta_max.floor() as usize
        } else {
            self.tau_max
        }
    }
}

impl FeatureExtractor for HammingIdentityExtractor {
    fn dim(&self) -> usize {
        self.dim
    }

    fn tau_max(&self) -> usize {
        self.effective_tau_max()
    }

    fn extract(&self, record: &Record) -> BitVec {
        record.as_bits().clone()
    }

    fn map_threshold(&self, theta: f64) -> usize {
        let theta = theta.clamp(0.0, self.theta_max);
        if self.theta_max <= self.tau_max as f64 {
            theta.floor() as usize
        } else {
            proportional_tau(theta, self.theta_max, self.tau_max)
        }
    }

    fn name(&self) -> &'static str {
        "hamming-identity"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_extraction_preserves_bits() {
        let fx = HammingIdentityExtractor::new(8, 4.0, 16);
        let r = Record::Bits(BitVec::from_u64(0b1011_0010, 8));
        assert_eq!(fx.extract(&r), *r.as_bits());
    }

    #[test]
    fn small_theta_max_uses_threshold_directly() {
        let fx = HammingIdentityExtractor::new(8, 6.0, 16);
        assert_eq!(fx.tau_max(), 6);
        for theta in 0..=6 {
            assert_eq!(fx.map_threshold(f64::from(theta)), theta as usize);
        }
    }

    #[test]
    fn large_theta_max_maps_proportionally() {
        let fx = HammingIdentityExtractor::new(128, 64.0, 16);
        assert_eq!(fx.tau_max(), 16);
        assert_eq!(fx.map_threshold(0.0), 0);
        assert_eq!(fx.map_threshold(64.0), 16);
        assert_eq!(fx.map_threshold(32.0), 8);
    }

    #[test]
    fn thresholds_beyond_theta_max_are_clamped() {
        let fx = HammingIdentityExtractor::new(8, 6.0, 16);
        assert_eq!(fx.map_threshold(100.0), 6);
    }
}
