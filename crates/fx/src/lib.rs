//! Feature extraction: the `h(x, θ) → (x ∈ {0,1}^d, τ ∈ ℤ≥0)` half of the
//! paper's framework (§3.2, §4).
//!
//! Each extractor maps records of one domain into a Hamming space whose
//! distances exactly or approximately capture the original distance function
//! (equivalency / LSH / bounding, §4), and monotonically maps the query
//! threshold `θ ∈ [0, θ_max]` to an integer `τ ∈ [0, τ_max]`. Monotonicity of
//! the threshold transform is the `h` half of Lemma 1's precondition for the
//! end-to-end monotonicity guarantee, and is property-tested for every
//! extractor.

pub mod edit;
pub mod hamming;
pub mod minhash;
pub mod naive;
pub mod pstable;
pub mod traits;

pub use edit::EditPositionalExtractor;
pub use hamming::HammingIdentityExtractor;
pub use minhash::BBitMinHashExtractor;
pub use naive::naive_extractor;
pub use pstable::PStableExtractor;
pub use traits::{build_extractor, FeatureExtractor};
