//! Feature extraction: the `h(x, θ) → (x ∈ {0,1}^d, τ ∈ ℤ≥0)` half of the
//! paper's framework (§3.2, §4).
//!
//! Each extractor maps records of one domain into a Hamming space whose
//! distances exactly or approximately capture the original distance function
//! (equivalency / LSH / bounding, §4), and monotonically maps the query
//! threshold `θ ∈ [0, θ_max]` to an integer `τ ∈ [0, τ_max]`. Monotonicity of
//! the threshold transform is the `h` half of Lemma 1's precondition for the
//! end-to-end monotonicity guarantee, and is property-tested for every
//! extractor.
//!
//! ```
//! use cardest_data::synth::{jc_bms, SynthConfig};
//! use cardest_fx::build_extractor;
//!
//! let ds = jc_bms(SynthConfig::new(80, 7));
//! let fx = build_extractor(&ds, 12, 1);
//!
//! // h_rec: every record embeds into the same d-dimensional Hamming space…
//! let bits = fx.extract(&ds.records[0]);
//! assert_eq!(bits.len(), fx.dim());
//!
//! // …and h_thr maps θ to τ monotonically (Lemma 1's precondition).
//! let taus: Vec<usize> =
//!     (0..=10).map(|i| fx.map_threshold(ds.theta_max * f64::from(i) / 10.0)).collect();
//! assert!(taus.windows(2).all(|w| w[0] <= w[1]));
//! assert!(*taus.last().unwrap() <= fx.tau_max());
//! ```

pub mod edit;
pub mod hamming;
pub mod minhash;
pub mod naive;
pub mod pstable;
pub mod traits;

pub use edit::EditPositionalExtractor;
pub use hamming::HammingIdentityExtractor;
pub use minhash::BBitMinHashExtractor;
pub use naive::naive_extractor;
pub use pstable::PStableExtractor;
pub use traits::{build_extractor, FeatureExtractor};
