//! §4.4 — Euclidean distance: LSH from p-stable (Gaussian) projections.
//!
//! Each hash is `h_{a,b}(x) = ⌊(a·x + b) / r⌋` with `a ~ N(0, I)` and
//! `b ~ U[0, r]`. Hash values are clamped to the range observed on the
//! dataset and one-hot encoded, giving `d = k·(v + 1)` bits. Two records at
//! distance θ collide with probability `ε(θ)` (the p-stable collision
//! formula), so the expected encoded Hamming distance is `(1 − ε(θ))·2k·…`
//! — proportional to `1 − ε(θ)` — and the threshold transform is
//! `τ = ⌊τ_max · (1 − ε(θ)) / (1 − ε(θ_max))⌋`.

use crate::traits::FeatureExtractor;
use cardest_data::{BitVec, Dataset, Record};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// p-stable LSH extractor for real-valued vectors.
pub struct PStableExtractor {
    /// Projection vectors, one per hash function.
    a: Vec<Vec<f32>>,
    /// Offsets `b ∈ [0, r]`.
    b: Vec<f32>,
    /// Bucket width `r`.
    r: f64,
    /// Hash-value clamp range `[v_min, v_max]` observed at build time.
    v_min: i64,
    v_max: i64,
    theta_max: f64,
    tau_max: usize,
}

fn normal(rng: &mut impl Rng) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation
/// (max error ≈ 1.5e-7, far below what the transform needs).
fn norm_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// The p-stable collision probability `ε(θ)` for bucket width `r`
/// (Datar et al., SoCG 2004).
pub fn collision_probability(theta: f64, r: f64) -> f64 {
    if theta <= 0.0 {
        return 1.0;
    }
    let c = r / theta;
    1.0 - 2.0 * norm_cdf(-c)
        - 2.0 / ((std::f64::consts::TAU).sqrt() * c) * (1.0 - (-c * c / 2.0).exp())
}

impl PStableExtractor {
    /// Draws `k` hash functions and calibrates the hash-value range on the
    /// dataset (sampling up to 512 records).
    pub fn from_dataset(dataset: &Dataset, tau_max: usize, seed: u64) -> Self {
        let dim = dataset.records.first().map_or(1, |rec| rec.as_vec().len());
        // r ≈ θ_max works well for unit-norm data: collisions stay informative
        // across the threshold range. The paper uses 256–512 hash functions;
        // 64 balances LSH variance against CPU training cost at this scale.
        let r = dataset.theta_max.max(1e-6);
        let k = 64;
        let mut rng = StdRng::seed_from_u64(seed);
        let a: Vec<Vec<f32>> = (0..k)
            .map(|_| (0..dim).map(|_| normal(&mut rng) as f32).collect())
            .collect();
        let b: Vec<f32> = (0..k).map(|_| rng.gen_range(0.0..r) as f32).collect();
        let mut fx = PStableExtractor {
            a,
            b,
            r,
            v_min: 0,
            v_max: 0,
            theta_max: dataset.theta_max,
            tau_max,
        };
        // Calibrate the clamp range.
        let (mut lo, mut hi) = (i64::MAX, i64::MIN);
        for rec in dataset.records.iter().take(512) {
            for h in 0..k {
                let v = fx.raw_hash(rec.as_vec(), h);
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        if lo > hi {
            (lo, hi) = (0, 0);
        }
        // One bucket of slack each side for queries outside the sample range.
        fx.v_min = lo - 1;
        fx.v_max = hi + 1;
        fx
    }

    fn raw_hash(&self, x: &[f32], h: usize) -> i64 {
        let dot: f64 = self.a[h]
            .iter()
            .zip(x)
            .map(|(&a, &v)| f64::from(a) * f64::from(v))
            .sum();
        ((dot + f64::from(self.b[h])) / self.r).floor() as i64
    }

    fn buckets(&self) -> usize {
        (self.v_max - self.v_min + 1) as usize
    }

    pub fn num_hashes(&self) -> usize {
        self.a.len()
    }
}

impl FeatureExtractor for PStableExtractor {
    fn dim(&self) -> usize {
        self.num_hashes() * self.buckets()
    }

    fn tau_max(&self) -> usize {
        self.tau_max
    }

    fn extract(&self, record: &Record) -> BitVec {
        let x = record.as_vec();
        let buckets = self.buckets();
        let mut out = BitVec::zeros(self.dim());
        for h in 0..self.num_hashes() {
            let v = self.raw_hash(x, h).clamp(self.v_min, self.v_max);
            let slot = (v - self.v_min) as usize;
            out.set(h * buckets + slot, true);
        }
        out
    }

    fn map_threshold(&self, theta: f64) -> usize {
        let theta = theta.clamp(0.0, self.theta_max);
        let denom = 1.0 - collision_probability(self.theta_max, self.r);
        if denom <= 0.0 {
            return 0;
        }
        let frac = ((1.0 - collision_probability(theta, self.r)) / denom).clamp(0.0, 1.0);
        ((self.tau_max as f64) * frac).floor() as usize
    }

    fn name(&self) -> &'static str {
        "pstable-lsh"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardest_data::synth::{eu_glove, SynthConfig};

    #[test]
    fn erf_matches_known_values() {
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-5);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-5);
        assert!((norm_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((norm_cdf(1.96) - 0.975).abs() < 1e-3);
    }

    #[test]
    fn collision_probability_is_decreasing_in_theta() {
        let r = 0.8;
        let mut prev = collision_probability(0.0, r);
        assert!((prev - 1.0).abs() < 1e-12);
        for i in 1..=40 {
            let p = collision_probability(f64::from(i) * 0.05, r);
            assert!(
                p <= prev + 1e-12,
                "ε increased at θ={}",
                f64::from(i) * 0.05
            );
            assert!((0.0..=1.0).contains(&p));
            prev = p;
        }
    }

    #[test]
    fn extraction_is_one_hot_per_hash() {
        let ds = eu_glove(SynthConfig::new(100, 3), 16);
        let fx = PStableExtractor::from_dataset(&ds, 16, 9);
        let bv = fx.extract(&ds.records[0]);
        assert_eq!(bv.count_ones() as usize, fx.num_hashes());
    }

    #[test]
    fn closer_pairs_have_smaller_encoded_distance_on_average() {
        let ds = eu_glove(SynthConfig::new(400, 4), 16);
        let fx = PStableExtractor::from_dataset(&ds, 16, 10);
        let d = ds.distance();
        let q = &ds.records[0];
        let hq = fx.extract(q);
        // Bucket pairs by original distance; encoded distance must trend up.
        let mut close = Vec::new();
        let mut far = Vec::new();
        for rec in ds.records.iter().skip(1) {
            let dist = d.eval(q, rec);
            let h = f64::from(hq.hamming(&fx.extract(rec)));
            if dist < 0.4 {
                close.push(h);
            } else if dist > 0.9 {
                far.push(h);
            }
        }
        assert!(!close.is_empty() && !far.is_empty(), "need both buckets");
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&close) < mean(&far),
            "LSH failed to order distances: close {} vs far {}",
            mean(&close),
            mean(&far)
        );
    }

    #[test]
    fn threshold_transform_is_monotone_and_spans_range() {
        let ds = eu_glove(SynthConfig::new(50, 5), 8);
        let fx = PStableExtractor::from_dataset(&ds, 20, 11);
        assert_eq!(fx.map_threshold(0.0), 0);
        assert_eq!(fx.map_threshold(ds.theta_max), 20);
        let mut prev = 0;
        for i in 0..=40 {
            let tau = fx.map_threshold(ds.theta_max * f64::from(i) / 40.0);
            assert!(tau >= prev);
            prev = tau;
        }
    }
}
