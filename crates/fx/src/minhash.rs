//! §4.3 — Jaccard distance: b-bit minwise hashing (LSH).
//!
//! `k` hash-based permutations of the token universe; for each, the last `b`
//! bits of the minimum hashed element are one-hot encoded into `2^b` bits,
//! giving `d = k·2^b` total. Two sets agree on a permutation's minimum with
//! probability `1 − J_dist(x, y)`, so the expected encoded Hamming distance
//! is proportional to the Jaccard distance, and the threshold transform is
//! the proportional map `τ = ⌊τ_max · θ/θ_max⌋`.

use crate::traits::{proportional_tau, FeatureExtractor};
use cardest_data::{BitVec, Record};

/// b-bit minwise hashing extractor for sets.
pub struct BBitMinHashExtractor {
    theta_max: f64,
    tau_max: usize,
    /// Number of permutations `k`.
    k: usize,
    /// Bits kept per permutation.
    b: u32,
    /// Per-permutation hash seeds (the "permutation" is ordering by hash).
    seeds: Vec<u64>,
}

impl BBitMinHashExtractor {
    pub fn new(theta_max: f64, tau_max: usize, k: usize, b: u32, seed: u64) -> Self {
        assert!((1..=16).contains(&b), "b-bit minhash needs 1 ≤ b ≤ 16");
        // SplitMix64 over the master seed generates independent seeds.
        let mut state = seed;
        let seeds = (0..k)
            .map(|_| {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                splitmix64(state)
            })
            .collect();
        BBitMinHashExtractor {
            theta_max,
            tau_max,
            k,
            b,
            seeds,
        }
    }

    /// Minimum hash value of the set under permutation `p`.
    fn min_hash(&self, set: &[u32], p: usize) -> u64 {
        let seed = self.seeds[p];
        set.iter()
            .map(|&tok| splitmix64(seed ^ (u64::from(tok).wrapping_mul(0xA24B_AED4_963E_E407))))
            .min()
            .unwrap_or(seed) // empty set: a fixed, seed-dependent sentinel
    }
}

#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FeatureExtractor for BBitMinHashExtractor {
    fn dim(&self) -> usize {
        self.k * (1usize << self.b)
    }

    fn tau_max(&self) -> usize {
        self.tau_max
    }

    fn extract(&self, record: &Record) -> BitVec {
        let set = record.as_set();
        let width = 1usize << self.b;
        let mask = (width - 1) as u64;
        let mut out = BitVec::zeros(self.dim());
        for p in 0..self.k {
            let low = (self.min_hash(set, p) & mask) as usize;
            out.set(p * width + low, true);
        }
        out
    }

    fn map_threshold(&self, theta: f64) -> usize {
        proportional_tau(
            theta.clamp(0.0, self.theta_max),
            self.theta_max,
            self.tau_max,
        )
    }

    fn name(&self) -> &'static str {
        "bbit-minhash"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardest_data::dist::jaccard_distance;
    use rand::{Rng, SeedableRng};

    fn fx(k: usize) -> BBitMinHashExtractor {
        BBitMinHashExtractor::new(0.4, 16, k, 2, 42)
    }

    #[test]
    fn one_hot_per_permutation() {
        let fx = fx(32);
        let bv = fx.extract(&Record::set_from(vec![1, 5, 9]));
        assert_eq!(bv.len(), 32 * 4);
        assert_eq!(bv.count_ones(), 32, "exactly one bit per permutation");
    }

    #[test]
    fn identical_sets_collide_fully() {
        let fx = fx(16);
        let a = fx.extract(&Record::set_from(vec![3, 7, 8]));
        let b = fx.extract(&Record::set_from(vec![3, 7, 8]));
        assert_eq!(a.hamming(&b), 0);
    }

    #[test]
    fn expected_distance_tracks_jaccard() {
        // With many permutations, the fraction of disagreeing permutations
        // concentrates around the Jaccard distance.
        let fx = fx(512);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..6 {
            let a: Vec<u32> = (0..30).map(|_| rng.gen_range(0..200)).collect();
            let b: Vec<u32> = a
                .iter()
                .map(|&t| {
                    if rng.gen_bool(0.3) {
                        rng.gen_range(0..200)
                    } else {
                        t
                    }
                })
                .collect();
            let (ra, rb) = (Record::set_from(a), Record::set_from(b));
            let jd = jaccard_distance(ra.as_set(), rb.as_set());
            let (ha, hb) = (fx.extract(&ra), fx.extract(&rb));
            // Each disagreeing permutation flips 2 bits of the one-hot pair,
            // but b-bit truncation collides 1/2^b of disagreements.
            let disagree = f64::from(ha.hamming(&hb)) / 2.0 / 512.0;
            let expected = jd * (1.0 - 0.25); // b = 2 → collision prob 1/4
            assert!(
                (disagree - expected).abs() < 0.12,
                "observed {disagree:.3}, expected ≈{expected:.3} (J = {jd:.3})"
            );
        }
    }

    #[test]
    fn empty_sets_are_handled() {
        let fx = fx(8);
        let e = fx.extract(&Record::set_from(vec![]));
        assert_eq!(e.count_ones(), 8);
        // Deterministic for repeated extraction.
        assert_eq!(e, fx.extract(&Record::set_from(vec![])));
    }

    #[test]
    fn threshold_transform_covers_range() {
        let fx = fx(8);
        assert_eq!(fx.map_threshold(0.0), 0);
        assert_eq!(fx.map_threshold(0.4), 16);
        assert_eq!(fx.map_threshold(0.2), 8);
    }
}
