//! §4.2 — Edit distance: the positional bounding encoding.
//!
//! Each character at position `i` sets bits `i−s … i+s` of its character
//! group, so that a single edit operation (insert/delete/substitute) changes
//! at most `4s + 2` bits. The encoded Hamming distance is therefore bounded
//! by `(4s + 2)·f(x, y)` — the "bounding" flavour of feature extraction.
//!
//! Two CPU-budget deviations from the paper, both configurable:
//! the smear radius `s` defaults to `min(τ_max, 3)` instead of `τ_max`
//! (keeps `d` small; the bound above holds for any `s ≥ 1`), and the
//! alphabet is folded into `n_groups` buckets instead of one group per
//! character (substitutions within a bucket flip 0 bits, which only
//! *tightens* the bound).

use crate::traits::{proportional_tau, FeatureExtractor};
use cardest_data::{BitVec, Dataset, Record};

/// Positional character-group encoder for strings.
pub struct EditPositionalExtractor {
    /// Max string length covered; longer strings are truncated.
    l_max: usize,
    /// Smear radius `s`.
    smear: usize,
    /// Alphabet buckets.
    n_groups: usize,
    theta_max: f64,
    tau_max: usize,
}

impl EditPositionalExtractor {
    pub fn new(
        l_max: usize,
        smear: usize,
        n_groups: usize,
        theta_max: f64,
        tau_max: usize,
    ) -> Self {
        assert!(n_groups > 0 && l_max > 0);
        EditPositionalExtractor {
            l_max,
            smear,
            n_groups,
            theta_max,
            tau_max,
        }
    }

    /// Sizes the encoder from a dataset: `l_max` from the corpus, default
    /// smear and 12 alphabet groups.
    pub fn from_dataset(dataset: &Dataset, tau_max: usize) -> Self {
        let l_max = dataset.max_width().max(1);
        let smear = tau_max.clamp(1, 3);
        EditPositionalExtractor::new(l_max, smear, 12, dataset.theta_max, tau_max)
    }

    fn group_of(&self, byte: u8) -> usize {
        // Letter-aware folding keeps similar characters apart; everything
        // else (digits, spaces) hashes onto the same ring.
        (byte as usize).wrapping_mul(31) % self.n_groups
    }

    /// Width of one group's positional strip.
    fn strip(&self) -> usize {
        self.l_max + 2 * self.smear
    }
}

impl FeatureExtractor for EditPositionalExtractor {
    fn dim(&self) -> usize {
        self.strip() * self.n_groups
    }

    fn tau_max(&self) -> usize {
        if self.theta_max <= self.tau_max as f64 {
            self.theta_max.floor() as usize
        } else {
            self.tau_max
        }
    }

    fn extract(&self, record: &Record) -> BitVec {
        let s = record.as_str().as_bytes();
        let strip = self.strip();
        let mut out = BitVec::zeros(self.dim());
        for (i, &byte) in s.iter().take(self.l_max).enumerate() {
            let g = self.group_of(byte);
            let base = g * strip;
            // Position i smears across [i, i + 2s] inside the strip, which is
            // the paper's [i − s, i + s] shifted so indices stay non-negative.
            for j in i..=i + 2 * self.smear {
                out.set(base + j, true);
            }
        }
        out
    }

    fn map_threshold(&self, theta: f64) -> usize {
        // Integer-valued distance: same transform as Hamming (§4.2).
        let theta = theta.clamp(0.0, self.theta_max);
        if self.theta_max <= self.tau_max as f64 {
            theta.floor() as usize
        } else {
            proportional_tau(theta, self.theta_max, self.tau_max)
        }
    }

    fn name(&self) -> &'static str {
        "edit-positional"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardest_data::dist::levenshtein;
    use cardest_data::synth::{ed_aminer, SynthConfig};
    use proptest::prelude::*;

    fn fx() -> EditPositionalExtractor {
        EditPositionalExtractor::new(20, 2, 12, 8.0, 8)
    }

    #[test]
    fn identical_strings_have_zero_encoded_distance() {
        let fx = fx();
        let a = fx.extract(&Record::Str("hello".into()));
        let b = fx.extract(&Record::Str("hello".into()));
        assert_eq!(a.hamming(&b), 0);
    }

    #[test]
    fn single_substitution_changes_bounded_bits() {
        let fx = fx();
        let a = fx.extract(&Record::Str("hello".into()));
        let b = fx.extract(&Record::Str("hallo".into()));
        // One substitution: clears one smeared strip segment, sets another.
        assert!(a.hamming(&b) <= (4 * 2 + 2));
        assert!(a.hamming(&b) > 0);
    }

    #[test]
    fn from_dataset_sizes_to_corpus() {
        let ds = ed_aminer(SynthConfig::new(100, 1));
        let fx = EditPositionalExtractor::from_dataset(&ds, 8);
        assert_eq!(fx.dim(), (ds.max_width() + 2 * fx.smear) * 12);
        let bv = fx.extract(&ds.records[0]);
        assert_eq!(bv.len(), fx.dim());
    }

    proptest! {
        #[test]
        fn encoded_distance_respects_edit_bound(a in "[a-f]{1,12}", b in "[a-f]{1,12}") {
            let fx = fx();
            let ed = levenshtein(&a, &b);
            let ha = fx.extract(&Record::Str(a));
            let hb = fx.extract(&Record::Str(b));
            let bound = ed * (4 * fx.smear + 2);
            prop_assert!(
                (ha.hamming(&hb) as usize) <= bound,
                "H = {} > bound {} for ed = {}",
                ha.hamming(&hb), bound, ed
            );
        }

        #[test]
        fn threshold_transform_is_monotone(thetas in prop::collection::vec(0.0f64..8.0, 2..20)) {
            let fx = fx();
            let mut sorted = thetas;
            sorted.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
            let taus: Vec<usize> = sorted.iter().map(|&t| fx.map_threshold(t)).collect();
            prop_assert!(taus.windows(2).all(|w| w[0] <= w[1]));
        }
    }
}
