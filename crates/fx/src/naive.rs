//! Naive feature encodings for the Table 7 "−feature-extraction" ablation.
//!
//! The paper replaces its extractors with weaker encoders (a character
//! BiLSTM for strings, deep sets for sets, raw vectors for Euclidean) to
//! measure how much the Hamming-semantic extraction contributes. These
//! stand-ins share the key property of those replacements: they ignore the
//! distance semantics (no positional smearing, no LSH collision structure)
//! while still being valid binary encodings.

use crate::traits::{proportional_tau, FeatureExtractor};
use cardest_data::{BitVec, Dataset, DistanceKind, Record};

/// Builds the naive encoder for a dataset (Hamming data stays raw — the
/// paper does not ablate feature extraction there).
pub fn naive_extractor(dataset: &Dataset, tau_max: usize, seed: u64) -> Box<dyn FeatureExtractor> {
    match dataset.kind {
        DistanceKind::Hamming => crate::build_extractor(dataset, tau_max, seed),
        DistanceKind::Edit => Box::new(NaiveExtractor {
            kind: NaiveKind::CharBag,
            dim: 128,
            theta_max: dataset.theta_max,
            tau_max,
        }),
        DistanceKind::Jaccard => Box::new(NaiveExtractor {
            kind: NaiveKind::TokenHash,
            dim: 128,
            theta_max: dataset.theta_max,
            tau_max,
        }),
        DistanceKind::Euclidean => {
            let dim = dataset.records.first().map_or(1, |r| r.as_vec().len());
            Box::new(NaiveExtractor {
                kind: NaiveKind::SignBits,
                dim,
                theta_max: dataset.theta_max,
                tau_max,
            })
        }
    }
}

enum NaiveKind {
    /// Presence bits of characters (strings) — positions discarded.
    CharBag,
    /// Feature-hashed token presence (sets) — collision-lossy.
    TokenHash,
    /// Sign bits of the raw vector (Euclidean) — magnitudes discarded.
    SignBits,
}

struct NaiveExtractor {
    kind: NaiveKind,
    dim: usize,
    theta_max: f64,
    tau_max: usize,
}

impl FeatureExtractor for NaiveExtractor {
    fn dim(&self) -> usize {
        self.dim
    }

    fn tau_max(&self) -> usize {
        if self.theta_max <= self.tau_max as f64 && matches!(self.kind, NaiveKind::CharBag) {
            self.theta_max.floor() as usize
        } else {
            self.tau_max
        }
    }

    fn extract(&self, record: &Record) -> BitVec {
        let mut out = BitVec::zeros(self.dim);
        match self.kind {
            NaiveKind::CharBag => {
                for &b in record.as_str().as_bytes() {
                    out.set((b as usize).wrapping_mul(37) % self.dim, true);
                }
            }
            NaiveKind::TokenHash => {
                for &t in record.as_set() {
                    out.set((t as usize).wrapping_mul(2_654_435_761) % self.dim, true);
                }
            }
            NaiveKind::SignBits => {
                for (i, &v) in record.as_vec().iter().enumerate().take(self.dim) {
                    if v > 0.0 {
                        out.set(i, true);
                    }
                }
            }
        }
        out
    }

    fn map_threshold(&self, theta: f64) -> usize {
        let theta = theta.clamp(0.0, self.theta_max);
        if matches!(self.kind, NaiveKind::CharBag) && self.theta_max <= self.tau_max as f64 {
            theta.floor() as usize
        } else {
            proportional_tau(theta, self.theta_max, self.tau_max)
        }
    }

    fn name(&self) -> &'static str {
        "naive"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardest_data::synth::{default_suite, SynthConfig};

    #[test]
    fn naive_extractors_build_for_every_kind() {
        for ds in default_suite(40, 9) {
            let fx = naive_extractor(&ds, 12, 3);
            let bv = fx.extract(&ds.records[0]);
            assert_eq!(bv.len(), fx.dim());
            // Still monotone in θ — the ablation only weakens the encoding.
            let mut prev = 0;
            for i in 0..=20 {
                let tau = fx.map_threshold(ds.theta_max * f64::from(i) / 20.0);
                assert!(tau >= prev);
                prev = tau;
            }
        }
    }

    #[test]
    fn char_bag_discards_positions() {
        let ds = cardest_data::synth::ed_aminer(SynthConfig::new(30, 1));
        let fx = naive_extractor(&ds, 8, 1);
        let a = fx.extract(&Record::Str("abc".into()));
        let b = fx.extract(&Record::Str("cba".into()));
        assert_eq!(a, b, "bag encoding must be permutation-invariant");
    }
}
