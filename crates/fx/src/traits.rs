//! The [`FeatureExtractor`] trait and the per-domain dispatcher.

use crate::edit::EditPositionalExtractor;
use crate::hamming::HammingIdentityExtractor;
use crate::minhash::BBitMinHashExtractor;
use crate::pstable::PStableExtractor;
use cardest_data::{BitVec, Dataset, DistanceKind, Record};

/// Maps records and thresholds into the model's Hamming interface
/// (`h = (h_rec, h_thr)` of §3.2).
pub trait FeatureExtractor: Send + Sync {
    /// Output dimensionality `d` of the binary representation.
    fn dim(&self) -> usize;

    /// Largest transformed threshold (inclusive); the model builds
    /// `tau_max() + 1` decoders.
    fn tau_max(&self) -> usize;

    /// `h_rec`: record → `d`-dimensional binary vector.
    fn extract(&self, record: &Record) -> BitVec;

    /// `h_thr`: θ → τ. Must be monotonically non-decreasing (Lemma 1).
    fn map_threshold(&self, theta: f64) -> usize;

    /// A short label for reports.
    fn name(&self) -> &'static str;
}

/// Builds the paper's case-study extractor for the dataset's distance
/// function (§4.1–§4.4). `tau_max` controls the decoder count; the LSH
/// extractors draw their hash functions from `seed`.
pub fn build_extractor(dataset: &Dataset, tau_max: usize, seed: u64) -> Box<dyn FeatureExtractor> {
    match dataset.kind {
        DistanceKind::Hamming => {
            let dim = dataset.records.first().map_or(0, |r| r.as_bits().len());
            Box::new(HammingIdentityExtractor::new(
                dim,
                dataset.theta_max,
                tau_max,
            ))
        }
        DistanceKind::Edit => Box::new(EditPositionalExtractor::from_dataset(dataset, tau_max)),
        DistanceKind::Jaccard => Box::new(BBitMinHashExtractor::new(
            dataset.theta_max,
            tau_max,
            64,
            2,
            seed,
        )),
        DistanceKind::Euclidean => Box::new(PStableExtractor::from_dataset(dataset, tau_max, seed)),
    }
}

/// Shared helper: the proportional transform `τ = ⌊τ_max · θ/θ_max⌋`,
/// clamped into range (used by §4.1, §4.2, §4.3).
pub(crate) fn proportional_tau(theta: f64, theta_max: f64, tau_max: usize) -> usize {
    if theta_max <= 0.0 {
        return 0;
    }
    let frac = (theta / theta_max).clamp(0.0, 1.0);
    ((tau_max as f64) * frac).floor() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardest_data::synth::default_suite;

    #[test]
    fn dispatcher_builds_for_every_kind() {
        for ds in default_suite(60, 3) {
            let fx = build_extractor(&ds, 16, 7);
            assert!(fx.dim() > 0, "{}", ds.name);
            let bv = fx.extract(&ds.records[0]);
            assert_eq!(bv.len(), fx.dim(), "{}", ds.name);
            assert_eq!(fx.map_threshold(0.0), 0, "{}", ds.name);
            assert!(
                fx.map_threshold(ds.theta_max) <= fx.tau_max(),
                "{}",
                ds.name
            );
        }
    }

    #[test]
    fn threshold_transforms_are_monotone_for_every_kind() {
        for ds in default_suite(60, 4) {
            let fx = build_extractor(&ds, 12, 9);
            let mut prev = 0usize;
            for i in 0..=100 {
                let theta = ds.theta_max * f64::from(i) / 100.0;
                let tau = fx.map_threshold(theta);
                assert!(tau >= prev, "{}: τ decreased at θ={theta}", ds.name);
                prev = tau;
            }
        }
    }

    #[test]
    fn proportional_tau_boundaries() {
        assert_eq!(proportional_tau(0.0, 10.0, 8), 0);
        assert_eq!(proportional_tau(10.0, 10.0, 8), 8);
        assert_eq!(proportional_tau(5.0, 10.0, 8), 4);
        assert_eq!(proportional_tau(20.0, 10.0, 8), 8); // clamped
    }
}
