//! Criterion micro-benchmarks of per-query estimation latency (the Table 6
//! measurement at statistical rigor): CardNet vs CardNet-A vs the cheap
//! baselines vs running the real selection.

use cardest_baselines::dnn::DnnOptions;
use cardest_baselines::{BaselineFeaturizer, DbUs, DlDnn, TlKde};
use cardest_bench::zoo::{cardnet_config, trainer_options};
use cardest_bench::{Bundle, Scale};
use cardest_core::estimator::{CardNetEstimator, CardinalityEstimator};
use cardest_core::train::train_cardnet;
use cardest_fx::build_extractor;
use cardest_select::build_selector;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_estimation(c: &mut Criterion) {
    // A small fixed bundle keeps bench setup fast and deterministic.
    let mut scale = Scale::quick();
    scale.n_records = 800;
    scale.epochs = 8;
    scale.vae_epochs = 3;
    let b = Bundle::default_four(&scale).remove(0); // HM-ImageNet stand-in
    let query = b.split.test.queries[0].query.clone();
    let theta = b.dataset.theta_max * 0.6;

    let fx = build_extractor(&b.dataset, scale.tau_max, 1);
    let cfg = cardnet_config(fx.dim(), fx.tau_max() + 1, false);
    let (t, _) = train_cardnet(
        fx.as_ref(),
        &b.split.train,
        &b.split.valid,
        cfg,
        trainer_options(&scale),
    );
    let cardnet = CardNetEstimator::from_trainer(fx, t);

    let fx_a = build_extractor(&b.dataset, scale.tau_max, 1);
    let cfg_a = cardnet_config(fx_a.dim(), fx_a.tau_max() + 1, true);
    let (ta, _) = train_cardnet(
        fx_a.as_ref(),
        &b.split.train,
        &b.split.valid,
        cfg_a,
        trainer_options(&scale),
    );
    let cardnet_a = CardNetEstimator::from_trainer(fx_a, ta);

    let db_us = DbUs::build(&b.dataset, 0.05, 2);
    let kde = TlKde::build(&b.dataset, 0.05, 3);
    let dnn = DlDnn::train(
        &b.split.train,
        BaselineFeaturizer::from_dataset(&b.dataset, 2),
        b.dataset.theta_max,
        DnnOptions {
            epochs: 4,
            ..Default::default()
        },
    );
    let selector = build_selector(&b.dataset);

    let mut g = c.benchmark_group("estimation_time");
    g.bench_function("CardNet", |bench| {
        bench.iter(|| black_box(cardnet.estimate(black_box(&query), black_box(theta))))
    });
    g.bench_function("CardNet-A", |bench| {
        bench.iter(|| black_box(cardnet_a.estimate(black_box(&query), black_box(theta))))
    });
    g.bench_function("DB-US", |bench| {
        bench.iter(|| black_box(db_us.estimate(black_box(&query), black_box(theta))))
    });
    g.bench_function("TL-KDE", |bench| {
        bench.iter(|| black_box(kde.estimate(black_box(&query), black_box(theta))))
    });
    g.bench_function("DL-DNN", |bench| {
        bench.iter(|| black_box(dnn.estimate(black_box(&query), black_box(theta))))
    });
    g.bench_function("SimSelect", |bench| {
        bench.iter(|| black_box(selector.count(black_box(&query), black_box(theta))))
    });
    g.finish();
}

criterion_group!(benches, bench_estimation);
criterion_main!(benches);
