//! Criterion micro-benchmarks of the substrate hot paths: distance kernels,
//! exact selection indexes, feature extraction, and the NN engine's matmul.

use cardest_data::dist;
use cardest_data::synth::{ed_aminer, eu_glove, hm_imagenet, jc_bms, SynthConfig};
use cardest_fx::build_extractor;
use cardest_nn::Matrix;
use cardest_select::build_selector;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_distances(c: &mut Criterion) {
    let hm = hm_imagenet(SynthConfig::new(2, 1));
    let (a, b) = (hm.records[0].as_bits(), hm.records[1].as_bits());
    let ed = ed_aminer(SynthConfig::new(2, 2));
    let (s1, s2) = (ed.records[0].as_str(), ed.records[1].as_str());
    let jc = jc_bms(SynthConfig::new(2, 3));
    let (t1, t2) = (jc.records[0].as_set(), jc.records[1].as_set());
    let eu = eu_glove(SynthConfig::new(2, 4), 48);
    let (v1, v2) = (eu.records[0].as_vec(), eu.records[1].as_vec());

    let mut g = c.benchmark_group("distance_kernels");
    g.bench_function("hamming_64b", |bench| {
        bench.iter(|| black_box(a.hamming(black_box(b))))
    });
    g.bench_function("levenshtein_banded_k4", |bench| {
        bench.iter(|| black_box(dist::levenshtein_within(black_box(s1), black_box(s2), 4)))
    });
    g.bench_function("jaccard", |bench| {
        bench.iter(|| black_box(dist::jaccard_distance(black_box(t1), black_box(t2))))
    });
    g.bench_function("euclidean_48d", |bench| {
        bench.iter(|| black_box(dist::euclidean(black_box(v1), black_box(v2))))
    });
    g.finish();
}

fn bench_selection(c: &mut Criterion) {
    let mut g = c.benchmark_group("exact_selection");
    for ds in [
        hm_imagenet(SynthConfig::new(2000, 5)),
        jc_bms(SynthConfig::new(2000, 6)),
    ] {
        let sel = build_selector(&ds);
        let q = ds.records[0].clone();
        let theta = ds.theta_max * 0.5;
        g.bench_function(format!("select_{}", ds.name), |bench| {
            bench.iter(|| black_box(sel.count(black_box(&q), black_box(theta))))
        });
    }
    g.finish();
}

fn bench_feature_extraction(c: &mut Criterion) {
    let mut g = c.benchmark_group("feature_extraction");
    for ds in [
        ed_aminer(SynthConfig::new(50, 7)),
        jc_bms(SynthConfig::new(50, 8)),
        eu_glove(SynthConfig::new(50, 9), 48),
    ] {
        let fx = build_extractor(&ds, 16, 1);
        let r = ds.records[0].clone();
        g.bench_function(format!("extract_{}", ds.name), |bench| {
            bench.iter(|| black_box(fx.extract(black_box(&r))))
        });
    }
    g.finish();
}

fn bench_nn(c: &mut Criterion) {
    let a = Matrix::from_fn(64, 256, |r, cl| ((r * cl) % 7) as f32 * 0.1);
    let b = Matrix::from_fn(256, 96, |r, cl| ((r + cl) % 5) as f32 * 0.1);
    let mut g = c.benchmark_group("nn_engine");
    g.bench_function("matmul_64x256x96", |bench| {
        bench.iter(|| black_box(a.matmul(black_box(&b))))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_distances,
    bench_selection,
    bench_feature_extraction,
    bench_nn
);
criterion_main!(benches);
