//! The model zoo: trains any of the paper's estimators on any bundle.

use crate::Scale;
use cardest_baselines::dln::DlnOptions;
use cardest_baselines::dnn::DnnOptions;
use cardest_baselines::gbt::GbtOptions;
use cardest_baselines::moe::MoeOptions;
use cardest_baselines::rmi::RmiOptions;
use cardest_baselines::{
    build_db_se, BaselineFeaturizer, DbUs, DlDln, DlDnn, DlDnnSTau, DlMoe, DlRmi, GrowthPolicy,
    MeanEstimator, TlGbt, TlKde,
};
use cardest_core::model::{CardNetConfig, EncoderKind};
use cardest_core::train::{train_cardnet, TrainerOptions};
use cardest_core::{CardNetEstimator, CardinalityEstimator};
use cardest_data::{Dataset, Workload};
use cardest_fx::build_extractor;

/// Every estimator row the paper's tables report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ModelKind {
    DbSe,
    DbUs,
    TlXgb,
    TlLgbm,
    TlKde,
    DlDln,
    DlMoe,
    DlRmi,
    DlDnn,
    DlDnnSTau,
    CardNet,
    CardNetA,
}

impl ModelKind {
    /// Table 3's full roster.
    pub fn all() -> &'static [ModelKind] {
        &[
            ModelKind::DbSe,
            ModelKind::DbUs,
            ModelKind::TlXgb,
            ModelKind::TlLgbm,
            ModelKind::TlKde,
            ModelKind::DlDln,
            ModelKind::DlMoe,
            ModelKind::DlRmi,
            ModelKind::DlDnn,
            ModelKind::DlDnnSTau,
            ModelKind::CardNet,
            ModelKind::CardNetA,
        ]
    }

    /// The comparison subset used by the threshold/figure sweeps (§9.2:
    /// "the more accurate or monotonic models out of each category").
    pub fn figure_subset() -> &'static [ModelKind] {
        &[
            ModelKind::CardNet,
            ModelKind::CardNetA,
            ModelKind::TlXgb,
            ModelKind::DlRmi,
            ModelKind::DlMoe,
            ModelKind::DbUs,
            ModelKind::DlDln,
        ]
    }

    pub fn label(self) -> &'static str {
        match self {
            ModelKind::DbSe => "DB-SE",
            ModelKind::DbUs => "DB-US",
            ModelKind::TlXgb => "TL-XGB",
            ModelKind::TlLgbm => "TL-LGBM",
            ModelKind::TlKde => "TL-KDE",
            ModelKind::DlDln => "DL-DLN",
            ModelKind::DlMoe => "DL-MoE",
            ModelKind::DlRmi => "DL-RMI",
            ModelKind::DlDnn => "DL-DNN",
            ModelKind::DlDnnSTau => "DL-DNNsT",
            ModelKind::CardNet => "CardNet",
            ModelKind::CardNetA => "CardNet-A",
        }
    }
}

/// A trained estimator plus its training cost (Table 10).
pub struct TrainedModel {
    pub kind: ModelKind,
    pub estimator: Box<dyn CardinalityEstimator>,
    pub train_secs: f64,
}

/// CardNet hyperparameters scaled to the harness.
pub fn cardnet_config(input_dim: usize, n_out: usize, accelerated: bool) -> CardNetConfig {
    let mut cfg = CardNetConfig::new(input_dim, n_out);
    if accelerated {
        cfg.encoder = EncoderKind::Accelerated;
    }
    cfg
}

pub fn trainer_options(scale: &Scale) -> TrainerOptions {
    TrainerOptions {
        epochs: scale.epochs,
        vae_epochs: scale.vae_epochs,
        learning_rate: 3e-3,
        validate_every: 4,
        patience: 5,
        seed: scale.seed ^ 0xCA4D,
        ..TrainerOptions::default()
    }
}

/// Trains one model on a bundle's training/validation split.
pub fn train_model(
    kind: ModelKind,
    dataset: &Dataset,
    train_wl: &Workload,
    valid_wl: &Workload,
    scale: &Scale,
) -> TrainedModel {
    let t0 = std::time::Instant::now();
    let fx_seed = scale.seed ^ 0xF0;
    let estimator: Box<dyn CardinalityEstimator> = match kind {
        ModelKind::DbSe => build_db_se(dataset, fx_seed),
        ModelKind::DbUs => Box::new(DbUs::build(dataset, 0.05, fx_seed)),
        ModelKind::TlXgb | ModelKind::TlLgbm => {
            let policy = if kind == ModelKind::TlXgb {
                GrowthPolicy::DepthWise
            } else {
                GrowthPolicy::LeafWise
            };
            let featurizer = BaselineFeaturizer::from_dataset(dataset, fx_seed);
            let opts = GbtOptions {
                policy,
                n_trees: scale.gbt_trees,
                ..GbtOptions::default()
            };
            Box::new(TlGbt::train(train_wl, featurizer, dataset.theta_max, opts))
        }
        ModelKind::TlKde => Box::new(TlKde::build(dataset, 0.05, fx_seed)),
        ModelKind::DlDln => {
            let featurizer = BaselineFeaturizer::from_dataset(dataset, fx_seed);
            let opts = DlnOptions {
                epochs: scale.epochs,
                seed: scale.seed,
                ..DlnOptions::default()
            };
            Box::new(DlDln::train(train_wl, featurizer, dataset.theta_max, opts))
        }
        ModelKind::DlMoe => {
            let featurizer = BaselineFeaturizer::from_dataset(dataset, fx_seed);
            let opts = MoeOptions {
                epochs: scale.epochs,
                seed: scale.seed,
                ..MoeOptions::default()
            };
            Box::new(DlMoe::train(train_wl, featurizer, dataset.theta_max, opts))
        }
        ModelKind::DlRmi => {
            let featurizer = BaselineFeaturizer::from_dataset(dataset, fx_seed);
            let opts = RmiOptions {
                dnn: DnnOptions {
                    epochs: scale.epochs / 2,
                    seed: scale.seed,
                    ..DnnOptions::default()
                },
                ..RmiOptions::default()
            };
            Box::new(DlRmi::train(train_wl, featurizer, dataset.theta_max, opts))
        }
        ModelKind::DlDnn => {
            let featurizer = BaselineFeaturizer::from_dataset(dataset, fx_seed);
            let opts = DnnOptions {
                epochs: scale.epochs,
                seed: scale.seed,
                ..DnnOptions::default()
            };
            Box::new(DlDnn::train(train_wl, featurizer, dataset.theta_max, opts))
        }
        ModelKind::DlDnnSTau => {
            let fx = build_extractor(dataset, scale.tau_max, fx_seed);
            let opts = DnnOptions {
                epochs: (scale.epochs / 2).max(4),
                seed: scale.seed,
                ..DnnOptions::default()
            };
            Box::new(DlDnnSTau::train(train_wl, fx, opts))
        }
        ModelKind::CardNet | ModelKind::CardNetA => {
            let fx = build_extractor(dataset, scale.tau_max, fx_seed);
            let cfg = cardnet_config(fx.dim(), fx.tau_max() + 1, kind == ModelKind::CardNetA);
            let opts = trainer_options(scale);
            let (trainer, _) = train_cardnet(fx.as_ref(), train_wl, valid_wl, cfg, opts);
            Box::new(CardNetEstimator::from_trainer(fx, trainer))
        }
    };
    TrainedModel {
        kind,
        estimator,
        train_secs: t0.elapsed().as_secs_f64(),
    }
}

/// Builds the `Mean` estimator of §9.11 (not part of Table 3's roster).
pub fn mean_estimator(train_wl: &Workload, theta_max: f64) -> MeanEstimator {
    MeanEstimator::build(train_wl, theta_max, 64)
}
