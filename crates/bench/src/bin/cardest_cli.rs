//! `cardest` command line: generate datasets, train estimators, estimate
//! cardinalities, and serve estimates from the shell — the downstream-user
//! workflow.
//!
//! ```text
//! cardest_cli gen      --kind hm --n 2000 --seed 7 --out data.jsonl
//! cardest_cli train    --data data.jsonl --model model.json [--accelerated]
//! cardest_cli estimate --data data.jsonl --model model.json --query 42 --theta 8
//! cardest_cli estimate --data data.jsonl --model model.json --queries batch.txt
//! cardest_cli serve    --data data.jsonl --model model.json [--workers 4]
//! cardest_cli stats    --data data.jsonl
//! ```
//!
//! `serve` answers `<record-index> <theta>` request lines from stdin with one
//! estimate line each on stdout (a summary of the service counters goes to
//! stderr at EOF); `estimate --queries` runs the same request format from a
//! file through the serving layer's micro-batching path. With `--listen
//! [ADDR]`, `serve` instead opens the framed TCP ingress (`cardest-serve`'s
//! wire protocol, see the README's Serving section) with admission control
//! and load shedding; it prints the bound address, runs until stdin closes,
//! then drains gracefully.
//!
//! (Argument parsing is hand-rolled: the workspace's dependency policy has no
//! CLI-parser crate, and a handful of subcommands does not justify one.)

use cardest_core::estimator::CardinalityEstimator;
use cardest_core::model::CardNetConfig;
use cardest_core::snapshot::Snapshot;
use cardest_core::train::{train_cardnet, TrainerOptions};
use cardest_core::CardNetEstimator;
use cardest_core::{KernelBackend, Parallelism};
use cardest_data::synth::{self, SynthConfig};
use cardest_data::Record;
use cardest_data::{io as dio, Dataset, Workload};
use cardest_fx::build_extractor;
use cardest_serve::{
    Frame, MetricsServer, ModelRegistry, NetClient, NetConfig, NetServer, Request, RequestFrame,
    ServeConfig, Service, WireQuery,
};
use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, flags)) = parse(&args) else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "gen" => cmd_gen(&flags),
        "train" => cmd_train(&flags),
        "estimate" => cmd_estimate(&flags),
        "serve" => cmd_serve(&flags),
        "stats" => cmd_stats(&flags),
        _ => {
            eprintln!("unknown command `{cmd}`\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  cardest_cli gen      --kind <hm|ed|jc|eu> --n <records> [--seed <u64>] --out <file>
  cardest_cli train    --data <file> --model <file> [--accelerated] [--epochs <n>] [--tau-max <n>]
                       [--threads <n kernel workers; 0 = all cores>]
                       [--kernel-backend <scalar|blocked|simd|auto>]
  cardest_cli estimate --data <file> --model <file> --query <record-index> --theta <f64> [--curve]
                       [--threads <n kernel workers; 0 = all cores>]
                       [--kernel-backend <scalar|blocked|simd|auto>]
  cardest_cli estimate --data <file> --model <file> --queries <file with `<index> <theta>` lines>
  cardest_cli serve    --data <file> --model <file> [--workers <n>] [--batch-max <n>]
                       [--batch-window-us <n>] [--cache <entries>] [--bound-tolerance <f64>]
                       [--cache-curve-points <n>] [--pipeline <n outstanding>]
                       [--kernel-threads <n per micro-batch>]
                       [--kernel-backend <scalar|blocked|simd|auto>]
                       [--listen [ADDR]] [--max-conns <n; 0 = unlimited>]
                       [--queue-limit <in-flight requests; 0 = unbounded>]
                       [--deadline-ms <per-request default; 0 = none>]
                       [--client-quota <outstanding per client id; 0 = unlimited>]
                       [--frame-timeout-ms <slow-loris cutoff>]
                       [--idle-timeout-ms <idle-connection cutoff; 0 = none>]
                       [--metrics-addr <ADDR for HTTP /metrics + /stats.json + /traces.json>]
                       [--no-tracing] [--trace-sample <capture every nth trace>]
                       [--slow-threshold-ms <slow-query log cutoff>]
  cardest_cli stats    --data <file>
  cardest_cli stats    --connect <ADDR> [--loadgen <n requests first>]
                       [--index-range <loadgen query indices, default 1>]
                       [--theta <loadgen threshold, default 4>]

Thread counts and kernel backends only change wall clock: every kernel tier
(scalar, blocked, explicit SIMD) is bit-identical, so estimates and trained
weights never depend on them. Without --kernel-backend the process default
applies: the CARDEST_KERNEL_BACKEND env var if set, else the best the CPU
supports (AVX-512 → AVX2 → blocked).";

type Flags = HashMap<String, String>;

fn parse(args: &[String]) -> Option<(String, Flags)> {
    let mut it = args.iter();
    let cmd = it.next()?.clone();
    let mut flags = HashMap::new();
    let mut key: Option<String> = None;
    for a in it {
        if let Some(stripped) = a.strip_prefix("--") {
            // Bare flags (e.g. --accelerated) read as "true".
            if let Some(k) = key.take() {
                flags.insert(k, "true".to_string());
            }
            key = Some(stripped.to_string());
        } else if let Some(k) = key.take() {
            flags.insert(k, a.clone());
        } else {
            return None; // positional arguments are not part of the grammar
        }
    }
    if let Some(k) = key.take() {
        flags.insert(k, "true".to_string());
    }
    Some((cmd, flags))
}

fn required<'a>(flags: &'a Flags, name: &str) -> Result<&'a str, String> {
    flags
        .get(name)
        .map(String::as_str)
        .ok_or_else(|| format!("missing --{name}\n{USAGE}"))
}

fn parsed<T: std::str::FromStr>(flags: &Flags, name: &str, default: T) -> Result<T, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{name}: cannot parse `{v}`")),
    }
}

fn cmd_gen(flags: &Flags) -> Result<(), String> {
    let kind = required(flags, "kind")?;
    let n: usize = parsed(flags, "n", 2000)?;
    let seed: u64 = parsed(flags, "seed", 42)?;
    let out = PathBuf::from(required(flags, "out")?);
    let cfg = SynthConfig::new(n, seed);
    let ds = match kind {
        "hm" => synth::hm_imagenet(cfg),
        "ed" => synth::ed_aminer(cfg),
        "jc" => synth::jc_bms(cfg),
        "eu" => synth::eu_glove(cfg, 48),
        other => return Err(format!("unknown --kind `{other}` (hm|ed|jc|eu)")),
    };
    dio::save_jsonl(&ds, &out).map_err(|e| e.to_string())?;
    println!(
        "wrote {} ({} records, {}) to {}",
        ds.name,
        ds.len(),
        ds.kind.name(),
        out.display()
    );
    Ok(())
}

fn cmd_train(flags: &Flags) -> Result<(), String> {
    let ds = dio::load_jsonl(Path::new(required(flags, "data")?)).map_err(|e| e.to_string())?;
    let model_path = PathBuf::from(required(flags, "model")?);
    let accelerated = flags.contains_key("accelerated");
    let epochs: usize = parsed(flags, "epochs", 56)?;
    let tau_max: usize = parsed(flags, "tau-max", 16)?;
    let threads = kernel_threads_flag(flags, "threads")?;

    let wl = Workload::sample_from(&ds, 0.10, 12, 7);
    let split = wl.split(13);
    let fx = build_extractor(&ds, tau_max, 1);
    let mut cfg = CardNetConfig::new(fx.dim(), fx.tau_max() + 1);
    if accelerated {
        cfg = cfg.accelerated();
    }
    let opts = TrainerOptions {
        epochs,
        threads,
        kernel_backend: kernel_backend_flag(flags)?,
        ..TrainerOptions::default()
    };
    let (trainer, report) = train_cardnet(fx.as_ref(), &split.train, &split.valid, cfg, opts);
    println!(
        "trained {} in {:.1}s ({} epochs, val MSLE {:.3})",
        if accelerated { "CardNet-A" } else { "CardNet" },
        report.train_seconds,
        report.epochs_run,
        report.best_val_msle
    );
    Snapshot::from_trainer(&trainer, fx.name(), fx.tau_max())
        .save(&model_path)
        .map_err(|e| e.to_string())?;
    println!("snapshot saved to {}", model_path.display());
    Ok(())
}

/// Loads the dataset and snapshot named by `--data`/`--model` and restores a
/// *validated* estimator (decoder count, extractor name, and dimensionality
/// are all checked before a single estimate is produced).
fn load_estimator(flags: &Flags) -> Result<(Dataset, CardNetEstimator), String> {
    let ds = dio::load_jsonl(Path::new(required(flags, "data")?)).map_err(|e| e.to_string())?;
    let snap = Snapshot::load(Path::new(required(flags, "model")?)).map_err(|e| e.to_string())?;
    // Rebuild the extractor the snapshot was trained behind; seeds are
    // deterministic, and `into_estimator` rejects any mismatch.
    let fx = build_extractor(&ds, snap.tau_max, 1);
    let mut est = snap.into_estimator(fx).map_err(|e| e.to_string())?;
    est.set_parallelism(kernel_parallelism_flags(flags, "threads")?);
    Ok((ds, est))
}

/// Reads a worker-count flag; `0` means "one per hardware thread".
fn kernel_threads_flag(flags: &Flags, name: &str) -> Result<usize, String> {
    let n: usize = parsed(flags, name, 1)?;
    Ok(if n == 0 {
        Parallelism::auto().thread_count()
    } else {
        n
    })
}

/// Reads `--kernel-backend`; absent means "process default" (the
/// `CARDEST_KERNEL_BACKEND` env var, else CPU auto-detection), `auto` pins
/// the detected best tier explicitly.
fn kernel_backend_flag(flags: &Flags) -> Result<Option<KernelBackend>, String> {
    match flags.get("kernel-backend") {
        None => Ok(None),
        Some(v) => KernelBackend::parse(v).map(Some).ok_or_else(|| {
            format!("--kernel-backend: `{v}` not recognized (want scalar|blocked|simd|auto)")
        }),
    }
}

/// The kernel budget from `--threads`-style and `--kernel-backend` flags.
fn kernel_parallelism_flags(flags: &Flags, threads_flag: &str) -> Result<Parallelism, String> {
    Ok(
        Parallelism::threads(kernel_threads_flag(flags, threads_flag)?)
            .with_backend_opt(kernel_backend_flag(flags)?),
    )
}

/// Parses one `<record-index> <theta>` request line.
fn parse_request_line(line: &str, n_records: usize) -> Result<(usize, f64), String> {
    let mut parts = line.split_whitespace();
    let idx: usize = parts
        .next()
        .ok_or("empty request line")?
        .parse()
        .map_err(|_| format!("bad record index in `{line}`"))?;
    let theta: f64 = parts
        .next()
        .ok_or_else(|| format!("missing theta in `{line}`"))?
        .parse()
        .map_err(|_| format!("bad theta in `{line}`"))?;
    if parts.next().is_some() {
        return Err(format!("trailing tokens in `{line}`"));
    }
    if idx >= n_records {
        return Err(format!(
            "record index {idx} out of range (dataset has {n_records})"
        ));
    }
    Ok((idx, theta))
}

fn serve_config_from_flags(flags: &Flags) -> Result<ServeConfig, String> {
    let defaults = ServeConfig::default();
    Ok(ServeConfig {
        workers: parsed(flags, "workers", defaults.workers)?,
        batch_max: parsed(flags, "batch-max", defaults.batch_max)?,
        batch_window: Duration::from_micros(parsed(flags, "batch-window-us", 200u64)?),
        cache_capacity: parsed(flags, "cache", defaults.cache_capacity)?,
        bound_tolerance: parsed(flags, "bound-tolerance", 0.0)?,
        cache_curve_points: parsed(flags, "cache-curve-points", 0usize)?,
        kernel_threads: kernel_threads_flag(flags, "kernel-threads")?,
        kernel_backend: kernel_backend_flag(flags)?,
        tracing: !flags.contains_key("no-tracing"),
        trace_sample: parsed(flags, "trace-sample", defaults.trace_sample)?,
        slow_threshold: Duration::from_millis(parsed(
            flags,
            "slow-threshold-ms",
            defaults.slow_threshold.as_millis() as u64,
        )?),
    })
}

fn cmd_estimate(flags: &Flags) -> Result<(), String> {
    if let Some(queries_path) = flags.get("queries") {
        return cmd_estimate_batch(flags, Path::new(queries_path));
    }
    let (ds, est) = load_estimator(flags)?;
    let query_idx: usize = parsed(flags, "query", 0)?;
    let theta: f64 = required(flags, "theta")?
        .parse()
        .map_err(|_| "--theta: not a number")?;
    if query_idx >= ds.len() {
        return Err(format!(
            "--query {query_idx} out of range (dataset has {})",
            ds.len()
        ));
    }
    let query = &ds.records[query_idx];
    let estimate = if flags.contains_key("curve") {
        // The whole threshold curve from one prepare + one curve call; its
        // final point *is* the scalar estimate (bit-identical), so no second
        // model run is needed.
        let prepared = est.prepare(query);
        let curve = est.curve(&prepared, theta);
        for (step, value) in curve.values().iter().enumerate() {
            println!("τ={step}: {value:.1}");
        }
        curve.last()
    } else {
        est.estimate(query, theta)
    };
    let actual = ds.cardinality_scan(query, theta);
    println!("query #{query_idx}, θ = {theta}: estimated {estimate:.1}, actual {actual}");
    Ok(())
}

/// Batch mode: every `<index> <theta>` line of the file goes through the
/// serving layer (micro-batched, cached), one estimate printed per line in
/// input order.
fn cmd_estimate_batch(flags: &Flags, queries_path: &Path) -> Result<(), String> {
    let (ds, est) = load_estimator(flags)?;
    let text = std::fs::read_to_string(queries_path).map_err(|e| e.to_string())?;
    let requests: Vec<(usize, f64)> = text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| parse_request_line(l, ds.len()))
        .collect::<Result<_, _>>()?;

    let registry = Arc::new(ModelRegistry::new());
    registry.publish("default", est);
    let service = Service::start(registry, serve_config_from_flags(flags)?);
    // Fully pipelined: submit everything, then drain in input order — this
    // is what lets the workers form real micro-batches.
    let receivers: Vec<_> = requests
        .iter()
        .map(|&(idx, theta)| {
            service.submit(Request {
                model: "default".into(),
                query: Arc::new(ds.records[idx].clone()),
                theta,
            })
        })
        .collect();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for rx in receivers {
        let resp = rx
            .recv()
            .map_err(|_| "service stopped".to_string())?
            .map_err(|e| e.to_string())?;
        writeln!(out, "{}", resp.estimate).map_err(|e| e.to_string())?;
    }
    drop(out);
    let snap = service.stats();
    eprintln!(
        "{} requests, {} model batches (mean size {:.1}), cache hits {:.1}% (bound hits {:.1}%)",
        snap.requests,
        snap.batches,
        snap.mean_batch_size(),
        snap.hit_rate() * 100.0,
        snap.bound_hit_rate() * 100.0
    );
    service.shutdown();
    Ok(())
}

fn net_config_from_flags(flags: &Flags) -> Result<NetConfig, String> {
    let defaults = NetConfig::default();
    let deadline_ms: u64 = parsed(flags, "deadline-ms", 0u64)?;
    Ok(NetConfig {
        max_connections: parsed(flags, "max-conns", defaults.max_connections)?,
        queue_limit: parsed(flags, "queue-limit", defaults.queue_limit)?,
        default_deadline: (deadline_ms > 0).then(|| Duration::from_millis(deadline_ms)),
        client_quota: parsed(flags, "client-quota", defaults.client_quota)?,
        frame_timeout: Duration::from_millis(parsed(
            flags,
            "frame-timeout-ms",
            defaults.frame_timeout.as_millis() as u64,
        )?),
        idle_timeout: {
            // 0 disables the idle guard.
            let default_ms = defaults.idle_timeout.map_or(0, |d| d.as_millis() as u64);
            let ms: u64 = parsed(flags, "idle-timeout-ms", default_ms)?;
            (ms > 0).then(|| Duration::from_millis(ms))
        },
        default_model: defaults.default_model,
    })
}

/// Socket serve mode (`--listen`): the framed TCP ingress with admission
/// control. Prints the bound address on stdout (so scripts can scrape an
/// ephemeral `:0` port), runs until stdin reaches EOF, then drains in-flight
/// work and exits.
fn cmd_serve_socket(flags: &Flags, ds: Dataset, est: CardNetEstimator) -> Result<(), String> {
    let addr_flag = required(flags, "listen")?;
    // A bare `--listen` parses as "true": serve on an ephemeral local port.
    let addr = if addr_flag == "true" {
        "127.0.0.1:0"
    } else {
        addr_flag
    };
    let monotone = est.is_monotonic();
    let registry = Arc::new(ModelRegistry::new());
    let epoch = registry.publish("default", est);
    let config = serve_config_from_flags(flags)?;
    let net = net_config_from_flags(flags)?;
    let service = Service::start(registry, config);
    let records: Vec<Arc<Record>> = ds.records.iter().cloned().map(Arc::new).collect();
    let server = NetServer::bind(addr, service, records, net)
        .map_err(|e| format!("cannot bind {addr}: {e}"))?;
    println!("listening on {}", server.addr());
    // Optional HTTP observability endpoint: Prometheus text on /metrics,
    // JSON on /stats.json and /traces.json — same unified registry the wire
    // Stats frame reads.
    let metrics = match flags.get("metrics-addr") {
        Some(maddr) => {
            let m = MetricsServer::bind(
                maddr,
                Arc::clone(server.service().stats_handle()),
                Arc::clone(server.service().observer()),
            )
            .map_err(|e| format!("cannot bind metrics endpoint {maddr}: {e}"))?;
            println!("metrics on {}", m.local_addr());
            Some(m)
        }
        None => None,
    };
    std::io::stdout().flush().ok();
    eprintln!(
        "serving `{}` ({} records) over TCP (model epoch {epoch}, monotone: {monotone}); \
         close stdin to drain and exit",
        ds.name,
        ds.len(),
    );
    // Park until the controlling stdin closes; the accept loop and the
    // per-connection threads do all the work.
    for line in std::io::stdin().lock().lines() {
        if line.is_err() {
            break;
        }
    }
    let snap = server.service().stats();
    if let Some(m) = metrics {
        m.shutdown();
    }
    server.shutdown();
    eprintln!(
        "served {} requests ({} errors): cache hits {:.1}%, degraded sheds {}, \
         rejects {} overload + {} quota, p50 {:?}, p99 {:?}",
        snap.requests,
        snap.errors,
        snap.hit_rate() * 100.0,
        snap.shed_bracket,
        snap.shed_rejected,
        snap.quota_rejected,
        snap.latency_quantile(0.50),
        snap.latency_quantile(0.99),
    );
    Ok(())
}

/// Long-running serve mode: request lines on stdin, estimates on stdout.
fn cmd_serve(flags: &Flags) -> Result<(), String> {
    let (ds, est) = load_estimator(flags)?;
    if flags.contains_key("listen") {
        return cmd_serve_socket(flags, ds, est);
    }
    let monotone = est.is_monotonic();
    let registry = Arc::new(ModelRegistry::new());
    let epoch = registry.publish("default", est);
    let config = serve_config_from_flags(flags)?;
    // How many requests may be in flight before we block on the oldest
    // response. 1 = strictly interactive; larger values let piped input form
    // micro-batches at the cost of response lag behind input.
    let pipeline: usize = parsed(flags, "pipeline", 1usize)?;
    eprintln!(
        "serving `{}` ({} records) with {} workers, batch window {:?}, cache {} entries \
         (model epoch {epoch}, monotone: {monotone}); send `<record-index> <theta>` lines",
        ds.name,
        ds.len(),
        config.workers,
        config.batch_window,
        config.cache_capacity,
    );
    let service = Service::start(registry, config);

    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    type PendingResponse =
        std::sync::mpsc::Receiver<Result<cardest_serve::Response, cardest_serve::ServeError>>;
    let mut in_flight: std::collections::VecDeque<PendingResponse> =
        std::collections::VecDeque::new();
    fn drain(
        in_flight: &mut std::collections::VecDeque<PendingResponse>,
        out: &mut dyn Write,
        until: usize,
    ) {
        while in_flight.len() > until {
            let rx = in_flight.pop_front().expect("non-empty queue");
            match rx.recv() {
                Ok(Ok(resp)) => {
                    let _ = writeln!(out, "{}", resp.estimate);
                }
                Ok(Err(e)) => {
                    let _ = writeln!(out, "ERR {e}");
                }
                Err(_) => {
                    let _ = writeln!(out, "ERR service stopped");
                }
            }
        }
        let _ = out.flush();
    }
    let mut parse_errors = 0usize;
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| e.to_string())?;
        if line.trim().is_empty() {
            continue;
        }
        match parse_request_line(&line, ds.len()) {
            Ok((idx, theta)) => {
                in_flight.push_back(service.submit(Request {
                    model: "default".into(),
                    query: Arc::new(ds.records[idx].clone()),
                    theta,
                }));
                drain(&mut in_flight, &mut out, pipeline.max(1) - 1);
            }
            Err(e) => {
                // Flush everything in flight first so response line i keeps
                // pairing with request line i even when pipelining.
                drain(&mut in_flight, &mut out, 0);
                parse_errors += 1;
                eprintln!("bad request: {e}");
                let _ = writeln!(out, "ERR {e}");
                let _ = out.flush();
            }
        }
    }
    drain(&mut in_flight, &mut out, 0);
    drop(out);
    let snap = service.stats();
    eprintln!(
        "served {} requests ({} errors, {parse_errors} malformed lines): \
         {} model batches (mean size {:.1}), \
         cache hits {:.1}% (bound {:.1}%), p50 {:?}, p99 {:?}",
        snap.requests,
        snap.errors,
        snap.batches,
        snap.mean_batch_size(),
        snap.hit_rate() * 100.0,
        snap.bound_hit_rate() * 100.0,
        snap.latency_quantile(0.50),
        snap.latency_quantile(0.99),
    );
    service.shutdown();
    Ok(())
}

fn cmd_stats(flags: &Flags) -> Result<(), String> {
    if flags.contains_key("connect") {
        return cmd_stats_remote(flags);
    }
    let ds = dio::load_jsonl(Path::new(required(flags, "data")?)).map_err(|e| e.to_string())?;
    println!("name:      {}", ds.name);
    println!("distance:  {}", ds.kind.name());
    println!("records:   {}", ds.len());
    println!("l_max:     {}", ds.max_width());
    println!("l_avg:     {:.2}", ds.avg_width());
    println!("theta_max: {}", ds.theta_max);
    Ok(())
}

/// `stats --connect`: pulls the unified counter snapshot from a running
/// socket server over the wire protocol's `Stats` frame. With `--loadgen N`
/// it first drives N index requests through the same connection and then
/// **reconciles**: the server-side counter deltas must account for every
/// frame this client sent and received, else the exit code is nonzero.
fn cmd_stats_remote(flags: &Flags) -> Result<(), String> {
    let addr = required(flags, "connect")?;
    let loadgen: u64 = parsed(flags, "loadgen", 0u64)?;
    let theta: f64 = parsed(flags, "theta", 4.0)?;
    let index_range: u64 = parsed::<u64>(flags, "index-range", 1)?.max(1);
    let sock = std::net::ToSocketAddrs::to_socket_addrs(addr)
        .map_err(|e| format!("cannot resolve {addr}: {e}"))?
        .next()
        .ok_or_else(|| format!("{addr} resolves to no address"))?;
    let mut client =
        NetClient::connect(sock).map_err(|e| format!("cannot connect to {addr}: {e}"))?;

    let before = client.stats(1).map_err(|e| e.to_string())?;
    let mut seen_responses = 0u64;
    let mut seen_errors = 0u64;
    for i in 0..loadgen {
        client
            .send(&Frame::Request(RequestFrame {
                request_id: i,
                client_id: 0xC11,
                theta,
                deadline_us: 0,
                model: String::new(),
                query: WireQuery::Index(i % index_range),
            }))
            .map_err(|e| e.to_string())?;
    }
    for _ in 0..loadgen {
        match client.recv().map_err(|e| e.to_string())? {
            Frame::Response(_) => seen_responses += 1,
            Frame::Error(_) => seen_errors += 1,
            other => return Err(format!("unexpected frame during loadgen: {other:?}")),
        }
    }
    let after = client.stats(2).map_err(|e| e.to_string())?;

    for (name, value) in &after.counters {
        println!("{name} {value}");
    }
    if loadgen == 0 {
        return Ok(());
    }
    eprintln!("loadgen: {loadgen} sent, {seen_responses} answered, {seen_errors} rejected");
    // Deltas, not absolutes: other clients may be hitting the same server,
    // which can only push the deltas *up* — so `>=` is the exact claim a
    // shared connection can make, and any shortfall means a lost count.
    let delta = |name: &str| {
        after
            .counter(name)
            .unwrap_or(0)
            .saturating_sub(before.counter(name).unwrap_or(0))
    };
    let checks: [(&str, u64, u64); 3] = [
        (
            "cardest_requests_total",
            delta("cardest_requests_total"),
            loadgen,
        ),
        (
            "cardest_answered_total",
            delta("cardest_answered_total"),
            seen_responses,
        ),
        (
            "rejects (errors+shed+quota)",
            delta("cardest_errors_total")
                + delta("cardest_shed_rejected_total")
                + delta("cardest_quota_rejected_total"),
            seen_errors,
        ),
    ];
    for (name, got, want) in checks {
        if got < want {
            return Err(format!(
                "counter reconciliation failed: {name} moved by {got}, \
                 but this client observed {want}"
            ));
        }
    }
    eprintln!("counters reconcile with client-side observations");
    Ok(())
}
