//! `cardest` command line: generate datasets, train estimators, and estimate
//! cardinalities from the shell — the downstream-user workflow.
//!
//! ```text
//! cardest_cli gen      --kind hm --n 2000 --seed 7 --out data.jsonl
//! cardest_cli train    --data data.jsonl --model model.json [--accelerated]
//! cardest_cli estimate --data data.jsonl --model model.json --query 42 --theta 8
//! cardest_cli stats    --data data.jsonl
//! ```
//!
//! (Argument parsing is hand-rolled: the workspace's dependency policy has no
//! CLI-parser crate, and four subcommands do not justify one.)

use cardest_core::estimator::CardinalityEstimator;
use cardest_core::model::CardNetConfig;
use cardest_core::snapshot::Snapshot;
use cardest_core::train::{train_cardnet, TrainerOptions};
use cardest_core::CardNetEstimator;
use cardest_data::synth::{self, SynthConfig};
use cardest_data::{io as dio, Workload};
use cardest_fx::build_extractor;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, flags)) = parse(&args) else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "gen" => cmd_gen(&flags),
        "train" => cmd_train(&flags),
        "estimate" => cmd_estimate(&flags),
        "stats" => cmd_stats(&flags),
        _ => {
            eprintln!("unknown command `{cmd}`\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  cardest_cli gen      --kind <hm|ed|jc|eu> --n <records> [--seed <u64>] --out <file>
  cardest_cli train    --data <file> --model <file> [--accelerated] [--epochs <n>] [--tau-max <n>]
  cardest_cli estimate --data <file> --model <file> --query <record-index> --theta <f64>
  cardest_cli stats    --data <file>";

type Flags = HashMap<String, String>;

fn parse(args: &[String]) -> Option<(String, Flags)> {
    let mut it = args.iter();
    let cmd = it.next()?.clone();
    let mut flags = HashMap::new();
    let mut key: Option<String> = None;
    for a in it {
        if let Some(stripped) = a.strip_prefix("--") {
            // Bare flags (e.g. --accelerated) read as "true".
            if let Some(k) = key.take() {
                flags.insert(k, "true".to_string());
            }
            key = Some(stripped.to_string());
        } else if let Some(k) = key.take() {
            flags.insert(k, a.clone());
        } else {
            return None; // positional arguments are not part of the grammar
        }
    }
    if let Some(k) = key.take() {
        flags.insert(k, "true".to_string());
    }
    Some((cmd, flags))
}

fn required<'a>(flags: &'a Flags, name: &str) -> Result<&'a str, String> {
    flags
        .get(name)
        .map(String::as_str)
        .ok_or_else(|| format!("missing --{name}\n{USAGE}"))
}

fn parsed<T: std::str::FromStr>(flags: &Flags, name: &str, default: T) -> Result<T, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{name}: cannot parse `{v}`")),
    }
}

fn cmd_gen(flags: &Flags) -> Result<(), String> {
    let kind = required(flags, "kind")?;
    let n: usize = parsed(flags, "n", 2000)?;
    let seed: u64 = parsed(flags, "seed", 42)?;
    let out = PathBuf::from(required(flags, "out")?);
    let cfg = SynthConfig::new(n, seed);
    let ds = match kind {
        "hm" => synth::hm_imagenet(cfg),
        "ed" => synth::ed_aminer(cfg),
        "jc" => synth::jc_bms(cfg),
        "eu" => synth::eu_glove(cfg, 48),
        other => return Err(format!("unknown --kind `{other}` (hm|ed|jc|eu)")),
    };
    dio::save_jsonl(&ds, &out).map_err(|e| e.to_string())?;
    println!(
        "wrote {} ({} records, {}) to {}",
        ds.name,
        ds.len(),
        ds.kind.name(),
        out.display()
    );
    Ok(())
}

fn cmd_train(flags: &Flags) -> Result<(), String> {
    let ds = dio::load_jsonl(Path::new(required(flags, "data")?)).map_err(|e| e.to_string())?;
    let model_path = PathBuf::from(required(flags, "model")?);
    let accelerated = flags.contains_key("accelerated");
    let epochs: usize = parsed(flags, "epochs", 56)?;
    let tau_max: usize = parsed(flags, "tau-max", 16)?;

    let wl = Workload::sample_from(&ds, 0.10, 12, 7);
    let split = wl.split(13);
    let fx = build_extractor(&ds, tau_max, 1);
    let mut cfg = CardNetConfig::new(fx.dim(), fx.tau_max() + 1);
    if accelerated {
        cfg = cfg.accelerated();
    }
    let opts = TrainerOptions {
        epochs,
        ..TrainerOptions::default()
    };
    let (trainer, report) = train_cardnet(fx.as_ref(), &split.train, &split.valid, cfg, opts);
    println!(
        "trained {} in {:.1}s ({} epochs, val MSLE {:.3})",
        if accelerated { "CardNet-A" } else { "CardNet" },
        report.train_seconds,
        report.epochs_run,
        report.best_val_msle
    );
    Snapshot::from_trainer(&trainer, fx.name())
        .save(&model_path)
        .map_err(|e| e.to_string())?;
    println!("snapshot saved to {}", model_path.display());
    Ok(())
}

fn cmd_estimate(flags: &Flags) -> Result<(), String> {
    let ds = dio::load_jsonl(Path::new(required(flags, "data")?)).map_err(|e| e.to_string())?;
    let snap = Snapshot::load(Path::new(required(flags, "model")?)).map_err(|e| e.to_string())?;
    let query_idx: usize = parsed(flags, "query", 0)?;
    let theta: f64 = required(flags, "theta")?
        .parse()
        .map_err(|_| "--theta: not a number")?;
    if query_idx >= ds.len() {
        return Err(format!(
            "--query {query_idx} out of range (dataset has {})",
            ds.len()
        ));
    }
    // Rebuild the extractor the snapshot names; seeds are deterministic.
    let fx = build_extractor(&ds, snap.model.config.n_out - 1, 1);
    if fx.name() != snap.extractor {
        return Err(format!(
            "snapshot was trained behind extractor `{}`, dataset implies `{}`",
            snap.extractor,
            fx.name()
        ));
    }
    let trainer = cardest_core::train::Trainer::from_parts(snap.model, snap.params);
    let est = CardNetEstimator::from_trainer(fx, trainer);
    let query = &ds.records[query_idx];
    let estimate = est.estimate(query, theta);
    let actual = ds.cardinality_scan(query, theta);
    println!("query #{query_idx}, θ = {theta}: estimated {estimate:.1}, actual {actual}");
    Ok(())
}

fn cmd_stats(flags: &Flags) -> Result<(), String> {
    let ds = dio::load_jsonl(Path::new(required(flags, "data")?)).map_err(|e| e.to_string())?;
    println!("name:      {}", ds.name);
    println!("distance:  {}", ds.kind.name());
    println!("records:   {}", ds.len());
    println!("l_max:     {}", ds.max_width());
    println!("l_avg:     {:.2}", ds.avg_width());
    println!("theta_max: {}", ds.theta_max);
    Ok(())
}
