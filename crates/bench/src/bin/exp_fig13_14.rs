//! Figures 13 and 14: the GPH Hamming-distance query optimizer.
//!
//! Figure 13 sweeps the threshold and reports per-estimator query processing
//! time split into threshold allocation (which includes estimation) and
//! lookup + verification. Figure 14 fixes θ and sweeps the histogram's size
//! to show CardNet-A beating even a large histogram.

use cardest_baselines::db_se::GroupHistogram;
use cardest_baselines::MeanEstimator;
use cardest_bench::zoo::{cardnet_config, trainer_options};
use cardest_bench::Scale;
use cardest_core::estimator::{CardNetEstimator, CardinalityEstimator};
use cardest_core::train::train_cardnet;
use cardest_data::synth::{hm_imagenet, SynthConfig};
use cardest_data::{Dataset, Workload};
use cardest_fx::build_extractor;
use cardest_qopt::gph::{EstimatorPartCost, ExactPartCost, GphProcessor, PartCostModel};
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Trains one estimator per part dataset and wraps it as a part-cost model.
fn estimator_cost(
    parts: &[Dataset],
    scale: &Scale,
    label: &str,
    build: impl Fn(&Dataset, &cardest_data::WorkloadSplit) -> Box<dyn CardinalityEstimator>,
) -> EstimatorPartCost {
    let per_part = parts
        .iter()
        .map(|pds| {
            // Per-part models see the full workload fraction the main
            // estimators get: a starved part model mis-allocates thresholds.
            let wl = Workload::sample_from(pds, 0.15, 12, scale.seed + 3);
            let split = wl.split(scale.seed + 4);
            build(pds, &split)
        })
        .collect();
    EstimatorPartCost {
        per_part,
        label: label.into(),
    }
}

fn main() {
    let scale = Scale::from_env();
    eprintln!(
        "# exp_fig13_14 (Figures 13 & 14), scale = {}",
        scale.label()
    );
    let ds = hm_imagenet(SynthConfig::new(scale.n_records.min(4000), scale.seed + 50));
    // Four parts leave the allocator real freedom (2 parts have a near-empty
    // DP budget, so every cost model would pick the same allocation).
    let proc = GphProcessor::build(&ds, 4);
    let part_datasets = proc.part_datasets(&ds);

    let exact = ExactPartCost { index: &proc.index };
    let hist = estimator_cost(&part_datasets, &scale, "Histogram", |pds, _| {
        Box::new(GroupHistogram::build(pds))
    });
    let mean = estimator_cost(&part_datasets, &scale, "Mean", |pds, split| {
        Box::new(MeanEstimator::build(&split.train, pds.theta_max, 33))
    });
    let cardnet = estimator_cost(&part_datasets, &scale, "CardNet-A", |pds, split| {
        let fx = build_extractor(pds, scale.tau_max, scale.seed ^ 0xF0);
        let cfg = cardnet_config(fx.dim(), fx.tau_max() + 1, true);
        let (t, _) = train_cardnet(
            fx.as_ref(),
            &split.train,
            &split.valid,
            cfg,
            trainer_options(&scale),
        );
        Box::new(CardNetEstimator::from_trainer(fx, t))
    });
    let models: Vec<&dyn PartCostModel> = vec![&exact, &cardnet, &hist, &mean];

    let mut rng = rand::rngs::StdRng::seed_from_u64(scale.seed ^ 0x1313);
    let mut qidx: Vec<usize> = (0..ds.len()).collect();
    qidx.shuffle(&mut rng);
    let queries: Vec<_> = qidx[..200.min(ds.len())]
        .iter()
        .map(|&i| ds.records[i].clone())
        .collect();

    println!("\n## Figure 13 — GPH total processing time (s per 200 queries)");
    println!(
        "{:<12} {:>8} {:>12} {:>12} {:>12} {:>12}",
        "Estimator", "θ", "alloc (s)", "process (s)", "total (s)", "candidates"
    );
    for model in &models {
        for theta in [4u32, 8, 12, 16] {
            let mut alloc_s = 0.0;
            let mut proc_s = 0.0;
            let mut candidates = 0usize;
            for q in &queries {
                let out = proc.process(&ds, q, theta, *model);
                alloc_s += out.allocation_secs;
                proc_s += out.processing_secs;
                candidates += out.candidates;
            }
            println!(
                "{:<12} {:>8} {:>12.4} {:>12.4} {:>12.4} {:>12}",
                model.name(),
                theta,
                alloc_s,
                proc_s,
                alloc_s + proc_s,
                candidates
            );
        }
    }

    // Figure 14: θ fixed at 50% of max; histogram size sweep via group width.
    println!("\n## Figure 14 — histogram size vs time (θ=10), CardNet-A as reference");
    println!(
        "{:<24} {:>12} {:>12}",
        "Cost model", "size (B)", "total (s)"
    );
    let theta = 10u32;
    let run_total = |model: &dyn PartCostModel| -> f64 {
        queries
            .iter()
            .map(|q| {
                let o = proc.process(&ds, q, theta, model);
                o.allocation_secs + o.processing_secs
            })
            .sum()
    };
    println!(
        "{:<24} {:>12} {:>12.4}",
        "CardNet-A",
        cardnet.size_bytes(),
        run_total(&cardnet)
    );
    println!(
        "{:<24} {:>12} {:>12.4}",
        "Histogram(8-bit groups)",
        hist.size_bytes(),
        run_total(&hist)
    );
    println!(
        "{:<24} {:>12} {:>12.4}",
        "Mean",
        mean.size_bytes(),
        run_total(&mean)
    );
    println!(
        "{:<24} {:>12} {:>12.4}",
        "Exact(oracle)",
        0,
        run_total(&exact)
    );
}
