//! Figure 6 / Table 8: accuracy as a function of the number of decoders
//! (τ_max + 1), on higher-dimensional datasets. The paper's finding: too few
//! decoders make the extraction lossy; too many add non-increasing points
//! that are hard to learn — the sweet spot sits in between.

use cardest_bench::report::evaluate;
use cardest_bench::zoo::{cardnet_config, trainer_options};
use cardest_bench::{Bundle, Scale};
use cardest_core::estimator::CardNetEstimator;
use cardest_core::train::train_cardnet;
use cardest_data::synth::{ed_dblp, hm_highdim, jc_dblpq3, SynthConfig};
use cardest_fx::build_extractor;

fn main() {
    let scale = Scale::from_env();
    eprintln!("# exp_fig6 (Figure 6 / Table 8), scale = {}", scale.label());
    let datasets = vec![
        hm_highdim(
            SynthConfig::new(scale.n_records, scale.seed + 20),
            256,
            64.0,
        ),
        ed_dblp(SynthConfig::new(scale.n_records, scale.seed + 21)),
        jc_dblpq3(SynthConfig::new(scale.n_records, scale.seed + 22)),
    ];
    for ds in datasets {
        let name = ds.name.clone();
        let b = Bundle::prepare(ds, &scale);
        println!("\n## Figure 6 — {name} (CardNet-A accuracy vs decoder count)");
        println!(
            "{:<10} {:>12} {:>12} {:>10}",
            "Decoders", "MSE", "MAPE(%)", "q-error"
        );
        for tau_max in [4usize, 8, 16, 24, 32] {
            let fx = build_extractor(&b.dataset, tau_max, scale.seed ^ 0xF0);
            let cfg = cardnet_config(fx.dim(), fx.tau_max() + 1, true);
            let n_dec = fx.tau_max() + 1;
            let (trainer, _) = train_cardnet(
                fx.as_ref(),
                &b.split.train,
                &b.split.valid,
                cfg,
                trainer_options(&scale),
            );
            let est = CardNetEstimator::from_trainer(fx, trainer);
            let acc = evaluate(&est, &b.split.test);
            println!(
                "{n_dec:<10} {:>12.1} {:>12.2} {:>10.3}",
                acc.mse, acc.mape, acc.mean_q_error
            );
        }
    }
}
