//! Figure 5: MSE and MAPE as functions of the query threshold on the four
//! default datasets, for the figure-subset models.

use cardest_bench::report::{evaluate_at, print_header, print_row};
use cardest_bench::zoo::{train_model, ModelKind};
use cardest_bench::{Bundle, Scale};

fn main() {
    let scale = Scale::from_env();
    eprintln!("# exp_fig5 (Figure 5), scale = {}", scale.label());
    for b in Bundle::default_four(&scale) {
        let models: Vec<_> = ModelKind::figure_subset()
            .iter()
            .map(|&k| train_model(k, &b.dataset, &b.split.train, &b.split.valid, &scale))
            .collect();
        let grid = &b.split.test.thresholds;
        let cols: Vec<String> = grid.iter().map(|t| format!("θ={t:.2}")).collect();

        print_header(&format!("Figure 5 MSE — {}", b.dataset.name), &cols);
        for m in &models {
            let row: Vec<f64> = (0..grid.len())
                .map(|gi| evaluate_at(m.estimator.as_ref(), &b.split.test, gi).mse)
                .collect();
            print_row(m.kind.label(), &row);
        }
        print_header(&format!("Figure 5 MAPE (%) — {}", b.dataset.name), &cols);
        for m in &models {
            let row: Vec<f64> = (0..grid.len())
                .map(|gi| evaluate_at(m.estimator.as_ref(), &b.split.test, gi).mape)
                .collect();
            print_row(m.kind.label(), &row);
        }
    }
}
