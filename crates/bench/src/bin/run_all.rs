//! Runs every experiment binary in sequence — the full §9 reproduction.
//!
//! ```text
//! CARDEST_SCALE=quick cargo run --release -p cardest-bench --bin run_all
//! ```

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "exp_table2",
    "exp_fig1",
    "exp_accuracy",
    "exp_fig5",
    "exp_table6",
    "exp_table7",
    "exp_fig6",
    "exp_table9_10",
    "exp_fig7",
    "exp_fig8",
    "exp_fig9_10",
    "exp_fig11_12",
    "exp_fig13_14",
    "exp_sampling",
];

fn main() {
    let exe_dir = std::env::current_exe()
        .expect("current exe path")
        .parent()
        .expect("exe has a directory")
        .to_path_buf();
    let started = std::time::Instant::now();
    let mut failures = Vec::new();
    for exp in EXPERIMENTS {
        println!("\n================ {exp} ================");
        let t0 = std::time::Instant::now();
        let status = Command::new(exe_dir.join(exp))
            .status()
            .unwrap_or_else(|e| panic!("failed to spawn {exp}: {e}"));
        println!(
            "--- {exp} finished in {:.1}s ---",
            t0.elapsed().as_secs_f64()
        );
        if !status.success() {
            failures.push(*exp);
        }
    }
    println!(
        "\n================ run_all: {}/{} experiments succeeded in {:.0}s ================",
        EXPERIMENTS.len() - failures.len(),
        EXPERIMENTS.len(),
        started.elapsed().as_secs_f64()
    );
    if !failures.is_empty() {
        eprintln!("failed: {failures:?}");
        std::process::exit(1);
    }
}
