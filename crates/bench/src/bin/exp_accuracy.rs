//! Tables 3, 4, and 5: MSE / MAPE / mean q-error of every model on the eight
//! dataset stand-ins.
//!
//! ```text
//! CARDEST_SCALE=quick cargo run --release -p cardest-bench --bin exp_accuracy
//! ```

use cardest_bench::report::{evaluate, print_header, print_row};
use cardest_bench::zoo::{train_model, ModelKind};
use cardest_bench::{Bundle, Scale};

fn main() {
    let scale = Scale::from_env();
    eprintln!("# exp_accuracy (Tables 3/4/5), scale = {}", scale.label());
    let bundles = Bundle::default_suite(&scale);
    let names: Vec<String> = bundles.iter().map(|b| b.dataset.name.clone()).collect();

    // rows[model] = per-dataset accuracy.
    let mut rows = Vec::new();
    for &kind in ModelKind::all() {
        let mut accs = Vec::new();
        for b in &bundles {
            let model = train_model(kind, &b.dataset, &b.split.train, &b.split.valid, &scale);
            let acc = evaluate(model.estimator.as_ref(), &b.split.test);
            eprintln!(
                "  {:<10} {:<14} mse={:.1} mape={:.1}% q={:.2} ({:.1}s train)",
                kind.label(),
                b.dataset.name,
                acc.mse,
                acc.mape,
                acc.mean_q_error,
                model.train_secs
            );
            accs.push(acc);
        }
        rows.push((kind, accs));
    }

    print_header("Table 3: MSE", &names);
    for (kind, accs) in &rows {
        print_row(
            kind.label(),
            &accs.iter().map(|a| a.mse).collect::<Vec<_>>(),
        );
    }
    print_header("Table 4: MAPE (%)", &names);
    for (kind, accs) in &rows {
        print_row(
            kind.label(),
            &accs.iter().map(|a| a.mape).collect::<Vec<_>>(),
        );
    }
    print_header("Table 5: mean q-error", &names);
    for (kind, accs) in &rows {
        print_row(
            kind.label(),
            &accs.iter().map(|a| a.mean_q_error).collect::<Vec<_>>(),
        );
    }

    // The headline check of the paper: CardNet{-A} should win on (nearly)
    // every dataset.
    let card_best: Vec<f64> = (0..names.len())
        .map(|d| {
            rows.iter()
                .filter(|(k, _)| matches!(k, ModelKind::CardNet | ModelKind::CardNetA))
                .map(|(_, a)| a[d].mean_q_error)
                .fold(f64::INFINITY, f64::min)
        })
        .collect();
    let other_best: Vec<f64> = (0..names.len())
        .map(|d| {
            rows.iter()
                .filter(|(k, _)| !matches!(k, ModelKind::CardNet | ModelKind::CardNetA))
                .map(|(_, a)| a[d].mean_q_error)
                .fold(f64::INFINITY, f64::min)
        })
        .collect();
    let wins = card_best
        .iter()
        .zip(&other_best)
        .filter(|(c, o)| c <= o)
        .count();
    println!(
        "\nCardNet{{-A}} best-q-error wins: {wins}/{} datasets",
        names.len()
    );
}
