//! Figures 9 and 10: long-tail queries and out-of-dataset generalizability.
//!
//! * Figure 9 groups *test* queries by actual cardinality and reports MSE per
//!   group — the long tail (huge balls) is the hard case.
//! * Figure 10 generates adversarial out-of-dataset queries (random records
//!   far from every k-medoids centroid, §9.10) and reports MSE per
//!   cardinality group.
//!
//! Models are trained once per dataset and reused for both figures.

use cardest_bench::report::{per_query_pairs, print_header, print_row};
use cardest_bench::zoo::{train_model, ModelKind};
use cardest_bench::{Bundle, Scale};
use cardest_data::metrics;
use cardest_data::sampling::{cardinality_groups, out_of_dataset_queries, Clustering};
use cardest_data::Workload;

fn grouped_mse(actual: &[f64], pred: &[f64], width: f64, n_groups: usize) -> Vec<f64> {
    let groups = cardinality_groups(actual, width, n_groups);
    groups
        .iter()
        .map(|idx| {
            if idx.is_empty() {
                return f64::NAN;
            }
            let a: Vec<f64> = idx.iter().map(|&i| actual[i]).collect();
            let p: Vec<f64> = idx.iter().map(|&i| pred[i]).collect();
            metrics::mse(&a, &p)
        })
        .collect()
}

fn group_width(wl: &Workload) -> f64 {
    let max_card = wl
        .queries
        .iter()
        .map(|q| *q.cards.last().expect("non-empty curve"))
        .max()
        .unwrap_or(1) as f64;
    (max_card / 4.0).max(1.0)
}

fn main() {
    let scale = Scale::from_env();
    eprintln!("# exp_fig9_10 (Figures 9 & 10), scale = {}", scale.label());
    for b in Bundle::default_four(&scale) {
        // Train the comparison subset once.
        let models: Vec<_> = ModelKind::figure_subset()
            .iter()
            .map(|&k| train_model(k, &b.dataset, &b.split.train, &b.split.valid, &scale))
            .collect();

        // Figure 9: long-tail grouping of the in-distribution test set.
        let width = group_width(&b.split.test);
        let cols: Vec<String> = (0..4)
            .map(|g| format!("[{:.0},{:.0})", g as f64 * width, (g + 1) as f64 * width))
            .collect();
        print_header(
            &format!("Figure 9 MSE by cardinality group — {}", b.dataset.name),
            &cols,
        );
        for m in &models {
            let (actual, pred) = per_query_pairs(m.estimator.as_ref(), &b.split.test);
            print_row(m.kind.label(), &grouped_mse(&actual, &pred, width, 4));
        }

        // Figure 10: out-of-dataset queries against the same trained models.
        let clustering = Clustering::cluster(&b.dataset, 8, scale.seed ^ 0xA0);
        let n_ood = (b.split.test.len()).clamp(20, 100);
        let ood =
            out_of_dataset_queries(&b.dataset, &clustering, n_ood * 3, n_ood, scale.seed ^ 0xA1);
        let ood_wl = Workload::label(&b.dataset, ood, b.split.test.thresholds.clone());
        let ood_width = group_width(&ood_wl);
        let ood_cols: Vec<String> = (0..4)
            .map(|g| {
                format!(
                    "[{:.0},{:.0})",
                    g as f64 * ood_width,
                    (g + 1) as f64 * ood_width
                )
            })
            .collect();
        print_header(
            &format!("Figure 10 MSE, out-of-dataset queries — {}", b.dataset.name),
            &ood_cols,
        );
        for m in &models {
            let (actual, pred) = per_query_pairs(m.estimator.as_ref(), &ood_wl);
            print_row(m.kind.label(), &grouped_mse(&actual, &pred, ood_width, 4));
        }
    }
}
