//! Figure 1: the cardinality distribution on the HM-ImageNet stand-in —
//! (a) cardinality vs. threshold for five random queries, (b) the fraction
//! of queries per cardinality value at four thresholds.

use cardest_bench::Scale;
use cardest_data::synth::{hm_imagenet, SynthConfig};
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_env();
    eprintln!("# exp_fig1 (Figure 1), scale = {}", scale.label());
    let ds = hm_imagenet(SynthConfig::new(scale.n_records, scale.seed));
    let mut rng = rand::rngs::StdRng::seed_from_u64(scale.seed ^ 0x11);

    // (a) cardinality vs threshold for 5 random queries.
    let mut idx: Vec<usize> = (0..ds.len()).collect();
    idx.shuffle(&mut rng);
    println!("\n## Figure 1(a): cardinality vs threshold (5 random queries)");
    print!("{:<10}", "Threshold");
    for q in 0..5 {
        print!(" {:>9}", format!("Query {}", q + 1));
    }
    println!();
    let queries: Vec<_> = idx[..5].iter().map(|&i| ds.records[i].clone()).collect();
    for theta in (0..=16).step_by(2) {
        print!("{theta:<10}");
        for q in &queries {
            print!(" {:>9}", ds.cardinality_scan(q, f64::from(theta)));
        }
        println!();
    }

    // (b) fraction of queries per cardinality bucket at 4 thresholds.
    let n_q = 300.min(ds.len());
    let sample: Vec<_> = idx[..n_q].iter().map(|&i| ds.records[i].clone()).collect();
    println!("\n## Figure 1(b): fraction of queries per cardinality decade");
    print!("{:<16}", "Cardinality");
    for theta in [4, 8, 12, 16] {
        print!(" {:>8}", format!("t={theta}"));
    }
    println!();
    let buckets = ["1", "2-10", "11-100", "101-1000", ">1000"];
    let bucket_of = |c: usize| match c {
        0..=1 => 0,
        2..=10 => 1,
        11..=100 => 2,
        101..=1000 => 3,
        _ => 4,
    };
    let mut table = vec![[0usize; 4]; buckets.len()];
    for (ti, theta) in [4u32, 8, 12, 16].iter().enumerate() {
        for q in &sample {
            let c = ds.cardinality_scan(q, f64::from(*theta));
            table[bucket_of(c)][ti] += 1;
        }
    }
    for (bi, label) in buckets.iter().enumerate() {
        print!("{label:<16}");
        for &cell in table[bi].iter().take(4) {
            print!(" {:>8.3}", cell as f64 / n_q as f64);
        }
        println!();
    }
    println!("\nTakeaway check: mass should shift right with θ (long tail grows).");
}
