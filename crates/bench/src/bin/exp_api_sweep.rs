//! Estimator-API microbench smoke: naive per-θ sweep vs prepared-query
//! sweep.
//!
//! The v2 API's contract is that a τ-sweep over k thresholds performs
//! exactly **1** feature extraction and **1** encoder pass (vs k for the
//! naive per-θ loop) while producing bit-identical estimates. This binary
//! verifies both claims with the `cardest_core::metrics` counters and exits
//! non-zero on any violation, so CI can run it as a gate
//! (`CARDEST_SCALE=quick exp_api_sweep`).

use cardest_bench::zoo::{cardnet_config, trainer_options};
use cardest_bench::Scale;
use cardest_core::metrics::ApiCounters;
use cardest_core::train::train_cardnet;
use cardest_core::{CardNetEstimator, CardinalityEstimator};
use cardest_data::synth::{hm_imagenet, SynthConfig};
use cardest_data::Workload;
use cardest_fx::build_extractor;
use std::time::Instant;

fn main() {
    let mut scale = Scale::from_env();
    scale.n_records = scale.n_records.min(1200);
    eprintln!(
        "# exp_api_sweep (Estimator API smoke), scale = {}",
        scale.label()
    );

    let ds = hm_imagenet(SynthConfig::new(scale.n_records, scale.seed + 90));
    let wl = Workload::sample_from(
        &ds,
        scale.workload_frac,
        scale.n_thresholds,
        scale.seed + 91,
    );
    let split = wl.split(scale.seed + 92);

    let mut all_pass = true;
    for accelerated in [false, true] {
        let fx = build_extractor(&ds, scale.tau_max, scale.seed ^ 0xF0);
        let cfg = cardnet_config(fx.dim(), fx.tau_max() + 1, accelerated);
        let (trainer, _) = train_cardnet(
            fx.as_ref(),
            &split.train,
            &split.valid,
            cfg,
            trainer_options(&scale),
        );
        let est = CardNetEstimator::from_trainer(fx, trainer);
        let name = est.name();

        let queries: Vec<_> = (0..32.min(ds.len()))
            .map(|i| ds.records[i * (ds.len() / 32).max(1)].clone())
            .collect();
        let k = scale.tau_max + 1;
        let thetas: Vec<f64> = (0..k)
            .map(|i| ds.theta_max * i as f64 / (k - 1) as f64)
            .collect();

        // Naive sweep: one scalar estimate per (query, θ).
        let before = ApiCounters::snapshot();
        let t0 = Instant::now();
        let naive: Vec<Vec<f64>> = queries
            .iter()
            .map(|q| thetas.iter().map(|&t| est.estimate(q, t)).collect())
            .collect();
        let naive_secs = t0.elapsed().as_secs_f64();
        let naive_counts = ApiCounters::snapshot().delta_since(&before);

        // Prepared sweep: prepare once per query, then per-θ decoding.
        let before = ApiCounters::snapshot();
        let t1 = Instant::now();
        let prepared: Vec<Vec<f64>> = queries
            .iter()
            .map(|q| {
                let p = est.prepare(q);
                thetas
                    .iter()
                    .map(|&t| est.estimate_prepared(&p, t))
                    .collect()
            })
            .collect();
        let prep_secs = t1.elapsed().as_secs_f64();
        let prep_counts = ApiCounters::snapshot().delta_since(&before);

        let nq = queries.len() as u64;
        let identical = naive
            .iter()
            .flatten()
            .zip(prepared.iter().flatten())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        let extraction_ratio = naive_counts.extractions as f64 / prep_counts.extractions as f64;
        let encoder_ratio = naive_counts.encoder_passes as f64 / prep_counts.encoder_passes as f64;

        println!(
            "\n## {name}: {}-query sweep over {k} thresholds",
            queries.len()
        );
        println!(
            "{:<22} {:>14} {:>14} {:>10}",
            "", "naive per-θ", "prepared", "ratio"
        );
        println!(
            "{:<22} {:>14} {:>14} {:>9.1}x",
            "feature extractions",
            naive_counts.extractions,
            prep_counts.extractions,
            extraction_ratio
        );
        println!(
            "{:<22} {:>14} {:>14} {:>9.1}x",
            "encoder passes",
            naive_counts.encoder_passes,
            prep_counts.encoder_passes,
            encoder_ratio
        );
        println!(
            "{:<22} {:>14} {:>14} {:>9.1}x",
            "decoder calls",
            naive_counts.decoder_calls,
            prep_counts.decoder_calls,
            naive_counts.decoder_calls as f64 / prep_counts.decoder_calls.max(1) as f64
        );
        println!(
            "{:<22} {:>13.4}s {:>13.4}s {:>9.1}x",
            "wall time",
            naive_secs,
            prep_secs,
            naive_secs / prep_secs.max(1e-12)
        );

        // Gates: k extractions+encoder passes per query naive, exactly 1+1
        // prepared, and bit-identical values.
        let counts_ok = naive_counts.extractions == nq * k as u64
            && naive_counts.encoder_passes == nq * k as u64
            && prep_counts.extractions == nq
            && prep_counts.encoder_passes == nq;
        println!(
            "bit-identity: {}   extraction counts: {}",
            if identical { "PASS" } else { "FAIL" },
            if counts_ok { "PASS" } else { "FAIL" },
        );
        all_pass &= identical && counts_ok;
    }

    if !all_pass {
        eprintln!("exp_api_sweep: FAIL");
        std::process::exit(1);
    }
    eprintln!("exp_api_sweep: all gates PASS");
}
