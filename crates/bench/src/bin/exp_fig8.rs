//! Figure 8: handling updates. A stream of 200 operations (each inserting or
//! deleting 5 records) is applied; three strategies are compared on MSE over
//! the stream: `IncLearn` (incremental learning, §8), `Retrain` (full
//! retraining at checkpoints), and `+Sample` (the stale model plus a
//! sampling-based correction on the delta).

use cardest_bench::report::evaluate;
use cardest_bench::zoo::{cardnet_config, trainer_options};
use cardest_bench::{Bundle, Scale};
use cardest_core::estimator::{CardNetEstimator, CardinalityEstimator};
use cardest_core::incremental::IncrementalLearner;
use cardest_core::train::train_cardnet;
use cardest_data::{Dataset, Record};
use cardest_fx::build_extractor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `+Sample`: the original model's estimate plus a uniform-sample estimate of
/// the *delta* between the updated and original datasets.
struct PlusSample<'a> {
    base: &'a CardNetEstimator,
    added: Vec<Record>,
    removed: Vec<Record>,
    distance: cardest_data::Distance,
}

impl CardinalityEstimator for PlusSample<'_> {
    fn estimate(&self, query: &Record, theta: f64) -> f64 {
        let plus = self
            .added
            .iter()
            .filter(|r| self.distance.eval_within(query, r, theta).is_some())
            .count() as f64;
        let minus = self
            .removed
            .iter()
            .filter(|r| self.distance.eval_within(query, r, theta).is_some())
            .count() as f64;
        (self.base.estimate(query, theta) + plus - minus).max(0.0)
    }

    fn name(&self) -> String {
        "+Sample".into()
    }

    fn size_bytes(&self) -> usize {
        self.base.size_bytes()
    }
}

fn apply_ops(
    ds: &mut Dataset,
    rng: &mut StdRng,
    added: &mut Vec<Record>,
    removed: &mut Vec<Record>,
) {
    // One operation: insert or delete 5 records.
    if rng.gen_bool(0.5) {
        for _ in 0..5 {
            let mut bits = ds.records[rng.gen_range(0..ds.len())].as_bits().clone();
            for _ in 0..2 {
                bits.flip(rng.gen_range(0..bits.len()));
            }
            let r = Record::Bits(bits);
            added.push(r.clone());
            ds.records.push(r);
        }
    } else {
        for _ in 0..5 {
            if ds.len() > 100 {
                let r = ds.records.swap_remove(rng.gen_range(0..ds.len()));
                removed.push(r);
            }
        }
    }
}

fn main() {
    let scale = Scale::from_env();
    eprintln!("# exp_fig8 (Figure 8 updates), scale = {}", scale.label());
    let bundles = vec![Bundle::default_four(&scale).remove(0)];
    let n_ops = 200usize;
    let checkpoints = [0usize, 50, 100, 150, 200];

    for b in bundles {
        let mut ds = b.dataset.clone();
        let fx = build_extractor(&ds, scale.tau_max, scale.seed ^ 0xF0);
        let cfg = cardnet_config(fx.dim(), fx.tau_max() + 1, true);
        let (trainer, _) = train_cardnet(
            fx.as_ref(),
            &b.split.train,
            &b.split.valid,
            cfg.clone(),
            trainer_options(&scale),
        );
        // IncLearn path owns a trainer; +Sample keeps a frozen clone.
        let fx2 = build_extractor(&ds, scale.tau_max, scale.seed ^ 0xF0);
        let (frozen_trainer, _) = train_cardnet(
            fx2.as_ref(),
            &b.split.train,
            &b.split.valid,
            cfg.clone(),
            trainer_options(&scale),
        );
        let frozen = CardNetEstimator::from_trainer(fx2, frozen_trainer);
        let mut learner = IncrementalLearner::new(
            trainer,
            b.split.train.clone(),
            b.split.valid.clone(),
            fx.as_ref(),
        );

        let mut rng = StdRng::seed_from_u64(scale.seed ^ 0xD0);
        let mut added = Vec::new();
        let mut removed = Vec::new();
        let mut inc_secs = 0.0f64;
        let mut retrain_secs = 0.0f64;

        println!("\n## Figure 8 — {} (MSE over the update stream)", ds.name);
        println!(
            "{:<8} {:>12} {:>12} {:>12}",
            "Ops", "IncLearn", "Retrain", "+Sample"
        );
        for op in 0..=n_ops {
            if op > 0 {
                apply_ops(&mut ds, &mut rng, &mut added, &mut removed);
            }
            if !checkpoints.contains(&op) {
                continue;
            }
            // Fresh test labels against the updated dataset.
            let mut test = b.split.test.clone();
            test.relabel(&ds);

            // IncLearn: §8 monitor-and-resume.
            let t0 = std::time::Instant::now();
            learner.on_update(&ds, fx.as_ref());
            inc_secs += t0.elapsed().as_secs_f64();
            let inc_est = CardNetEstimator::from_trainer_ref(fx.as_ref(), &learner.trainer);
            let inc_mse = evaluate(&inc_est, &test).mse;

            // Retrain: from scratch on relabelled data.
            let t1 = std::time::Instant::now();
            let mut train = b.split.train.clone();
            let mut valid = b.split.valid.clone();
            train.relabel(&ds);
            valid.relabel(&ds);
            let fx3 = build_extractor(&ds, scale.tau_max, scale.seed ^ 0xF0);
            let (rt, _) = train_cardnet(
                fx3.as_ref(),
                &train,
                &valid,
                cardnet_config(fx3.dim(), fx3.tau_max() + 1, true),
                trainer_options(&scale),
            );
            retrain_secs += t1.elapsed().as_secs_f64();
            let rt_est = CardNetEstimator::from_trainer(fx3, rt);
            let rt_mse = evaluate(&rt_est, &test).mse;

            // +Sample: frozen model + delta correction.
            let ps = PlusSample {
                base: &frozen,
                added: added.clone(),
                removed: removed.clone(),
                distance: ds.distance(),
            };
            let ps_mse = evaluate(&ps, &test).mse;

            println!("{op:<8} {inc_mse:>12.1} {rt_mse:>12.1} {ps_mse:>12.1}");
        }
        println!(
            "\nCumulative maintenance time: IncLearn {inc_secs:.1}s vs Retrain {retrain_secs:.1}s \
             (paper: minutes vs hours)"
        );
    }
}
