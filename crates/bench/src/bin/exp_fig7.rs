//! Figure 7: MSE vs. training-set fraction (20%–100%) on the four default
//! datasets. The paper's finding: all models degrade with less data, but
//! CardNet{-A} degrades the most gracefully.

use cardest_bench::report::{evaluate, print_header, print_row};
use cardest_bench::zoo::{train_model, ModelKind};
use cardest_bench::{Bundle, Scale};

fn main() {
    let scale = Scale::from_env();
    eprintln!("# exp_fig7 (Figure 7), scale = {}", scale.label());
    // Fewer fractions and the lighter models keep the sweep tractable: the
    // paper's five-point sweep over six models is 120 trainings per run.
    let fractions = [0.2, 0.6, 1.0];
    let subset = [
        ModelKind::CardNetA,
        ModelKind::TlXgb,
        ModelKind::DlRmi,
        ModelKind::DlMoe,
    ];
    for b in Bundle::default_four(&scale) {
        let cols: Vec<String> = fractions
            .iter()
            .map(|f| format!("{:.0}%", f * 100.0))
            .collect();
        print_header(&format!("Figure 7 MSE — {}", b.dataset.name), &cols);
        for &kind in &subset {
            let row: Vec<f64> = fractions
                .iter()
                .map(|&f| {
                    let train = b.split.train.truncate_fraction(f);
                    let m = train_model(kind, &b.dataset, &train, &b.split.valid, &scale);
                    evaluate(m.estimator.as_ref(), &b.split.test).mse
                })
                .collect();
            print_row(kind.label(), &row);
        }
    }
}
