//! Tables 13–16: workload-construction robustness (§9.12).
//!
//! Table 13 reports cluster sizes per dataset; Tables 14–16 report MSE for
//! three train/test policy combinations: trained on a single uniform sample
//! and tested on multiple uniform samples; trained and tested on multiple
//! uniform samples; and trained on a single *skewed* sample (uniform over
//! k-medoids clusters) while testing on multiple uniform samples.

use cardest_bench::report::{evaluate, print_header, print_row};
use cardest_bench::zoo::{train_model, ModelKind};
use cardest_bench::{Bundle, Scale};
use cardest_data::sampling::{draw_queries, Clustering, SamplingPolicy};
use cardest_data::Workload;

fn labelled(
    ds: &cardest_data::Dataset,
    scale: &Scale,
    policy: SamplingPolicy,
    n: usize,
    seed: u64,
) -> Workload {
    let queries = draw_queries(ds, n, policy, seed);
    let grid = Workload::uniform_grid(ds.theta_max, scale.n_thresholds);
    Workload::label(ds, queries, grid)
}

fn main() {
    let scale = Scale::from_env();
    eprintln!("# exp_sampling (Tables 13-16), scale = {}", scale.label());
    let bundles = Bundle::default_four(&scale);
    let names: Vec<String> = bundles.iter().map(|b| b.dataset.name.clone()).collect();
    let subset = [
        ModelKind::CardNetA,
        ModelKind::DlRmi,
        ModelKind::TlXgb,
        ModelKind::DbUs,
    ];
    let k = 8usize;

    // Table 13: cluster sizes.
    print_header("Table 13: records per k-medoids cluster (sorted)", &names);
    let mut size_rows: Vec<Vec<f64>> = vec![Vec::new(); k];
    for b in &bundles {
        let cl = Clustering::cluster(&b.dataset, k, scale.seed ^ 0x13);
        let mut sizes = cl.cluster_sizes(k);
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        for (i, s) in sizes.into_iter().enumerate() {
            size_rows[i].push(s as f64);
        }
    }
    for (i, row) in size_rows.iter().enumerate() {
        print_row(&format!("cluster {}", i + 1), row);
    }

    let n_queries = |b: &Bundle| b.split.train.len() + b.split.valid.len() + b.split.test.len();

    // The three policy combinations.
    let combos: [(&str, SamplingPolicy); 3] = [
        (
            "Table 14: train single-uniform, test multi-uniform",
            SamplingPolicy::SingleUniform,
        ),
        (
            "Table 15: train multi-uniform, test multi-uniform",
            SamplingPolicy::MultipleUniform { samples: 5 },
        ),
        (
            "Table 16: train single-skewed, test multi-uniform",
            SamplingPolicy::SingleSkewed { clusters: k },
        ),
    ];
    for (title, train_policy) in combos {
        print_header(&format!("{title} (MSE)"), &names);
        for &kind in &subset {
            let mut cells = Vec::new();
            for b in &bundles {
                let n = n_queries(b);
                let train_wl =
                    labelled(&b.dataset, &scale, train_policy, n * 8 / 10, scale.seed + 1);
                let valid_wl = labelled(&b.dataset, &scale, train_policy, n / 10, scale.seed + 2);
                let test_wl = labelled(
                    &b.dataset,
                    &scale,
                    SamplingPolicy::MultipleUniform { samples: 5 },
                    n / 10,
                    scale.seed + 3,
                );
                let m = train_model(kind, &b.dataset, &train_wl, &valid_wl, &scale);
                cells.push(evaluate(m.estimator.as_ref(), &test_wl).mse);
            }
            print_row(kind.label(), &cells);
        }
    }
    println!("\nShape check: CardNet-A stays best under every policy (paper §9.12).");
}
