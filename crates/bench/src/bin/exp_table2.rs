//! Table 2: dataset statistics — the stand-in corpora's record counts,
//! max/average widths, distance functions, and θ_max, mirroring the paper's
//! dataset table (plus the Table 8 high-dimensional extras).

use cardest_bench::Scale;
use cardest_data::synth::{default_suite, hm_highdim, SynthConfig};

fn main() {
    let scale = Scale::from_env();
    eprintln!(
        "# exp_table2 (Table 2 dataset statistics), scale = {}",
        scale.label()
    );
    println!("\n## Table 2: datasets (synthetic stand-ins, DESIGN.md §2.5)");
    println!(
        "{:<14} {:<10} {:>10} {:>8} {:>8} {:>10} {:>8}",
        "Dataset", "Distance", "#Records", "l_max", "l_avg", "θ_max", "kind"
    );
    let mut suite = default_suite(scale.n_records, scale.seed);
    suite.push(hm_highdim(
        SynthConfig::new(scale.n_records, scale.seed + 20),
        256,
        64.0,
    ));
    for ds in &suite {
        println!(
            "{:<14} {:<10} {:>10} {:>8} {:>8.2} {:>10} {:>8}",
            ds.name,
            ds.kind.name(),
            ds.len(),
            ds.max_width(),
            ds.avg_width(),
            ds.theta_max,
            if ds.kind.is_integer_valued() {
                "int"
            } else {
                "real"
            }
        );
    }

    // The distance-function sanity panel the paper's Table 2 implies: the
    // identity record is at distance 0, and distances stay within bounds.
    println!("\n## Distance sanity panel");
    for ds in &suite {
        let d = ds.distance();
        let (a, b) = (&ds.records[0], &ds.records[1.min(ds.len() - 1)]);
        println!(
            "{:<14} f(x,x) = {:<6} f(x,y) = {:.3}",
            ds.name,
            d.eval(a, a),
            d.eval(a, b)
        );
    }
}
