//! Figures 11 and 12: the conjunctive Euclidean-distance query optimizer.
//!
//! For each estimator the planner picks the lead predicate with the smallest
//! estimated cardinality; the table reports total processing time (broken
//! into estimation + execution) and planning precision — the fraction of
//! queries where the chosen plan is the actually-cheapest one.

use cardest_baselines::dnn::DnnOptions;
use cardest_baselines::gbt::GbtOptions;
use cardest_baselines::rmi::RmiOptions;
use cardest_baselines::{BaselineFeaturizer, DbUs, DlRmi, GrowthPolicy, MeanEstimator, TlGbt};
use cardest_bench::zoo::{cardnet_config, trainer_options};
use cardest_bench::Scale;
use cardest_core::estimator::{CardNetEstimator, CardinalityEstimator};
use cardest_core::train::train_cardnet;
use cardest_data::synth::{entity_table, SynthConfig};
use cardest_data::{Record, Workload};
use cardest_fx::build_extractor;
use cardest_qopt::conjunctive::{ConjunctiveQuery, ConjunctiveTable, Planner};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Oracle estimator: exact counts, "instantly" (its estimation time is still
/// measured, matching the paper's Exact bar).
struct Exact<'a> {
    ds: &'a cardest_data::Dataset,
}

impl CardinalityEstimator for Exact<'_> {
    fn estimate(&self, q: &Record, theta: f64) -> f64 {
        self.ds.cardinality_scan(q, theta) as f64
    }
    fn name(&self) -> String {
        "Exact".into()
    }
    fn size_bytes(&self) -> usize {
        0
    }
}

fn main() {
    let scale = Scale::from_env();
    eprintln!(
        "# exp_fig11_12 (Figures 11 & 12), scale = {}",
        scale.label()
    );
    let n_entities = scale.n_records.min(3000);
    let table_src = entity_table(SynthConfig::new(n_entities, scale.seed + 40), 3, 24);
    let table = ConjunctiveTable::build(&table_src, 0.8, scale.seed);

    // Per-attribute training workloads.
    let mut attr_workloads = Vec::new();
    for ds in &table.attrs {
        let wl = Workload::sample_from(ds, scale.workload_frac, scale.n_thresholds, scale.seed + 7);
        attr_workloads.push(wl.split(scale.seed + 8));
    }

    // Queries: entity vectors with θ ~ U[0.2, 0.5] per predicate (Table 11).
    let mut rng = StdRng::seed_from_u64(scale.seed ^ 0x1111);
    let n_queries = 150usize;
    let queries: Vec<ConjunctiveQuery> = (0..n_queries)
        .map(|_| {
            let id = rng.gen_range(0..table.n_entities());
            ConjunctiveQuery {
                preds: (0..table.n_attrs())
                    .map(|a| {
                        (
                            table.attrs[a].records[id].as_vec().to_vec(),
                            rng.gen_range(0.2..0.5),
                        )
                    })
                    .collect(),
            }
        })
        .collect();

    // Ground-truth best plan per query (by actual execution work).
    let best: Vec<usize> = queries.iter().map(|q| table.best_plan(q)).collect();

    // Estimator roster per attribute.
    let kinds = ["Exact", "CardNet-A", "DL-RMI", "TL-XGB", "DB-US", "Mean"];
    println!(
        "\n## Figures 11–12 — conjunctive optimizer ({} entities, 3 attrs)",
        n_entities
    );
    println!(
        "{:<10} {:>14} {:>14} {:>12} {:>10}",
        "Estimator", "est time (s)", "exec time (s)", "total (s)", "precision"
    );
    for kind in kinds {
        // Build one estimator per attribute.
        let per_attr: Vec<Box<dyn CardinalityEstimator + '_>> = table
            .attrs
            .iter()
            .zip(&attr_workloads)
            .map(|(ds, split)| -> Box<dyn CardinalityEstimator + '_> {
                match kind {
                    "Exact" => Box::new(Exact { ds }),
                    "CardNet-A" => {
                        let fx = build_extractor(ds, scale.tau_max, scale.seed ^ 0xF0);
                        let cfg = cardnet_config(fx.dim(), fx.tau_max() + 1, true);
                        let (t, _) = train_cardnet(
                            fx.as_ref(),
                            &split.train,
                            &split.valid,
                            cfg,
                            trainer_options(&scale),
                        );
                        Box::new(CardNetEstimator::from_trainer(fx, t))
                    }
                    "DL-RMI" => {
                        let f = BaselineFeaturizer::from_dataset(ds, scale.seed);
                        let opts = RmiOptions {
                            dnn: DnnOptions {
                                epochs: scale.epochs / 2,
                                ..Default::default()
                            },
                            ..Default::default()
                        };
                        Box::new(DlRmi::train(&split.train, f, ds.theta_max, opts))
                    }
                    "TL-XGB" => {
                        let f = BaselineFeaturizer::from_dataset(ds, scale.seed);
                        let opts = GbtOptions {
                            policy: GrowthPolicy::DepthWise,
                            n_trees: scale.gbt_trees,
                            ..Default::default()
                        };
                        Box::new(TlGbt::train(&split.train, f, ds.theta_max, opts))
                    }
                    "DB-US" => Box::new(DbUs::build(ds, 0.05, scale.seed)),
                    _ => Box::new(MeanEstimator::build(&split.train, ds.theta_max, 64)),
                }
            })
            .collect();
        let planner = Planner {
            estimators: per_attr.iter().map(AsRef::as_ref).collect(),
        };

        let mut est_secs = 0.0f64;
        let mut exec_secs = 0.0f64;
        let mut correct = 0usize;
        for (qi, q) in queries.iter().enumerate() {
            let t0 = Instant::now();
            let lead = planner.choose(q);
            est_secs += t0.elapsed().as_secs_f64();
            let t1 = Instant::now();
            std::hint::black_box(table.execute(q, lead));
            exec_secs += t1.elapsed().as_secs_f64();
            if lead == best[qi] {
                correct += 1;
            }
        }
        println!(
            "{:<10} {:>14.3} {:>14.3} {:>12.3} {:>9.1}%",
            kind,
            est_secs,
            exec_secs,
            est_secs + exec_secs,
            100.0 * correct as f64 / n_queries as f64
        );
    }
    println!("\nShape check: Exact ≈ best; CardNet-A close behind; Mean worst (paper Fig. 11–12).");
}
